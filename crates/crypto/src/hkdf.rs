//! HKDF with SHA-256 (RFC 5869).

use crate::hmac::{hmac_sha256, HmacKey};

/// HKDF-Extract: derive a pseudorandom key from input keying material.
pub fn extract(salt: &[u8], ikm: &[u8]) -> [u8; 32] {
    hmac_sha256(salt, ikm)
}

/// HKDF-Expand: fill `okm` with output keying material derived from `prk`
/// and the context `info`.
///
/// The PRK's HMAC midstates are computed once and reused for every
/// output block, and no intermediate buffers are allocated.
///
/// # Panics
/// Panics if `okm.len() > 255 * 32` (the RFC limit).
pub fn expand(prk: &[u8; 32], info: &[u8], okm: &mut [u8]) {
    assert!(okm.len() <= 255 * 32, "HKDF output too long");
    let key = HmacKey::new(prk);
    let mut t = [0u8; 32];
    let mut written = 0;
    let mut counter = 1u8;
    while written < okm.len() {
        let block = if counter == 1 {
            key.mac_parts(&[info, &[counter]])
        } else {
            key.mac_parts(&[&t, info, &[counter]])
        };
        let take = (okm.len() - written).min(32);
        okm[written..written + take].copy_from_slice(&block[..take]);
        t = block;
        written += take;
        counter += 1;
    }
}

/// One-call extract-then-expand.
pub fn derive(salt: &[u8], ikm: &[u8], info: &[u8], okm: &mut [u8]) {
    let prk = extract(salt, ikm);
    expand(&prk, info, okm);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// RFC 5869 Test Case 1.
    #[test]
    fn rfc5869_case_1() {
        let ikm = [0x0bu8; 22];
        let salt: Vec<u8> = (0x00..=0x0c).collect();
        let info: Vec<u8> = (0xf0..=0xf9).collect();
        let prk = extract(&salt, &ikm);
        assert_eq!(
            hex(&prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        );
        let mut okm = [0u8; 42];
        expand(&prk, &info, &mut okm);
        assert_eq!(
            hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf\
             34007208d5b887185865"
        );
    }

    /// RFC 5869 Test Case 3 (zero-length salt and info).
    #[test]
    fn rfc5869_case_3() {
        let ikm = [0x0bu8; 22];
        let mut okm = [0u8; 42];
        derive(&[], &ikm, &[], &mut okm);
        assert_eq!(
            hex(&okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d\
             9d201395faa4b61a96c8"
        );
    }

    #[test]
    fn different_info_different_keys() {
        let prk = extract(b"salt", b"secret");
        let mut a = [0u8; 32];
        let mut b = [0u8; 32];
        expand(&prk, b"context-a", &mut a);
        expand(&prk, b"context-b", &mut b);
        assert_ne!(a, b);
    }
}
