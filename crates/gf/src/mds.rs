//! Redundant generator matrices: `d′ × d` matrices in which **any** `d`
//! rows are linearly independent.
//!
//! §4.4(b) of the paper requires exactly this property so that a node can
//! decode its information from any `d` of the `d′` slices it was sent.
//! Two constructions are provided:
//!
//! * [`random_verified`] — a uniformly random matrix, with all `C(d′, d)`
//!   row-subsets checked for invertibility (retrying on the rare failure).
//!   Matches the paper's "random matrix of rank d" language and the
//!   randomized-network-coding result it cites (reference 18 there:
//!   random matrices have the property w.h.p.).
//! * [`randomized_cauchy`] — a Cauchy matrix with rows and columns scaled
//!   by random nonzero constants. Every square submatrix of a Cauchy
//!   matrix is invertible (Cauchy determinant formula), and nonzero
//!   row/column scaling preserves that, so the property holds
//!   *deterministically* — used when `C(d′, d)` is too large to verify.

use rand::Rng;

use crate::field::Field;
use crate::matrix::Matrix;

/// Upper bound on `C(d′, d)` beyond which [`generator`] switches from
/// verified-random to randomized-Cauchy construction.
const VERIFY_LIMIT: u64 = 4096;

/// Number of `d`-subsets of `d′` rows, saturating.
fn binomial(n: usize, k: usize) -> u64 {
    let k = k.min(n - k);
    let mut acc: u64 = 1;
    for i in 0..k {
        acc = acc.saturating_mul((n - i) as u64) / (i as u64 + 1);
        if acc > u64::MAX / (n as u64 + 1) {
            return u64::MAX;
        }
    }
    acc
}

/// Visit every `k`-subset of `0..n` (lexicographic), aborting early if the
/// callback returns `false`.
fn for_each_subset(n: usize, k: usize, mut f: impl FnMut(&[usize]) -> bool) -> bool {
    let mut idx: Vec<usize> = (0..k).collect();
    loop {
        if !f(&idx) {
            return false;
        }
        // Advance to next combination.
        let mut i = k;
        loop {
            if i == 0 {
                return true;
            }
            i -= 1;
            if idx[i] != i + n - k {
                break;
            }
            if i == 0 {
                return true;
            }
        }
        idx[i] += 1;
        for j in i + 1..k {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

/// Check that every `d × d` row-submatrix of `m` is invertible.
pub fn all_row_subsets_invertible<F: Field>(m: &Matrix<F>) -> bool {
    let (dp, d) = (m.nrows(), m.ncols());
    if dp < d {
        return false;
    }
    for_each_subset(dp, d, |rows| m.select_rows(rows).is_invertible())
}

/// Random `d′ × d` matrix with the any-`d`-rows-invertible property,
/// verified exhaustively; retries until one is found.
///
/// # Panics
/// Panics if `d′ < d` or if `C(d′, d)` exceeds the verification budget
/// (use [`randomized_cauchy`] or [`generator`] instead).
pub fn random_verified<F: Field, R: Rng + ?Sized>(
    d_prime: usize,
    d: usize,
    rng: &mut R,
) -> Matrix<F> {
    assert!(d_prime >= d, "d' must be >= d");
    assert!(
        binomial(d_prime, d) <= VERIFY_LIMIT,
        "too many subsets to verify; use randomized_cauchy"
    );
    loop {
        let m = Matrix::random(d_prime, d, rng);
        if all_row_subsets_invertible(&m) {
            return m;
        }
    }
}

/// Randomized Cauchy `d′ × d` matrix: provably any-`d`-rows invertible.
///
/// `C[i][j] = r_i · s_j / (x_i + y_j)` with distinct `x_i`, `y_j` drawn
/// from disjoint ranges of the field and random nonzero `r_i`, `s_j`.
///
/// # Panics
/// Panics if `d′ + d` exceeds the field order (cannot pick disjoint
/// evaluation points).
pub fn randomized_cauchy<F: Field, R: Rng + ?Sized>(
    d_prime: usize,
    d: usize,
    rng: &mut R,
) -> Matrix<F> {
    assert!(d_prime >= d, "d' must be >= d");
    assert!(
        (d_prime + d) as u64 <= F::ORDER,
        "field too small for Cauchy construction"
    );
    let xs: Vec<F> = (0..d_prime as u64).map(F::from_u64).collect();
    let ys: Vec<F> = (d_prime as u64..(d_prime + d) as u64)
        .map(F::from_u64)
        .collect();
    let r: Vec<F> = (0..d_prime).map(|_| F::random_nonzero(rng)).collect();
    let s: Vec<F> = (0..d).map(|_| F::random_nonzero(rng)).collect();
    let mut m = Matrix::zero(d_prime, d);
    for i in 0..d_prime {
        for j in 0..d {
            let denom = xs[i].add(ys[j]);
            debug_assert!(!denom.is_zero(), "Cauchy points collide");
            m.set(i, j, r[i].mul(s[j]).div(denom));
        }
    }
    m
}

/// Produce a `d′ × d` generator with the any-`d`-rows property, choosing
/// the construction automatically:
/// verified-random when cheap to check, randomized Cauchy otherwise.
pub fn generator<F: Field, R: Rng + ?Sized>(d_prime: usize, d: usize, rng: &mut R) -> Matrix<F> {
    assert!(d >= 1, "d must be >= 1");
    assert!(d_prime >= d, "d' must be >= d");
    if d_prime == d {
        return Matrix::random_invertible(d, rng);
    }
    if binomial(d_prime, d) <= VERIFY_LIMIT {
        random_verified(d_prime, d, rng)
    } else {
        randomized_cauchy(d_prime, d, rng)
    }
}

/// Produce a **super-regular** `d′ × d` generator: *every* square
/// submatrix (any rows × any columns) is invertible, not just full
/// `d`-row selections.
///
/// This is the generator `slicing-codec`'s `encode` uses, because
/// pi-security (Lemma 5.1) needs the system seen by an attacker holding
/// any `m < d` slices to remain underdetermined *for every choice of
/// fixed message components* — which is exactly the statement that every
/// `m × m` submatrix of the observed rows is invertible. Randomized
/// Cauchy matrices have this property deterministically (the Cauchy
/// determinant is a product of nonzero factors, and row/column scaling
/// by nonzero constants preserves it).
pub fn strong_generator<F: Field, R: Rng + ?Sized>(
    d_prime: usize,
    d: usize,
    rng: &mut R,
) -> Matrix<F> {
    assert!(d >= 1, "d must be >= 1");
    assert!(d_prime >= d, "d' must be >= d");
    randomized_cauchy(d_prime, d, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Gf256, Gf65536};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn binomial_values() {
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(10, 3), 120);
        assert_eq!(binomial(6, 6), 1);
        assert_eq!(binomial(8, 1), 8);
    }

    #[test]
    fn subset_enumeration_counts() {
        let mut count = 0;
        for_each_subset(6, 3, |_| {
            count += 1;
            true
        });
        assert_eq!(count, 20);
    }

    #[test]
    fn random_verified_has_property() {
        let mut rng = rng();
        for (dp, d) in [(3, 2), (5, 3), (6, 2), (4, 4)] {
            let m = random_verified::<Gf256, _>(dp, d, &mut rng);
            assert!(all_row_subsets_invertible(&m));
        }
    }

    #[test]
    fn cauchy_has_property() {
        let mut rng = rng();
        for (dp, d) in [(3, 2), (6, 3), (9, 4), (12, 2)] {
            let m = randomized_cauchy::<Gf256, _>(dp, d, &mut rng);
            assert!(all_row_subsets_invertible(&m), "failed at ({dp},{d})");
        }
    }

    #[test]
    fn cauchy_works_in_gf65536() {
        let mut rng = rng();
        let m = randomized_cauchy::<Gf65536, _>(8, 3, &mut rng);
        assert!(all_row_subsets_invertible(&m));
    }

    #[test]
    fn verified_random_works_in_gf65536() {
        // Exercises the whole verification loop (rank via Gaussian
        // elimination) through Gf65536's kernel-backed bulk hooks.
        let mut rng = rng();
        for (dp, d) in [(3usize, 2usize), (5, 3), (4, 4)] {
            let m = random_verified::<Gf65536, _>(dp, d, &mut rng);
            assert!(all_row_subsets_invertible(&m), "failed at ({dp},{d})");
        }
    }

    #[test]
    fn generator_square_case_is_invertible() {
        let mut rng = rng();
        let m = generator::<Gf256, _>(4, 4, &mut rng);
        assert!(m.is_invertible());
    }

    #[test]
    fn generator_large_dims_uses_cauchy() {
        let mut rng = rng();
        // C(40, 20) is astronomically large; must not try to verify.
        let m = generator::<Gf256, _>(40, 20, &mut rng);
        assert_eq!(m.nrows(), 40);
        assert_eq!(m.ncols(), 20);
        // Spot-check a handful of random subsets.
        use rand::seq::SliceRandom;
        for _ in 0..16 {
            let mut rows: Vec<usize> = (0..40).collect();
            rows.shuffle(&mut rng);
            rows.truncate(20);
            assert!(m.select_rows(&rows).is_invertible());
        }
    }

    #[test]
    #[should_panic(expected = "d' must be >= d")]
    fn rejects_dprime_below_d() {
        let mut rng = rng();
        let _ = generator::<Gf256, _>(2, 3, &mut rng);
    }

    /// Super-regularity: every square submatrix (rows × columns) of the
    /// strong generator is invertible.
    #[test]
    fn strong_generator_every_square_submatrix_invertible() {
        let mut rng = rng();
        for (dp, d) in [(3usize, 3usize), (4, 3), (5, 2), (4, 4)] {
            let g = strong_generator::<Gf256, _>(dp, d, &mut rng);
            for k in 1..=d {
                let ok = for_each_subset(dp, k, |rows| {
                    for_each_subset(d, k, |cols| {
                        let sub = g.select_rows(rows);
                        // Select columns via transpose + select_rows.
                        let subsub = sub.transpose().select_rows(cols);
                        subsub.is_invertible()
                    })
                });
                assert!(ok, "singular {k}x{k} submatrix at ({dp},{d})");
            }
        }
    }
}
