//! Constant-space at-most-once delivery guards, shared by the relay's
//! receiver flows and the session layer's endpoints.

/// Compact at-most-once delivery guard: a watermark plus a 1024-seq
/// bitmap window above it, IPsec-anti-replay style. Seqs below the
/// watermark count as delivered, so replays of any age are rejected in
/// O(1) and constant space — per-seq gather state can be reaped without
/// reopening duplicate delivery.
#[derive(Clone, Debug, Default)]
pub(crate) struct ReplayGuard {
    base: u32,
    bits: [u64; ReplayGuard::WORDS],
}

impl ReplayGuard {
    pub(crate) const WORDS: usize = 16;
    pub(crate) const WINDOW: u32 = (Self::WORDS * 64) as u32;

    /// Whether `seq` was (or must be assumed) already delivered.
    pub(crate) fn contains(&self, seq: u32) -> bool {
        if seq < self.base {
            return true;
        }
        let off = seq - self.base;
        if off >= Self::WINDOW {
            return false;
        }
        (self.bits[(off / 64) as usize] >> (off % 64)) & 1 == 1
    }

    /// Record `seq` as delivered, sliding the window forward as needed.
    pub(crate) fn insert(&mut self, seq: u32) {
        if seq < self.base {
            return;
        }
        let mut off = seq - self.base;
        if off >= Self::WINDOW {
            self.slide(off - Self::WINDOW + 1);
            off = Self::WINDOW - 1;
        }
        self.bits[(off / 64) as usize] |= 1 << (off % 64);
    }

    fn slide(&mut self, shift: u32) {
        self.base = self.base.saturating_add(shift);
        if shift >= Self::WINDOW {
            self.bits = [0; Self::WORDS];
            return;
        }
        let word_shift = (shift / 64) as usize;
        let bit_shift = shift % 64;
        for i in 0..Self::WORDS {
            let lo = self.bits.get(i + word_shift).copied().unwrap_or(0);
            let hi = self.bits.get(i + word_shift + 1).copied().unwrap_or(0);
            self.bits[i] = if bit_shift == 0 {
                lo
            } else {
                (lo >> bit_shift) | (hi << (64 - bit_shift))
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_guard_window_semantics() {
        let mut g = ReplayGuard::default();
        assert!(!g.contains(0));
        g.insert(0);
        assert!(g.contains(0));
        assert!(!g.contains(1));
        // Reorder within the window.
        g.insert(10);
        g.insert(5);
        assert!(g.contains(5) && g.contains(10) && !g.contains(6));
        // Slide far forward: old seqs fall below the watermark and count
        // as delivered; in-window tracking keeps working.
        g.insert(5_000);
        assert!(g.contains(0) && g.contains(6), "below watermark = delivered");
        assert!(g.contains(5_000));
        assert!(!g.contains(4_999) || 4_999 < 5_000 - ReplayGuard::WINDOW + 1);
        assert!(!g.contains(5_001));
        // Word-aligned and unaligned slides.
        g.insert(5_064);
        g.insert(5_100);
        assert!(g.contains(5_064) && g.contains(5_100) && !g.contains(5_099));
    }
}
