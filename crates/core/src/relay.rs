//! The relay state machine: the sans-IO equivalent of the paper's
//! "overlay daemon" (§7.1).
//!
//! A relay maintains a hash table keyed on cleartext flow-ids. For each
//! flow it gathers its own setup slices, decodes its per-node information
//! `I_x`, forwards the remaining slices per the slice-map (stripping one
//! per-hop transform layer, replacing consumed slices with padding), and
//! then relays data slices per the data-map or by network re-coding.
//! If the receiver flag is set, it additionally decodes and decrypts data
//! messages — while still forwarding downstream so that its neighbours
//! cannot tell it is the destination.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use slicing_codec::{coder, recombine, InfoSlice};
use slicing_crypto::aead;
use slicing_graph::info::NodeInfo;
use slicing_graph::packets::SendInstr;
use slicing_graph::OverlayAddr;
use slicing_wire::{crc, FlowId, Packet, PacketHeader, PacketKind};

use crate::time::Tick;

/// Tunable relay behaviour.
#[derive(Clone, Copy, Debug)]
pub struct RelayConfig {
    /// Flush a setup gather after this long even if parents are missing.
    pub setup_flush_ms: u64,
    /// Flush a data gather after this long even if parents are missing.
    pub data_flush_ms: u64,
    /// Evict idle flows after this long (the daemon's GC, §7.1).
    pub flow_ttl_ms: u64,
    /// Maximum data packets buffered for a not-yet-established flow.
    pub max_pending_data: usize,
    /// Maximum concurrently tracked flows (resource-exhaustion guard).
    pub max_flows: usize,
}

impl Default for RelayConfig {
    fn default() -> Self {
        RelayConfig {
            setup_flush_ms: 2_000,
            data_flush_ms: 1_000,
            flow_ttl_ms: 120_000,
            max_pending_data: 64,
            max_flows: 4_096,
        }
    }
}

/// A data message decoded and decrypted by the destination.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReceivedData {
    /// The flow it arrived on.
    pub flow: FlowId,
    /// Message sequence number.
    pub seq: u32,
    /// Decrypted application payload.
    pub plaintext: Vec<u8>,
}

/// Counters exposed for tests and measurements.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RelayStats {
    /// Packets accepted.
    pub packets_in: u64,
    /// Packets emitted.
    pub packets_out: u64,
    /// Flows successfully established (own info decoded).
    pub flows_established: u64,
    /// Setup gathers that failed to decode.
    pub setup_failures: u64,
    /// Data messages decoded as the destination.
    pub messages_received: u64,
    /// Packets dropped (unknown flow, malformed, over limits).
    pub drops: u64,
    /// Flows evicted by GC.
    pub flows_evicted: u64,
}

/// Everything a single `handle_packet`/`poll` call wants to tell the
/// driver.
#[derive(Clone, Debug, Default)]
pub struct RelayOutput {
    /// Packets to transmit.
    pub sends: Vec<SendInstr>,
    /// Messages decoded by this node as the destination.
    pub received: Vec<ReceivedData>,
    /// Set when this call completed a flow establishment; carries the
    /// receiver flag (true = this node is the flow's destination).
    pub established: Option<bool>,
}

impl RelayOutput {
    fn merge(&mut self, other: RelayOutput) {
        self.sends.extend(other.sends);
        self.received.extend(other.received);
        self.established = self.established.or(other.established);
    }
}

/// Per-(direction, seq) data-slice gathering.
#[derive(Clone, Debug)]
struct DataGather {
    first_seen: Tick,
    /// Parents (or children, for reverse flows) heard from.
    heard: HashSet<OverlayAddr>,
    /// CRC-valid slices received, tagged with the neighbour that sent
    /// them (Map-mode forwarding selects by origin).
    slices: Vec<(OverlayAddr, InfoSlice)>,
    /// Already flushed downstream (late packets are ignored).
    flushed: bool,
    /// Already delivered to the application (destination only).
    delivered: bool,
}

impl DataGather {
    fn new(now: Tick) -> Self {
        DataGather {
            first_seen: now,
            heard: HashSet::new(),
            slices: Vec::new(),
            flushed: false,
            delivered: false,
        }
    }
}

/// Setup-phase gathering: the packets received so far, by parent.
#[derive(Clone, Debug)]
struct SetupGather {
    first_seen: Tick,
    packets: HashMap<OverlayAddr, Packet>,
    flushed: bool,
}

/// An established flow.
#[derive(Clone, Debug)]
struct ActiveFlow {
    info: NodeInfo,
    last_activity: Tick,
    /// Forward data gathers by seq.
    data: HashMap<u32, DataGather>,
    /// Reverse data gathers by seq.
    reverse: HashMap<u32, DataGather>,
}

#[derive(Clone, Debug)]
enum FlowState {
    Gathering(SetupGather, Vec<(OverlayAddr, Packet)>),
    Active(ActiveFlow),
    /// Establishment failed; swallow traffic until GC.
    Dead(Tick),
}

/// The relay node state machine. One instance per overlay node; handles
/// any number of concurrent flows.
pub struct RelayNode {
    addr: OverlayAddr,
    flows: HashMap<FlowId, FlowState>,
    /// Reverse flow-id → forward flow-id.
    reverse_index: HashMap<FlowId, FlowId>,
    config: RelayConfig,
    stats: RelayStats,
    rng: StdRng,
}

impl RelayNode {
    /// Create a relay for `addr` with a deterministic RNG seed.
    pub fn new(addr: OverlayAddr, seed: u64) -> Self {
        Self::with_config(addr, seed, RelayConfig::default())
    }

    /// Create with explicit configuration.
    pub fn with_config(addr: OverlayAddr, seed: u64, config: RelayConfig) -> Self {
        RelayNode {
            addr,
            flows: HashMap::new(),
            reverse_index: HashMap::new(),
            config,
            stats: RelayStats::default(),
            rng: StdRng::seed_from_u64(seed ^ addr.0),
        }
    }

    /// This node's address.
    pub fn addr(&self) -> OverlayAddr {
        self.addr
    }

    /// Counters.
    pub fn stats(&self) -> RelayStats {
        self.stats
    }

    /// Number of live flows in the table.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// The decoded info of an established flow, if any (used by drivers
    /// to e.g. discover that this node is a destination).
    pub fn flow_info(&self, flow: FlowId) -> Option<&NodeInfo> {
        match self.flows.get(&flow) {
            Some(FlowState::Active(a)) => Some(&a.info),
            _ => None,
        }
    }

    /// Feed one packet into the state machine.
    pub fn handle_packet(&mut self, now: Tick, from: OverlayAddr, packet: &Packet) -> RelayOutput {
        self.stats.packets_in += 1;
        match packet.header.kind {
            PacketKind::Setup => self.handle_setup(now, from, packet),
            PacketKind::Data => self.handle_data(now, from, packet),
        }
    }

    /// Drive timeouts: flush overdue gathers, evict stale flows.
    pub fn poll(&mut self, now: Tick) -> RelayOutput {
        let mut out = RelayOutput::default();
        let flow_ids: Vec<FlowId> = self.flows.keys().copied().collect();
        for flow in flow_ids {
            // Overdue setup gathers.
            let flush_setup = matches!(
                self.flows.get(&flow),
                Some(FlowState::Gathering(g, _))
                    if !g.flushed && now.since(g.first_seen) >= self.config.setup_flush_ms
            );
            if flush_setup {
                out.merge(self.try_establish(now, flow, true));
            }
            // Overdue data gathers.
            if let Some(FlowState::Active(_)) = self.flows.get(&flow) {
                out.merge(self.flush_overdue_data(now, flow));
            }
        }
        self.gc(now);
        out
    }

    /// Garbage-collect stale flows (the daemon's periodic GC, §7.1).
    fn gc(&mut self, now: Tick) {
        let ttl = self.config.flow_ttl_ms;
        let mut evict = Vec::new();
        for (&flow, state) in &self.flows {
            let stale = match state {
                FlowState::Gathering(g, _) => now.since(g.first_seen) >= ttl,
                FlowState::Active(a) => now.since(a.last_activity) >= ttl,
                FlowState::Dead(t) => now.since(*t) >= ttl,
            };
            if stale {
                evict.push(flow);
            }
        }
        for flow in evict {
            if let Some(FlowState::Active(a)) = self.flows.remove(&flow) {
                self.reverse_index.remove(&a.info.reverse_flow_id);
            }
            self.stats.flows_evicted += 1;
        }
    }

    // ---- setup phase -----------------------------------------------------

    fn handle_setup(&mut self, now: Tick, from: OverlayAddr, packet: &Packet) -> RelayOutput {
        let flow = packet.header.flow_id;
        let at_capacity = self.flows.len() >= self.config.max_flows;
        match self.flows.entry(flow) {
            Entry::Occupied(mut e) => match e.get_mut() {
                FlowState::Gathering(g, _) => {
                    if g.flushed {
                        self.stats.drops += 1;
                        return RelayOutput::default();
                    }
                    g.packets.insert(from, packet.clone());
                }
                _ => {
                    // Duplicate setup for an established flow: ignore.
                    self.stats.drops += 1;
                    return RelayOutput::default();
                }
            },
            Entry::Vacant(v) => {
                if at_capacity {
                    self.stats.drops += 1;
                    return RelayOutput::default();
                }
                let mut g = SetupGather {
                    first_seen: now,
                    packets: HashMap::new(),
                    flushed: false,
                };
                g.packets.insert(from, packet.clone());
                v.insert(FlowState::Gathering(g, Vec::new()));
            }
        }
        // Try to establish once we *could* have enough: we don't know d'
        // until decode succeeds, so we try whenever ≥ d distinct parents
        // have delivered; `try_establish` without `force` only forwards
        // when the full parent set has arrived.
        let d = packet.header.d as usize;
        let have = match self.flows.get(&flow) {
            Some(FlowState::Gathering(g, _)) => g.packets.len(),
            _ => 0,
        };
        if have >= d {
            self.try_establish(now, flow, false)
        } else {
            RelayOutput::default()
        }
    }

    /// Attempt to decode our info and (once the parent set is complete, or
    /// on `force`) forward downstream.
    fn try_establish(&mut self, now: Tick, flow: FlowId, force: bool) -> RelayOutput {
        let Some(FlowState::Gathering(gather, _)) = self.flows.get(&flow) else {
            return RelayOutput::default();
        };
        let first_seen = gather.first_seen;
        let packets = gather.packets.clone();
        let Some(first) = packets.values().next() else {
            return RelayOutput::default();
        };
        let d = first.header.d as usize;
        let slot_len = first.header.slot_len as usize;
        let block_len = slot_len - d - 4;

        // Decode our own info from the slot-0 slices.
        let own: Vec<InfoSlice> = packets
            .values()
            .filter_map(|p| parse_clean_slot(d, block_len, &p.slots[0]))
            .collect();
        let Ok(bytes) = coder::decode(&own, d) else {
            if force {
                self.stats.setup_failures += 1;
                self.flows.insert(flow, FlowState::Dead(first_seen));
            }
            return RelayOutput::default();
        };
        let Ok(info) = NodeInfo::decode(&bytes) else {
            self.stats.setup_failures += 1;
            self.flows.insert(flow, FlowState::Dead(first_seen));
            return RelayOutput::default();
        };

        let dp = info.d_prime as usize;
        if !force && packets.len() < dp {
            // Parent set incomplete; wait for the rest (or the timeout).
            return RelayOutput::default();
        }

        let mut out = RelayOutput {
            established: Some(info.receiver),
            ..RelayOutput::default()
        };
        out.sends = self.forward_setup(&info, &packets);
        self.stats.packets_out += out.sends.len() as u64;
        self.stats.flows_established += 1;

        // Transition to Active and replay any buffered early data.
        let pending = match self.flows.remove(&flow) {
            Some(FlowState::Gathering(_, pending)) => pending,
            _ => Vec::new(),
        };
        self.reverse_index.insert(info.reverse_flow_id, flow);
        self.flows.insert(
            flow,
            FlowState::Active(ActiveFlow {
                info,
                last_activity: now,
                data: HashMap::new(),
                reverse: HashMap::new(),
            }),
        );
        for (from, p) in pending {
            out.merge(self.handle_data(now, from, &p));
        }
        out
    }

    /// Build the downstream setup packets per the slice-map (§4.3.6).
    fn forward_setup(
        &mut self,
        info: &NodeInfo,
        packets: &HashMap<OverlayAddr, Packet>,
    ) -> Vec<SendInstr> {
        if info.children.is_empty() {
            return Vec::new();
        }
        let slots_n = info.slots as usize;
        let slot_len = packets
            .values()
            .next()
            .map(|p| p.header.slot_len as usize)
            .unwrap_or(0);
        let mut sends = Vec::with_capacity(info.children.len());
        for (j, &(child_addr, child_flow)) in info.children.iter().enumerate() {
            let mut slots: Vec<Vec<u8>> = Vec::with_capacity(slots_n);
            for s in 0..slots_n {
                let entry = info.slice_map[j][s];
                let slot = match entry {
                    Some(parent_idx) => {
                        let parent_addr = info.parents[parent_idx as usize].0;
                        match packets.get(&parent_addr) {
                            Some(p) => {
                                // Forward incoming slot s+1, stripping our
                                // transform layer (§9.4(a)).
                                let mut bytes = p.slots[s + 1].clone();
                                info.transform.unapply(&mut bytes);
                                bytes
                            }
                            None => random_slot(&mut self.rng, slot_len),
                        }
                    }
                    None => random_slot(&mut self.rng, slot_len),
                };
                slots.push(slot);
            }
            let packet = Packet::new(
                PacketHeader {
                    kind: PacketKind::Setup,
                    flow_id: child_flow,
                    seq: 0,
                    d: info.d,
                    slot_count: slots_n as u8,
                    slot_len: slot_len as u16,
                },
                slots,
            );
            sends.push(SendInstr {
                from: self.addr,
                to: child_addr,
                packet,
            });
        }
        sends
    }

    // ---- data phase ------------------------------------------------------

    fn handle_data(&mut self, now: Tick, from: OverlayAddr, packet: &Packet) -> RelayOutput {
        let flow = packet.header.flow_id;
        // Reverse traffic? Map to the forward flow.
        if let Some(&fwd) = self.reverse_index.get(&flow) {
            return self.accumulate_data(now, fwd, from, packet, true);
        }
        match self.flows.get_mut(&flow) {
            Some(FlowState::Active(_)) => self.accumulate_data(now, flow, from, packet, false),
            Some(FlowState::Gathering(_, pending)) => {
                // Data raced ahead of setup; buffer a bounded amount.
                if pending.len() < self.config.max_pending_data {
                    pending.push((from, packet.clone()));
                } else {
                    self.stats.drops += 1;
                }
                RelayOutput::default()
            }
            Some(FlowState::Dead(_)) | None => {
                self.stats.drops += 1;
                RelayOutput::default()
            }
        }
    }

    fn accumulate_data(
        &mut self,
        now: Tick,
        flow: FlowId,
        from: OverlayAddr,
        packet: &Packet,
        is_reverse: bool,
    ) -> RelayOutput {
        let Some(FlowState::Active(active)) = self.flows.get_mut(&flow) else {
            self.stats.drops += 1;
            return RelayOutput::default();
        };
        active.last_activity = now;
        let info = active.info.clone();
        let d = info.d as usize;
        let seq = packet.header.seq;
        // Only the flow's own neighbours may contribute slices: parents
        // on the forward path, children on the reverse. Anything else
        // could poison the gather's shape or inflate the completeness
        // count toward a premature flush.
        let legitimate = if is_reverse {
            info.children.iter().any(|&(a, _)| a == from)
        } else {
            info.parents.iter().any(|&(a, _)| a == from)
        };
        if !legitimate {
            self.stats.drops += 1;
            return RelayOutput::default();
        }
        let gathers = if is_reverse {
            &mut active.reverse
        } else {
            &mut active.data
        };
        let gather = gathers.entry(seq).or_insert_with(|| DataGather::new(now));
        if gather.flushed && gather.delivered {
            self.stats.drops += 1;
            return RelayOutput::default();
        }
        if !gather.heard.insert(from) {
            // Duplicate from the same neighbour.
            self.stats.drops += 1;
            return RelayOutput::default();
        }
        for slot in &packet.slots {
            let slot_len = slot.len();
            if slot_len < d + 4 {
                continue;
            }
            if let Some(slice) = parse_clean_slot(d, slot_len - d - 4, slot) {
                // One coded shape per gather: a CRC-valid slot of a
                // different length can be neither combined nor decoded
                // with the rest, and must not reach the recombination
                // kernels (whose shape check would panic the relay).
                let consistent = gather
                    .slices
                    .first()
                    .is_none_or(|(_, s)| s.payload.len() == slice.payload.len());
                if consistent {
                    gather.slices.push((from, slice));
                } else {
                    self.stats.drops += 1;
                }
            }
        }
        // Expected senders: parents for forward flows, children for
        // reverse flows.
        let expected = if is_reverse {
            info.children.len()
        } else {
            info.parents.len()
        };
        let complete = gather.heard.len() >= expected;
        if complete {
            self.flush_data(now, flow, seq, is_reverse)
        } else {
            RelayOutput::default()
        }
    }

    /// Forward (and, at the destination, deliver) a gathered data message.
    fn flush_data(&mut self, _now: Tick, flow: FlowId, seq: u32, is_reverse: bool) -> RelayOutput {
        let Some(FlowState::Active(active)) = self.flows.get_mut(&flow) else {
            return RelayOutput::default();
        };
        let info = active.info.clone();
        let d = info.d as usize;
        let gathers = if is_reverse {
            &mut active.reverse
        } else {
            &mut active.data
        };
        let Some(gather) = gathers.get_mut(&seq) else {
            return RelayOutput::default();
        };
        let mut out = RelayOutput::default();

        // Destination delivery (forward direction only).
        let bare: Vec<InfoSlice> = gather.slices.iter().map(|(_, s)| s.clone()).collect();
        if info.receiver && !is_reverse && !gather.delivered && bare.len() >= d {
            if let Ok(sealed) = coder::decode(&bare, d) {
                if let Ok(plaintext) = aead::open(&info.secret_key, &sealed) {
                    gather.delivered = true;
                    self.stats.messages_received += 1;
                    out.received.push(ReceivedData {
                        flow,
                        seq,
                        plaintext,
                    });
                }
            }
        }

        if gather.flushed {
            return out;
        }
        let tagged = std::mem::take(&mut gather.slices);
        gather.flushed = true;

        if tagged.is_empty() {
            return out;
        }
        let slices: Vec<InfoSlice> = tagged.iter().map(|(_, s)| s.clone()).collect();

        // Next hops: children forward, parents reverse.
        let next_hops: Vec<(OverlayAddr, FlowId)> = if is_reverse {
            info.parents.clone()
        } else {
            info.children.clone()
        };
        if next_hops.is_empty() {
            return out;
        }

        // Decide per hop whether the designated parent's slice survives;
        // every shortfall is regenerated in one batch through the shared
        // bulk kernels (§4.4.1 applied continuously in Recode mode, which
        // also defeats pattern tracking, §9.4(a)).
        let picks: Vec<Option<InfoSlice>> = next_hops
            .iter()
            .enumerate()
            .map(|(j, _)| {
                if info.recode || is_reverse {
                    // Fresh random combination for every neighbour.
                    return None;
                }
                // Static data-map: pipe the designated parent's slice.
                info.data_map
                    .get(j)
                    .and_then(|&p| info.parents.get(p as usize))
                    .and_then(|&(want, _)| {
                        tagged.iter().find(|(o, _)| *o == want).map(|(_, s)| s.clone())
                    })
            })
            .collect();
        let missing = picks.iter().filter(|p| p.is_none()).count();
        let mut regenerated = if missing > 0 {
            recombine::recombine_batch(&slices, missing, &mut self.rng)
        } else {
            Vec::new()
        }
        .into_iter();

        let slot_len = info.d as usize + slices[0].payload.len() + 4;
        for (&(addr, next_flow), pick) in next_hops.iter().zip(picks) {
            let slice =
                pick.unwrap_or_else(|| regenerated.next().expect("batched regeneration count"));
            let mut slot = slice.to_bytes();
            crc::append_crc(&mut slot);
            debug_assert_eq!(slot.len(), slot_len);
            let packet = Packet::new(
                PacketHeader {
                    kind: PacketKind::Data,
                    flow_id: next_flow,
                    seq,
                    d: info.d,
                    slot_count: 1,
                    slot_len: slot_len as u16,
                },
                vec![slot],
            );
            out.sends.push(SendInstr {
                from: self.addr,
                to: addr,
                packet,
            });
        }
        self.stats.packets_out += out.sends.len() as u64;
        out
    }

    /// Flush data gathers that have waited past the deadline.
    fn flush_overdue_data(&mut self, now: Tick, flow: FlowId) -> RelayOutput {
        let Some(FlowState::Active(active)) = self.flows.get(&flow) else {
            return RelayOutput::default();
        };
        let deadline = self.config.data_flush_ms;
        let overdue_fwd: Vec<u32> = active
            .data
            .iter()
            .filter(|(_, g)| !g.flushed && now.since(g.first_seen) >= deadline)
            .map(|(&s, _)| s)
            .collect();
        let overdue_rev: Vec<u32> = active
            .reverse
            .iter()
            .filter(|(_, g)| !g.flushed && now.since(g.first_seen) >= deadline)
            .map(|(&s, _)| s)
            .collect();
        let mut out = RelayOutput::default();
        for seq in overdue_fwd {
            out.merge(self.flush_data(now, flow, seq, false));
        }
        for seq in overdue_rev {
            out.merge(self.flush_data(now, flow, seq, true));
        }
        out
    }

    /// Send application data back toward the source on the reverse path
    /// (§4.3.7). Only meaningful on a flow where this node is the
    /// receiver.
    ///
    /// Returns `None` if the flow is unknown, not established, or this
    /// node is not its destination.
    pub fn send_reverse(
        &mut self,
        now: Tick,
        flow: FlowId,
        seq: u32,
        plaintext: &[u8],
    ) -> Option<Vec<SendInstr>> {
        let Some(FlowState::Active(active)) = self.flows.get_mut(&flow) else {
            return None;
        };
        if !active.info.receiver {
            return None;
        }
        active.last_activity = now;
        let info = active.info.clone();
        let d = info.d as usize;
        let dp = info.d_prime as usize;
        let sealed = aead::seal(&info.secret_key, plaintext, &mut self.rng);
        let coded = coder::encode(&sealed, d, dp, &mut self.rng);
        let slot_len = d + coded.block_len + 4;
        let mut sends = Vec::with_capacity(info.parents.len());
        for (k, &(parent_addr, parent_rev_flow)) in info.parents.iter().enumerate() {
            let mut slot = coded.slices[k % coded.slices.len()].to_bytes();
            crc::append_crc(&mut slot);
            let packet = Packet::new(
                PacketHeader {
                    kind: PacketKind::Data,
                    flow_id: parent_rev_flow,
                    seq,
                    d: info.d,
                    slot_count: 1,
                    slot_len: slot_len as u16,
                },
                vec![slot],
            );
            sends.push(SendInstr {
                from: self.addr,
                to: parent_addr,
                packet,
            });
        }
        self.stats.packets_out += sends.len() as u64;
        Some(sends)
    }
}

/// Parse a clean (CRC-terminated) slot into a slice; `None` for padding
/// or corruption.
fn parse_clean_slot(d: usize, block_len: usize, slot: &[u8]) -> Option<InfoSlice> {
    let payload = crc::check_crc(slot)?;
    InfoSlice::from_bytes(d, block_len, payload)
}

fn random_slot<R: Rng + ?Sized>(rng: &mut R, len: usize) -> Vec<u8> {
    let mut v = vec![0u8; len];
    rng.fill_bytes(&mut v);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_data_flow_dropped() {
        let mut relay = RelayNode::new(OverlayAddr(1), 7);
        let packet = Packet::new(
            PacketHeader {
                kind: PacketKind::Data,
                flow_id: FlowId(99),
                seq: 0,
                d: 2,
                slot_count: 1,
                slot_len: 10,
            },
            vec![vec![0u8; 10]],
        );
        let out = relay.handle_packet(Tick(0), OverlayAddr(2), &packet);
        assert!(out.sends.is_empty());
        assert_eq!(relay.stats().drops, 1);
    }

    #[test]
    fn flow_limit_enforced() {
        let config = RelayConfig {
            max_flows: 2,
            ..RelayConfig::default()
        };
        let mut relay = RelayNode::with_config(OverlayAddr(1), 7, config);
        for i in 0..5u64 {
            let packet = Packet::new(
                PacketHeader {
                    kind: PacketKind::Setup,
                    flow_id: FlowId(100 + i),
                    seq: 0,
                    d: 2,
                    slot_count: 2,
                    slot_len: 16,
                },
                vec![vec![0u8; 16], vec![0u8; 16]],
            );
            relay.handle_packet(Tick(0), OverlayAddr(2), &packet);
        }
        assert_eq!(relay.flow_count(), 2);
        assert_eq!(relay.stats().drops, 3);
    }

    #[test]
    fn garbage_setup_flow_dies_on_timeout() {
        let mut relay = RelayNode::new(OverlayAddr(1), 7);
        // Two garbage packets from two "parents": enough to try decoding,
        // which fails (slots are noise, CRC rejects them all).
        for p in 0..2u64 {
            let packet = Packet::new(
                PacketHeader {
                    kind: PacketKind::Setup,
                    flow_id: FlowId(5),
                    seq: 0,
                    d: 2,
                    slot_count: 2,
                    slot_len: 20,
                },
                vec![vec![p as u8; 20], vec![p as u8; 20]],
            );
            relay.handle_packet(Tick(0), OverlayAddr(10 + p), &packet);
        }
        // Nothing yet (decode failed quietly, waiting for more slices).
        assert_eq!(relay.stats().setup_failures, 0);
        // Timeout forces the decision.
        relay.poll(Tick(10_000));
        assert_eq!(relay.stats().setup_failures, 1);
    }

    #[test]
    fn gc_evicts_stale_flows() {
        let config = RelayConfig {
            flow_ttl_ms: 1_000,
            ..RelayConfig::default()
        };
        let mut relay = RelayNode::with_config(OverlayAddr(1), 7, config);
        let packet = Packet::new(
            PacketHeader {
                kind: PacketKind::Setup,
                flow_id: FlowId(5),
                seq: 0,
                d: 2,
                slot_count: 2,
                slot_len: 20,
            },
            vec![vec![1u8; 20], vec![2u8; 20]],
        );
        relay.handle_packet(Tick(0), OverlayAddr(2), &packet);
        assert_eq!(relay.flow_count(), 1);
        relay.poll(Tick(5_000));
        assert_eq!(relay.flow_count(), 0);
        assert_eq!(relay.stats().flows_evicted, 1);
    }
}
