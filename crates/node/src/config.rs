//! The `slicing-node` config file: schema, parser, printer.
//!
//! The format is a strict subset of TOML — `[section]` headers,
//! `key = value` lines with integer, float, quoted-string and
//! single-line string-array values, `#` comments — parsed by hand
//! because the build environment is offline (no serde/toml). Every
//! parse failure carries a line number and a typed reason so operators
//! (and the config test suite) can assert on *why* a file was
//! rejected, not just that it was.
//!
//! All addresses are loopback-only by construction: the daemon is a
//! research artifact for localhost fleets, and refusing non-loopback
//! listen/peer addresses in the parser keeps a stray config file from
//! opening sockets to the world.

use slicing_core::{RelayConfig, SessionConfig};
use slicing_overlay::UdpFaults;
use std::fmt;

/// Which planes a node hosts (comma list in the file: `"relay,dest"`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Roles {
    /// Forward slices for other people's flows.
    pub relay: bool,
    /// Terminate receiver flows with colocated destination sessions.
    pub dest: bool,
    /// Host a driver-facing session plane (source endpoints).
    pub session: bool,
}

/// Transport selection for the node's data plane.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TransportKind {
    /// Real UDP datagrams with delay-gradient congestion control.
    #[default]
    Udp,
    /// Length-framed TCP streams.
    Tcp,
}

/// UDP fault-injection profile (`[transport]` floats). Mirrors
/// [`UdpFaults`] but lives here so [`NodeConfig`] can derive
/// `PartialEq` for the parse/print round-trip tests.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FaultProfile {
    /// Drop probability in `[0, 1)`.
    pub loss: f64,
    /// Reorder probability in `[0, 1)`.
    pub reorder: f64,
    /// Duplication probability in `[0, 1)`.
    pub duplicate: f64,
}

impl FaultProfile {
    /// Convert to the overlay transport's fault struct.
    pub fn to_faults(self) -> UdpFaults {
        UdpFaults {
            loss: self.loss,
            reorder: self.reorder,
            duplicate: self.duplicate,
        }
    }
}

/// Everything one `slicing-node` process needs to come up.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeConfig {
    /// Data-plane listen port (the file says `"127.0.0.1:<port>"`).
    pub listen: u16,
    /// Metrics/health HTTP listen port (same loopback-only form).
    pub metrics_listen: u16,
    /// Hosted planes.
    pub roles: Roles,
    /// Relay-plane shard workers.
    pub relay_shards: usize,
    /// Session-plane shard workers.
    pub session_shards: usize,
    /// Whole-node session budget (session role only).
    pub max_sessions: usize,
    /// RNG seed for the node's engines.
    pub seed: u64,
    /// Known peer data ports (informational; the overlay is
    /// source-routed, so peers are learned from setup packets — the
    /// orchestrator records the fleet here for operators).
    pub peers: Vec<u16>,
    /// Data-plane transport.
    pub transport: TransportKind,
    /// UDP fault injection (ignored on TCP).
    pub faults: FaultProfile,
    /// Relay-plane tuning.
    pub relay: RelayConfig,
    /// Session/destination-plane tuning.
    pub session: SessionConfig,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            listen: 0,
            metrics_listen: 0,
            roles: Roles {
                relay: true,
                dest: false,
                session: false,
            },
            relay_shards: 2,
            session_shards: 2,
            max_sessions: 64,
            seed: 7,
            peers: Vec::new(),
            transport: TransportKind::Udp,
            faults: FaultProfile::default(),
            relay: RelayConfig::default(),
            session: SessionConfig::default(),
        }
    }
}

/// Why a config file was rejected. Line numbers are 1-based.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// The file could not be read at all.
    Io {
        /// Path we tried to read.
        path: String,
        /// The I/O error's display form.
        error: String,
    },
    /// A line is neither a comment, a section header nor `key = value`.
    Syntax {
        /// Offending line.
        line: usize,
    },
    /// A `[section]` header names no known section.
    UnknownSection {
        /// Offending line.
        line: usize,
        /// The header's name.
        section: String,
    },
    /// A key is not part of its section's schema (or appears before
    /// any section header).
    UnknownKey {
        /// Offending line.
        line: usize,
        /// The section it appeared in (empty = before any header).
        section: String,
        /// The key.
        key: String,
    },
    /// The same key was set twice in one section.
    DuplicateKey {
        /// Second occurrence's line.
        line: usize,
        /// The key.
        key: String,
    },
    /// A key's value failed to parse or failed validation.
    InvalidValue {
        /// Offending line.
        line: usize,
        /// The key.
        key: String,
        /// What was wrong.
        reason: String,
    },
    /// A required key was never set.
    Missing {
        /// The `section.key` path that must be present.
        key: String,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Io { path, error } => write!(f, "cannot read {path}: {error}"),
            ConfigError::Syntax { line } => write!(f, "line {line}: not a section or key = value"),
            ConfigError::UnknownSection { line, section } => {
                write!(f, "line {line}: unknown section [{section}]")
            }
            ConfigError::UnknownKey { line, section, key } => {
                write!(f, "line {line}: unknown key {key:?} in section [{section}]")
            }
            ConfigError::DuplicateKey { line, key } => {
                write!(f, "line {line}: duplicate key {key:?}")
            }
            ConfigError::InvalidValue { line, key, reason } => {
                write!(f, "line {line}: invalid value for {key:?}: {reason}")
            }
            ConfigError::Missing { key } => write!(f, "missing required key {key}"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Parse a loopback `"127.0.0.1:<port>"` address into its port.
fn parse_loopback(line: usize, key: &str, value: &str) -> Result<u16, ConfigError> {
    let invalid = |reason: &str| ConfigError::InvalidValue {
        line,
        key: key.to_string(),
        reason: reason.to_string(),
    };
    let (host, port) = value
        .rsplit_once(':')
        .ok_or_else(|| invalid("expected \"127.0.0.1:<port>\""))?;
    if host != "127.0.0.1" {
        return Err(invalid("only loopback (127.0.0.1) addresses are allowed"));
    }
    let port: u16 = port
        .parse()
        .map_err(|_| invalid("port is not a 16-bit integer"))?;
    if port == 0 {
        return Err(invalid("port 0 is reserved (the OS would pick one)"));
    }
    Ok(port)
}

/// Strip surrounding double quotes from a string value.
fn parse_quoted(line: usize, key: &str, value: &str) -> Result<String, ConfigError> {
    let inner = value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .ok_or_else(|| ConfigError::InvalidValue {
            line,
            key: key.to_string(),
            reason: "expected a double-quoted string".to_string(),
        })?;
    if inner.contains('"') {
        return Err(ConfigError::InvalidValue {
            line,
            key: key.to_string(),
            reason: "embedded quotes are not supported".to_string(),
        });
    }
    Ok(inner.to_string())
}

fn parse_u64(line: usize, key: &str, value: &str) -> Result<u64, ConfigError> {
    value.parse().map_err(|_| ConfigError::InvalidValue {
        line,
        key: key.to_string(),
        reason: "expected an unsigned integer".to_string(),
    })
}

fn parse_usize(line: usize, key: &str, value: &str) -> Result<usize, ConfigError> {
    value.parse().map_err(|_| ConfigError::InvalidValue {
        line,
        key: key.to_string(),
        reason: "expected an unsigned integer".to_string(),
    })
}

/// Parse a probability: a float in `[0, 1)`.
fn parse_prob(line: usize, key: &str, value: &str) -> Result<f64, ConfigError> {
    let v: f64 = value.parse().map_err(|_| ConfigError::InvalidValue {
        line,
        key: key.to_string(),
        reason: "expected a float".to_string(),
    })?;
    if !(0.0..1.0).contains(&v) {
        return Err(ConfigError::InvalidValue {
            line,
            key: key.to_string(),
            reason: format!("probability {v} outside [0, 1)"),
        });
    }
    Ok(v)
}

/// Parse a single-line string array: `["a", "b"]`.
fn parse_string_array(line: usize, key: &str, value: &str) -> Result<Vec<String>, ConfigError> {
    let invalid = |reason: &str| ConfigError::InvalidValue {
        line,
        key: key.to_string(),
        reason: reason.to_string(),
    };
    let inner = value
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or_else(|| invalid("expected a [\"...\", ...] array"))?
        .trim();
    if inner.is_empty() {
        return Ok(Vec::new());
    }
    inner
        .split(',')
        .map(|item| parse_quoted(line, key, item.trim()))
        .collect()
}

fn parse_roles(line: usize, value: &str) -> Result<Roles, ConfigError> {
    let invalid = |reason: String| ConfigError::InvalidValue {
        line,
        key: "roles".to_string(),
        reason,
    };
    let mut roles = Roles::default();
    for token in value.split(',') {
        match token.trim() {
            "relay" => roles.relay = true,
            "dest" => roles.dest = true,
            "session" => roles.session = true,
            other => {
                return Err(invalid(format!(
                    "unknown role {other:?} (expected relay, dest, session)"
                )))
            }
        }
    }
    if !(roles.relay || roles.dest || roles.session) {
        return Err(invalid("at least one role is required".to_string()));
    }
    if roles.dest && !roles.relay {
        return Err(invalid(
            "role \"dest\" requires \"relay\" (destination sessions terminate \
             receiver flows the relay plane establishes)"
                .to_string(),
        ));
    }
    Ok(roles)
}

impl NodeConfig {
    /// Parse a config document. Unset optional keys keep their
    /// defaults; `node.listen` and `metrics.listen` are required.
    pub fn parse(text: &str) -> Result<NodeConfig, ConfigError> {
        let mut cfg = NodeConfig::default();
        let mut section = String::new();
        let mut seen: Vec<(String, String)> = Vec::new();
        let mut have_listen = false;
        let mut have_metrics = false;

        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let trimmed = raw.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            if let Some(rest) = trimmed.strip_prefix('[') {
                let name = rest
                    .strip_suffix(']')
                    .ok_or(ConfigError::Syntax { line })?
                    .trim();
                match name {
                    "node" | "transport" | "metrics" | "relay" | "session" => {
                        section = name.to_string();
                    }
                    other => {
                        return Err(ConfigError::UnknownSection {
                            line,
                            section: other.to_string(),
                        })
                    }
                }
                continue;
            }
            let (key, value) = trimmed.split_once('=').ok_or(ConfigError::Syntax { line })?;
            let key = key.trim();
            let value = value.trim();
            if key.is_empty() || value.is_empty() {
                return Err(ConfigError::Syntax { line });
            }
            let slot = (section.clone(), key.to_string());
            if seen.contains(&slot) {
                return Err(ConfigError::DuplicateKey {
                    line,
                    key: key.to_string(),
                });
            }
            seen.push(slot);

            let unknown = || ConfigError::UnknownKey {
                line,
                section: section.clone(),
                key: key.to_string(),
            };
            match (section.as_str(), key) {
                ("node", "listen") => {
                    let s = parse_quoted(line, key, value)?;
                    cfg.listen = parse_loopback(line, key, &s)?;
                    have_listen = true;
                }
                ("node", "roles") => {
                    let s = parse_quoted(line, key, value)?;
                    cfg.roles = parse_roles(line, &s)?;
                }
                ("node", "relay_shards") => {
                    cfg.relay_shards = parse_usize(line, key, value)?.max(1);
                }
                ("node", "session_shards") => {
                    cfg.session_shards = parse_usize(line, key, value)?.max(1);
                }
                ("node", "max_sessions") => {
                    cfg.max_sessions = parse_usize(line, key, value)?.max(1);
                }
                ("node", "seed") => cfg.seed = parse_u64(line, key, value)?,
                ("node", "peers") => {
                    let items = parse_string_array(line, key, value)?;
                    cfg.peers = items
                        .iter()
                        .map(|s| parse_loopback(line, key, s))
                        .collect::<Result<_, _>>()?;
                }
                ("transport", "kind") => {
                    let s = parse_quoted(line, key, value)?;
                    cfg.transport = match s.as_str() {
                        "udp" => TransportKind::Udp,
                        "tcp" => TransportKind::Tcp,
                        other => {
                            return Err(ConfigError::InvalidValue {
                                line,
                                key: key.to_string(),
                                reason: format!("unknown transport {other:?} (udp or tcp)"),
                            })
                        }
                    };
                }
                ("transport", "loss") => cfg.faults.loss = parse_prob(line, key, value)?,
                ("transport", "reorder") => cfg.faults.reorder = parse_prob(line, key, value)?,
                ("transport", "duplicate") => cfg.faults.duplicate = parse_prob(line, key, value)?,
                ("metrics", "listen") => {
                    let s = parse_quoted(line, key, value)?;
                    cfg.metrics_listen = parse_loopback(line, key, &s)?;
                    have_metrics = true;
                }
                ("relay", "setup_flush_ms") => cfg.relay.setup_flush_ms = parse_u64(line, key, value)?,
                ("relay", "data_flush_ms") => cfg.relay.data_flush_ms = parse_u64(line, key, value)?,
                ("relay", "flow_ttl_ms") => cfg.relay.flow_ttl_ms = parse_u64(line, key, value)?,
                ("relay", "max_pending_data") => {
                    cfg.relay.max_pending_data = parse_usize(line, key, value)?;
                }
                ("relay", "max_flows") => cfg.relay.max_flows = parse_usize(line, key, value)?,
                ("relay", "keepalive_ms") => cfg.relay.keepalive_ms = parse_u64(line, key, value)?,
                ("relay", "liveness_timeout_ms") => {
                    cfg.relay.liveness_timeout_ms = parse_u64(line, key, value)?;
                }
                ("session", "window_chunks") => {
                    cfg.session.window_chunks = parse_usize(line, key, value)?;
                }
                ("session", "burst_chunks") => {
                    cfg.session.burst_chunks = parse_usize(line, key, value)?;
                }
                ("session", "pace_ms") => cfg.session.pace_ms = parse_u64(line, key, value)?,
                ("session", "retransmit_ms") => {
                    cfg.session.retransmit_ms = parse_u64(line, key, value)?;
                }
                ("session", "send_buffer_bytes") => {
                    cfg.session.send_buffer_bytes = parse_usize(line, key, value)?;
                }
                ("session", "ack_every_chunks") => {
                    cfg.session.ack_every_chunks = parse_usize(line, key, value)?;
                }
                ("session", "ack_interval_ms") => {
                    cfg.session.ack_interval_ms = parse_u64(line, key, value)?;
                }
                ("session", "reassembly_bytes") => {
                    cfg.session.reassembly_bytes = parse_usize(line, key, value)?;
                }
                ("session", "max_gathers") => {
                    cfg.session.max_gathers = parse_usize(line, key, value)?;
                }
                ("session", "gather_ttl_ms") => {
                    cfg.session.gather_ttl_ms = parse_u64(line, key, value)?;
                }
                _ => return Err(unknown()),
            }
        }

        if !have_listen {
            return Err(ConfigError::Missing {
                key: "node.listen".to_string(),
            });
        }
        if !have_metrics {
            return Err(ConfigError::Missing {
                key: "metrics.listen".to_string(),
            });
        }
        Ok(cfg)
    }

    /// Read and parse a config file.
    pub fn load(path: &std::path::Path) -> Result<NodeConfig, ConfigError> {
        let text = std::fs::read_to_string(path).map_err(|e| ConfigError::Io {
            path: path.display().to_string(),
            error: e.to_string(),
        })?;
        NodeConfig::parse(&text)
    }

    /// Print the full document (every key explicit). `parse(to_toml(c))
    /// == c` for any valid config — floats use `{:?}` which Rust
    /// guarantees round-trips.
    pub fn to_toml(&self) -> String {
        let mut roles = Vec::new();
        if self.roles.relay {
            roles.push("relay");
        }
        if self.roles.dest {
            roles.push("dest");
        }
        if self.roles.session {
            roles.push("session");
        }
        let peers = self
            .peers
            .iter()
            .map(|p| format!("\"127.0.0.1:{p}\""))
            .collect::<Vec<_>>()
            .join(", ");
        let kind = match self.transport {
            TransportKind::Udp => "udp",
            TransportKind::Tcp => "tcp",
        };
        format!(
            "# slicing-node config (generated)\n\
             [node]\n\
             listen = \"127.0.0.1:{listen}\"\n\
             roles = \"{roles}\"\n\
             relay_shards = {relay_shards}\n\
             session_shards = {session_shards}\n\
             max_sessions = {max_sessions}\n\
             seed = {seed}\n\
             peers = [{peers}]\n\
             \n\
             [transport]\n\
             kind = \"{kind}\"\n\
             loss = {loss:?}\n\
             reorder = {reorder:?}\n\
             duplicate = {duplicate:?}\n\
             \n\
             [metrics]\n\
             listen = \"127.0.0.1:{metrics}\"\n\
             \n\
             [relay]\n\
             setup_flush_ms = {setup_flush_ms}\n\
             data_flush_ms = {data_flush_ms}\n\
             flow_ttl_ms = {flow_ttl_ms}\n\
             max_pending_data = {max_pending_data}\n\
             max_flows = {max_flows}\n\
             keepalive_ms = {keepalive_ms}\n\
             liveness_timeout_ms = {liveness_timeout_ms}\n\
             \n\
             [session]\n\
             window_chunks = {window_chunks}\n\
             burst_chunks = {burst_chunks}\n\
             pace_ms = {pace_ms}\n\
             retransmit_ms = {retransmit_ms}\n\
             send_buffer_bytes = {send_buffer_bytes}\n\
             ack_every_chunks = {ack_every_chunks}\n\
             ack_interval_ms = {ack_interval_ms}\n\
             reassembly_bytes = {reassembly_bytes}\n\
             max_gathers = {max_gathers}\n\
             gather_ttl_ms = {gather_ttl_ms}\n",
            listen = self.listen,
            roles = roles.join(","),
            relay_shards = self.relay_shards,
            session_shards = self.session_shards,
            max_sessions = self.max_sessions,
            seed = self.seed,
            peers = peers,
            kind = kind,
            loss = self.faults.loss,
            reorder = self.faults.reorder,
            duplicate = self.faults.duplicate,
            metrics = self.metrics_listen,
            setup_flush_ms = self.relay.setup_flush_ms,
            data_flush_ms = self.relay.data_flush_ms,
            flow_ttl_ms = self.relay.flow_ttl_ms,
            max_pending_data = self.relay.max_pending_data,
            max_flows = self.relay.max_flows,
            keepalive_ms = self.relay.keepalive_ms,
            liveness_timeout_ms = self.relay.liveness_timeout_ms,
            window_chunks = self.session.window_chunks,
            burst_chunks = self.session.burst_chunks,
            pace_ms = self.session.pace_ms,
            retransmit_ms = self.session.retransmit_ms,
            send_buffer_bytes = self.session.send_buffer_bytes,
            ack_every_chunks = self.session.ack_every_chunks,
            ack_interval_ms = self.session.ack_interval_ms,
            reassembly_bytes = self.session.reassembly_bytes,
            max_gathers = self.session.max_gathers,
            gather_ttl_ms = self.session.gather_ttl_ms,
        )
    }
}
