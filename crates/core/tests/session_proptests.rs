//! Property tests for the session layer's chunk → reassemble pipeline:
//! arbitrary payloads streamed through a real relay overlay into a
//! [`DestSession`] endpoint survive loss, reordering and duplication —
//! the reassembled output is byte-identical, delivered exactly once,
//! in order, and no per-message state outlives delivery.

mod common;

use common::SessionNet;
use proptest::prelude::*;
use slicing_core::{
    DestPlacement, GraphParams, OverlayAddr, RelayConfig, SessionConfig, SessionManager,
    SourceConfig, SourceSession,
};

fn addrs(base: u64, n: usize) -> Vec<OverlayAddr> {
    (0..n as u64).map(|i| OverlayAddr(base + i)).collect()
}

fn relay_config() -> RelayConfig {
    RelayConfig {
        setup_flush_ms: 400,
        data_flush_ms: 200,
        keepalive_ms: 0,
        liveness_timeout_ms: 0,
        ..RelayConfig::default()
    }
}

/// Stream `payloads` through a lossy/reordering/duplicating net and
/// assert exactly-once, in-order, byte-identical delivery.
fn round_trip(
    seed: u64,
    payloads: Vec<Vec<u8>>,
    drop_prob: f64,
    dup_prob: f64,
    shuffle: bool,
) {
    let relays = addrs(20_000, 14);
    // d' = 3 paths → 3 pseudo-sources.
    let pseudo = addrs(10_000, 3);
    let dest = OverlayAddr(1);
    let mut net = SessionNet::new(&relays, seed, relay_config(), 1);
    let mut manager = SessionManager::new(
        2,
        16,
        SessionConfig {
            retransmit_ms: 1_000,
            ack_interval_ms: 100,
            ..SessionConfig::default()
        },
    );

    // Redundant paths (d' > d) so individual packet loss is survivable
    // within one round; retransmits cover the rest.
    let params = GraphParams::new(3, 2)
        .with_paths(3)
        .with_dest_placement(DestPlacement::LastStage);
    let candidates: Vec<OverlayAddr> = net.relays.keys().copied().collect();
    let (mut source, setup) =
        SourceSession::establish(params, &pseudo, &candidates, dest, seed).unwrap();
    // A small packet budget so modest payloads span several chunks.
    source.set_config(SourceConfig {
        data_packet_budget: 256,
        keepalive_ms: 0,
        ..SourceConfig::default()
    });
    let g = source.graph();
    let dest_flow = g.flow_ids[g.dest.stage][g.dest.index];
    let dest_info = g.infos[g.dest.stage][g.dest.index].clone();
    let dst = manager
        .open_dest(net.now, dest, dest_flow, dest_info, seed ^ 0xD5)
        .unwrap();
    let src = manager.open_source(net.now, source).unwrap();

    // Establish over a clean net (setup has no retransmission layer).
    net.submit(setup);
    net.run(&mut manager, 4, 200);

    // Now the adversarial transport.
    net.drop_prob = drop_prob;
    net.dup_prob = dup_prob;
    net.shuffle = shuffle;

    let mut want = Vec::new();
    for payload in &payloads {
        let (msg_id, sends) = manager.send(net.now, src, payload).unwrap();
        net.submit(sends);
        want.push((dst, msg_id, payload.clone()));
    }
    // Settle until everything is delivered and acked (bounded).
    for _ in 0..120 {
        net.step(&mut manager, 150);
        if net.delivered.len() >= want.len() && manager.streams_idle() {
            break;
        }
    }

    assert_eq!(
        net.delivered, want,
        "exactly-once in-order byte-identical delivery (stats: {:?})",
        manager.stats()
    );
    assert!(manager.streams_idle(), "source window must drain");
    let resident = manager.dest_mut(dst).unwrap().resident();
    assert_eq!(resident.partial_msgs, 0, "no partial messages retained");
    assert_eq!(resident.reassembly_bytes, 0, "no bytes retained");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Lossless but adversarially reordered and duplicated transport:
    /// multi-chunk messages reassemble byte-identically, exactly once.
    #[test]
    fn reorder_and_duplication(
        seed in any::<u64>(),
        msgs in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..1200), 1..4),
    ) {
        round_trip(seed, msgs, 0.0, 0.3, true);
    }

    /// Lossy transport: the retransmit window recovers every chunk; the
    /// replay guard keeps redelivery at-most-once.
    #[test]
    fn loss_with_retransmission(
        seed in any::<u64>(),
        drop_pm in 50u32..200,
        msgs in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..900), 1..3),
    ) {
        round_trip(seed, msgs, drop_pm as f64 / 1000.0, 0.0, false);
    }

    /// Everything at once: loss + duplication + reordering.
    #[test]
    fn loss_reorder_duplication(
        seed in any::<u64>(),
        drop_pm in 20u32..150,
        msgs in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..700), 1..3),
    ) {
        round_trip(seed, msgs, drop_pm as f64 / 1000.0, 0.25, true);
    }
}
