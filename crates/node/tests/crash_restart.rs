//! Crash-restart regression: SIGKILL a stage-2 relay *process* mid
//! transfer. The session layer must detect the silent peer through the
//! relay liveness protocol, repair the forwarding graph around it from
//! a spare-process pool, and complete the stream byte-identically —
//! over real UDP and over TCP. The killed process is then restarted
//! and must come back healthy and scrapeable.
//!
//! This is the process-level twin of the in-process repair test in
//! `crates/overlay/tests/repair_cmd.rs`: the graph shape (`d′ = d`, no
//! redundancy headroom) makes the kill fully stalling, so completion
//! proves the repair path, not luck.

mod common;

use common::{process_relay_config, process_session_config, spawn_relay_fleet};
use slicing_core::{SessionManager, SourceConfig, SourceSession};
use slicing_graph::{DestPlacement, GraphParams, OverlayAddr};
use slicing_node::config::TransportKind;
use slicing_node::runtime::data_addr;
use slicing_overlay::daemon::{spawn_node, DestSessionSpec, NodeSpec, OverlayEvent, SessionEvent};
use slicing_overlay::{TcpNet, UdpFaults, UdpNet};
use slicing_node::orchestrator::{free_tcp_port, free_udp_port};
use std::time::Duration;
use tokio::sync::mpsc;

const SEED: u64 = 0xC4A5;

/// Driver-side transport: pseudo-source ports and the in-process
/// destination attach over the same real transport as the fleet.
enum DriverNet {
    Udp(UdpNet),
    Tcp,
}

impl DriverNet {
    async fn attach(&self) -> slicing_overlay::NodePort {
        match self {
            DriverNet::Udp(net) => net
                .attach_at(free_udp_port())
                .await
                .expect("attach driver UDP port"),
            DriverNet::Tcp => TcpNet::attach_at(free_tcp_port())
                .await
                .expect("attach driver TCP port"),
        }
    }
}

async fn crash_restart(transport: TransportKind) {
    let relay_config = process_relay_config();
    let session_config = process_session_config();
    // d′ = d: losing any placed relay stalls the stream until repair.
    let params = GraphParams::new(3, 2).with_dest_placement(DestPlacement::LastStage);
    let relay_count = params.relay_count();

    // The fleet: exactly `relay_count` candidate processes (so the
    // victim is guaranteed to be an external process) plus two spares
    // forming the repair pool.
    let (mut fleet, data_ports) =
        spawn_relay_fleet(relay_count + 2, transport, relay_config, session_config);
    let candidates: Vec<OverlayAddr> = data_ports[..relay_count]
        .iter()
        .map(|&p| data_addr(p))
        .collect();
    let spares: Vec<OverlayAddr> = data_ports[relay_count..]
        .iter()
        .map(|&p| data_addr(p))
        .collect();

    // Driver side: d′ pseudo-source ports plus an in-process combined
    // destination node (so delivered bytes can be verified in-memory).
    let net = match transport {
        TransportKind::Udp => DriverNet::Udp(UdpNet::new(UdpFaults::default(), SEED)),
        TransportKind::Tcp => DriverNet::Tcp,
    };
    let mut pseudo_ports = Vec::with_capacity(params.paths);
    for _ in 0..params.paths {
        pseudo_ports.push(net.attach().await);
    }
    let pseudo_addrs: Vec<OverlayAddr> = pseudo_ports.iter().map(|p| p.addr).collect();
    let dest_port = net.attach().await;
    let dest_addr = dest_port.addr;

    let (events_tx, mut events_rx) = mpsc::unbounded_channel();
    let (deliveries_tx, mut deliveries_rx) = mpsc::unbounded_channel();
    let epoch = tokio::time::Instant::now();
    let dest_node = spawn_node(NodeSpec {
        relay: Some(slicing_core::ShardedRelay::with_config(
            dest_addr,
            SEED,
            relay_config,
            2,
        )),
        sessions: None,
        ports: vec![dest_port],
        dest_sessions: Some(DestSessionSpec {
            config: session_config,
            seed: SEED,
            deliveries: deliveries_tx,
        }),
        events: events_tx.clone(),
        session_events: None,
        epoch,
    });

    let (session_events_tx, mut session_events_rx) = mpsc::unbounded_channel();
    let source_node = spawn_node(NodeSpec {
        relay: None,
        sessions: Some(SessionManager::new(2, 16, session_config)),
        ports: pseudo_ports,
        dest_sessions: None,
        events: events_tx,
        session_events: Some(session_events_tx),
        epoch,
    });
    let sessions = source_node.sessions.clone().expect("session plane");

    let (mut source, setup) =
        SourceSession::establish(params, &pseudo_addrs, &candidates, dest_addr, SEED)
            .expect("establish");
    // Announce liveness at the relays' cadence or the stage-1 relays
    // declare the pseudo-sources dead and drop the reverse path the
    // FLOW_FAILED reports travel on.
    source.set_config(SourceConfig {
        keepalive_ms: relay_config.keepalive_ms,
        ..SourceConfig::default()
    });
    // The victim: a stage-2 relay — by construction one of the
    // external candidate processes.
    let victim = source.graph().stages[2][0];
    let victim_idx = data_ports
        .iter()
        .position(|&p| data_addr(p) == victim)
        .expect("victim is an external relay process");
    let id = sessions.open_source(source, setup).await;

    // Wait for the destination's receiver flow, then stream.
    let deadline = tokio::time::sleep(Duration::from_secs(30));
    tokio::pin!(deadline);
    loop {
        tokio::select! {
            ev = events_rx.recv() => match ev.expect("events") {
                OverlayEvent::Established { addr, receiver: true, .. }
                    if addr == dest_addr => break,
                _ => continue,
            },
            _ = &mut deadline => panic!("flow never established"),
        }
    }
    let payload: Vec<u8> = (0..96_000u32).map(|i| (i.wrapping_mul(131) % 251) as u8).collect();
    sessions.send(id, payload.clone()).await;

    // SIGKILL the victim process mid-transfer.
    tokio::time::sleep(Duration::from_millis(150)).await;
    fleet.kill(victim_idx);

    // Nurse the session exactly like the soak driver: speculative
    // repairs from the pool of live processes until the ack lands.
    let pool: Vec<OverlayAddr> = candidates
        .iter()
        .chain(spares.iter())
        .copied()
        .filter(|a| *a != victim)
        .collect();
    let mut repaired = 0usize;
    let mut acked = 0usize;
    let mut delivered: Option<Vec<u8>> = None;
    let mut nudge = tokio::time::interval(Duration::from_millis(250));
    let deadline = tokio::time::sleep(Duration::from_secs(90));
    tokio::pin!(deadline);
    while acked == 0 || delivered.is_none() {
        tokio::select! {
            _ = nudge.tick() => sessions.repair(id, pool.clone()).await,
            sev = session_events_rx.recv() => match sev.expect("session events") {
                SessionEvent::Repaired { session, failed, .. } => {
                    assert_eq!(session, id);
                    assert!(failed >= 1, "repair must route around the killed process");
                    repaired += 1;
                }
                SessionEvent::Acked { session, .. } if session == id => acked += 1,
                SessionEvent::Rejected { error, .. } => panic!("rejected: {error}"),
                _ => continue,
            },
            dv = deliveries_rx.recv() => match dv.expect("deliveries") {
                d if d.addr == dest_addr => delivered = Some(d.payload),
                _ => continue,
            },
            _ = &mut deadline => panic!(
                "wedged after process kill: repaired={repaired} acked={acked} delivered={}",
                delivered.is_some()
            ),
        }
    }
    assert!(repaired >= 1, "the repair path must have fired");
    assert_eq!(
        delivered.as_deref(),
        Some(payload.as_slice()),
        "stream must complete byte-identically across the process kill"
    );

    // The surviving processes carry the repair in their exported
    // counters: the victim's children spliced new parent lists.
    let live = (0..fleet.len()).filter(|&i| i != victim_idx);
    let repaired_flows = common::fleet_counter_sum(&fleet, live, "slicing_relay_flows_repaired");
    assert!(
        repaired_flows >= 1.0,
        "no surviving process exported a spliced re-setup (flows_repaired sum: {repaired_flows})"
    );

    // Restart the killed process: it must come back healthy and
    // scrapeable with fresh counters.
    fleet.spawn(victim_idx).expect("respawn victim");
    assert!(
        fleet.wait_healthy(victim_idx, Duration::from_secs(10)),
        "restarted process never became healthy"
    );
    let metrics = fleet.scrape(victim_idx).expect("scrape restarted process");
    assert_eq!(
        metrics.get("slicing_relay_flows_established").copied(),
        Some(0.0),
        "restart must start from fresh counters"
    );

    source_node.abort();
    dest_node.abort();
    fleet.kill_all();
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn stage2_process_kill_recovers_over_udp() {
    crash_restart(TransportKind::Udp).await;
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn stage2_process_kill_recovers_over_tcp() {
    crash_restart(TransportKind::Tcp).await;
}
