//! Churn-resilient live sessions, deterministically: failure detection
//! (keepalive/liveness timeouts), FlowFailed propagation to the source,
//! and source-side repair splicing new routes into a live flow — the
//! sans-IO versions of the paper's §8.2 claims, driven through
//! [`TestNet`].

use std::collections::HashSet;

use slicing_core::testnet::TestNet;
use slicing_core::{
    DataMode, DestPlacement, GraphParams, OverlayAddr, RelayConfig, RelayNode, SourceConfig,
    SourceSession, Tick,
};

/// Short timeouts so sessions detect and repair within a few simulated
/// seconds.
fn churn_config() -> RelayConfig {
    RelayConfig {
        setup_flush_ms: 400,
        data_flush_ms: 300,
        keepalive_ms: 400,
        liveness_timeout_ms: 1_500,
        ..RelayConfig::default()
    }
}

fn addrs(base: u64, n: usize) -> Vec<OverlayAddr> {
    (0..n as u64).map(|i| OverlayAddr(base + i)).collect()
}

struct Session {
    net: TestNet,
    source: SourceSession,
    dest: OverlayAddr,
    /// Candidates not placed in the graph: the repair spare pool.
    spares: Vec<OverlayAddr>,
}

/// Establish a session over a TestNet with churn-tuned timeouts.
fn establish(l: usize, d: usize, dp: usize, mode: DataMode, seed: u64, shards: usize) -> Session {
    let pseudo = addrs(10_000, dp);
    let candidates = addrs(20_000, l * dp + 6);
    let dest = OverlayAddr(1);
    let mut all_nodes = candidates.clone();
    all_nodes.push(dest);
    let params = GraphParams::new(l, d)
        .with_paths(dp)
        .with_data_mode(mode)
        .with_dest_placement(DestPlacement::LastStage);
    let (mut source, setup) =
        SourceSession::establish(params, &pseudo, &candidates, dest, seed).unwrap();
    source.set_config(SourceConfig {
        keepalive_ms: 400,
        ..SourceConfig::default()
    });
    let mut net = TestNet::with_shards(&all_nodes, seed, churn_config(), shards);
    net.submit(setup);
    net.run_to_quiescence(Some(&mut source));
    let placed: HashSet<OverlayAddr> = source.graph().relay_addrs().collect();
    let spares = candidates
        .into_iter()
        .filter(|a| !placed.contains(a))
        .collect();
    Session {
        net,
        source,
        dest,
        spares,
    }
}

/// The acceptance scenario: kill a stage-2 relay mid-session with
/// `d′ = d` (no redundancy — the flow cannot survive without repair),
/// and assert the transfer completes after source-side repair without
/// re-establishing unaffected paths.
fn repair_completes_no_redundancy(shards: usize) {
    let (l, d, dp) = (5usize, 2usize, 2usize);
    let Session {
        mut net,
        mut source,
        dest,
        spares,
    } = establish(l, d, dp, DataMode::Map, 7, shards);

    // Two messages flow while everything is healthy.
    for m in 0..2 {
        let (_, sends) = source.send_message(format!("msg {m}").as_bytes()).expect("within chunk budget");
        net.submit(sends);
        net.run_to_quiescence(Some(&mut source));
    }
    assert_eq!(net.messages_for(dest).len(), 2);

    // Kill a stage-2 relay. With d′ = d every subsequent message is
    // undecodable until the source repairs the path.
    let victim = source.graph().stages[2][0];
    assert_ne!(victim, dest);
    net.fail(victim);
    for m in 2..4 {
        let (_, sends) = source.send_message(format!("msg {m}").as_bytes()).expect("within chunk budget");
        net.submit(sends);
    }
    // Let liveness timeouts fire and the FlowFailed report wash up the
    // reverse path to the pseudo-sources.
    net.settle(Some(&mut source), 400, 12);
    assert_eq!(
        net.messages_for(dest).len(),
        2,
        "with d' = d the killed relay must stall the transfer"
    );
    assert!(
        source.needs_repair(),
        "the sealed FLOW_FAILED report must reach and authenticate at the source"
    );
    assert_eq!(source.failed_nodes(), &HashSet::from([victim]));

    // Snapshot setup traffic, then repair.
    let setup_before = net.setup_delivered.clone();
    let unaffected: Vec<OverlayAddr> = source
        .graph()
        .relay_addrs()
        .filter(|&a| {
            a != victim
                && !source.graph().stages[1].contains(&a)
                && !source.graph().stages[3].contains(&a)
        })
        .collect();
    assert_eq!(unaffected.len(), (l - 3) * dp + 1, "sibling + stages 4, 5");
    let sends = source.repair(&spares).unwrap();
    assert!(!source.needs_repair());
    net.submit(sends);
    net.settle(Some(&mut source), 400, 12);

    // The transfer completes: the stalled messages were retransmitted
    // over the repaired routes, and earlier seqs were not re-delivered.
    let got = net.messages_for(dest);
    assert_eq!(got.len(), 4, "all messages must complete after repair");
    for (m, (seq, plaintext)) in got.iter().enumerate() {
        assert_eq!(*seq as usize, m);
        assert_eq!(plaintext, format!("msg {m}").as_bytes());
    }

    // Only affected paths re-keyed: the replacement plus the dead
    // node's parents (stage 1) and children (stage 3) saw new setup
    // packets — d′ each — and nobody else saw any.
    let replacement = source.graph().stages[2][0];
    assert_ne!(replacement, victim);
    assert_eq!(
        net.setup_delivered.get(&replacement).copied().unwrap_or(0),
        dp as u64,
        "replacement establishes from d' repair packets"
    );
    for v in 0..dp {
        for stage in [1usize, 3] {
            let addr = source.graph().stages[stage][v];
            let before = setup_before.get(&addr).copied().unwrap_or(0);
            assert_eq!(
                net.setup_delivered.get(&addr).copied().unwrap_or(0),
                before + dp as u64,
                "neighbour at stage {stage} gets exactly d' update packets"
            );
        }
    }
    for addr in unaffected {
        assert_eq!(
            net.setup_delivered.get(&addr).copied().unwrap_or(0),
            setup_before.get(&addr).copied().unwrap_or(0),
            "unaffected relay {addr:?} must not be re-established"
        );
    }
}

#[test]
fn repair_completes_transfer_with_no_redundancy() {
    repair_completes_no_redundancy(1);
}

#[test]
fn repair_routes_through_sharded_relays() {
    // The same scenario with 8-way sharded relays: FlowFailed arrives on
    // reverse flow ids (routed to the owning shard via the reverse-id
    // map) and re-setup packets on forward ids — both must land on the
    // shard holding the flow.
    repair_completes_no_redundancy(8);
}

#[test]
fn redundant_flow_survives_stage2_kill_without_repair() {
    // Fig. 17's premise: with d′ > d and in-network recoding, a dead
    // relay costs redundancy, not the session — no repair needed.
    let (_l, _d, dp) = (5usize, 2usize, 3usize);
    let Session {
        mut net,
        mut source,
        dest,
        ..
    } = establish(5, 2, dp, DataMode::Recode, 11, 1);

    let victim = source.graph().stages[2][1];
    assert_ne!(victim, dest);
    net.fail(victim);

    for m in 0..4 {
        let (_, sends) = source.send_message(format!("chunk {m}").as_bytes()).expect("within chunk budget");
        net.submit(sends);
        net.settle(Some(&mut source), 400, 6);
    }
    let got = net.messages_for(dest);
    assert_eq!(got.len(), 4, "d' > d must ride out the failure unrepaired");
    // Detection still reported the death upstream (the source may
    // repair at its leisure); we simply never acted on it.
    assert!(source.needs_repair());
    assert_eq!(source.failed_nodes(), &HashSet::from([victim]));
}

/// Drive a single stage-1 relay directly: establish one flow on it and
/// return the source plus the per-parent data sends for traffic.
fn single_relay(seed: u64, config: RelayConfig) -> (RelayNode, SourceSession) {
    let params = GraphParams::new(3, 2)
        .with_paths(2)
        .with_data_mode(DataMode::Recode)
        .with_dest_placement(DestPlacement::LastStage);
    let pseudo = addrs(10_000, 2);
    let candidates = addrs(20_000, 16);
    let (source, setup) =
        SourceSession::establish(params, &pseudo, &candidates, OverlayAddr(1), seed).unwrap();
    let target = source.graph().stages[1][0];
    let mut relay = RelayNode::with_config(target, 9, config);
    for instr in setup {
        if instr.to == target {
            relay.handle_packet(Tick(0), instr.from, &instr.packet);
        }
    }
    assert_eq!(relay.stats().flows_established, 1);
    (relay, source)
}

/// Regression test for the lazy-validation requirement on liveness
/// deadlines: like flow GC, a keepalive/teardown deadline must
/// re-validate against the flow's *current* `last_heard` when it fires.
/// A parent that was declared dead and then revived (repair, or a slow
/// link recovering) leaves stale wheel entries behind — they must
/// re-arm, never fire a second spurious teardown.
#[test]
fn stale_liveness_entry_cannot_fire_spurious_teardown() {
    let config = RelayConfig {
        liveness_timeout_ms: 1_000,
        keepalive_ms: 0, // isolate the detection plane
        ..RelayConfig::default()
    };
    let (mut relay, mut source) = single_relay(21, config);
    let target = relay.addr();
    let send_from = |relay: &mut RelayNode, source: &mut SourceSession, now: Tick, who: usize| {
        let parent = source.graph().stages[0][who];
        let (_, sends) = source.send_message(b"tick").expect("within chunk budget");
        for instr in sends.into_iter().filter(|s| s.to == target && s.from == parent) {
            relay.handle_packet(now, instr.from, &instr.packet);
        }
    };

    // Both parents speak at t=500; the t=1000 check re-arms quietly.
    send_from(&mut relay, &mut source, Tick(500), 0);
    send_from(&mut relay, &mut source, Tick(500), 1);
    let out = relay.poll(Tick(1_000));
    assert_eq!(relay.stats().parents_lost, 0);
    assert!(out.sends.iter().all(|s| {
        s.packet.header.kind != slicing_core::PacketKind::Control
    }));

    // Parent 1 goes silent; parent 0 keeps talking. The re-armed check
    // fires at t=1500 and declares parent 1 dead, reporting upstream.
    send_from(&mut relay, &mut source, Tick(1_499), 0);
    let out = relay.poll(Tick(1_500));
    assert_eq!(relay.stats().parents_lost, 1);
    let reports = out
        .sends
        .iter()
        .filter(|s| s.packet.header.kind == slicing_core::PacketKind::Control)
        .count();
    assert_eq!(reports, 1, "one FLOW_FAILED to the one live parent");

    // Parent 1 revives (as a repair splice would); both keep talking.
    // Every stale wheel entry that fires between now and t=2599 must
    // re-validate against the refreshed last_heard and re-arm — not
    // re-report the revived parent.
    send_from(&mut relay, &mut source, Tick(1_600), 1);
    send_from(&mut relay, &mut source, Tick(1_700), 0);
    for now in [1_900u64, 2_200, 2_499, 2_599] {
        let out = relay.poll(Tick(now));
        assert_eq!(
            relay.stats().parents_lost,
            1,
            "stale liveness entry fired a spurious teardown at t={now}"
        );
        assert!(
            out.sends
                .iter()
                .all(|s| s.packet.header.kind != slicing_core::PacketKind::Control),
            "spurious FLOW_FAILED at t={now}"
        );
    }
}

#[test]
fn forged_keepalive_cannot_suppress_detection() {
    // Keepalives authenticate flow membership with the sender's reverse
    // flow id: an attacker who knows a forward flow id and a parent's
    // address (both cleartext on other links) still cannot refresh that
    // parent's liveness and suppress failure detection.
    let config = RelayConfig {
        liveness_timeout_ms: 1_000,
        keepalive_ms: 0,
        ..RelayConfig::default()
    };
    let (mut relay, source) = single_relay(27, config);
    let flow = source.graph().flow_ids[1][0];
    let parent0 = source.graph().stages[0][0];
    let parent1 = source.graph().stages[0][1];

    // Forged keepalive for parent 0 (right address, wrong token) vs a
    // genuine one for parent 1 (its reverse flow id, as the source and
    // relays emit).
    let forged = slicing_wire::control::keepalive(flow, slicing_wire::FlowId(0xBAD));
    let genuine =
        slicing_wire::control::keepalive(flow, source.graph().reverse_flow_ids[0][1]);
    let drops_before = relay.stats().drops;
    relay.handle_packet(Tick(900), parent0, &forged);
    relay.handle_packet(Tick(900), parent1, &genuine);
    assert_eq!(relay.stats().drops, drops_before + 1, "forgery must drop");

    // At the liveness deadline parent 0 (silent since establishment)
    // dies; parent 1 was genuinely refreshed.
    relay.poll(Tick(1_000));
    assert_eq!(
        relay.stats().parents_lost,
        1,
        "forged keepalive must not keep parent 0 alive; genuine one keeps parent 1"
    );
}

#[test]
fn relays_emit_keepalives_to_children() {
    let config = RelayConfig {
        keepalive_ms: 700,
        liveness_timeout_ms: 0,
        ..RelayConfig::default()
    };
    let (mut relay, source) = single_relay(23, config);
    let children: HashSet<OverlayAddr> = source.graph().stages[2].iter().copied().collect();
    let out = relay.poll(Tick(699));
    assert!(out.sends.is_empty(), "not before the interval");
    let out = relay.poll(Tick(700));
    let targets: HashSet<OverlayAddr> = out
        .sends
        .iter()
        .filter(|s| s.packet.header.kind == slicing_core::PacketKind::Control)
        .map(|s| s.to)
        .collect();
    assert_eq!(targets, children, "one keepalive per child");
    // And the heartbeat re-arms.
    let out = relay.poll(Tick(1_400));
    assert!(!out.sends.is_empty(), "keepalive must re-arm");
}

#[test]
fn detection_shrinks_gather_horizon() {
    // Once a parent is declared dead the completeness count drops, so
    // messages stop paying the flush timeout for a neighbour that will
    // never deliver: data from the live parents alone flushes a relay
    // immediately.
    let Session {
        mut net,
        mut source,
        dest,
        ..
    } = establish(4, 2, 3, DataMode::Recode, 13, 1);

    let victim = source.graph().stages[1][0];
    net.fail(victim);
    net.settle(Some(&mut source), 400, 8); // liveness fires at stage 2

    let stage2 = &source.graph().stages[2];
    let lost: u64 = stage2
        .iter()
        .map(|a| net.relays[a].stats().parents_lost)
        .sum();
    assert!(
        lost >= stage2.len() as u64,
        "every stage-2 relay must have declared the dead parent ({lost})"
    );

    // A fresh message now completes without any timeout-driven settle:
    // run_to_quiescence alone (no advance) must deliver it.
    let before = net.messages_for(dest).len();
    let (_, sends) = source.send_message(b"no timeout wait").expect("within chunk budget");
    net.submit(sends);
    net.run_to_quiescence(Some(&mut source));
    assert_eq!(
        net.messages_for(dest).len(),
        before + 1,
        "live parents alone must satisfy the shrunken gather horizon"
    );
}
