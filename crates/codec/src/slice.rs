//! The [`InfoSlice`] type: one coded block together with the generator
//! row that produced it (the "transformation vector" of Fig. 3).

/// One information slice.
///
/// `payload[j] = Σ_k coeffs[k] · block_k[j]` over GF(2⁸): the coefficient
/// row is carried *in the clear* next to the coded block, exactly as in
/// the paper's packet format (Fig. 3) — confidentiality comes from the
/// attacker missing slices, not from hiding the row.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct InfoSlice {
    /// Row of the generator matrix (length `d`), as raw GF(2⁸) values.
    pub coeffs: Vec<u8>,
    /// The coded block.
    pub payload: Vec<u8>,
}

impl std::fmt::Debug for InfoSlice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "InfoSlice(d={}, block={}B)",
            self.coeffs.len(),
            self.payload.len()
        )
    }
}

impl InfoSlice {
    /// Construct from parts.
    pub fn new(coeffs: Vec<u8>, payload: Vec<u8>) -> Self {
        InfoSlice { coeffs, payload }
    }

    /// The split factor `d` this slice was coded for.
    pub fn d(&self) -> usize {
        self.coeffs.len()
    }

    /// Serialized length for a given `(d, block_len)`.
    pub fn wire_len(d: usize, block_len: usize) -> usize {
        d + block_len
    }

    /// Serialize as `coeffs ‖ payload`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.coeffs.len() + self.payload.len());
        out.extend_from_slice(&self.coeffs);
        out.extend_from_slice(&self.payload);
        out
    }

    /// Deserialize from the layout produced by [`InfoSlice::to_bytes`].
    ///
    /// Returns `None` if `bytes.len() != d + block_len`.
    pub fn from_bytes(d: usize, block_len: usize, bytes: &[u8]) -> Option<Self> {
        if bytes.len() != d + block_len {
            return None;
        }
        Some(InfoSlice {
            coeffs: bytes[..d].to_vec(),
            payload: bytes[d..].to_vec(),
        })
    }
}

/// A complete sliced message: the `d′` slices emitted by the encoder.
#[derive(Clone, Debug)]
pub struct SlicedMessage {
    /// The emitted slices (`d′` of them; `d′ == d` when no redundancy).
    pub slices: Vec<InfoSlice>,
    /// Split factor: number of slices required to decode.
    pub d: usize,
    /// Length of each coded block in bytes.
    pub block_len: usize,
}

impl SlicedMessage {
    /// Redundancy factor `R = (d′ − d) / d` (§4.4, §8.1).
    pub fn redundancy(&self) -> f64 {
        (self.slices.len() as f64 - self.d as f64) / self.d as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_round_trip() {
        let s = InfoSlice::new(vec![1, 2, 3], vec![9, 8, 7, 6]);
        let bytes = s.to_bytes();
        assert_eq!(bytes.len(), InfoSlice::wire_len(3, 4));
        assert_eq!(InfoSlice::from_bytes(3, 4, &bytes).unwrap(), s);
    }

    #[test]
    fn from_bytes_rejects_wrong_len() {
        assert!(InfoSlice::from_bytes(3, 4, &[0u8; 6]).is_none());
        assert!(InfoSlice::from_bytes(3, 4, &[0u8; 8]).is_none());
    }

    #[test]
    fn redundancy_factor() {
        let m = SlicedMessage {
            slices: vec![InfoSlice::new(vec![0, 0], vec![]); 3],
            d: 2,
            block_len: 0,
        };
        assert!((m.redundancy() - 0.5).abs() < 1e-9);
    }
}
