//! Plaintext/Prometheus metrics exposition for a running node.
//!
//! A hand-rolled HTTP/1.0 listener on the vendored tokio TCP stack
//! (the vendored `io` module exposes only `read_exact`/`write_all`, so
//! requests are parsed byte by byte). Three routes:
//!
//! - `GET /metrics` — Prometheus text exposition of the node's
//!   counters, built from the engines' `counters()` enumerations
//!   ([`slicing_core::RelayStats::counters`],
//!   [`slicing_core::SessionStats::counters`],
//!   [`slicing_overlay::UdpStatsSnapshot::counters`]) so the exported
//!   names can never drift from the atomics.
//! - `GET /healthz` — liveness probe, returns `ok`.
//! - `POST /shutdown` — asks the daemon to exit cleanly.
//!
//! Every relay/session counter is exported as
//! `slicing_relay_<name>` / `slicing_session_<name>`; transport
//! counters as `slicing_udp_<name>`; per-neighbour congestion-control
//! state from [`slicing_overlay::cc`] as `slicing_cc_*{peer="..."}`
//! gauges.

use slicing_core::relay::RelayStatsAtomic;
use slicing_graph::OverlayAddr;
use slicing_overlay::daemon::SessionHandle;
use slicing_overlay::{PortSender, UdpNet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::TcpListener;
use tokio::sync::mpsc;
use tokio::time::Instant;

/// Everything the exposition endpoint reads. All handles are shared
/// snapshot views — rendering never touches a hot path.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

#[derive(Default)]
struct RegistryInner {
    start: Option<Instant>,
    relay: Option<Arc<RelayStatsAtomic>>,
    session: Option<SessionHandle>,
    udp: Option<UdpNet>,
    cc: Option<PortSender>,
    delivered_msgs: AtomicU64,
    delivered_bytes: AtomicU64,
}

/// Builder-style assembly of a [`Registry`].
#[derive(Default)]
pub struct RegistryBuilder {
    relay: Option<Arc<RelayStatsAtomic>>,
    session: Option<SessionHandle>,
    udp: Option<UdpNet>,
    cc: Option<PortSender>,
}

impl RegistryBuilder {
    /// Export the relay plane's shared counters.
    pub fn relay(mut self, stats: Arc<RelayStatsAtomic>) -> Self {
        self.relay = Some(stats);
        self
    }

    /// Export the session plane's counters.
    pub fn session(mut self, handle: SessionHandle) -> Self {
        self.session = Some(handle);
        self
    }

    /// Export the UDP transport's counters.
    pub fn udp(mut self, net: UdpNet) -> Self {
        self.udp = Some(net);
        self
    }

    /// Export per-neighbour congestion-control gauges from this port.
    pub fn cc(mut self, port: PortSender) -> Self {
        self.cc = Some(port);
        self
    }

    /// Finish; uptime counts from this call.
    pub fn build(self) -> Registry {
        Registry {
            inner: Arc::new(RegistryInner {
                start: Some(Instant::now()),
                relay: self.relay,
                session: self.session,
                udp: self.udp,
                cc: self.cc,
                delivered_msgs: AtomicU64::new(0),
                delivered_bytes: AtomicU64::new(0),
            }),
        }
    }
}

/// Read this process's resident set size from `/proc/self/status`
/// (`VmRSS` is reported in kB). Returns 0 where procfs is unavailable.
pub fn process_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmRSS:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

fn peer_label(addr: OverlayAddr) -> String {
    let (ip, port) = addr.to_ipv4();
    format!("{}.{}.{}.{}:{}", ip[0], ip[1], ip[2], ip[3], port)
}

impl Registry {
    /// Record one message completed by a colocated destination session.
    pub fn record_delivery(&self, bytes: usize) {
        self.inner.delivered_msgs.fetch_add(1, Ordering::Relaxed);
        self.inner
            .delivered_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Render the Prometheus text exposition.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(2048);
        let uptime = self
            .inner
            .start
            .map(|s| s.elapsed().as_secs_f64())
            .unwrap_or(0.0);
        out.push_str("# TYPE slicing_uptime_seconds gauge\n");
        out.push_str(&format!("slicing_uptime_seconds {uptime:.3}\n"));
        out.push_str("# TYPE slicing_process_rss_bytes gauge\n");
        out.push_str(&format!("slicing_process_rss_bytes {}\n", process_rss_bytes()));
        if let Some(relay) = &self.inner.relay {
            for (name, value) in relay.snapshot().counters() {
                out.push_str(&format!("# TYPE slicing_relay_{name} counter\n"));
                out.push_str(&format!("slicing_relay_{name} {value}\n"));
            }
        }
        if let Some(session) = &self.inner.session {
            for (name, value) in session.stats().counters() {
                out.push_str(&format!("# TYPE slicing_session_{name} counter\n"));
                out.push_str(&format!("slicing_session_{name} {value}\n"));
            }
        }
        out.push_str("# TYPE slicing_dest_delivered_msgs_total counter\n");
        out.push_str(&format!(
            "slicing_dest_delivered_msgs_total {}\n",
            self.inner.delivered_msgs.load(Ordering::Relaxed)
        ));
        out.push_str("# TYPE slicing_dest_delivered_bytes_total counter\n");
        out.push_str(&format!(
            "slicing_dest_delivered_bytes_total {}\n",
            self.inner.delivered_bytes.load(Ordering::Relaxed)
        ));
        if let Some(udp) = &self.inner.udp {
            for (name, value) in udp.stats().counters() {
                out.push_str(&format!("# TYPE slicing_udp_{name} counter\n"));
                out.push_str(&format!("slicing_udp_{name} {value}\n"));
            }
        }
        if let Some(port) = &self.inner.cc {
            for (peer, cc) in port.cc_snapshots() {
                let peer = peer_label(peer);
                out.push_str(&format!(
                    "slicing_cc_rate_dps{{peer=\"{peer}\"}} {:?}\n",
                    cc.rate_dps
                ));
                out.push_str(&format!(
                    "slicing_cc_tokens{{peer=\"{peer}\"}} {:?}\n",
                    cc.tokens
                ));
                out.push_str(&format!(
                    "slicing_cc_owd_ewma_us{{peer=\"{peer}\"}} {:?}\n",
                    cc.owd_ewma_us
                ));
                out.push_str(&format!(
                    "slicing_cc_base_owd_us{{peer=\"{peer}\"}} {:?}\n",
                    cc.base_owd_us
                ));
                out.push_str(&format!(
                    "slicing_cc_state{{peer=\"{peer}\",state=\"{}\"}} 1\n",
                    cc.state.as_str()
                ));
            }
        }
        out
    }
}

/// Read one HTTP request head (through the blank line) byte by byte —
/// the vendored reader exposes only `read_exact`. Returns the head or
/// `None` on EOF/oversize.
async fn read_request_head(stream: &mut tokio::net::TcpStream) -> Option<String> {
    let mut head = Vec::with_capacity(256);
    let mut byte = [0u8; 1];
    while head.len() < 4096 {
        if stream.read_exact(&mut byte).await.is_err() {
            return None;
        }
        head.push(byte[0]);
        if head.ends_with(b"\r\n\r\n") {
            return String::from_utf8(head).ok();
        }
    }
    None
}

async fn respond(stream: &mut tokio::net::TcpStream, status: &str, body: &str) {
    let response = format!(
        "HTTP/1.0 {status}\r\nContent-Type: text/plain; version=0.0.4\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes()).await;
}

/// Serve the metrics endpoint until the task is aborted. `shutdown`
/// receives one unit per accepted `POST /shutdown`.
pub async fn serve(
    listener: TcpListener,
    registry: Registry,
    shutdown: mpsc::Sender<()>,
) {
    loop {
        let Ok((mut stream, _)) = listener.accept().await else {
            return;
        };
        let registry = registry.clone();
        let shutdown = shutdown.clone();
        tokio::spawn(async move {
            let Some(head) = read_request_head(&mut stream).await else {
                return;
            };
            let mut parts = head.split_whitespace();
            let method = parts.next().unwrap_or("");
            let path = parts.next().unwrap_or("");
            match (method, path) {
                ("GET", "/metrics") => respond(&mut stream, "200 OK", &registry.render()).await,
                ("GET", "/healthz") => respond(&mut stream, "200 OK", "ok\n").await,
                ("POST", "/shutdown") => {
                    let _ = shutdown.try_send(());
                    respond(&mut stream, "200 OK", "shutting down\n").await;
                }
                _ => respond(&mut stream, "404 Not Found", "not found\n").await,
            }
        });
    }
}

/// Parse a Prometheus text exposition into `(series, value)` pairs —
/// the scrape half of the protocol, shared by the orchestrator and the
/// metrics tests. Label sets are kept verbatim in the series name.
pub fn parse_exposition(text: &str) -> Vec<(String, f64)> {
    text.lines()
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| {
            let (name, value) = l.rsplit_once(' ')?;
            Some((name.to_string(), value.parse().ok()?))
        })
        .collect()
}
