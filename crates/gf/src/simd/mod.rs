//! Runtime-dispatched SIMD kernels for the GF(2⁸)/GF(2¹⁶) bulk
//! operations.
//!
//! Every bulk entry point in [`crate::bulk`] routes through one of three
//! [`Backend`]s, chosen **once** at first use and cached for the life of
//! the process:
//!
//! * [`Backend::Scalar`] — per-element log/exp arithmetic, the reference
//!   implementation. Slowest; exists as the oracle every other path is
//!   tested against, and as the `SLICING_GF_FORCE=scalar` escape hatch.
//! * [`Backend::Swar`] — the table-driven paths (one L1-resident 256-byte
//!   multiplication row per GF(2⁸) coefficient, hoisted log/exp for
//!   GF(2¹⁶), `u64` SWAR XOR). Always available on every architecture;
//!   this is the fallback when no SIMD ISA is detected.
//! * [`Backend::Simd`] — `std::arch` kernels using the split-nibble
//!   multiply (PSHUFB on x86_64, TBL on aarch64; see
//!   [`crate::bulk`] for the per-operation details). Selected when the
//!   host supports a usable ISA.
//!
//! ## Supported ISAs
//!
//! | arch | table kernels (axpy/scale/transform/fused) | dot kernels |
//! |------|--------------------------------------------|-------------|
//! | x86_64 | SSSE3 (16 B/step) or AVX2 (32–64 B/step) | PCLMULQDQ + SSE4.1 |
//! | aarch64 | NEON `TBL` (always present) | NEON `PMULL`-free `vmull_p8` |
//! | other | — (falls back to [`Backend::Swar`]) | — |
//!
//! Feature detection is dynamic (`is_x86_feature_detected!`), so one
//! binary runs everywhere and uses the best kernel the host offers; on
//! x86_64 a host with SSSE3 but without PCLMULQDQ gets SIMD table
//! kernels and SWAR dot products.
//!
//! ## Forcing a backend
//!
//! The `SLICING_GF_FORCE` environment variable, read once at dispatch
//! initialization, pins the backend for the whole process:
//! `scalar`, `swar`, or `simd`. Unknown values — and `simd` on a host
//! without a usable ISA — **fail closed** to the always-available
//! [`Backend::Swar`] fallback. CI runs the full test suite under
//! `SLICING_GF_FORCE=scalar` so the oracle path stays green, and benches
//! use the explicit `*_on` entry points in [`crate::bulk`] to measure
//! backends side by side in one process.

pub(crate) mod tables;

#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
pub(crate) mod x86;

#[cfg(target_arch = "aarch64")]
#[allow(unsafe_code)]
pub(crate) mod neon;

/// The cfg-selected arch kernels `bulk` dispatches into when the active
/// backend is [`Backend::Simd`]. On architectures with no kernels this
/// re-exports SWAR delegates that are never selected at runtime (the
/// detector never returns `Simd` there) but keep the call sites
/// compiling.
pub(crate) mod kernels {
    #[cfg(target_arch = "x86_64")]
    pub(crate) use super::x86::*;

    #[cfg(target_arch = "aarch64")]
    pub(crate) use super::neon::*;

    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    pub(crate) use super::portable_fallback::*;
}

#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
mod portable_fallback {
    //! SWAR delegates for architectures without SIMD kernels. Dead at
    //! runtime (detection never selects `Simd` here); present so the
    //! dispatch arms typecheck on every target.
    use crate::bulk;
    use crate::simd::Backend;
    use crate::Gf65536;

    /// Mirrors the arch modules' GF(2¹⁶) length threshold; unused at
    /// runtime here but referenced by the dispatch arms.
    pub(crate) const MIN_LEN16: usize = 64;

    pub(crate) fn axpy8(dst: &mut [u8], c: u8, src: &[u8]) {
        bulk::mul_add_slice_on(Backend::Swar, dst, c, src);
    }
    pub(crate) fn mul8(dst: &mut [u8], c: u8) {
        bulk::mul_slice_on(Backend::Swar, dst, c);
    }
    pub(crate) fn mul8_into(dst: &mut [u8], c: u8, src: &[u8]) {
        bulk::mul_slice_into_on(Backend::Swar, dst, c, src);
    }
    pub(crate) fn mul_xor8(dst: &mut [u8], c: u8, pad: &[u8]) {
        bulk::mul_xor_slice_on(Backend::Swar, dst, c, pad);
    }
    pub(crate) fn xor_mul8(dst: &mut [u8], c: u8, pad: &[u8]) {
        bulk::xor_mul_slice_on(Backend::Swar, dst, c, pad);
    }
    pub(crate) fn dot8(a: &[u8], b: &[u8]) -> Option<u8> {
        let _ = (a, b);
        None
    }
    pub(crate) fn fused8(outs: &mut [&mut [u8]], coeffs: &[u8], srcs: &[&[u8]]) {
        bulk::mul_add_fused_on(Backend::Swar, outs, coeffs, srcs);
    }
    pub(crate) fn axpy16(acc: &mut [Gf65536], c: Gf65536, src: &[Gf65536]) {
        bulk::mul_add_slice16_on(Backend::Swar, acc, c, src);
    }
    pub(crate) fn mul16(row: &mut [Gf65536], c: Gf65536) {
        bulk::mul_slice16_on(Backend::Swar, row, c);
    }
    pub(crate) fn dot16(a: &[Gf65536], b: &[Gf65536]) -> Option<Gf65536> {
        let _ = (a, b);
        None
    }
}

use std::sync::OnceLock;

/// Which implementation family the bulk kernels run on.
///
/// See the [module docs](self) for what each backend is and when it is
/// selected. Obtain the process-wide active backend with [`backend`];
/// pin one per call with the `*_on` functions in [`crate::bulk`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Per-element log/exp arithmetic — the reference oracle.
    Scalar,
    /// Table-driven + SWAR paths — the always-available fallback.
    Swar,
    /// Runtime-detected `std::arch` kernels (SSSE3/AVX2/NEON).
    Simd,
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Backend::Scalar => "scalar",
            Backend::Swar => "swar",
            Backend::Simd => "simd",
        })
    }
}

/// What the `Simd` backend can use on this host.
#[derive(Copy, Clone, Debug)]
pub(crate) struct Caps {
    /// 256-bit table kernels (AVX2) rather than 128-bit (SSSE3/NEON).
    pub(crate) wide: bool,
    /// Carry-less-multiply dot kernels (PCLMULQDQ+SSE4.1 / `vmull_p8`).
    pub(crate) clmul: bool,
}

struct State {
    backend: Backend,
    caps: Caps,
    isa: &'static str,
}

fn detect() -> (Backend, Caps, &'static str) {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("ssse3") {
            let wide = std::arch::is_x86_feature_detected!("avx2");
            let clmul = std::arch::is_x86_feature_detected!("pclmulqdq")
                && std::arch::is_x86_feature_detected!("sse4.1");
            let isa = match (wide, clmul) {
                (true, true) => "avx2+clmul",
                (true, false) => "avx2",
                (false, true) => "ssse3+clmul",
                (false, false) => "ssse3",
            };
            return (Backend::Simd, Caps { wide, clmul }, isa);
        }
        (
            Backend::Swar,
            Caps {
                wide: false,
                clmul: false,
            },
            "none",
        )
    }
    #[cfg(target_arch = "aarch64")]
    {
        // NEON (including TBL and the polynomial vmull_p8) is baseline
        // on aarch64 — no detection needed.
        (
            Backend::Simd,
            Caps {
                wide: false,
                clmul: true,
            },
            "neon",
        )
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        (
            Backend::Swar,
            Caps {
                wide: false,
                clmul: false,
            },
            "none",
        )
    }
}

fn state() -> &'static State {
    static STATE: OnceLock<State> = OnceLock::new();
    STATE.get_or_init(|| {
        let (detected, caps, isa) = detect();
        let backend = match std::env::var("SLICING_GF_FORCE") {
            Ok(v) => match v.as_str() {
                "scalar" => Backend::Scalar,
                "swar" => Backend::Swar,
                // `simd` honors detection: forcing it on a host without a
                // usable ISA fails closed to the SWAR fallback, as does
                // any unrecognized value.
                "simd" => detected,
                _ => Backend::Swar,
            },
            Err(_) => detected,
        };
        let isa = if backend == Backend::Simd {
            isa
        } else {
            "none"
        };
        State { backend, caps, isa }
    })
}

/// The process-wide active backend, selected once at first use.
///
/// Detection order: the `SLICING_GF_FORCE` environment variable
/// (`scalar` / `swar` / `simd`; unknown values fail closed to
/// [`Backend::Swar`]), then runtime CPU feature detection.
#[inline]
pub fn backend() -> Backend {
    state().backend
}

/// Human-readable name of the instruction set the active [`Backend::Simd`]
/// kernels use (`"avx2+clmul"`, `"ssse3"`, `"neon"`, …), or `"none"`
/// when the active backend is not SIMD.
pub fn isa() -> &'static str {
    state().isa
}

#[inline]
pub(crate) fn caps() -> Caps {
    state().caps
}

/// Every backend that is usable on this host, in increasing order of
/// expected speed. [`Backend::Scalar`] and [`Backend::Swar`] are always
/// present; [`Backend::Simd`] is included only when detection found a
/// usable ISA. Benches and the proptest oracles iterate this.
pub fn available_backends() -> Vec<Backend> {
    let mut v = vec![Backend::Scalar, Backend::Swar];
    if detect().0 == Backend::Simd {
        v.push(Backend::Simd);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_and_swar_always_available() {
        let avail = available_backends();
        assert!(avail.contains(&Backend::Scalar));
        assert!(avail.contains(&Backend::Swar));
    }

    #[test]
    fn active_backend_is_available() {
        assert!(available_backends().contains(&backend()) || backend() == Backend::Swar);
    }

    #[test]
    fn isa_consistent_with_backend() {
        if backend() != Backend::Simd {
            assert_eq!(isa(), "none");
        } else {
            assert_ne!(isa(), "none");
        }
    }
}
