//! Fixture: lock guards vs `.await` points.

pub async fn bad_held(m: &Mutex<u32>, tx: &Chan) {
    let guard = m.lock();
    tx.send(*guard).await;
}

pub async fn bad_conditional(m: &Mutex<Slots>, tx: &Chan) {
    if let Some(v) = m.lock().get(0) {
        tx.send(v).await;
    }
}

pub async fn good_scoped(m: &Mutex<u32>, tx: &Chan) {
    let value = {
        let g = m.lock();
        *g
    };
    tx.send(value).await;
}

pub async fn good_dropped(m: &Mutex<u32>, tx: &Chan) {
    let g = m.lock();
    let v = *g;
    drop(g);
    tx.send(v).await;
}

pub async fn good_conditional(m: &Mutex<Slots>, tx: &Chan) {
    let mut v = 0;
    if let Some(x) = m.lock().get(0) {
        v = x;
    }
    tx.send(v).await;
}
