//! Authenticated encryption: ChaCha20 + HMAC-SHA256, encrypt-then-MAC.
//!
//! This is the construction the source uses to protect data messages with
//! the destination's secret key (§4.3.7): only the destination can decrypt
//! the data even though every relay carries `d` slices of it.

use crate::chacha20::ChaCha20;
use crate::hmac::{hmac_sha256, verify};
use crate::SymmetricKey;

/// MAC truncation length in bytes (full SHA-256 HMAC).
pub const TAG_LEN: usize = 32;
/// Nonce length in bytes.
pub const NONCE_LEN: usize = 12;

/// Failure modes of [`open`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SealError {
    /// Ciphertext shorter than nonce + tag.
    Truncated,
    /// MAC verification failed (corrupted or forged).
    BadTag,
}

impl std::fmt::Display for SealError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SealError::Truncated => write!(f, "sealed message too short"),
            SealError::BadTag => write!(f, "authentication tag mismatch"),
        }
    }
}

impl std::error::Error for SealError {}

/// Encrypt and authenticate `plaintext`; output layout is
/// `nonce ‖ ciphertext ‖ tag`.
pub fn seal<R: rand::Rng + ?Sized>(
    key: &SymmetricKey,
    plaintext: &[u8],
    rng: &mut R,
) -> Vec<u8> {
    let enc_key = key.derive(b"slicing-aead-enc");
    let mac_key = key.derive(b"slicing-aead-mac");
    let mut nonce = [0u8; NONCE_LEN];
    rng.fill_bytes(&mut nonce);
    let mut out = Vec::with_capacity(NONCE_LEN + plaintext.len() + TAG_LEN);
    out.extend_from_slice(&nonce);
    out.extend_from_slice(plaintext);
    ChaCha20::xor(&enc_key.0, &nonce, 0, &mut out[NONCE_LEN..]);
    let tag = hmac_sha256(&mac_key.0, &out);
    out.extend_from_slice(&tag);
    out
}

/// Verify and decrypt a message produced by [`seal`].
pub fn open(key: &SymmetricKey, sealed: &[u8]) -> Result<Vec<u8>, SealError> {
    if sealed.len() < NONCE_LEN + TAG_LEN {
        return Err(SealError::Truncated);
    }
    let enc_key = key.derive(b"slicing-aead-enc");
    let mac_key = key.derive(b"slicing-aead-mac");
    let (body, tag_bytes) = sealed.split_at(sealed.len() - TAG_LEN);
    let expected = hmac_sha256(&mac_key.0, body);
    let mut tag = [0u8; TAG_LEN];
    tag.copy_from_slice(tag_bytes);
    if !verify(&expected, &tag) {
        return Err(SealError::BadTag);
    }
    let mut nonce = [0u8; NONCE_LEN];
    nonce.copy_from_slice(&body[..NONCE_LEN]);
    let mut plaintext = body[NONCE_LEN..].to_vec();
    ChaCha20::xor(&enc_key.0, &nonce, 0, &mut plaintext);
    Ok(plaintext)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn key() -> SymmetricKey {
        SymmetricKey([0x42; 32])
    }

    #[test]
    fn round_trip() {
        let mut rng = StdRng::seed_from_u64(1);
        let msg = b"let's meet at 5pm";
        let sealed = seal(&key(), msg, &mut rng);
        assert_eq!(open(&key(), &sealed).unwrap(), msg);
    }

    #[test]
    fn empty_message_round_trip() {
        let mut rng = StdRng::seed_from_u64(2);
        let sealed = seal(&key(), b"", &mut rng);
        assert_eq!(open(&key(), &sealed).unwrap(), b"");
    }

    #[test]
    fn tamper_detected() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sealed = seal(&key(), b"secret", &mut rng);
        let mid = sealed.len() / 2;
        sealed[mid] ^= 0x01;
        assert_eq!(open(&key(), &sealed), Err(SealError::BadTag));
    }

    #[test]
    fn wrong_key_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        let sealed = seal(&key(), b"secret", &mut rng);
        let other = SymmetricKey([0x43; 32]);
        assert_eq!(open(&other, &sealed), Err(SealError::BadTag));
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(open(&key(), &[0u8; 10]), Err(SealError::Truncated));
    }

    #[test]
    fn nonces_make_ciphertexts_differ() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = seal(&key(), b"same message", &mut rng);
        let b = seal(&key(), b"same message", &mut rng);
        assert_ne!(a, b);
    }
}
