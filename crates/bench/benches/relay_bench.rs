//! Criterion benches for the relay data plane: packets/sec through
//! `RelayNode::handle_packet` and the cost of the timer `poll`, at
//! 1 / 64 / 1024 concurrent flows (the §7.1 per-node multi-flow daemon,
//! scaled toward the ROADMAP's "millions of users" north star), plus a
//! multi-threaded sharded scaling run: the same message stream pushed
//! through a `ShardedRelay` split 1/2/4/8 ways, one thread per shard,
//! reporting aggregate packets/sec (flows have shard affinity, so flows
//! are the unit of parallelism — 1 flow cannot use 8 shards).
//!
//! Each iteration replays one full data message for one flow: the relay
//! receives one wire packet from each parent (decoded from bytes, as the
//! daemon would), completes the gather and flushes downstream — i.e. the
//! whole receive → gather → re-code → forward hot path.
//!
//! Set `RELAY_BENCH_QUICK=1` for a seconds-long smoke run (CI exercises
//! the sharded path this way); leave it unset for the recorded numbers.

// criterion_group! expands to an undocumented fn.
#![allow(missing_docs)]

use std::sync::{Barrier, Mutex};
use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use slicing_core::{
    DataMode, DestPlacement, GraphParams, OverlayAddr, Packet, RelayNode, RelayShard,
    ShardedRelay, SourceSession, Tick,
};

/// Wire offset of the `seq` header field (magic 2 + version 1 + kind 1 +
/// flow id 8).
const SEQ_OFFSET: usize = 12;

/// Whether to run the short smoke configuration.
fn quick() -> bool {
    std::env::var_os("RELAY_BENCH_QUICK").is_some()
}

/// One established flow hosted by the benched relay: the wire bytes of a
/// template data message (one packet per parent) whose `seq` field gets
/// patched per iteration.
struct FlowTemplates {
    packets: Vec<(OverlayAddr, Vec<u8>)>,
}

/// Build `flows` independent small graphs, feeding each one's stage-1
/// setup packets to `feed` (the relay under test) and returning the
/// per-flow data-packet templates.
fn establish_with(
    flows: usize,
    mut feed: impl FnMut(OverlayAddr, &Packet),
) -> Vec<FlowTemplates> {
    let params = GraphParams::new(3, 2)
        .with_paths(2)
        .with_data_mode(DataMode::Recode)
        .with_dest_placement(DestPlacement::LastStage);
    let pseudo: Vec<OverlayAddr> = (0..2u64).map(|i| OverlayAddr(10_000 + i)).collect();
    let candidates: Vec<OverlayAddr> = (0..16u64).map(|i| OverlayAddr(20_000 + i)).collect();
    let mut templates = Vec::with_capacity(flows);
    for f in 0..flows {
        let (mut source, setup) = SourceSession::establish(
            params,
            &pseudo,
            &candidates,
            OverlayAddr(1),
            1000 + f as u64,
        )
        .expect("valid params");
        let target = source.graph().stages[1][0];
        for instr in setup {
            if instr.to == target {
                feed(instr.from, &instr.packet);
            }
        }
        let payload = vec![0xA5u8; 1200];
        let (_, sends) = source.send_message(&payload).expect("within chunk budget");
        let packets = sends
            .into_iter()
            .filter(|s| s.to == target)
            .map(|s| (s.from, s.packet.encode().to_vec()))
            .collect();
        templates.push(FlowTemplates { packets });
    }
    templates
}

/// Single-shard establishment for the classic groups.
fn establish(flows: usize) -> (RelayNode, Vec<FlowTemplates>) {
    let mut relay = RelayNode::new(OverlayAddr(42), 7);
    let templates = establish_with(flows, |from, p| {
        relay.handle_packet(Tick(0), from, p);
    });
    assert_eq!(
        relay.stats().flows_established,
        flows as u64,
        "all benched flows must establish"
    );
    (relay, templates)
}

fn relay_data_plane(c: &mut Criterion) {
    let (meas, warm) = if quick() {
        (Duration::from_millis(80), Duration::from_millis(20))
    } else {
        (Duration::from_millis(800), Duration::from_millis(200))
    };
    let mut group = c.benchmark_group("relay_data_plane");
    group.sample_size(20);
    group.measurement_time(meas);
    group.warm_up_time(warm);
    for flows in [1usize, 64, 1024] {
        let (mut relay, mut templates) = establish(flows);
        // Two parent packets per message = two handle_packet calls/iter.
        group.throughput(Throughput::Elements(2));
        let mut seq: u32 = 1;
        let mut next = 0usize;
        group.bench_with_input(
            BenchmarkId::new("handle_packet", flows),
            &flows,
            |b, _| {
                b.iter(|| {
                    let t = &mut templates[next];
                    next = (next + 1) % flows;
                    seq = seq.wrapping_add(1);
                    let mut outputs = 0usize;
                    for (from, bytes) in &mut t.packets {
                        bytes[SEQ_OFFSET..SEQ_OFFSET + 4].copy_from_slice(&seq.to_le_bytes());
                        let packet = Packet::decode(bytes).expect("valid template");
                        let out = relay.handle_packet(Tick(1), *from, &packet);
                        outputs += out.sends.len();
                    }
                    black_box(outputs)
                });
            },
        );
    }
    group.finish();

    // poll() with nothing expired: the per-tick cost a daemon pays every
    // 50 ms regardless of traffic.
    let mut group = c.benchmark_group("relay_poll_idle");
    group.sample_size(20);
    group.measurement_time(if quick() { meas } else { Duration::from_millis(400) });
    group.warm_up_time(if quick() { warm } else { Duration::from_millis(100) });
    for flows in [1usize, 64, 1024] {
        let (mut relay, _templates) = establish(flows);
        group.bench_with_input(BenchmarkId::new("poll", flows), &flows, |b, _| {
            b.iter(|| black_box(relay.poll(Tick(100)).sends.len()));
        });
    }
    group.finish();
}

/// One worker's share of a sharded run: its shard plus the templates the
/// router assigns to it.
struct ShardWork {
    shard: RelayShard,
    templates: Vec<FlowTemplates>,
}

/// Aggregate packets/sec through a `ShardedRelay` split `shards` ways,
/// one OS thread per shard (the worker-task model of the sharded
/// daemon), over `run_for` of wall clock.
fn sharded_rate(shards: usize, flows: usize, run_for: Duration) -> f64 {
    let mut relay = ShardedRelay::new(OverlayAddr(42), 7, shards);
    let templates = establish_with(flows, |from, p| {
        relay.handle_packet(Tick(0), from, p);
    });
    assert_eq!(relay.stats().flows_established, flows as u64);
    let router = relay.router().clone();
    let (shard_states, _, _) = relay.into_parts();

    // Partition flows exactly as the ingress dispatcher would.
    let mut work: Vec<ShardWork> = shard_states
        .into_iter()
        .map(|shard| ShardWork {
            shard,
            templates: Vec::new(),
        })
        .collect();
    for t in templates {
        let flow = Packet::decode(&t.packets[0].1)
            .expect("valid template")
            .header
            .flow_id;
        work[router.route(flow)].templates.push(t);
    }

    let barrier = Barrier::new(shards + 1);
    let total_packets = Mutex::new(0u64);
    // Placeholder; the driver stores the real deadline before releasing
    // the barrier the workers wait on.
    let deadline = Mutex::new(Instant::now());
    std::thread::scope(|scope| {
        for w in &mut work {
            let barrier = &barrier;
            let total_packets = &total_packets;
            let deadline = &deadline;
            scope.spawn(move || {
                barrier.wait();
                let stop = *deadline.lock().unwrap();
                let mut seq: u32 = 1;
                let mut next = 0usize;
                let mut packets = 0u64;
                if w.templates.is_empty() {
                    return; // no flows landed on this shard
                }
                // Check the clock once per 64 messages, not per packet.
                'outer: loop {
                    for _ in 0..64 {
                        let n = w.templates.len();
                        let t = &mut w.templates[next];
                        next = (next + 1) % n;
                        seq = seq.wrapping_add(1);
                        for (from, bytes) in &mut t.packets {
                            bytes[SEQ_OFFSET..SEQ_OFFSET + 4]
                                .copy_from_slice(&seq.to_le_bytes());
                            let packet = Packet::decode(bytes).expect("valid template");
                            black_box(w.shard.handle_packet(Tick(1), *from, &packet).sends.len());
                            packets += 1;
                        }
                    }
                    if Instant::now() >= stop {
                        break 'outer;
                    }
                }
                *total_packets.lock().unwrap() += packets;
            });
        }
        let start = Instant::now();
        *deadline.lock().unwrap() = start + run_for;
        barrier.wait();
    });
    let elapsed = run_for.as_secs_f64();
    let packets = *total_packets.lock().unwrap();
    packets as f64 / elapsed
}

/// The sharded scaling table (printed, not a criterion group: the
/// measured quantity is aggregate throughput across threads).
fn sharded_scaling(_c: &mut Criterion) {
    let run_for = if quick() {
        Duration::from_millis(60)
    } else {
        Duration::from_millis(400)
    };
    let flow_counts: &[usize] = if quick() { &[1, 64] } else { &[1, 64, 1024] };
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("\nsharded relay scaling (aggregate packets/sec, one thread per shard):");
    println!(
        "available hardware parallelism: {cores} core(s) — speedup is bounded by min(shards, cores, flows)"
    );
    println!("{:>8} {:>8} {:>14} {:>10}", "shards", "flows", "pkts/s", "vs 1");
    for &flows in flow_counts {
        let mut base = 0.0f64;
        for &shards in &[1usize, 2, 4, 8] {
            let rate = sharded_rate(shards, flows, run_for);
            if shards == 1 {
                base = rate;
            }
            println!(
                "{:>8} {:>8} {:>14.0} {:>9.2}x",
                shards,
                flows,
                rate,
                rate / base.max(1.0)
            );
        }
    }
}

criterion_group!(benches, relay_data_plane, sharded_scaling);
criterion_main!(benches);
