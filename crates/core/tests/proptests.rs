//! Property tests for the protocol engine: end-to-end delivery across
//! random shapes/seeds, robustness to garbage and replay, and failure
//! tolerance within the redundancy budget.

use proptest::prelude::*;
use slicing_core::testnet::TestNet;
use slicing_core::{DataMode, DestPlacement, GraphParams, OverlayAddr, SourceSession};

fn addrs(base: u64, n: usize) -> Vec<OverlayAddr> {
    (0..n as u64).map(|i| OverlayAddr(base + i)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// End-to-end delivery for arbitrary messages, shapes and seeds
    /// (Map mode: must be lossless).
    #[test]
    fn always_delivers(seed in any::<u64>(), l in 1usize..6, d in 2usize..4,
                       msg in proptest::collection::vec(any::<u8>(), 0..600)) {
        let pseudo = addrs(10_000, d);
        let candidates = addrs(20_000, l * d + 6);
        let dest = OverlayAddr(1);
        let mut nodes = candidates.clone();
        nodes.push(dest);
        let (mut source, setup) = SourceSession::establish(
            GraphParams::new(l, d), &pseudo, &candidates, dest, seed,
        ).unwrap();
        let mut net = TestNet::new(&nodes, seed);
        net.submit(setup);
        net.run_to_quiescence(Some(&mut source));
        let chunk = &msg[..msg.len().min(source.max_chunk_len())];
        let (_, sends) = source.send_message(chunk).expect("within chunk budget");
        net.submit(sends);
        net.run_to_quiescence(Some(&mut source));
        let got = net.messages_for(dest);
        prop_assert_eq!(got.len(), 1);
        prop_assert_eq!(&got[0].1[..], chunk);
    }

    /// Any single relay failure is survivable when d' > d, regardless of
    /// which relay fails or when placement randomizes.
    #[test]
    fn single_failure_tolerated(seed in any::<u64>(), victim_seed in any::<u8>()) {
        let (l, d, dp) = (4usize, 2usize, 3usize);
        let pseudo = addrs(10_000, dp);
        let candidates = addrs(20_000, l * dp + 6);
        let dest = OverlayAddr(1);
        let mut nodes = candidates.clone();
        nodes.push(dest);
        let params = GraphParams::new(l, d)
            .with_paths(dp)
            .with_dest_placement(DestPlacement::LastStage);
        let (mut source, setup) = SourceSession::establish(
            params, &pseudo, &candidates, dest, seed,
        ).unwrap();
        let mut net = TestNet::new(&nodes, seed);
        net.submit(setup);
        net.run_to_quiescence(Some(&mut source));
        // Pick any non-destination relay as the victim.
        let relays: Vec<OverlayAddr> = source.graph().relay_addrs()
            .filter(|&a| a != dest).collect();
        let victim = relays[victim_seed as usize % relays.len()];
        net.fail(victim);
        let (_, sends) = source.send_message(b"survives one failure").expect("within chunk budget");
        net.submit(sends);
        net.settle(Some(&mut source), 1_500, l + 1);
        let got = net.messages_for(dest);
        prop_assert_eq!(got.len(), 1, "victim {:?}", victim);
    }

    /// Garbage packets aimed at live flows never panic the relays and
    /// never corrupt delivered plaintext.
    #[test]
    fn garbage_resistant(seed in any::<u64>(),
                         garbage in proptest::collection::vec(any::<u8>(), 0..200)) {
        let (l, d) = (3usize, 2usize);
        let pseudo = addrs(10_000, d);
        let candidates = addrs(20_000, 12);
        let dest = OverlayAddr(1);
        let mut nodes = candidates.clone();
        nodes.push(dest);
        let (mut source, setup) = SourceSession::establish(
            GraphParams::new(l, d), &pseudo, &candidates, dest, seed,
        ).unwrap();
        let mut net = TestNet::new(&nodes, seed);
        net.submit(setup);
        net.run_to_quiescence(Some(&mut source));
        // Inject garbage directly into every relay.
        let garbage_addr = OverlayAddr(424242);
        let relay_addrs: Vec<OverlayAddr> = net.relays.keys().copied().collect();
        for addr in relay_addrs {
            if let Ok(p) = slicing_wire::Packet::decode(&garbage) {
                let relay = net.relays.get_mut(&addr).unwrap();
                let _ = relay.handle_packet(slicing_core::Tick(5), garbage_addr, &p);
            }
        }
        let (_, sends) = source.send_message(b"clean").expect("within chunk budget");
        net.submit(sends);
        net.run_to_quiescence(Some(&mut source));
        let got = net.messages_for(dest);
        prop_assert_eq!(got.len(), 1);
        prop_assert_eq!(&got[0].1[..], b"clean");
    }

    /// Replayed data packets are deduplicated: the destination delivers
    /// each sequence number exactly once.
    #[test]
    fn replay_deduplicated(seed in any::<u64>()) {
        let (l, d) = (3usize, 2usize);
        let pseudo = addrs(10_000, d);
        let candidates = addrs(20_000, 12);
        let dest = OverlayAddr(1);
        let mut nodes = candidates.clone();
        nodes.push(dest);
        let (mut source, setup) = SourceSession::establish(
            GraphParams::new(l, d), &pseudo, &candidates, dest, seed,
        ).unwrap();
        let mut net = TestNet::new(&nodes, seed);
        net.submit(setup);
        net.run_to_quiescence(Some(&mut source));
        let (_, sends) = source.send_message(b"once").expect("within chunk budget");
        net.submit(sends.clone());
        net.run_to_quiescence(Some(&mut source));
        // Replay the identical packets.
        net.submit(sends);
        net.run_to_quiescence(Some(&mut source));
        let got = net.messages_for(dest);
        prop_assert_eq!(got.len(), 1, "replay must not double-deliver");
    }

    /// Recode mode with redundancy delivers reliably too (rank collapse
    /// is covered by the extra slice).
    #[test]
    fn recode_with_redundancy_delivers(seed in any::<u64>()) {
        let (l, d, dp) = (4usize, 2usize, 3usize);
        let pseudo = addrs(10_000, dp);
        let candidates = addrs(20_000, l * dp + 6);
        let dest = OverlayAddr(1);
        let mut nodes = candidates.clone();
        nodes.push(dest);
        let params = GraphParams::new(l, d)
            .with_paths(dp)
            .with_data_mode(DataMode::Recode);
        let (mut source, setup) = SourceSession::establish(
            params, &pseudo, &candidates, dest, seed,
        ).unwrap();
        let mut net = TestNet::new(&nodes, seed);
        net.submit(setup);
        net.run_to_quiescence(Some(&mut source));
        let (_, sends) = source.send_message(b"recoded").expect("within chunk budget");
        net.submit(sends);
        net.run_to_quiescence(Some(&mut source));
        let got = net.messages_for(dest);
        prop_assert_eq!(got.len(), 1);
    }
}
