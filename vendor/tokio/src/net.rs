//! Async TCP and UDP built on `std::net` nonblocking sockets.
//!
//! There is no epoll reactor: would-block operations park on the timer
//! thread and retry on a 1 ms tick. That adds up to ~1 ms latency per
//! wait, which is well inside the loopback experiments' tolerances.

use std::io;
use std::net::{SocketAddr, ToSocketAddrs};
use std::time::Duration;

use crate::time::sleep;

const RETRY_TICK: Duration = Duration::from_millis(1);

/// A nonblocking TCP listener.
#[derive(Debug)]
pub struct TcpListener {
    inner: std::net::TcpListener,
}

impl TcpListener {
    /// Bind to `addr` (resolved synchronously; loopback binds are
    /// instantaneous).
    pub async fn bind<A: ToSocketAddrs>(addr: A) -> io::Result<TcpListener> {
        let inner = std::net::TcpListener::bind(addr)?;
        inner.set_nonblocking(true)?;
        Ok(TcpListener { inner })
    }

    /// The bound local address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }

    /// Accept one connection.
    pub async fn accept(&self) -> io::Result<(TcpStream, SocketAddr)> {
        loop {
            match self.inner.accept() {
                Ok((stream, peer)) => {
                    stream.set_nonblocking(true)?;
                    return Ok((TcpStream { inner: stream }, peer));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => sleep(RETRY_TICK).await,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

/// A nonblocking TCP stream.
#[derive(Debug)]
pub struct TcpStream {
    inner: std::net::TcpStream,
}

impl TcpStream {
    /// Connect to `addr`.
    ///
    /// The connect itself is performed synchronously — on the loopback
    /// paths this runtime serves, connection establishment either
    /// succeeds or is refused within microseconds.
    pub async fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<TcpStream> {
        let inner = std::net::TcpStream::connect(addr)?;
        inner.set_nonblocking(true)?;
        Ok(TcpStream { inner })
    }

    /// Disable Nagle's algorithm.
    pub fn set_nodelay(&self, nodelay: bool) -> io::Result<()> {
        self.inner.set_nodelay(nodelay)
    }

    /// The peer's address.
    pub fn peer_addr(&self) -> io::Result<SocketAddr> {
        self.inner.peer_addr()
    }

    /// The local address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }

    pub(crate) async fn read_some(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        use std::io::Read;
        loop {
            match (&self.inner).read(buf) {
                Ok(n) => return Ok(n),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => sleep(RETRY_TICK).await,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    pub(crate) async fn write_some(&mut self, buf: &[u8]) -> io::Result<usize> {
        use std::io::Write;
        loop {
            match (&self.inner).write(buf) {
                Ok(n) => return Ok(n),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => sleep(RETRY_TICK).await,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

/// A nonblocking UDP socket.
///
/// Besides the classic `send_to`/`recv_from` pair, the socket exposes
/// `sendmmsg`/`recvmmsg`-shaped batch calls ([`UdpSocket::send_many_to`],
/// [`UdpSocket::recv_many_from`]) so callers that already group
/// same-destination datagrams pay one call — and, on a kernel-backed
/// runtime, one syscall — per batch instead of one per datagram.
#[derive(Debug)]
pub struct UdpSocket {
    inner: std::net::UdpSocket,
}

impl UdpSocket {
    /// Bind to `addr` (resolved synchronously; loopback binds are
    /// instantaneous).
    pub async fn bind<A: ToSocketAddrs>(addr: A) -> io::Result<UdpSocket> {
        let inner = std::net::UdpSocket::bind(addr)?;
        inner.set_nonblocking(true)?;
        Ok(UdpSocket { inner })
    }

    /// The bound local address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }

    /// Send one datagram to `target`.
    pub async fn send_to(&self, buf: &[u8], target: SocketAddr) -> io::Result<usize> {
        loop {
            match self.inner.send_to(buf, target) {
                Ok(n) => return Ok(n),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => sleep(RETRY_TICK).await,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Receive one datagram into `buf`; returns `(len, sender)`.
    /// Datagrams longer than `buf` are truncated (standard UDP
    /// semantics).
    pub async fn recv_from(&self, buf: &mut [u8]) -> io::Result<(usize, SocketAddr)> {
        loop {
            match self.inner.recv_from(buf) {
                Ok(ok) => return Ok(ok),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => sleep(RETRY_TICK).await,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// `sendmmsg`-shaped batch transmit: send every datagram in
    /// `datagrams` to `target` in one call, returning the count sent.
    ///
    /// The batch completes even across transient would-block pauses —
    /// like `sendmmsg` retried on the remainder — so callers treat it as
    /// one fire-and-forget unit. A hard error mid-batch returns that
    /// error; earlier datagrams in the batch are already on the wire.
    pub async fn send_many_to<B: AsRef<[u8]>>(
        &self,
        datagrams: &[B],
        target: SocketAddr,
    ) -> io::Result<usize> {
        let mut sent = 0;
        'outer: for d in datagrams {
            loop {
                match self.inner.send_to(d.as_ref(), target) {
                    Ok(_) => {
                        sent += 1;
                        continue 'outer;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => sleep(RETRY_TICK).await,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => return Err(e),
                }
            }
        }
        Ok(sent)
    }

    /// `recvmmsg`-shaped batch receive: await at least one datagram,
    /// then drain — without further waiting — whatever else is already
    /// queued on the socket, up to `max` datagrams of at most `max_len`
    /// bytes each. One wakeup per burst instead of one per datagram.
    pub async fn recv_many_from(
        &self,
        max: usize,
        max_len: usize,
    ) -> io::Result<Vec<(Vec<u8>, SocketAddr)>> {
        let mut out = Vec::new();
        let mut buf = vec![0u8; max_len];
        loop {
            match self.inner.recv_from(&mut buf) {
                Ok((n, from)) => {
                    out.push((buf[..n].to_vec(), from));
                    if out.len() >= max.max(1) {
                        return Ok(out);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if !out.is_empty() {
                        return Ok(out);
                    }
                    sleep(RETRY_TICK).await;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}
