//! ChaCha20 stream cipher (RFC 8439).

/// "expand 32-byte k" constants.
const SIGMA: [u32; 4] = [0x61707865, 0x3320646e, 0x79622d32, 0x6b206574];

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

/// Compute one 64-byte keystream block for (key, nonce, counter).
pub fn block(key: &[u8; 32], nonce: &[u8; 12], counter: u32) -> [u8; 64] {
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&SIGMA);
    for i in 0..8 {
        state[4 + i] = u32::from_le_bytes([
            key[i * 4],
            key[i * 4 + 1],
            key[i * 4 + 2],
            key[i * 4 + 3],
        ]);
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = u32::from_le_bytes([
            nonce[i * 4],
            nonce[i * 4 + 1],
            nonce[i * 4 + 2],
            nonce[i * 4 + 3],
        ]);
    }
    let mut working = state;
    for _ in 0..10 {
        // Column rounds.
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        // Diagonal rounds.
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }
    let mut out = [0u8; 64];
    for i in 0..16 {
        let v = working[i].wrapping_add(state[i]);
        out[i * 4..(i + 1) * 4].copy_from_slice(&v.to_le_bytes());
    }
    out
}

/// A ChaCha20 keystream positioned at an arbitrary block counter.
///
/// `apply` XORs the keystream into a buffer; applying twice with the same
/// (key, nonce, counter) decrypts.
pub struct ChaCha20 {
    key: [u8; 32],
    nonce: [u8; 12],
    counter: u32,
    buf: [u8; 64],
    /// Bytes of `buf` already consumed.
    used: usize,
}

impl ChaCha20 {
    /// Create a cipher starting at block `counter` (RFC examples use 1 for
    /// payload encryption; 0 is fine for our protocol use).
    pub fn new(key: &[u8; 32], nonce: &[u8; 12], counter: u32) -> Self {
        ChaCha20 {
            key: *key,
            nonce: *nonce,
            counter,
            buf: [0; 64],
            used: 64,
        }
    }

    /// XOR the keystream into `data` in place.
    pub fn apply(&mut self, data: &mut [u8]) {
        for byte in data.iter_mut() {
            if self.used == 64 {
                self.buf = block(&self.key, &self.nonce, self.counter);
                self.counter = self.counter.wrapping_add(1);
                self.used = 0;
            }
            *byte ^= self.buf[self.used];
            self.used += 1;
        }
    }

    /// Convenience: encrypt/decrypt a buffer with a one-shot cipher.
    pub fn xor(key: &[u8; 32], nonce: &[u8; 12], counter: u32, data: &mut [u8]) {
        ChaCha20::new(key, nonce, counter).apply(data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// RFC 8439 §2.3.2 block function test vector.
    #[test]
    fn rfc8439_block_vector() {
        let mut key = [0u8; 32];
        for (i, k) in key.iter_mut().enumerate() {
            *k = i as u8;
        }
        let nonce = [
            0x00, 0x00, 0x00, 0x09, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00,
        ];
        let out = block(&key, &nonce, 1);
        assert_eq!(
            hex(&out),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
        );
    }

    /// RFC 8439 §2.4.2 encryption test (first 32 bytes of ciphertext).
    #[test]
    fn rfc8439_encryption_prefix() {
        let mut key = [0u8; 32];
        for (i, k) in key.iter_mut().enumerate() {
            *k = i as u8;
        }
        let nonce = [
            0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00,
        ];
        let mut data = *b"Ladies and Gentlemen of the class of '99: If I could offer you \
only one tip for the future, sunscreen would be it.";
        ChaCha20::xor(&key, &nonce, 1, &mut data);
        assert_eq!(
            hex(&data[..32]),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
        );
    }

    #[test]
    fn round_trip() {
        let key = [7u8; 32];
        let nonce = [3u8; 12];
        let original: Vec<u8> = (0..300u32).map(|i| (i * 7 % 256) as u8).collect();
        let mut data = original.clone();
        ChaCha20::xor(&key, &nonce, 0, &mut data);
        assert_ne!(data, original);
        ChaCha20::xor(&key, &nonce, 0, &mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn incremental_equals_oneshot() {
        let key = [9u8; 32];
        let nonce = [1u8; 12];
        let mut oneshot = vec![0u8; 500];
        ChaCha20::xor(&key, &nonce, 0, &mut oneshot);
        let mut incremental = vec![0u8; 500];
        let mut c = ChaCha20::new(&key, &nonce, 0);
        for chunk in incremental.chunks_mut(13) {
            c.apply(chunk);
        }
        assert_eq!(oneshot, incremental);
    }

    #[test]
    fn different_nonces_differ() {
        let key = [1u8; 32];
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        ChaCha20::xor(&key, &[0u8; 12], 0, &mut a);
        ChaCha20::xor(&key, &[1u8; 12], 0, &mut b);
        assert_ne!(a, b);
    }
}
