//! Closed-form transfer-success probabilities (§8.1, Eqs. 6–7).

/// Binomial coefficient as f64.
fn choose(n: u64, k: u64) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut acc = 1.0f64;
    for i in 0..k {
        acc *= (n - i) as f64 / (i + 1) as f64;
    }
    acc
}

/// Probability that a whole onion path of length `l` survives when each
/// node independently fails with probability `p`: `(1−p)^L`.
pub fn path_success(l: u64, p: f64) -> f64 {
    (1.0 - p).powi(l as i32)
}

/// Standard onion routing (single path): succeeds iff no node fails.
pub fn standard_onion_success(l: u64, p: f64) -> f64 {
    path_success(l, p)
}

/// Eq. 6 — onion routing with erasure codes over `d′` disjoint paths,
/// needing any `d` intact: `Σ_{i=d..d′} C(d′,i) q^i (1−q)^{d′−i}` with
/// `q = (1−p)^L`.
pub fn onion_ec_success(l: u64, d: u64, d_prime: u64, p: f64) -> f64 {
    let q = path_success(l, p);
    (d..=d_prime)
        .map(|i| chooseterm(d_prime, i, q))
        .sum()
}

/// Eq. 7 — information slicing with per-stage regeneration: every stage
/// must keep at least `d` of its `d′` nodes, independently:
/// `[Σ_{i=d..d′} C(d′,i)(1−p)^i p^{d′−i}]^L`.
pub fn slicing_success(l: u64, d: u64, d_prime: u64, p: f64) -> f64 {
    let stage: f64 = (d..=d_prime)
        .map(|i| chooseterm(d_prime, i, 1.0 - p))
        .sum();
    stage.powi(l as i32)
}

fn chooseterm(n: u64, i: u64, q: f64) -> f64 {
    choose(n, i) * q.powi(i as i32) * (1.0 - q).powi((n - i) as i32)
}

/// One row of the Fig. 16 comparison at redundancy `R = (d′−d)/d`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SuccessRow {
    /// Added redundancy.
    pub redundancy: f64,
    /// Eq. 7.
    pub slicing: f64,
    /// Eq. 6.
    pub onion_ec: f64,
    /// Single path.
    pub standard_onion: f64,
}

/// Sweep `d′` from `d` upward and tabulate Fig. 16.
pub fn fig16_rows(l: u64, d: u64, p: f64, max_d_prime: u64) -> Vec<SuccessRow> {
    (d..=max_d_prime)
        .map(|dp| SuccessRow {
            redundancy: (dp - d) as f64 / d as f64,
            slicing: slicing_success(l, d, dp, p),
            onion_ec: onion_ec_success(l, d, dp, p),
            standard_onion: standard_onion_success(l, p),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_failures_always_succeed() {
        assert!((slicing_success(5, 2, 3, 0.0) - 1.0).abs() < 1e-12);
        assert!((onion_ec_success(5, 2, 3, 0.0) - 1.0).abs() < 1e-12);
        assert!((standard_onion_success(5, 0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn certain_failure_never_succeeds() {
        assert!(slicing_success(5, 2, 3, 1.0) < 1e-12);
        assert!(onion_ec_success(5, 2, 3, 1.0) < 1e-12);
    }

    #[test]
    fn no_redundancy_both_schemes_equal() {
        // With d' = d both schemes need all d paths / all stage nodes:
        // probability (1-p)^(L·d).
        for p in [0.05, 0.1, 0.3] {
            let s = slicing_success(5, 2, 2, p);
            let o = onion_ec_success(5, 2, 2, p);
            let expected = (1.0f64 - p).powi(10);
            assert!((s - expected).abs() < 1e-12);
            assert!((o - expected).abs() < 1e-12);
        }
    }

    /// Fig. 16's headline: for the same redundancy, slicing beats onion
    /// with erasure codes — and the gap grows with p.
    #[test]
    fn slicing_beats_onion_ec() {
        for p in [0.1, 0.3] {
            for dp in 3..=8u64 {
                let s = slicing_success(5, 2, dp, p);
                let o = onion_ec_success(5, 2, dp, p);
                assert!(
                    s >= o - 1e-12,
                    "slicing {s} must beat onion-EC {o} at p={p}, d'={dp}"
                );
            }
        }
        // Strict separation at moderate redundancy.
        assert!(slicing_success(5, 2, 4, 0.3) > onion_ec_success(5, 2, 4, 0.3) + 0.2);
    }

    /// Redundancy helps monotonically.
    #[test]
    fn monotone_in_redundancy() {
        let mut last = 0.0;
        for dp in 2..=8u64 {
            let s = slicing_success(5, 2, dp, 0.1);
            assert!(s >= last - 1e-12);
            last = s;
        }
    }

    #[test]
    fn fig16_rows_shape() {
        let rows = fig16_rows(5, 2, 0.1, 12);
        assert_eq!(rows.len(), 11);
        assert_eq!(rows[0].redundancy, 0.0);
        assert!((rows.last().unwrap().redundancy - 5.0).abs() < 1e-12);
        // With p=0.1, slicing reaches near-certain success with little
        // redundancy (the paper's "a little redundancy results in a very
        // high success probability").
        let r1 = &rows[2]; // R = 1.0
        assert!(r1.slicing > 0.95, "slicing at R=1: {}", r1.slicing);
        assert!(r1.slicing > r1.onion_ec);
    }
}
