//! Finite-field arithmetic and linear algebra for information slicing.
//!
//! Everything the paper's coding layer needs lives here:
//!
//! * [`Field`] — the trait all coded arithmetic is generic over. The paper
//!   (note 1, §4.3.2) works in `F_{p^q}`; we provide the two binary
//!   extension fields it effectively uses:
//!   [`Gf256`] (byte-oriented payload coding) and [`Gf65536`]
//!   (word-oriented, matching the paper's example of splitting an IP
//!   address into 16-bit low/high words, Eq. 1).
//! * [`Matrix`] — dense row-major matrices with Gauss–Jordan inversion,
//!   rank, multiplication and linear solving. Used for the random
//!   transform `A`, its inverse at the receiving node (`I = A⁻¹ I*`,
//!   §4.3.5), and the redundant `d′ × d` transform of §4.4.
//! * [`mds`] — constructions of `d′ × d` matrices in which *any* `d` rows
//!   are linearly independent ("any d of d′ slices decode", §4.4(b)):
//!   verified-random generation and provably-MDS randomized Cauchy
//!   matrices.
//! * [`bulk`] — the byte-slice kernels (`mul_add_slice`, `mul_slice`,
//!   `xor_slice`, `dot_slice8`, `mul_add_fused`) every packet payload in
//!   the workspace is coded through.
//! * [`simd`] — the runtime-dispatched backends behind those kernels:
//!   SSSE3/AVX2 split-nibble and PCLMULQDQ kernels on x86_64, NEON on
//!   aarch64, with the table-driven SWAR paths as the always-available
//!   fallback and a pure-scalar oracle (`SLICING_GF_FORCE` pins one).
//!
//! All randomness is taken through `rand::Rng` so protocol code and tests
//! can seed deterministically.
//!
//! `unsafe` is denied crate-wide except inside [`simd`]'s `std::arch`
//! kernels and the `#[repr(transparent)]` slice casts that feed them;
//! every unsafe block carries a SAFETY comment and is covered by the
//! proptest oracle suite.

#![deny(unsafe_code)]

pub mod bulk;
pub mod field;
pub mod gf256;
pub mod gf65536;
pub mod matrix;
pub mod mds;
pub mod simd;

pub use field::{axpy, dot, scale, sub_scaled, Field};
pub use gf256::Gf256;
pub use gf65536::Gf65536;
pub use matrix::Matrix;
pub use simd::Backend;
