//! End-to-end streamed session transfers over the live overlay: a
//! payload ≥ 32 × `max_chunk_len()` crosses a sharded relay overlay on
//! both transports, reassembles byte-identically at a colocated
//! destination session, and leaves no per-message state behind once the
//! acks drain the source window.

use std::time::Duration;

use slicing_core::{DestPlacement, GraphParams};
use slicing_overlay::experiment::Transport;
use slicing_overlay::{run_session_transfer, SessionTransferConfig};

fn big_stream_cfg() -> SessionTransferConfig {
    SessionTransferConfig {
        params: GraphParams::new(3, 2).with_dest_placement(DestPlacement::LastStage),
        // max_chunk_len for the default 1500 B budget and d = 2 is
        // ~2.9 KB; 96 KB spans well over 32 chunks.
        payload_len: 96_000,
        messages: 1,
        relay_shards: 2,
        session_shards: 2,
        timeout: Duration::from_secs(120),
        ..SessionTransferConfig::default()
    }
}

fn assert_stream_report(report: &slicing_overlay::SessionTransferReport) {
    assert!(report.established, "report: {report:?}");
    assert!(
        report.chunks_per_message >= 32,
        "payload must span ≥ 32 chunks: {report:?}"
    );
    assert_eq!(report.messages_delivered, 1, "report: {report:?}");
    assert!(report.bytes_match, "byte-identical delivery: {report:?}");
    assert!(
        report.source_drained,
        "acks must drain the window: {report:?}"
    );
    assert_eq!(report.payload_bytes, 96_000);
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn stream_32_chunks_over_emulated_sharded_overlay() {
    let report = run_session_transfer(&big_stream_cfg()).await;
    assert_stream_report(&report);
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn stream_32_chunks_over_tcp_sharded_overlay() {
    let cfg = SessionTransferConfig {
        transport: Transport::Tcp,
        ..big_stream_cfg()
    };
    let report = run_session_transfer(&cfg).await;
    assert_stream_report(&report);
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn multiple_streamed_messages_in_order() {
    let cfg = SessionTransferConfig {
        payload_len: 20_000,
        messages: 4,
        relay_shards: 2,
        session_shards: 2,
        timeout: Duration::from_secs(120),
        ..SessionTransferConfig::default()
    };
    let report = run_session_transfer(&cfg).await;
    assert!(report.established, "report: {report:?}");
    assert_eq!(report.messages_delivered, 4, "report: {report:?}");
    assert!(report.bytes_match, "report: {report:?}");
    assert!(report.source_drained, "report: {report:?}");
    assert_eq!(report.payload_bytes, 80_000);
}
