//! §9.1 defence evaluation: fraction of malicious relays under uniform
//! vs AS-diverse selection, as the attacker's address share grows while
//! its AS footprint stays small.

use rand::rngs::StdRng;
use rand::SeedableRng;
use slicing_bench::{banner, RunOpts, Table};
use slicing_sim::asmap::{malicious_fraction, AsSpace};

fn main() {
    let opts = RunOpts::from_args();
    let trials = opts.trials(300);
    banner(
        "§9.1 — relay selection: uniform vs AS-diverse",
        "N=10000 nodes, 400 ASes, attacker concentrated in 4 ASes, \
         graph of 24 relays (L=8, d'=3)",
        "uniform selection tracks the attacker's address share; \
         AS-diverse selection pins it near its AS share (4/400)",
    );
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut table = Table::new(&[
        "attacker_share",
        "uniform_bad_frac",
        "diverse_bad_frac",
    ]);
    for share in [0.05, 0.1, 0.2, 0.3, 0.4] {
        let attacker_nodes = (10_000.0 * share) as usize;
        let space = AsSpace::generate(10_000, 400, attacker_nodes, 4, &mut rng);
        let uniform = malicious_fraction(&space, 24, false, trials, &mut rng);
        let diverse = malicious_fraction(&space, 24, true, trials, &mut rng);
        table.row(&[share, uniform, diverse]);
    }
    table.print();
}
