//! Per-node information `I_x` (§4.3.1) and its fixed-size serialization.
//!
//! `I_x` is everything a relay needs to participate in a flow:
//! next-hop addresses and flow-ids, the receiver flag, a symmetric secret
//! key, the slice-map (§4.3.6), the data-map (§4.3.7), the expected parent
//! set (with reverse flow-ids for §4.3.7's reverse path) and the per-hop
//! transform it must strip from forwarded slices (§9.4(a)).
//!
//! The encoding is **fixed-size for a given `(L, d′)`** — relays at
//! different stages produce identical-length blobs (absent children are
//! zeroed) so all setup slices, and therefore all setup packets, are the
//! same size (§9.4(c)).

use slicing_codec::HopTransform;
use slicing_crypto::sha256::Sha256;
use slicing_crypto::SymmetricKey;
use slicing_wire::FlowId;

use crate::addr::OverlayAddr;

/// Sentinel parent index meaning "random padding" in the slice-map.
pub const SLICE_MAP_RAND: u8 = 0xFF;

/// One slice-map routing entry: fill `out slot` of the packet to child
/// `child` with the slice that arrived from parent `parent` (at incoming
/// slot `out_slot + 1`; the offset is fixed by the slot convention).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SliceMapEntry {
    /// Child index this entry applies to.
    pub child: u8,
    /// Outgoing slot.
    pub out_slot: u8,
    /// Parent index the slice comes from.
    pub parent: u8,
}

/// The per-node information `I_x` (§4.3.1).
#[derive(Clone, Debug, PartialEq)]
pub struct NodeInfo {
    /// Receiver flag: is this node the intended destination?
    pub receiver: bool,
    /// Data-phase discipline: `true` = recode at every hop
    /// ([`DataMode::Recode`]), `false` = static data-map.
    ///
    /// [`DataMode::Recode`]: crate::params::DataMode::Recode
    pub recode: bool,
    /// Symmetric secret key for this node.
    pub secret_key: SymmetricKey,
    /// Flow-id on which this node receives *reverse-path* data (§4.3.7).
    pub reverse_flow_id: FlowId,
    /// Split factor `d`.
    pub d: u8,
    /// Path count `d′`.
    pub d_prime: u8,
    /// Slot count per packet (the graph's `L`).
    pub slots: u8,
    /// Number of real (non-padding) slots in this node's outgoing setup
    /// packets (`L − stage`; 0 for the last stage).
    pub out_real_slots: u8,
    /// The transform this node strips from every forwarded slice.
    pub transform: HopTransform,
    /// Expected parents (`d′` of them) with their reverse flow-ids.
    pub parents: Vec<(OverlayAddr, FlowId)>,
    /// Children with their (forward) flow-ids; empty at the last stage.
    pub children: Vec<(OverlayAddr, FlowId)>,
    /// Data-map (used in [`DataMode::Map`]): for child `j`, forward the
    /// data slice received from parent `data_map[j]`.
    ///
    /// [`DataMode::Map`]: crate::params::DataMode::Map
    pub data_map: Vec<u8>,
    /// Slice-map: `slice_map[child][out_slot]` = parent index, or `None`
    /// for random padding.
    pub slice_map: Vec<Vec<Option<u8>>>,
}

/// Serialization failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InfoError {
    /// Wrong length for the declared `(L, d′)`.
    BadLength,
    /// Unknown version byte.
    BadVersion,
    /// Checksum mismatch (corrupted or mis-decoded slices).
    BadChecksum,
    /// Fields are internally inconsistent.
    Inconsistent,
}

impl std::fmt::Display for InfoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InfoError::BadLength => write!(f, "node info has wrong length"),
            InfoError::BadVersion => write!(f, "node info has unknown version"),
            InfoError::BadChecksum => write!(f, "node info checksum mismatch"),
            InfoError::Inconsistent => write!(f, "node info fields inconsistent"),
        }
    }
}

impl std::error::Error for InfoError {}

const VERSION: u8 = 1;
const CHECKSUM_LEN: usize = 8;

/// Encoded size of a `NodeInfo` for the given graph shape.
pub const fn encoded_len(slots: usize, d_prime: usize) -> usize {
    // version(1) flags(1) key(32) rev_flow(8) d(1) d'(1) slots(1)
    // out_real(1) transform(17) parents(16·d') children(16·d')
    // data_map(d') slice_map(L·d') checksum(8)
    1 + 1 + 32 + 8 + 4 + HopTransform::WIRE_LEN + 16 * d_prime + 16 * d_prime + d_prime
        + slots * d_prime
        + CHECKSUM_LEN
}

impl NodeInfo {
    /// Serialize to the fixed-size layout.
    ///
    /// # Panics
    /// Panics if the vectors disagree with `d_prime`/`slots`.
    pub fn encode(&self) -> Vec<u8> {
        let dp = self.d_prime as usize;
        let slots = self.slots as usize;
        assert_eq!(self.parents.len(), dp, "parent count");
        assert!(
            self.children.is_empty() || self.children.len() == dp,
            "child count"
        );
        assert!(self.data_map.is_empty() || self.data_map.len() == dp);
        assert!(self.slice_map.is_empty() || self.slice_map.len() == dp);

        let mut out = Vec::with_capacity(encoded_len(slots, dp));
        out.push(VERSION);
        let mut flags = 0u8;
        if self.receiver {
            flags |= 1;
        }
        if !self.children.is_empty() {
            flags |= 2;
        }
        if self.recode {
            flags |= 4;
        }
        out.push(flags);
        out.extend_from_slice(&self.secret_key.0);
        out.extend_from_slice(&self.reverse_flow_id.0.to_le_bytes());
        out.push(self.d);
        out.push(self.d_prime);
        out.push(self.slots);
        out.push(self.out_real_slots);
        out.extend_from_slice(&self.transform.to_bytes());
        for &(addr, rev) in &self.parents {
            out.extend_from_slice(&addr.to_bytes());
            out.extend_from_slice(&rev.0.to_le_bytes());
        }
        for j in 0..dp {
            let (addr, flow) = self
                .children
                .get(j)
                .copied()
                .unwrap_or((OverlayAddr::NONE, FlowId(0)));
            out.extend_from_slice(&addr.to_bytes());
            out.extend_from_slice(&flow.0.to_le_bytes());
        }
        for j in 0..dp {
            out.push(self.data_map.get(j).copied().unwrap_or(0));
        }
        for j in 0..dp {
            for s in 0..slots {
                let v = self
                    .slice_map
                    .get(j)
                    .and_then(|row| row.get(s).copied().flatten())
                    .unwrap_or(SLICE_MAP_RAND);
                out.push(v);
            }
        }
        let digest = Sha256::digest(&out);
        out.extend_from_slice(&digest[..CHECKSUM_LEN]);
        debug_assert_eq!(out.len(), encoded_len(slots, dp));
        out
    }

    /// Deserialize and verify the checksum.
    pub fn decode(bytes: &[u8]) -> Result<NodeInfo, InfoError> {
        if bytes.len() < 1 + 1 + 32 + 8 + 4 + HopTransform::WIRE_LEN + CHECKSUM_LEN {
            return Err(InfoError::BadLength);
        }
        if bytes[0] != VERSION {
            return Err(InfoError::BadVersion);
        }
        // Shape fields live at fixed offsets.
        let d = bytes[42];
        let d_prime = bytes[43];
        let slots = bytes[44];
        let out_real = bytes[45];
        let dp = d_prime as usize;
        let nslots = slots as usize;
        if bytes.len() != encoded_len(nslots, dp) {
            return Err(InfoError::BadLength);
        }
        if d == 0 || d_prime < d || out_real as usize > nslots {
            return Err(InfoError::Inconsistent);
        }
        let (body, tail) = bytes.split_at(bytes.len() - CHECKSUM_LEN);
        let digest = Sha256::digest(body);
        if digest[..CHECKSUM_LEN] != *tail {
            return Err(InfoError::BadChecksum);
        }

        let flags = bytes[1];
        let receiver = flags & 1 != 0;
        let has_children = flags & 2 != 0;
        let recode = flags & 4 != 0;
        let mut key = [0u8; 32];
        key.copy_from_slice(&bytes[2..34]);
        let reverse_flow_id = FlowId(u64::from_le_bytes(bytes[34..42].try_into().unwrap()));
        let mut off = 46;
        let mut tbytes = [0u8; HopTransform::WIRE_LEN];
        tbytes.copy_from_slice(&bytes[off..off + HopTransform::WIRE_LEN]);
        let transform = HopTransform::from_bytes(&tbytes).ok_or(InfoError::Inconsistent)?;
        off += HopTransform::WIRE_LEN;

        let mut parents = Vec::with_capacity(dp);
        for _ in 0..dp {
            let addr = OverlayAddr::from_bytes(bytes[off..off + 8].try_into().unwrap());
            let rev = FlowId(u64::from_le_bytes(bytes[off + 8..off + 16].try_into().unwrap()));
            parents.push((addr, rev));
            off += 16;
        }
        let mut children = Vec::with_capacity(dp);
        for _ in 0..dp {
            let addr = OverlayAddr::from_bytes(bytes[off..off + 8].try_into().unwrap());
            let flow = FlowId(u64::from_le_bytes(
                bytes[off + 8..off + 16].try_into().unwrap(),
            ));
            children.push((addr, flow));
            off += 16;
        }
        if !has_children {
            children.clear();
        }
        let mut data_map = Vec::with_capacity(dp);
        for _ in 0..dp {
            data_map.push(bytes[off]);
            off += 1;
        }
        if !has_children {
            data_map.clear();
        }
        let mut slice_map = Vec::with_capacity(dp);
        for _ in 0..dp {
            let mut row = Vec::with_capacity(nslots);
            for _ in 0..nslots {
                let v = bytes[off];
                off += 1;
                row.push(if v == SLICE_MAP_RAND { None } else { Some(v) });
            }
            slice_map.push(row);
        }
        if !has_children {
            slice_map.clear();
        }

        Ok(NodeInfo {
            receiver,
            recode,
            secret_key: SymmetricKey(key),
            reverse_flow_id,
            d,
            d_prime,
            slots,
            out_real_slots: out_real,
            transform,
            parents,
            children,
            data_map,
            slice_map,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample(with_children: bool) -> NodeInfo {
        let mut rng = StdRng::seed_from_u64(1);
        let dp = 3usize;
        let slots = 5usize;
        NodeInfo {
            receiver: true,
            recode: true,
            secret_key: SymmetricKey([7u8; 32]),
            reverse_flow_id: FlowId(0xAA),
            d: 2,
            d_prime: dp as u8,
            slots: slots as u8,
            out_real_slots: if with_children { 3 } else { 0 },
            transform: HopTransform::random(&mut rng),
            parents: (0..dp)
                .map(|i| (OverlayAddr(100 + i as u64), FlowId(200 + i as u64)))
                .collect(),
            children: if with_children {
                (0..dp)
                    .map(|i| (OverlayAddr(300 + i as u64), FlowId(400 + i as u64)))
                    .collect()
            } else {
                vec![]
            },
            data_map: if with_children { vec![2, 0, 1] } else { vec![] },
            slice_map: if with_children {
                vec![
                    vec![Some(0), Some(1), None, None, None],
                    vec![Some(1), Some(2), None, None, None],
                    vec![Some(2), Some(0), None, None, None],
                ]
            } else {
                vec![]
            },
        }
    }

    #[test]
    fn round_trip_with_children() {
        let info = sample(true);
        let bytes = info.encode();
        assert_eq!(bytes.len(), encoded_len(5, 3));
        assert_eq!(NodeInfo::decode(&bytes).unwrap(), info);
    }

    #[test]
    fn round_trip_last_stage() {
        let info = sample(false);
        let bytes = info.encode();
        // Same size as the with-children encoding: fixed-size property.
        assert_eq!(bytes.len(), encoded_len(5, 3));
        assert_eq!(NodeInfo::decode(&bytes).unwrap(), info);
    }

    #[test]
    fn corruption_detected() {
        let mut bytes = sample(true).encode();
        bytes[50] ^= 1;
        assert_eq!(NodeInfo::decode(&bytes).unwrap_err(), InfoError::BadChecksum);
    }

    #[test]
    fn truncation_detected() {
        let bytes = sample(true).encode();
        assert_eq!(
            NodeInfo::decode(&bytes[..bytes.len() - 1]).unwrap_err(),
            InfoError::BadLength
        );
    }

    #[test]
    fn version_checked() {
        let mut bytes = sample(true).encode();
        bytes[0] = 9;
        assert_eq!(NodeInfo::decode(&bytes).unwrap_err(), InfoError::BadVersion);
    }

    #[test]
    fn sizes_scale_with_shape() {
        assert!(encoded_len(8, 3) > encoded_len(5, 3));
        assert!(encoded_len(5, 4) > encoded_len(5, 3));
    }
}
