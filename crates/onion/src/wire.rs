//! Minimal wire format for the onion baseline.
//!
//! Framing parity with `slicing-wire`: the payload is a shared
//! [`Bytes`] view, [`OnionPacket::from_bytes`] adopts the receive buffer
//! zero-copy, and [`OnionPacket::encode`] emits one frozen buffer — so
//! the Fig. 11–15 baseline pays the same (absent) serialization costs as
//! the slicing data plane.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Onion header length: circuit id (8) + kind (1) + seq (4).
pub const ONION_HEADER_LEN: usize = 13;

/// Kind of onion packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OnionPacketKind {
    /// Circuit establishment (carries the remaining onion).
    Setup,
    /// Data cell.
    Data,
}

/// An onion packet: circuit id in the clear (like Tor's circID), kind,
/// sequence number and opaque payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OnionPacket {
    /// Cleartext per-hop circuit id.
    pub circuit: u64,
    /// Setup or data.
    pub kind: OnionPacketKind,
    /// Data sequence number (0 for setup).
    pub seq: u32,
    /// Payload (onion remainder or layered ciphertext) — a shared view,
    /// zero-copy when the packet came off the wire.
    pub payload: Bytes,
}

/// Decode failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OnionWireError {
    /// Too short.
    Truncated,
    /// Unknown kind byte.
    BadKind,
}

impl std::fmt::Display for OnionWireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OnionWireError::Truncated => write!(f, "onion packet truncated"),
            OnionWireError::BadKind => write!(f, "unknown onion packet kind"),
        }
    }
}

impl std::error::Error for OnionWireError {}

impl OnionPacket {
    /// Serialize into one frozen buffer.
    pub fn encode(&self) -> Bytes {
        let mut out = BytesMut::with_capacity(ONION_HEADER_LEN + self.payload.len());
        out.put_u64_le(self.circuit);
        out.put_u8(match self.kind {
            OnionPacketKind::Setup => 0,
            OnionPacketKind::Data => 1,
        });
        out.put_u32_le(self.seq);
        out.put_slice(&self.payload);
        out.freeze()
    }

    /// Deserialize from a borrowed buffer (copies; receive paths holding
    /// a [`Bytes`] should use [`OnionPacket::from_bytes`]).
    pub fn decode(bytes: &[u8]) -> Result<OnionPacket, OnionWireError> {
        OnionPacket::from_bytes(Bytes::copy_from_slice(bytes))
    }

    /// Zero-copy deserialize: the payload is a view into `bytes`.
    pub fn from_bytes(bytes: Bytes) -> Result<OnionPacket, OnionWireError> {
        let mut cursor: &[u8] = &bytes;
        if cursor.len() < ONION_HEADER_LEN {
            return Err(OnionWireError::Truncated);
        }
        let circuit = cursor.get_u64_le();
        let kind = match cursor.get_u8() {
            0 => OnionPacketKind::Setup,
            1 => OnionPacketKind::Data,
            _ => return Err(OnionWireError::BadKind),
        };
        let seq = cursor.get_u32_le();
        Ok(OnionPacket {
            circuit,
            kind,
            seq,
            payload: bytes.slice(ONION_HEADER_LEN..),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let p = OnionPacket {
            circuit: 0xABCD,
            kind: OnionPacketKind::Data,
            seq: 9,
            payload: Bytes::from(vec![1, 2, 3]),
        };
        assert_eq!(OnionPacket::decode(&p.encode()).unwrap(), p);
    }

    #[test]
    fn from_bytes_is_zero_copy() {
        let wire = OnionPacket {
            circuit: 7,
            kind: OnionPacketKind::Setup,
            seq: 0,
            payload: Bytes::from(vec![9u8; 32]),
        }
        .encode();
        let p = OnionPacket::from_bytes(wire.clone()).unwrap();
        assert_eq!(p.payload, wire.slice(ONION_HEADER_LEN..));
    }

    #[test]
    fn truncated() {
        assert_eq!(
            OnionPacket::decode(&[0u8; 5]).unwrap_err(),
            OnionWireError::Truncated
        );
    }

    #[test]
    fn bad_kind() {
        let mut bytes = OnionPacket {
            circuit: 1,
            kind: OnionPacketKind::Setup,
            seq: 0,
            payload: Bytes::new(),
        }
        .encode()
        .to_vec();
        bytes[8] = 7;
        assert_eq!(
            OnionPacket::decode(&bytes).unwrap_err(),
            OnionWireError::BadKind
        );
    }
}
