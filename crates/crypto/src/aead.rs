//! Authenticated encryption: ChaCha20 + HMAC-SHA256, encrypt-then-MAC.
//!
//! This is the construction the source uses to protect data messages with
//! the destination's secret key (§4.3.7): only the destination can decrypt
//! the data even though every relay carries `d` slices of it.
//!
//! The session-lifetime object is [`SealingKey`]: it runs the two HKDF
//! subkey derivations (enc + mac) and the HMAC ipad/opad compressions
//! **once** at construction, then every [`SealingKey::seal_into`] /
//! [`SealingKey::open_in_place`] resumes from those midstates — about
//! six SHA-256 compressions cheaper per message than the stateless
//! [`seal`]/[`open`] pair, which remain as thin wrappers for one-shot
//! use. The `_into`/`in_place` forms also write into caller-owned
//! buffers, so a steady-state session allocates nothing per message.

use crate::chacha20::ChaCha20;
use crate::hmac::{verify, HmacKey};
use crate::simd::{self, Backend};
use crate::SymmetricKey;

/// MAC truncation length in bytes (full SHA-256 HMAC).
pub const TAG_LEN: usize = 32;
/// Nonce length in bytes.
pub const NONCE_LEN: usize = 12;

/// Failure modes of [`open`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SealError {
    /// Ciphertext shorter than nonce + tag.
    Truncated,
    /// MAC verification failed (corrupted or forged).
    BadTag,
}

impl std::fmt::Display for SealError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SealError::Truncated => write!(f, "sealed message too short"),
            SealError::BadTag => write!(f, "authentication tag mismatch"),
        }
    }
}

impl std::error::Error for SealError {}

/// A session key prepared for repeated sealing/opening.
///
/// Construction derives the encryption and MAC subkeys
/// (`slicing-aead-enc` / `slicing-aead-mac` HKDF labels — the same
/// labels the stateless functions use, so sealed bytes are
/// interchangeable) and precomputes the HMAC midstates.
#[derive(Clone)]
pub struct SealingKey {
    enc: [u8; 32],
    mac: HmacKey,
    backend: Backend,
}

impl SealingKey {
    /// Prepare a key on the process-wide detected backend.
    pub fn new(key: &SymmetricKey) -> Self {
        Self::new_on(simd::backend(), key)
    }

    /// Prepare a key pinned to a specific [`Backend`].
    pub fn new_on(backend: Backend, key: &SymmetricKey) -> Self {
        let enc = key.derive(b"slicing-aead-enc");
        let mac = key.derive(b"slicing-aead-mac");
        SealingKey {
            enc: enc.0,
            mac: HmacKey::new_on(backend, &mac.0),
            backend,
        }
    }

    /// Sealed size of a `plaintext_len`-byte message
    /// (`nonce ‖ ciphertext ‖ tag`).
    pub fn sealed_len(plaintext_len: usize) -> usize {
        NONCE_LEN + plaintext_len + TAG_LEN
    }

    /// Encrypt and authenticate `plaintext` into `out` (cleared first);
    /// output layout is `nonce ‖ ciphertext ‖ tag`. With a reused `out`
    /// buffer the steady state allocates nothing.
    ///
    /// The nonce is drawn from the **caller's** RNG with one
    /// `fill_bytes` call — no per-call reseeding or hidden RNG state —
    /// so callers with seeded RNGs stay deterministic, and nonce
    /// uniqueness is inherited from the RNG's stream (96 random bits;
    /// the birthday bound is ~2⁴⁸ messages per key, far beyond a
    /// session's lifetime — regression-tested over 10⁶ draws).
    // lint: hot-path
    pub fn seal_into<R: rand::Rng + ?Sized>(
        &self,
        plaintext: &[u8],
        out: &mut Vec<u8>,
        rng: &mut R,
    ) {
        out.clear();
        out.reserve(Self::sealed_len(plaintext.len()));
        let mut nonce = [0u8; NONCE_LEN];
        rng.fill_bytes(&mut nonce);
        out.extend_from_slice(&nonce);
        out.extend_from_slice(plaintext);
        let mut cipher = ChaCha20::new_on(self.backend, &self.enc, &nonce, 0);
        cipher.apply(&mut out[NONCE_LEN..]);
        let tag = self.mac.mac(out);
        out.extend_from_slice(&tag);
    }

    /// Verify and decrypt a sealed message in place; on success the
    /// returned subslice of `sealed` is the plaintext. Nothing is
    /// decrypted unless the tag verifies, and nothing is allocated.
    // lint: hot-path
    pub fn open_in_place<'a>(&self, sealed: &'a mut [u8]) -> Result<&'a mut [u8], SealError> {
        if sealed.len() < NONCE_LEN + TAG_LEN {
            return Err(SealError::Truncated);
        }
        let body_len = sealed.len() - TAG_LEN;
        let (body, tag_bytes) = sealed.split_at_mut(body_len);
        let expected = self.mac.mac(body);
        let mut tag = [0u8; TAG_LEN];
        tag.copy_from_slice(tag_bytes);
        if !verify(&expected, &tag) {
            return Err(SealError::BadTag);
        }
        let (nonce_bytes, ciphertext) = body.split_at_mut(NONCE_LEN);
        let mut nonce = [0u8; NONCE_LEN];
        nonce.copy_from_slice(nonce_bytes);
        let mut cipher = ChaCha20::new_on(self.backend, &self.enc, &nonce, 0);
        cipher.apply(ciphertext);
        Ok(ciphertext)
    }

    /// As [`SealingKey::open_in_place`], consuming and returning the
    /// vector (decrypts in place, then trims the nonce and tag off the
    /// existing allocation).
    pub fn open_owned(&self, mut sealed: Vec<u8>) -> Result<Vec<u8>, SealError> {
        let plaintext_len = self.open_in_place(&mut sealed)?.len();
        sealed.truncate(NONCE_LEN + plaintext_len);
        sealed.drain(..NONCE_LEN);
        Ok(sealed)
    }

    /// Allocating convenience form of [`SealingKey::seal_into`].
    pub fn seal<R: rand::Rng + ?Sized>(&self, plaintext: &[u8], rng: &mut R) -> Vec<u8> {
        let mut out = Vec::new();
        self.seal_into(plaintext, &mut out, rng);
        out
    }

    /// Allocating convenience form of [`SealingKey::open_in_place`].
    pub fn open(&self, sealed: &[u8]) -> Result<Vec<u8>, SealError> {
        self.open_owned(sealed.to_vec())
    }
}

impl std::fmt::Debug for SealingKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        write!(f, "SealingKey(..)")
    }
}

/// Encrypt and authenticate `plaintext`; output layout is
/// `nonce ‖ ciphertext ‖ tag`. One-shot form — derives the subkeys on
/// every call; hot paths hold a [`SealingKey`] instead.
pub fn seal<R: rand::Rng + ?Sized>(
    key: &SymmetricKey,
    plaintext: &[u8],
    rng: &mut R,
) -> Vec<u8> {
    SealingKey::new(key).seal(plaintext, rng)
}

/// Verify and decrypt a message produced by [`seal`]. One-shot form —
/// derives the subkeys on every call; hot paths hold a [`SealingKey`].
pub fn open(key: &SymmetricKey, sealed: &[u8]) -> Result<Vec<u8>, SealError> {
    SealingKey::new(key).open(sealed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn key() -> SymmetricKey {
        SymmetricKey([0x42; 32])
    }

    #[test]
    fn round_trip() {
        let mut rng = StdRng::seed_from_u64(1);
        let msg = b"let's meet at 5pm";
        let sealed = seal(&key(), msg, &mut rng);
        assert_eq!(open(&key(), &sealed).unwrap(), msg);
    }

    #[test]
    fn empty_message_round_trip() {
        let mut rng = StdRng::seed_from_u64(2);
        let sealed = seal(&key(), b"", &mut rng);
        assert_eq!(open(&key(), &sealed).unwrap(), b"");
    }

    #[test]
    fn tamper_detected() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sealed = seal(&key(), b"secret", &mut rng);
        let mid = sealed.len() / 2;
        sealed[mid] ^= 0x01;
        assert_eq!(open(&key(), &sealed), Err(SealError::BadTag));
    }

    #[test]
    fn wrong_key_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        let sealed = seal(&key(), b"secret", &mut rng);
        let other = SymmetricKey([0x43; 32]);
        assert_eq!(open(&other, &sealed), Err(SealError::BadTag));
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(open(&key(), &[0u8; 10]), Err(SealError::Truncated));
    }

    #[test]
    fn nonces_make_ciphertexts_differ() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = seal(&key(), b"same message", &mut rng);
        let b = seal(&key(), b"same message", &mut rng);
        assert_ne!(a, b);
    }

    /// The cached-subkey path must be bit-compatible with the stateless
    /// one in both directions, on every backend.
    #[test]
    fn sealing_key_interoperates_with_stateless() {
        for backend in crate::simd::available_backends() {
            let sk = SealingKey::new_on(backend, &key());
            let mut rng = StdRng::seed_from_u64(6);
            let cached = sk.seal(b"interop", &mut rng);
            let mut rng = StdRng::seed_from_u64(6);
            let stateless = seal(&key(), b"interop", &mut rng);
            assert_eq!(cached, stateless, "{backend} backend");
            assert_eq!(sk.open(&stateless).unwrap(), b"interop", "{backend} backend");
            assert_eq!(open(&key(), &cached).unwrap(), b"interop", "{backend} backend");
        }
    }

    #[test]
    fn seal_into_reuses_buffer_without_reallocating() {
        let sk = SealingKey::new(&key());
        let mut rng = StdRng::seed_from_u64(7);
        let mut buf = Vec::new();
        sk.seal_into(&[0xAB; 300], &mut buf, &mut rng);
        assert_eq!(buf.len(), SealingKey::sealed_len(300));
        let cap = buf.capacity();
        let ptr = buf.as_ptr();
        for _ in 0..50 {
            sk.seal_into(&[0xCD; 300], &mut buf, &mut rng);
        }
        assert_eq!(buf.capacity(), cap);
        assert_eq!(buf.as_ptr(), ptr);
    }

    #[test]
    fn open_in_place_returns_plaintext_slice() {
        let sk = SealingKey::new(&key());
        let mut rng = StdRng::seed_from_u64(8);
        let mut sealed = sk.seal(b"in-place payload", &mut rng);
        let plaintext = sk.open_in_place(&mut sealed).unwrap();
        assert_eq!(plaintext, b"in-place payload");
    }

    #[test]
    fn open_in_place_rejects_without_decrypting() {
        let sk = SealingKey::new(&key());
        let mut rng = StdRng::seed_from_u64(9);
        let mut sealed = sk.seal(b"payload", &mut rng);
        let snapshot = sealed.clone();
        sealed[NONCE_LEN] ^= 1;
        assert_eq!(sk.open_in_place(&mut sealed), Err(SealError::BadTag));
        // The ciphertext body must not have been transformed.
        assert_eq!(&sealed[NONCE_LEN + 1..], &snapshot[NONCE_LEN + 1..]);
    }

    #[test]
    fn open_owned_trims_to_plaintext() {
        let sk = SealingKey::new(&key());
        let mut rng = StdRng::seed_from_u64(10);
        let sealed = sk.seal(b"owned payload", &mut rng);
        assert_eq!(sk.open_owned(sealed).unwrap(), b"owned payload");
    }

    /// Seals under one key never repeat a nonce across a million draws
    /// (birthday-bound smoke for the caller-RNG nonce path: `seal_into`
    /// takes exactly one `fill_bytes` from the caller's stream per
    /// message, no reseeding).
    #[test]
    fn nonce_uniqueness_over_1m_draws() {
        use std::collections::HashSet;
        let sk = SealingKey::new(&key());
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen: HashSet<[u8; NONCE_LEN]> = HashSet::with_capacity(1_000_000);
        let mut buf = Vec::new();
        for i in 0..1_000_000u32 {
            sk.seal_into(b"", &mut buf, &mut rng);
            let nonce: [u8; NONCE_LEN] = buf[..NONCE_LEN].try_into().unwrap();
            assert!(seen.insert(nonce), "nonce repeated at seal {i}");
        }
    }
}
