//! Wire format for information-slicing packets (Fig. 3, §4.3.3, §9.4(c)).
//!
//! A packet carries a cleartext **flow-id** (so a relay can group the `d`
//! packets of one flow, §4.3.1) followed by a fixed number of equal-size
//! **slots**. Slot 0 is always the slice addressed to the receiving relay;
//! the remaining slots are opaque to it (they hold downstream slices,
//! possibly wrapped in per-hop transforms, or the random padding a relay
//! inserts in place of its consumed slice, §4.3.6).
//!
//! Every packet of a flow has identical length at every hop — the
//! slice-map machinery replaces consumed slices with padding rather than
//! shrinking packets, defeating packet-size analysis (§9.4(c)).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crc;

use bytes::{Buf, BufMut, BytesMut};

/// Magic bytes prefixed to every packet ("IS").
pub const MAGIC: [u8; 2] = [0x49, 0x53];
/// Wire format version.
pub const VERSION: u8 = 1;
/// Fixed header length in bytes.
pub const HEADER_LEN: usize = 20;

/// A 64-bit cleartext flow identifier.
///
/// Flow-ids change at every hop ("to prevent the attacker from detecting
/// the path by matching flow-ids", §4.3.1); all parents of one child use
/// the same flow-id so the child can group packets of the flow.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub u64);

impl FlowId {
    /// Sample a fresh random flow id.
    pub fn random<R: rand::Rng + ?Sized>(rng: &mut R) -> Self {
        FlowId(rng.gen())
    }
}

impl std::fmt::Debug for FlowId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "flow:{:016x}", self.0)
    }
}

/// What phase of the protocol a packet belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PacketKind {
    /// Graph-establishment packet: slots carry per-node information
    /// slices (§4.3.4).
    Setup,
    /// Data packet: slots carry coded data slices (§4.3.7).
    Data,
}

impl PacketKind {
    fn to_byte(self) -> u8 {
        match self {
            PacketKind::Setup => 0,
            PacketKind::Data => 1,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        match b {
            0 => Some(PacketKind::Setup),
            1 => Some(PacketKind::Data),
            _ => None,
        }
    }
}

/// Parsed packet header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PacketHeader {
    /// Protocol phase.
    pub kind: PacketKind,
    /// Cleartext flow identifier.
    pub flow_id: FlowId,
    /// Message sequence number within the flow (0 for setup packets).
    pub seq: u32,
    /// Split factor of the flow (coefficients per slice).
    pub d: u8,
    /// Number of slots in the packet (the paper's `L` slices, Fig. 3).
    pub slot_count: u8,
    /// Length of each slot in bytes (`d + block_len`).
    pub slot_len: u16,
}

/// A wire packet: header plus `slot_count` opaque slots of `slot_len`
/// bytes each.
#[derive(Clone, PartialEq, Eq)]
pub struct Packet {
    /// The header.
    pub header: PacketHeader,
    /// The slots. `slots.len() == slot_count`, each of `slot_len` bytes.
    pub slots: Vec<Vec<u8>>,
}

impl std::fmt::Debug for Packet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Packet({:?}, {:?}, {} slots x {}B)",
            self.header.kind, self.header.flow_id, self.header.slot_count, self.header.slot_len
        )
    }
}

/// Decoding failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Input shorter than the header or the declared body.
    Truncated,
    /// Magic bytes missing.
    BadMagic,
    /// Unknown version.
    BadVersion,
    /// Unknown packet kind byte.
    BadKind,
    /// Header fields are internally inconsistent (e.g. zero slots).
    Inconsistent,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "packet truncated"),
            WireError::BadMagic => write!(f, "bad magic bytes"),
            WireError::BadVersion => write!(f, "unsupported version"),
            WireError::BadKind => write!(f, "unknown packet kind"),
            WireError::Inconsistent => write!(f, "inconsistent header"),
        }
    }
}

impl std::error::Error for WireError {}

impl Packet {
    /// Assemble a packet.
    ///
    /// # Panics
    /// Panics if the slots don't match the header's declared shape.
    pub fn new(header: PacketHeader, slots: Vec<Vec<u8>>) -> Self {
        assert_eq!(slots.len(), header.slot_count as usize, "slot count");
        assert!(
            slots.iter().all(|s| s.len() == header.slot_len as usize),
            "slot length"
        );
        Packet { header, slots }
    }

    /// Total encoded length.
    pub fn wire_len(&self) -> usize {
        HEADER_LEN + self.header.slot_count as usize * self.header.slot_len as usize
    }

    /// Serialize.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(self.wire_len());
        buf.put_slice(&MAGIC);
        buf.put_u8(VERSION);
        buf.put_u8(self.header.kind.to_byte());
        buf.put_u64_le(self.header.flow_id.0);
        buf.put_u32_le(self.header.seq);
        buf.put_u8(self.header.d);
        buf.put_u8(self.header.slot_count);
        buf.put_u16_le(self.header.slot_len);
        for slot in &self.slots {
            buf.put_slice(slot);
        }
        buf.to_vec()
    }

    /// Deserialize, validating shape.
    pub fn decode(mut bytes: &[u8]) -> Result<Packet, WireError> {
        if bytes.len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let mut magic = [0u8; 2];
        bytes.copy_to_slice(&mut magic);
        if magic != MAGIC {
            return Err(WireError::BadMagic);
        }
        let version = bytes.get_u8();
        if version != VERSION {
            return Err(WireError::BadVersion);
        }
        let kind = PacketKind::from_byte(bytes.get_u8()).ok_or(WireError::BadKind)?;
        let flow_id = FlowId(bytes.get_u64_le());
        let seq = bytes.get_u32_le();
        let d = bytes.get_u8();
        let slot_count = bytes.get_u8();
        let slot_len = bytes.get_u16_le();
        if d == 0 || slot_count == 0 || (d as u16) > slot_len {
            return Err(WireError::Inconsistent);
        }
        let body_len = slot_count as usize * slot_len as usize;
        if bytes.remaining() != body_len {
            return Err(WireError::Truncated);
        }
        let mut slots = Vec::with_capacity(slot_count as usize);
        for _ in 0..slot_count {
            let mut slot = vec![0u8; slot_len as usize];
            bytes.copy_to_slice(&mut slot);
            slots.push(slot);
        }
        Ok(Packet {
            header: PacketHeader {
                kind,
                flow_id,
                seq,
                d,
                slot_count,
                slot_len,
            },
            slots,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Packet {
        Packet::new(
            PacketHeader {
                kind: PacketKind::Setup,
                flow_id: FlowId(0xDEADBEEF12345678),
                seq: 7,
                d: 2,
                slot_count: 3,
                slot_len: 10,
            },
            vec![vec![1u8; 10], vec![2u8; 10], vec![3u8; 10]],
        )
    }

    #[test]
    fn round_trip() {
        let p = sample();
        let bytes = p.encode();
        assert_eq!(bytes.len(), p.wire_len());
        assert_eq!(Packet::decode(&bytes).unwrap(), p);
    }

    #[test]
    fn truncated_rejected() {
        let bytes = sample().encode();
        for cut in [0usize, 1, HEADER_LEN - 1, HEADER_LEN + 5, bytes.len() - 1] {
            assert_eq!(
                Packet::decode(&bytes[..cut]).unwrap_err(),
                WireError::Truncated,
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = sample().encode();
        bytes.push(0);
        assert_eq!(Packet::decode(&bytes).unwrap_err(), WireError::Truncated);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample().encode();
        bytes[0] ^= 0xFF;
        assert_eq!(Packet::decode(&bytes).unwrap_err(), WireError::BadMagic);
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = sample().encode();
        bytes[2] = 99;
        assert_eq!(Packet::decode(&bytes).unwrap_err(), WireError::BadVersion);
    }

    #[test]
    fn bad_kind_rejected() {
        let mut bytes = sample().encode();
        bytes[3] = 7;
        assert_eq!(Packet::decode(&bytes).unwrap_err(), WireError::BadKind);
    }

    #[test]
    fn zero_d_rejected() {
        let mut bytes = sample().encode();
        bytes[16] = 0; // d field
        assert_eq!(Packet::decode(&bytes).unwrap_err(), WireError::Inconsistent);
    }

    #[test]
    fn constant_size_for_flow() {
        // Packets of one flow shape always encode to the same length,
        // regardless of slot content (§9.4(c)).
        let p1 = sample();
        let mut p2 = sample();
        p2.slots[1] = vec![0xFF; 10];
        assert_eq!(p1.encode().len(), p2.encode().len());
    }

    #[test]
    fn kind_round_trips() {
        for kind in [PacketKind::Setup, PacketKind::Data] {
            assert_eq!(PacketKind::from_byte(kind.to_byte()), Some(kind));
        }
        assert_eq!(PacketKind::from_byte(255), None);
    }

    #[test]
    fn flow_id_randomness() {
        let mut rng = rand::thread_rng();
        let a = FlowId::random(&mut rng);
        let b = FlowId::random(&mut rng);
        assert_ne!(a, b); // 2^-64 collision chance
    }
}
