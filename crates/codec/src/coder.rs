//! Encoding and decoding of information slices (§4.1, §4.3.2, §4.3.5).

use rand::Rng;

use slicing_gf::{bulk, mds, Gf256, Matrix};

use crate::slice::{InfoSlice, SlicedMessage};

/// Errors surfaced by [`decode`] and [`decode_blocks`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Fewer slices than the split factor `d`.
    NotEnoughSlices {
        /// Slices supplied.
        have: usize,
        /// Split factor required.
        need: usize,
    },
    /// The supplied slices' coefficient rows span fewer than `d`
    /// dimensions (duplicates or unlucky recombinations).
    RankDeficient,
    /// Slices disagree on `d` or block length.
    ShapeMismatch,
    /// The decoded length prefix is inconsistent with the block size.
    CorruptLength,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::NotEnoughSlices { have, need } => {
                write!(f, "need {need} slices to decode, have {have}")
            }
            CodecError::RankDeficient => write!(f, "slice coefficient rows are not independent"),
            CodecError::ShapeMismatch => write!(f, "slices have inconsistent shapes"),
            CodecError::CorruptLength => write!(f, "decoded length prefix is corrupt"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Split `msg` into `d` equal blocks (4-byte little-endian length prefix,
/// zero padding), returning `(blocks, block_len)`.
pub fn split_blocks(msg: &[u8], d: usize) -> (Vec<Vec<u8>>, usize) {
    assert!(d >= 1, "split factor must be >= 1");
    let framed_len = msg.len() + 4;
    let block_len = framed_len.div_ceil(d).max(1);
    let mut framed = Vec::with_capacity(block_len * d);
    framed.extend_from_slice(&(msg.len() as u32).to_le_bytes());
    framed.extend_from_slice(msg);
    framed.resize(block_len * d, 0);
    let blocks = framed.chunks(block_len).map(|c| c.to_vec()).collect();
    (blocks, block_len)
}

/// Reassemble the message from its decoded blocks (inverse of
/// [`split_blocks`]).
pub fn join_blocks(blocks: &[Vec<u8>]) -> Result<Vec<u8>, CodecError> {
    let block_len = blocks.first().map_or(0, |b| b.len());
    if blocks.iter().any(|b| b.len() != block_len) {
        return Err(CodecError::ShapeMismatch);
    }
    let framed: Vec<u8> = blocks.concat();
    if framed.len() < 4 {
        return Err(CodecError::CorruptLength);
    }
    let len = u32::from_le_bytes([framed[0], framed[1], framed[2], framed[3]]) as usize;
    if len + 4 > framed.len() {
        return Err(CodecError::CorruptLength);
    }
    Ok(framed[4..4 + len].to_vec())
}

/// Code raw blocks with generator `g` (`d′ × d`): `payload_i = Σ g[i][k] · block_k`.
///
/// # Panics
/// Panics if `g.ncols() != blocks.len()` or blocks are ragged.
pub fn encode_blocks(g: &Matrix<Gf256>, blocks: &[Vec<u8>]) -> Vec<InfoSlice> {
    assert_eq!(g.ncols(), blocks.len(), "generator shape mismatch");
    let block_len = blocks.first().map_or(0, |b| b.len());
    assert!(blocks.iter().all(|b| b.len() == block_len), "ragged blocks");
    let mut out = Vec::with_capacity(g.nrows());
    for i in 0..g.nrows() {
        let mut payload = vec![0u8; block_len];
        let mut coeffs = Vec::with_capacity(g.ncols());
        for (k, block) in blocks.iter().enumerate() {
            let c = g.get(i, k).value();
            coeffs.push(c);
            if k == 0 {
                // Fresh payload: a straight scaled copy beats xor-into-zero.
                bulk::mul_slice_into(&mut payload, c, block);
            } else {
                bulk::mul_add_slice(&mut payload, c, block);
            }
        }
        out.push(InfoSlice::new(coeffs, payload));
    }
    out
}

/// Slice a message: randomize with a super-regular generator (every
/// square submatrix invertible) and emit `d′ ≥ d` slices (§4.3.2;
/// redundancy per §4.4(b)).
///
/// With `d_prime == d` this realizes `I* = A·I` (§4.1), and the
/// super-regularity of `A` makes pi-security (Lemma 5.1) hold
/// *deterministically*: any `m < d` observed slices leave every message
/// component consistent with every candidate value.
///
/// # Panics
/// Panics if `d == 0` or `d_prime < d`.
pub fn encode<R: Rng + ?Sized>(
    msg: &[u8],
    d: usize,
    d_prime: usize,
    rng: &mut R,
) -> SlicedMessage {
    assert!(d >= 1, "split factor must be >= 1");
    assert!(d_prime >= d, "d' must be >= d");
    let (blocks, block_len) = split_blocks(msg, d);
    let g = mds::strong_generator::<Gf256, _>(d_prime, d, rng);
    SlicedMessage {
        slices: encode_blocks(&g, &blocks),
        d,
        block_len,
    }
}

/// Decode the raw blocks from any `d` independent slices.
///
/// Greedy selection: slices are scanned in order and kept while they
/// increase the rank of the coefficient matrix, so duplicated or
/// linearly-dependent slices (e.g. from aggressive relay recombination)
/// are skipped rather than fatal.
pub fn decode_blocks(slices: &[InfoSlice], d: usize) -> Result<Vec<Vec<u8>>, CodecError> {
    if slices.len() < d {
        return Err(CodecError::NotEnoughSlices {
            have: slices.len(),
            need: d,
        });
    }
    let block_len = slices[0].payload.len();
    if slices
        .iter()
        .any(|s| s.coeffs.len() != d || s.payload.len() != block_len)
    {
        return Err(CodecError::ShapeMismatch);
    }

    // Greedily collect d slices with independent rows.
    let mut chosen: Vec<&InfoSlice> = Vec::with_capacity(d);
    let mut rows: Vec<Vec<Gf256>> = Vec::with_capacity(d);
    for s in slices {
        if chosen.len() == d {
            break;
        }
        let candidate: Vec<Gf256> = s.coeffs.iter().map(|&c| Gf256::new(c)).collect();
        rows.push(candidate);
        let m = Matrix::from_rows(&rows);
        if m.rank() == rows.len() {
            chosen.push(s);
        } else {
            rows.pop();
        }
    }
    if chosen.len() < d {
        return Err(CodecError::RankDeficient);
    }

    let a = Matrix::from_rows(&rows);
    let inv = a.inverse().ok_or(CodecError::RankDeficient)?;
    // block_k[j] = Σ_i inv[k][i] · payload_i[j]
    let mut blocks = vec![vec![0u8; block_len]; d];
    for (k, block) in blocks.iter_mut().enumerate() {
        for (i, s) in chosen.iter().enumerate() {
            if i == 0 {
                bulk::mul_slice_into(block, inv.get(k, i).value(), &s.payload);
            } else {
                bulk::mul_add_slice(block, inv.get(k, i).value(), &s.payload);
            }
        }
    }
    Ok(blocks)
}

/// Decode a message from any `d` independent slices (`m = A⁻¹ I*`).
pub fn decode(slices: &[InfoSlice], d: usize) -> Result<Vec<u8>, CodecError> {
    let blocks = decode_blocks(slices, d)?;
    join_blocks(&blocks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use slicing_gf::Field;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn round_trip_no_redundancy() {
        let mut rng = rng();
        for d in 1..=6 {
            let msg = b"Let's meet at 5pm";
            let coded = encode(msg, d, d, &mut rng);
            assert_eq!(coded.slices.len(), d);
            let decoded = decode(&coded.slices, d).unwrap();
            assert_eq!(decoded, msg);
        }
    }

    #[test]
    fn round_trip_empty_message() {
        let mut rng = rng();
        let coded = encode(b"", 3, 3, &mut rng);
        assert_eq!(decode(&coded.slices, 3).unwrap(), b"");
    }

    #[test]
    fn any_d_of_d_prime_decode() {
        let mut rng = rng();
        let msg = b"churn resilient payload";
        let (d, dp) = (2, 4);
        let coded = encode(msg, d, dp, &mut rng);
        // Every 2-subset of the 4 slices must decode.
        for i in 0..dp {
            for j in i + 1..dp {
                let subset = vec![coded.slices[i].clone(), coded.slices[j].clone()];
                assert_eq!(decode(&subset, d).unwrap(), msg, "subset ({i},{j})");
            }
        }
    }

    #[test]
    fn too_few_slices_fails() {
        let mut rng = rng();
        let coded = encode(b"hello", 3, 3, &mut rng);
        let err = decode(&coded.slices[..2], 3).unwrap_err();
        assert_eq!(err, CodecError::NotEnoughSlices { have: 2, need: 3 });
    }

    #[test]
    fn duplicate_slices_skipped_when_extras_available() {
        let mut rng = rng();
        let msg = b"dup tolerance";
        let coded = encode(msg, 2, 3, &mut rng);
        // [s0, s0, s1]: the duplicate must be skipped, decode via s0+s1.
        let slices = vec![
            coded.slices[0].clone(),
            coded.slices[0].clone(),
            coded.slices[1].clone(),
        ];
        assert_eq!(decode(&slices, 2).unwrap(), msg);
    }

    #[test]
    fn all_duplicates_is_rank_deficient() {
        let mut rng = rng();
        let coded = encode(b"x", 2, 2, &mut rng);
        let slices = vec![coded.slices[0].clone(), coded.slices[0].clone()];
        assert_eq!(decode(&slices, 2).unwrap_err(), CodecError::RankDeficient);
    }

    #[test]
    fn shape_mismatch_detected() {
        let mut rng = rng();
        let mut coded = encode(b"abc", 2, 2, &mut rng);
        coded.slices[1].payload.push(0);
        assert_eq!(
            decode(&coded.slices, 2).unwrap_err(),
            CodecError::ShapeMismatch
        );
    }

    #[test]
    fn corrupt_length_detected() {
        let mut rng = rng();
        let coded = encode(b"abc", 2, 2, &mut rng);
        let mut blocks = decode_blocks(&coded.slices, 2).unwrap();
        // Overwrite the length prefix with an impossible value.
        blocks[0][..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(join_blocks(&blocks).unwrap_err(), CodecError::CorruptLength);
    }

    #[test]
    fn coded_slices_differ_from_plaintext() {
        // The randomized slices must not contain the raw message blocks
        // (sanity check that we are not sending a systematic code).
        let mut rng = rng();
        let msg = vec![0x55u8; 64];
        let coded = encode(&msg, 2, 2, &mut rng);
        let (blocks, _) = split_blocks(&msg, 2);
        for s in &coded.slices {
            // A coded payload equal to a plaintext block would require
            // coeffs to be a unit vector; extremely unlikely and worth
            // rejecting outright for privacy.
            assert!(
                s.payload != blocks[0] && s.payload != blocks[1]
                    || s.coeffs.iter().filter(|&&c| c != 0).count() > 1
            );
        }
    }

    #[test]
    fn large_message_many_slices() {
        let mut rng = rng();
        let msg: Vec<u8> = (0..10_000u32).map(|i| (i % 256) as u8).collect();
        let coded = encode(&msg, 5, 8, &mut rng);
        // Use the *last* 5 slices (pure redundancy mix).
        let decoded = decode(&coded.slices[3..], 5).unwrap();
        assert_eq!(decoded, msg);
    }

    #[test]
    fn split_blocks_shape() {
        let (blocks, block_len) = split_blocks(&[1, 2, 3, 4, 5], 3);
        assert_eq!(blocks.len(), 3);
        assert_eq!(block_len, 3); // (5+4)/3 = 3
        assert!(blocks.iter().all(|b| b.len() == 3));
        assert_eq!(join_blocks(&blocks).unwrap(), vec![1, 2, 3, 4, 5]);
    }

    /// pi-security shape (Lemma 5.1): with only d−1 slices, *any* value of
    /// a chosen message block position is consistent with the observations,
    /// so partial information reveals nothing.
    #[test]
    fn pi_security_partial_slices_reveal_nothing() {
        let mut rng = rng();
        let d = 3;
        let msg = b"top secret rendezvous";
        let coded = encode(msg, d, d, &mut rng);
        let (blocks, block_len) = split_blocks(msg, d);
        let observed = &coded.slices[..d - 1]; // attacker sees d-1 slices

        // For the first byte of block 0, every candidate value v must admit
        // a consistent assignment of the remaining blocks.
        let byte_pos = 0usize;
        for v in [0u8, 1, 17, 128, 255] {
            // Unknowns: blocks[1][0], blocks[2][0]; fixed: blocks[0][0] = v.
            // Observed equations: payload_i[0] = Σ_k coeffs_i[k]·block_k[0].
            let mut a = Matrix::<Gf256>::zero(d - 1, d - 1);
            let mut b = Vec::with_capacity(d - 1);
            for (i, s) in observed.iter().enumerate() {
                for k in 1..d {
                    a.set(i, k - 1, Gf256::new(s.coeffs[k]));
                }
                let rhs = Gf256::new(s.payload[byte_pos])
                    .sub(Gf256::new(s.coeffs[0]).mul(Gf256::new(v)));
                b.push(rhs);
            }
            let solution = a.solve(&b);
            assert!(
                solution.is_some(),
                "value {v} not consistent — information leaked"
            );
        }
        // And of course the true value is among the consistent ones.
        assert_eq!(blocks[0][byte_pos], {
            let decoded = decode(&coded.slices, d).unwrap();
            let (true_blocks, _) = split_blocks(&decoded, d);
            let _ = block_len;
            true_blocks[0][byte_pos]
        });
    }
}
