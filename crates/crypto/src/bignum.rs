//! Multi-precision unsigned integers (base 2⁶⁴ limbs), sized for the RSA
//! baseline: addition, subtraction, schoolbook multiplication, Knuth
//! Algorithm-D division, modular exponentiation and modular inverse.

use std::cmp::Ordering;

use rand::Rng;

/// An arbitrary-precision unsigned integer.
///
/// Representation: little-endian `u64` limbs with no trailing zero limbs
/// (`0` is the empty vector).
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    limbs: Vec<u64>,
}

impl std::fmt::Debug for BigUint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "0x")?;
        if self.limbs.is_empty() {
            return write!(f, "0");
        }
        for (i, l) in self.limbs.iter().rev().enumerate() {
            if i == 0 {
                write!(f, "{l:x}")?;
            } else {
                write!(f, "{l:016x}")?;
            }
        }
        Ok(())
    }
}

impl BigUint {
    /// Zero.
    pub fn zero() -> Self {
        BigUint { limbs: vec![] }
    }

    /// One.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// From a machine word.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }

    /// From a 128-bit value (useful in tests).
    pub fn from_u128(v: u128) -> Self {
        let lo = v as u64;
        let hi = (v >> 64) as u64;
        let mut n = BigUint {
            limbs: vec![lo, hi],
        };
        n.normalize();
        n
    }

    /// To u128, if it fits.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some((self.limbs[1] as u128) << 64 | self.limbs[0] as u128),
            _ => None,
        }
    }

    /// Parse big-endian bytes.
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        for chunk in bytes.rchunks(8) {
            let mut limb = 0u64;
            for &b in chunk {
                limb = (limb << 8) | b as u64;
            }
            limbs.push(limb);
        }
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    /// Serialize to big-endian bytes (no leading zeros; `0` → empty).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for (i, limb) in self.limbs.iter().rev().enumerate() {
            let bytes = limb.to_be_bytes();
            if i == 0 {
                // Skip leading zero bytes of the most significant limb.
                let first = bytes.iter().position(|&b| b != 0).unwrap_or(8);
                out.extend_from_slice(&bytes[first..]);
            } else {
                out.extend_from_slice(&bytes);
            }
        }
        out
    }

    /// Random integer with exactly `bits` bits (top bit set).
    pub fn random_bits<R: Rng + ?Sized>(bits: usize, rng: &mut R) -> Self {
        assert!(bits > 0);
        let nlimbs = bits.div_ceil(64);
        let mut limbs: Vec<u64> = (0..nlimbs).map(|_| rng.gen()).collect();
        let top_bit = (bits - 1) % 64;
        // Clear bits above `bits`, set the top bit.
        limbs[nlimbs - 1] &= (!0u64) >> (63 - top_bit);
        limbs[nlimbs - 1] |= 1 << top_bit;
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    /// Uniform random integer in `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound` is zero.
    pub fn random_below<R: Rng + ?Sized>(bound: &BigUint, rng: &mut R) -> Self {
        assert!(!bound.is_zero(), "bound must be positive");
        let bits = bound.bits();
        loop {
            let nlimbs = bits.div_ceil(64);
            let mut limbs: Vec<u64> = (0..nlimbs).map(|_| rng.gen()).collect();
            let excess = nlimbs * 64 - bits;
            if excess > 0 {
                limbs[nlimbs - 1] &= (!0u64) >> excess;
            }
            let mut n = BigUint { limbs };
            n.normalize();
            if n.cmp(bound) == Ordering::Less {
                return n;
            }
        }
    }

    /// True if zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True if odd.
    pub fn is_odd(&self) -> bool {
        self.limbs.first().is_some_and(|l| l & 1 == 1)
    }

    /// Bit length (0 for zero).
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(top) => self.limbs.len() * 64 - top.leading_zeros() as usize,
        }
    }

    /// Value of bit `i`.
    pub fn bit(&self, i: usize) -> bool {
        let (limb, off) = (i / 64, i % 64);
        self.limbs.get(limb).is_some_and(|l| l >> off & 1 == 1)
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Addition.
    pub fn add(&self, rhs: &BigUint) -> BigUint {
        let (long, short) = if self.limbs.len() >= rhs.limbs.len() {
            (&self.limbs, &rhs.limbs)
        } else {
            (&rhs.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for (i, &l) in long.iter().enumerate() {
            let b = short.get(i).copied().unwrap_or(0);
            let (s1, c1) = l.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry != 0 {
            out.push(carry);
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Subtraction; `None` if the result would be negative.
    pub fn checked_sub(&self, rhs: &BigUint) -> Option<BigUint> {
        if self.cmp(rhs) == Ordering::Less {
            return None;
        }
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let b = rhs.limbs.get(i).copied().unwrap_or(0);
            let (d1, c1) = self.limbs[i].overflowing_sub(b);
            let (d2, c2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (c1 as u64) + (c2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        let mut n = BigUint { limbs: out };
        n.normalize();
        Some(n)
    }

    /// Subtraction.
    ///
    /// # Panics
    /// Panics on underflow.
    pub fn sub(&self, rhs: &BigUint) -> BigUint {
        self.checked_sub(rhs).expect("BigUint subtraction underflow")
    }

    /// Schoolbook multiplication.
    pub fn mul(&self, rhs: &BigUint) -> BigUint {
        if self.is_zero() || rhs.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + rhs.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            if a == 0 {
                continue;
            }
            let mut carry = 0u128;
            for (j, &b) in rhs.limbs.iter().enumerate() {
                let t = out[i + j] as u128 + a as u128 * b as u128 + carry;
                out[i + j] = t as u64;
                carry = t >> 64;
            }
            let mut k = i + rhs.limbs.len();
            while carry != 0 {
                let t = out[k] as u128 + carry;
                out[k] = t as u64;
                carry = t >> 64;
                k += 1;
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Left shift by `bits`.
    pub fn shl(&self, bits: usize) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let limb_shift = bits / 64;
        let bit_shift = bits % 64;
        let mut out = vec![0u64; self.limbs.len() + limb_shift + 1];
        for (i, &l) in self.limbs.iter().enumerate() {
            out[i + limb_shift] |= if bit_shift == 0 { l } else { l << bit_shift };
            if bit_shift != 0 {
                out[i + limb_shift + 1] |= l >> (64 - bit_shift);
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Right shift by `bits`.
    pub fn shr(&self, bits: usize) -> BigUint {
        let limb_shift = bits / 64;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = bits % 64;
        let mut out = Vec::with_capacity(self.limbs.len() - limb_shift);
        for i in limb_shift..self.limbs.len() {
            let mut l = self.limbs[i] >> bit_shift;
            if bit_shift != 0 && i + 1 < self.limbs.len() {
                l |= self.limbs[i + 1] << (64 - bit_shift);
            }
            out.push(l);
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Comparison.
    #[allow(clippy::should_implement_trait)] // by-reference cmp, deliberate
    pub fn cmp(&self, rhs: &BigUint) -> Ordering {
        if self.limbs.len() != rhs.limbs.len() {
            return self.limbs.len().cmp(&rhs.limbs.len());
        }
        for i in (0..self.limbs.len()).rev() {
            match self.limbs[i].cmp(&rhs.limbs[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    /// Division with remainder (Knuth TAOCP vol. 2, Algorithm D).
    ///
    /// # Panics
    /// Panics if `divisor` is zero.
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "division by zero");
        match self.cmp(divisor) {
            Ordering::Less => return (BigUint::zero(), self.clone()),
            Ordering::Equal => return (BigUint::one(), BigUint::zero()),
            Ordering::Greater => {}
        }
        // Single-limb divisor fast path.
        if divisor.limbs.len() == 1 {
            let d = divisor.limbs[0] as u128;
            let mut rem = 0u128;
            let mut q = vec![0u64; self.limbs.len()];
            for i in (0..self.limbs.len()).rev() {
                let cur = (rem << 64) | self.limbs[i] as u128;
                q[i] = (cur / d) as u64;
                rem = cur % d;
            }
            let mut quot = BigUint { limbs: q };
            quot.normalize();
            return (quot, BigUint::from_u64(rem as u64));
        }

        // Normalize so the divisor's top limb has its high bit set.
        let shift = divisor.limbs.last().unwrap().leading_zeros() as usize;
        let v = divisor.shl(shift);
        let u_big = self.shl(shift);
        let n = v.limbs.len();
        let m = u_big.limbs.len() - n;
        let mut u = u_big.limbs.clone();
        u.push(0); // u has m + n + 1 limbs.
        let v = &v.limbs;

        let mut q = vec![0u64; m + 1];
        for j in (0..=m).rev() {
            // Estimate q̂ from the top two limbs of the current remainder.
            let top = ((u[j + n] as u128) << 64) | u[j + n - 1] as u128;
            let mut qhat = top / v[n - 1] as u128;
            let mut rhat = top % v[n - 1] as u128;
            while qhat >= 1u128 << 64
                || qhat * v[n - 2] as u128 > ((rhat << 64) | u[j + n - 2] as u128)
            {
                qhat -= 1;
                rhat += v[n - 1] as u128;
                if rhat >= 1u128 << 64 {
                    break;
                }
            }
            // Multiply-and-subtract: u[j..j+n+1] -= qhat * v.
            let mut borrow = 0i128;
            let mut carry = 0u128;
            for i in 0..n {
                let p = qhat * v[i] as u128 + carry;
                carry = p >> 64;
                let sub = (u[j + i] as i128) - (p as u64 as i128) - borrow;
                if sub < 0 {
                    u[j + i] = (sub + (1i128 << 64)) as u64;
                    borrow = 1;
                } else {
                    u[j + i] = sub as u64;
                    borrow = 0;
                }
            }
            let sub = (u[j + n] as i128) - (carry as i128) - borrow;
            if sub < 0 {
                // q̂ was one too large: add back.
                u[j + n] = (sub + (1i128 << 64)) as u64;
                qhat -= 1;
                let mut carry2 = 0u128;
                for i in 0..n {
                    let t = u[j + i] as u128 + v[i] as u128 + carry2;
                    u[j + i] = t as u64;
                    carry2 = t >> 64;
                }
                u[j + n] = u[j + n].wrapping_add(carry2 as u64);
            } else {
                u[j + n] = sub as u64;
            }
            q[j] = qhat as u64;
        }

        let mut quot = BigUint { limbs: q };
        quot.normalize();
        let mut rem = BigUint {
            limbs: u[..n].to_vec(),
        };
        rem.normalize();
        (quot, rem.shr(shift))
    }

    /// `self mod m`.
    pub fn rem(&self, m: &BigUint) -> BigUint {
        self.div_rem(m).1
    }

    /// Modular multiplication.
    pub fn mul_mod(&self, rhs: &BigUint, m: &BigUint) -> BigUint {
        self.mul(rhs).rem(m)
    }

    /// Modular exponentiation `self^e mod m` (square-and-multiply).
    ///
    /// # Panics
    /// Panics if `m` is zero.
    pub fn mod_pow(&self, e: &BigUint, m: &BigUint) -> BigUint {
        assert!(!m.is_zero(), "modulus must be positive");
        if m.limbs == [1] {
            return BigUint::zero();
        }
        let mut base = self.rem(m);
        let mut acc = BigUint::one();
        for i in 0..e.bits() {
            if e.bit(i) {
                acc = acc.mul_mod(&base, m);
            }
            base = base.mul_mod(&base, m);
        }
        acc
    }

    /// Greatest common divisor (Euclid).
    pub fn gcd(&self, rhs: &BigUint) -> BigUint {
        let mut a = self.clone();
        let mut b = rhs.clone();
        while !b.is_zero() {
            let r = a.rem(&b);
            a = b;
            b = r;
        }
        a
    }

    /// Modular inverse of `self` modulo `m`, if `gcd(self, m) == 1`.
    ///
    /// Extended Euclid with sign bookkeeping on the Bézout coefficient.
    pub fn mod_inverse(&self, m: &BigUint) -> Option<BigUint> {
        if m.is_zero() {
            return None;
        }
        // Invariants: r_new = old coefficients; t tracked as (negative?, magnitude).
        let mut r_old = m.clone();
        let mut r_new = self.rem(m);
        let mut t_old = (false, BigUint::zero());
        let mut t_new = (false, BigUint::one());
        while !r_new.is_zero() {
            let (q, r) = r_old.div_rem(&r_new);
            // t_next = t_old - q * t_new  (signed).
            let q_t = q.mul(&t_new.1);
            let t_next = signed_sub(t_old.clone(), (t_new.0, q_t));
            r_old = r_new;
            r_new = r;
            t_old = t_new;
            t_new = t_next;
        }
        if r_old.cmp(&BigUint::one()) != Ordering::Equal {
            return None; // Not coprime.
        }
        let (neg, mag) = t_old;
        let inv = if neg { m.sub(&mag.rem(m)).rem(m) } else { mag.rem(m) };
        Some(inv)
    }
}

/// `a - b` on sign-magnitude pairs `(negative?, magnitude)`.
fn signed_sub(a: (bool, BigUint), b: (bool, BigUint)) -> (bool, BigUint) {
    match (a.0, b.0) {
        // a - b with both non-negative.
        (false, false) => match a.1.cmp(&b.1) {
            Ordering::Less => (true, b.1.sub(&a.1)),
            _ => (false, a.1.sub(&b.1)),
        },
        // a - (-b) = a + b.
        (false, true) => (false, a.1.add(&b.1)),
        // (-a) - b = -(a + b).
        (true, false) => (true, a.1.add(&b.1)),
        // (-a) - (-b) = b - a.
        (true, true) => match b.1.cmp(&a.1) {
            Ordering::Less => (true, a.1.sub(&b.1)),
            _ => (false, b.1.sub(&a.1)),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn big(v: u128) -> BigUint {
        BigUint::from_u128(v)
    }

    #[test]
    fn u128_round_trip() {
        for v in [0u128, 1, u64::MAX as u128, u128::MAX, 1 << 64, 12345678901234567890] {
            assert_eq!(big(v).to_u128(), Some(v));
        }
    }

    #[test]
    fn bytes_round_trip() {
        let n = big(0x0102030405060708090a0b0c0d0e0f10);
        let b = n.to_bytes_be();
        assert_eq!(b[0], 0x01);
        assert_eq!(BigUint::from_bytes_be(&b), n);
        assert!(BigUint::from_bytes_be(&[]).is_zero());
    }

    #[test]
    fn add_sub_against_u128() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..500 {
            let a: u128 = rng.gen::<u128>() >> 1;
            let b: u128 = rng.gen::<u128>() >> 1;
            assert_eq!(big(a).add(&big(b)).to_u128(), Some(a + b));
            let (hi, lo) = if a > b { (a, b) } else { (b, a) };
            assert_eq!(big(hi).sub(&big(lo)).to_u128(), Some(hi - lo));
            assert_eq!(big(lo).checked_sub(&big(hi)).is_none(), lo < hi);
        }
    }

    #[test]
    fn mul_against_u128() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..500 {
            let a: u64 = rng.gen();
            let b: u64 = rng.gen();
            assert_eq!(
                big(a as u128).mul(&big(b as u128)).to_u128(),
                Some(a as u128 * b as u128)
            );
        }
    }

    #[test]
    fn div_rem_against_u128() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let a: u128 = rng.gen();
            let b: u128 = (rng.gen::<u128>() >> rng.gen_range(0..100u32)).max(1);
            let (q, r) = big(a).div_rem(&big(b));
            assert_eq!(q.to_u128(), Some(a / b), "a={a} b={b}");
            assert_eq!(r.to_u128(), Some(a % b), "a={a} b={b}");
        }
    }

    #[test]
    fn div_rem_reconstructs_large() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            let a = BigUint::random_bits(512, &mut rng);
            let b = BigUint::random_bits(rng.gen_range(1..300), &mut rng);
            let (q, r) = a.div_rem(&b);
            assert_eq!(q.mul(&b).add(&r), a);
            assert_eq!(r.cmp(&b), Ordering::Less);
        }
    }

    #[test]
    fn shifts() {
        let n = big(0xDEADBEEF);
        assert_eq!(n.shl(4).to_u128(), Some(0xDEADBEEF0));
        assert_eq!(n.shl(64).shr(64), n);
        assert_eq!(n.shr(200), BigUint::zero());
        assert_eq!(n.shl(67).shr(3).shr(64), n);
    }

    #[test]
    fn mod_pow_against_u128() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let b: u64 = rng.gen_range(0..1 << 32);
            let e: u64 = rng.gen_range(0..64);
            let m: u64 = rng.gen_range(2..1 << 32);
            // Reference via u128 repeated multiplication.
            let mut reference: u128 = 1;
            for _ in 0..e {
                reference = reference * (b as u128 % m as u128) % m as u128;
            }
            assert_eq!(
                big(b as u128)
                    .mod_pow(&big(e as u128), &big(m as u128))
                    .to_u128(),
                Some(reference)
            );
        }
    }

    #[test]
    fn fermat_little_theorem() {
        // 2^(p-1) = 1 mod p for prime p.
        let p = big(1_000_000_007);
        let one = BigUint::one();
        assert_eq!(big(2).mod_pow(&p.sub(&one), &p), one);
    }

    #[test]
    fn mod_inverse_small() {
        for (a, m) in [(3u128, 7u128), (10, 17), (7, 31), (65537, 1_000_003)] {
            let inv = big(a).mod_inverse(&big(m)).unwrap();
            assert_eq!(big(a).mul_mod(&inv, &big(m)), BigUint::one());
        }
    }

    #[test]
    fn mod_inverse_not_coprime() {
        assert!(big(6).mod_inverse(&big(9)).is_none());
        assert!(big(0).mod_inverse(&big(9)).is_none());
    }

    #[test]
    fn mod_inverse_large() {
        let mut rng = StdRng::seed_from_u64(6);
        let m = BigUint::random_bits(256, &mut rng);
        for _ in 0..20 {
            let a = BigUint::random_below(&m, &mut rng);
            if a.is_zero() || a.gcd(&m).cmp(&BigUint::one()) != Ordering::Equal {
                continue;
            }
            let inv = a.mod_inverse(&m).unwrap();
            assert_eq!(a.mul_mod(&inv, &m), BigUint::one());
        }
    }

    #[test]
    fn gcd_basic() {
        assert_eq!(big(48).gcd(&big(36)).to_u128(), Some(12));
        assert_eq!(big(17).gcd(&big(13)).to_u128(), Some(1));
        assert_eq!(big(0).gcd(&big(5)).to_u128(), Some(5));
    }

    #[test]
    fn random_bits_has_exact_bit_length() {
        let mut rng = StdRng::seed_from_u64(7);
        for bits in [1usize, 7, 64, 65, 127, 256, 511] {
            let n = BigUint::random_bits(bits, &mut rng);
            assert_eq!(n.bits(), bits);
        }
    }

    #[test]
    fn random_below_in_range() {
        let mut rng = StdRng::seed_from_u64(8);
        let bound = big(1000);
        for _ in 0..200 {
            let n = BigUint::random_below(&bound, &mut rng);
            assert_eq!(n.cmp(&bound), Ordering::Less);
        }
    }
}
