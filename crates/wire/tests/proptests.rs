//! Property tests: wire round-trip totality and decoder robustness.

use proptest::prelude::*;
use slicing_wire::{FlowId, Packet, PacketHeader, PacketKind};

proptest! {
    /// encode ∘ decode is the identity for every valid packet shape.
    #[test]
    fn round_trip(flow in any::<u64>(), d in 1u8..16, slots in 1u8..12,
                  extra in 0u16..64, kind in any::<bool>(),
                  content_seed in any::<u64>()) {
        let slot_len = d as u16 + extra;
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(content_seed);
        let slot_data: Vec<Vec<u8>> = (0..slots)
            .map(|_| (0..slot_len).map(|_| rng.gen()).collect())
            .collect();
        let p = Packet::new(
            PacketHeader {
                kind: if kind { PacketKind::Setup } else { PacketKind::Data },
                flow_id: FlowId(flow),
                seq: flow as u32,
                d,
                slot_count: slots,
                slot_len,
            },
            slot_data,
        );
        prop_assert_eq!(Packet::decode(&p.encode()).unwrap(), p);
    }

    /// The decoder never panics on arbitrary input.
    #[test]
    fn decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Packet::decode(&bytes);
    }

    /// Any single-byte corruption either still parses to a same-shape
    /// packet or fails cleanly — never panics, never changes length
    /// interpretation silently.
    #[test]
    fn bitflip_robustness(pos in any::<u16>(), bit in 0u8..8) {
        let p = Packet::new(
            PacketHeader {
                kind: PacketKind::Data,
                flow_id: FlowId(42),
                seq: 1,
                d: 3,
                slot_count: 4,
                slot_len: 20,
            },
            vec![vec![7u8; 20]; 4],
        );
        let mut bytes = p.encode();
        let idx = pos as usize % bytes.len();
        bytes[idx] ^= 1 << bit;
        if let Ok(decoded) = Packet::decode(&bytes) {
            prop_assert_eq!(decoded.wire_len(), bytes.len());
        }
    }
}
