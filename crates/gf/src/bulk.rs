//! Runtime-dispatched GF(2⁸)/GF(2¹⁶) kernels over byte and word slices —
//! the workspace's one shared coding hot path.
//!
//! Every coded byte in the system flows through these operations:
//!
//! * [`mul_add_slice`] — `dst[i] ^= c · src[i]` (axpy), the inner loop of
//!   slice encoding, Gaussian decode back-substitution, and relay
//!   network re-coding (§7.1 of the paper measures exactly this: coding
//!   costs ~`d` of these multiplies per byte);
//! * [`mul_slice`] / [`mul_slice_into`] — `dst[i] = c · dst[i]` /
//!   `dst[i] = c · src[i]`, the per-hop transform multiply;
//! * [`mul_xor_slice`] / [`xor_mul_slice`] — the fused per-hop
//!   transform+pad passes;
//! * [`dot_slice8`] / [`dot_slice16`] — varying × varying dot products,
//!   the decode inner product;
//! * [`mul_add_fused`] — the multi-output recombine kernel: `d`
//!   accumulators fed per pass over each source slice, instead of `d`
//!   independent axpy sweeps;
//! * [`xor_slice`] — `dst[i] ^= src[i]`, the `c = 1` fast path.
//!
//! Each entry point dispatches once through [`crate::simd::backend`]
//! (runtime CPU detection, overridable via `SLICING_GF_FORCE`) to one of
//! three implementations — see [`crate::simd`] for the backend taxonomy:
//!
//! * **scalar** — per-element log/exp arithmetic, the oracle;
//! * **swar** — one 256-byte row of a 64 KiB compile-time multiplication
//!   table per GF(2⁸) coefficient (L1-resident across the slice),
//!   hoisted log/exp for GF(2¹⁶), `u64` SWAR XOR;
//! * **simd** — split-nibble PSHUFB/TBL multiplies and carry-less-
//!   multiply dot products (the arch kernels under `crate::simd`).
//!
//! The `*_on` variants take an explicit [`Backend`] so benches and the
//! proptest oracles can pin and compare paths inside one process.

use crate::gf256::{build_exp, build_log};
use crate::simd::{self, Backend};
use crate::Gf256;

/// `MUL[a][b] = a · b` in GF(2⁸), built at compile time.
static MUL: [[u8; 256]; 256] = build_mul_table();

const fn build_mul_table() -> [[u8; 256]; 256] {
    let exp = build_exp();
    let log = build_log();
    let mut t = [[0u8; 256]; 256];
    let mut a = 1usize;
    while a < 256 {
        let mut b = 1usize;
        while b < 256 {
            t[a][b] = exp[log[a] as usize + log[b] as usize];
            b += 1;
        }
        a += 1;
    }
    t
}

/// The 256-byte multiplication row for a fixed coefficient:
/// `mul_row(c)[x] == c · x`.
///
/// Exposed so callers composing their own kernels (e.g. fused
/// multiply-and-pad loops) can reuse the shared table.
#[inline]
pub fn mul_row(c: u8) -> &'static [u8; 256] {
    &MUL[c as usize]
}

/// `dst[i] ^= src[i]` for all `i`, eight bytes at a time.
///
/// Backend-independent: XOR is the same word-wide operation everywhere,
/// so this kernel has no `_on` variant.
///
/// # Panics
/// Panics if the slices differ in length.
#[inline]
pub fn xor_slice(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "xor_slice length mismatch");
    let mut dst_words = dst.chunks_exact_mut(8);
    let mut src_words = src.chunks_exact(8);
    for (d, s) in dst_words.by_ref().zip(src_words.by_ref()) {
        let word = u64::from_ne_bytes(d.try_into().expect("8-byte chunk"))
            ^ u64::from_ne_bytes(s.try_into().expect("8-byte chunk"));
        d.copy_from_slice(&word.to_ne_bytes());
    }
    for (d, s) in dst_words
        .into_remainder()
        .iter_mut()
        .zip(src_words.remainder())
    {
        *d ^= s;
    }
}

// ---- GF(2⁸) slice transforms ----------------------------------------------

/// `dst[i] = c · dst[i]` for all `i` (in-place scale).
#[inline]
pub fn mul_slice(dst: &mut [u8], c: u8) {
    mul_slice_on(simd::backend(), dst, c);
}

/// [`mul_slice`] pinned to an explicit backend.
pub fn mul_slice_on(backend: Backend, dst: &mut [u8], c: u8) {
    match backend {
        Backend::Scalar => {
            for d in dst.iter_mut() {
                *d = Gf256::mul_bytes(c, *d);
            }
        }
        Backend::Swar => match c {
            0 => dst.fill(0),
            1 => {}
            _ => {
                let row = mul_row(c);
                for d in dst.iter_mut() {
                    *d = row[*d as usize];
                }
            }
        },
        Backend::Simd => match c {
            0 => dst.fill(0),
            1 => {}
            _ => simd::kernels::mul8(dst, c),
        },
    }
}

/// `dst[i] = c · src[i]` for all `i` (scale into a destination).
///
/// # Panics
/// Panics if the slices differ in length.
#[inline]
pub fn mul_slice_into(dst: &mut [u8], c: u8, src: &[u8]) {
    mul_slice_into_on(simd::backend(), dst, c, src);
}

/// [`mul_slice_into`] pinned to an explicit backend.
pub fn mul_slice_into_on(backend: Backend, dst: &mut [u8], c: u8, src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "mul_slice_into length mismatch");
    match backend {
        Backend::Scalar => {
            for (d, &s) in dst.iter_mut().zip(src.iter()) {
                *d = Gf256::mul_bytes(c, s);
            }
        }
        Backend::Swar => match c {
            0 => dst.fill(0),
            1 => dst.copy_from_slice(src),
            _ => {
                let row = mul_row(c);
                for (d, &s) in dst.iter_mut().zip(src.iter()) {
                    *d = row[s as usize];
                }
            }
        },
        Backend::Simd => match c {
            0 => dst.fill(0),
            1 => dst.copy_from_slice(src),
            _ => simd::kernels::mul8_into(dst, c, src),
        },
    }
}

/// `dst[i] = c · dst[i] ^ pad[i]` for all `i` — the fused forward
/// per-hop transform (scale then pad) in one pass over the buffer.
///
/// # Panics
/// Panics if the slices differ in length.
#[inline]
pub fn mul_xor_slice(dst: &mut [u8], c: u8, pad: &[u8]) {
    mul_xor_slice_on(simd::backend(), dst, c, pad);
}

/// [`mul_xor_slice`] pinned to an explicit backend.
pub fn mul_xor_slice_on(backend: Backend, dst: &mut [u8], c: u8, pad: &[u8]) {
    assert_eq!(dst.len(), pad.len(), "mul_xor_slice length mismatch");
    match backend {
        Backend::Scalar => {
            for (d, &p) in dst.iter_mut().zip(pad.iter()) {
                *d = Gf256::mul_bytes(c, *d) ^ p;
            }
        }
        Backend::Swar => {
            if c == 1 {
                xor_slice(dst, pad);
                return;
            }
            let row = mul_row(c);
            for (d, &p) in dst.iter_mut().zip(pad.iter()) {
                *d = row[*d as usize] ^ p;
            }
        }
        Backend::Simd => match c {
            0 => dst.copy_from_slice(pad),
            1 => xor_slice(dst, pad),
            _ => simd::kernels::mul_xor8(dst, c, pad),
        },
    }
}

/// `dst[i] = c · (dst[i] ^ pad[i])` for all `i` — the fused inverse
/// per-hop transform (unpad then scale) in one pass over the buffer.
///
/// # Panics
/// Panics if the slices differ in length.
#[inline]
pub fn xor_mul_slice(dst: &mut [u8], c: u8, pad: &[u8]) {
    xor_mul_slice_on(simd::backend(), dst, c, pad);
}

/// [`xor_mul_slice`] pinned to an explicit backend.
pub fn xor_mul_slice_on(backend: Backend, dst: &mut [u8], c: u8, pad: &[u8]) {
    assert_eq!(dst.len(), pad.len(), "xor_mul_slice length mismatch");
    match backend {
        Backend::Scalar => {
            for (d, &p) in dst.iter_mut().zip(pad.iter()) {
                *d = Gf256::mul_bytes(c, *d ^ p);
            }
        }
        Backend::Swar => {
            if c == 1 {
                xor_slice(dst, pad);
                return;
            }
            let row = mul_row(c);
            for (d, &p) in dst.iter_mut().zip(pad.iter()) {
                *d = row[(*d ^ p) as usize];
            }
        }
        Backend::Simd => match c {
            0 => dst.fill(0),
            1 => xor_slice(dst, pad),
            _ => simd::kernels::xor_mul8(dst, c, pad),
        },
    }
}

/// `dst[i] ^= c · src[i]` for all `i` — the axpy kernel.
///
/// `c = 0` is a no-op; `c = 1` takes the SWAR [`xor_slice`] path; other
/// coefficients stream through the active backend's multiply kernel.
///
/// # Panics
/// Panics if the slices differ in length.
#[inline]
pub fn mul_add_slice(dst: &mut [u8], c: u8, src: &[u8]) {
    mul_add_slice_on(simd::backend(), dst, c, src);
}

/// [`mul_add_slice`] pinned to an explicit backend.
pub fn mul_add_slice_on(backend: Backend, dst: &mut [u8], c: u8, src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "mul_add_slice length mismatch");
    match backend {
        Backend::Scalar => {
            for (d, &s) in dst.iter_mut().zip(src.iter()) {
                *d ^= Gf256::mul_bytes(c, s);
            }
        }
        Backend::Swar => match c {
            0 => {}
            1 => xor_slice(dst, src),
            _ => {
                let row = mul_row(c);
                for (d, &s) in dst.iter_mut().zip(src.iter()) {
                    *d ^= row[s as usize];
                }
            }
        },
        Backend::Simd => match c {
            0 => {}
            1 => xor_slice(dst, src),
            _ => simd::kernels::axpy8(dst, c, src),
        },
    }
}

/// Dot product `Σ a[i]·b[i]` over GF(2⁸) byte slices — both operands
/// varying, so no coefficient table applies; the SIMD path uses
/// carry-less multiplication instead and falls back to the 2-D table
/// when the host lacks it.
///
/// # Panics
/// Panics if the slices differ in length.
#[inline]
pub fn dot_slice8(a: &[u8], b: &[u8]) -> u8 {
    dot_slice8_on(simd::backend(), a, b)
}

/// [`dot_slice8`] pinned to an explicit backend.
pub fn dot_slice8_on(backend: Backend, a: &[u8], b: &[u8]) -> u8 {
    assert_eq!(a.len(), b.len(), "dot_slice8 length mismatch");
    let swar = |a: &[u8], b: &[u8]| {
        let mut acc = 0u8;
        for (&x, &y) in a.iter().zip(b.iter()) {
            acc ^= MUL[x as usize][y as usize];
        }
        acc
    };
    match backend {
        Backend::Scalar => {
            let mut acc = 0u8;
            for (&x, &y) in a.iter().zip(b.iter()) {
                acc ^= Gf256::mul_bytes(x, y);
            }
            acc
        }
        Backend::Swar => swar(a, b),
        Backend::Simd => simd::kernels::dot8(a, b).unwrap_or_else(|| swar(a, b)),
    }
}

/// Fused multi-coefficient accumulate:
/// `outs[j][k] ^= Σ_i coeffs[j·srcs.len() + i] · srcs[i][k]` with
/// coefficients laid out output-major.
///
/// The SIMD path loads each source block once and feeds up to four
/// output accumulators per pass; scalar and SWAR decompose into
/// `outs.len() · srcs.len()` independent [`mul_add_slice`] sweeps (same
/// result, more memory traffic).
///
/// # Panics
/// Panics unless `coeffs.len() == outs.len() · srcs.len()` and every
/// output and source slice has the same length.
#[inline]
pub fn mul_add_fused(outs: &mut [&mut [u8]], coeffs: &[u8], srcs: &[&[u8]]) {
    mul_add_fused_on(simd::backend(), outs, coeffs, srcs);
}

/// [`mul_add_fused`] pinned to an explicit backend.
pub fn mul_add_fused_on(backend: Backend, outs: &mut [&mut [u8]], coeffs: &[u8], srcs: &[&[u8]]) {
    assert_eq!(
        coeffs.len(),
        outs.len() * srcs.len(),
        "mul_add_fused coefficient count mismatch"
    );
    let len = srcs
        .first()
        .map_or_else(|| outs.first().map_or(0, |o| o.len()), |s| s.len());
    assert!(
        outs.iter().all(|o| o.len() == len) && srcs.iter().all(|s| s.len() == len),
        "mul_add_fused length mismatch"
    );
    match backend {
        Backend::Scalar | Backend::Swar => {
            let nsrc = srcs.len();
            for (j, out) in outs.iter_mut().enumerate() {
                for (i, src) in srcs.iter().enumerate() {
                    mul_add_slice_on(backend, out, coeffs[j * nsrc + i], src);
                }
            }
        }
        Backend::Simd => simd::kernels::fused8(outs, coeffs, srcs),
    }
}

// ---- GF(2¹⁶) word-slice kernels -------------------------------------------
//
// The 16-bit field is too large for a full 2-D multiplication table
// (it would be 8 GiB), so its SWAR kernels hoist what *can* be hoisted
// out of the per-element loop: the `OnceLock` table fetch and the
// discrete log of the fixed coefficient. The SIMD kernels build a
// 128-byte split-nibble table set per call instead, which only pays for
// itself above [`crate::simd::kernels::MIN_LEN16`] elements — shorter
// slices stay on the SWAR path even when SIMD is active. `Gf65536`'s
// `Field` bulk hooks delegate here, which carries every GF(2¹⁶)
// consumer — `Matrix` (mul/rank/inverse/solve) and the `mds` generator
// constructions/verification — onto the shared kernel layer, the same
// way the byte kernels above carry the GF(2⁸) coders.

use crate::field::Field as _;
use crate::gf65536::{self, Gf65536};

fn dot16_swar(a: &[Gf65536], b: &[Gf65536]) -> Gf65536 {
    let t = gf65536::tables();
    let mut acc: u16 = 0;
    for (&x, &y) in a.iter().zip(b.iter()) {
        if x.0 != 0 && y.0 != 0 {
            acc ^= t.exp[t.log[x.0 as usize] as usize + t.log[y.0 as usize] as usize];
        }
    }
    Gf65536(acc)
}

fn mul_add16_swar(acc: &mut [Gf65536], c: Gf65536, src: &[Gf65536]) {
    let t = gf65536::tables();
    let lc = t.log[c.0 as usize] as usize;
    for (a, &s) in acc.iter_mut().zip(src.iter()) {
        if s.0 != 0 {
            a.0 ^= t.exp[lc + t.log[s.0 as usize] as usize];
        }
    }
}

fn mul16_swar(row: &mut [Gf65536], c: Gf65536) {
    let t = gf65536::tables();
    let lc = t.log[c.0 as usize] as usize;
    for v in row.iter_mut() {
        if v.0 != 0 {
            v.0 = t.exp[lc + t.log[v.0 as usize] as usize];
        }
    }
}

/// Dot product `Σ a[i]·b[i]` over GF(2¹⁶) slices.
///
/// # Panics
/// Panics if the slices differ in length.
#[inline]
pub fn dot_slice16(a: &[Gf65536], b: &[Gf65536]) -> Gf65536 {
    dot_slice16_on(simd::backend(), a, b)
}

/// [`dot_slice16`] pinned to an explicit backend.
pub fn dot_slice16_on(backend: Backend, a: &[Gf65536], b: &[Gf65536]) -> Gf65536 {
    assert_eq!(a.len(), b.len(), "dot_slice16 length mismatch");
    match backend {
        Backend::Scalar => {
            let mut acc = Gf65536(0);
            for (&x, &y) in a.iter().zip(b.iter()) {
                acc.0 ^= x.mul(y).0;
            }
            acc
        }
        Backend::Swar => dot16_swar(a, b),
        Backend::Simd => simd::kernels::dot16(a, b).unwrap_or_else(|| dot16_swar(a, b)),
    }
}

/// `acc[i] ^= c · src[i]` for all `i` — the GF(2¹⁶) axpy kernel
/// (`c = 1` degenerates to pure XOR).
///
/// # Panics
/// Panics if the slices differ in length.
#[inline]
pub fn mul_add_slice16(acc: &mut [Gf65536], c: Gf65536, src: &[Gf65536]) {
    mul_add_slice16_on(simd::backend(), acc, c, src);
}

/// [`mul_add_slice16`] pinned to an explicit backend.
pub fn mul_add_slice16_on(backend: Backend, acc: &mut [Gf65536], c: Gf65536, src: &[Gf65536]) {
    assert_eq!(acc.len(), src.len(), "mul_add_slice16 length mismatch");
    match backend {
        Backend::Scalar => {
            for (a, &s) in acc.iter_mut().zip(src.iter()) {
                a.0 ^= c.mul(s).0;
            }
        }
        Backend::Swar | Backend::Simd => match c.0 {
            0 => {}
            1 => {
                for (a, &s) in acc.iter_mut().zip(src.iter()) {
                    a.0 ^= s.0;
                }
            }
            _ => {
                if backend == Backend::Simd && acc.len() >= simd::kernels::MIN_LEN16 {
                    simd::kernels::axpy16(acc, c, src);
                } else {
                    mul_add16_swar(acc, c, src);
                }
            }
        },
    }
}

/// `row[i] = c · row[i]` for all `i` — the GF(2¹⁶) in-place scale.
#[inline]
pub fn mul_slice16(row: &mut [Gf65536], c: Gf65536) {
    mul_slice16_on(simd::backend(), row, c);
}

/// [`mul_slice16`] pinned to an explicit backend.
pub fn mul_slice16_on(backend: Backend, row: &mut [Gf65536], c: Gf65536) {
    match backend {
        Backend::Scalar => {
            for v in row.iter_mut() {
                *v = c.mul(*v);
            }
        }
        Backend::Swar | Backend::Simd => match c.0 {
            0 => row.fill(Gf65536(0)),
            1 => {}
            _ => {
                if backend == Backend::Simd && row.len() >= simd::kernels::MIN_LEN16 {
                    simd::kernels::mul16(row, c);
                } else {
                    mul16_swar(row, c);
                }
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Field, Gf256};
    use rand::rngs::StdRng;
    use rand::{Rng, RngCore, SeedableRng};

    const LENS: [usize; 5] = [0, 1, 7, 64, 4096];

    fn random_bytes(rng: &mut StdRng, len: usize) -> Vec<u8> {
        let mut v = vec![0u8; len];
        rng.fill_bytes(&mut v);
        v
    }

    #[test]
    fn mul_table_matches_scalar() {
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                assert_eq!(mul_row(a)[b as usize], Gf256::mul_bytes(a, b));
            }
        }
    }

    #[test]
    fn xor_slice_matches_scalar_all_lengths() {
        let mut rng = StdRng::seed_from_u64(1);
        for len in LENS {
            let src = random_bytes(&mut rng, len);
            let mut dst = random_bytes(&mut rng, len);
            let expect: Vec<u8> = dst.iter().zip(src.iter()).map(|(d, s)| d ^ s).collect();
            xor_slice(&mut dst, &src);
            assert_eq!(dst, expect, "len {len}");
        }
    }

    #[test]
    fn mul_add_slice_matches_scalar_all_lengths_all_backends() {
        let mut rng = StdRng::seed_from_u64(2);
        for backend in simd::available_backends() {
            for len in LENS {
                for c in [0u8, 1, 2, 17, 255] {
                    let src = random_bytes(&mut rng, len);
                    let mut dst = random_bytes(&mut rng, len);
                    let expect: Vec<u8> = dst
                        .iter()
                        .zip(src.iter())
                        .map(|(&d, &s)| d ^ Gf256::mul_bytes(c, s))
                        .collect();
                    mul_add_slice_on(backend, &mut dst, c, &src);
                    assert_eq!(dst, expect, "backend {backend}, len {len}, c {c}");
                }
            }
        }
    }

    #[test]
    fn mul_slice_matches_scalar_all_backends() {
        let mut rng = StdRng::seed_from_u64(3);
        for backend in simd::available_backends() {
            for len in LENS {
                let c: u8 = rng.gen();
                let orig = random_bytes(&mut rng, len);
                let mut dst = orig.clone();
                mul_slice_on(backend, &mut dst, c);
                let expect: Vec<u8> = orig.iter().map(|&b| Gf256::mul_bytes(c, b)).collect();
                assert_eq!(dst, expect, "backend {backend}, len {len}, c {c}");
            }
        }
    }

    #[test]
    fn mul_slice_into_matches_in_place() {
        let mut rng = StdRng::seed_from_u64(4);
        for backend in simd::available_backends() {
            for len in LENS {
                for c in [0u8, 1, 99] {
                    let src = random_bytes(&mut rng, len);
                    let mut a = src.clone();
                    mul_slice_on(backend, &mut a, c);
                    let mut b = vec![0xFFu8; len];
                    mul_slice_into_on(backend, &mut b, c, &src);
                    assert_eq!(a, b, "backend {backend}, len {len}, c {c}");
                }
            }
        }
    }

    #[test]
    fn mul_add_is_field_axpy() {
        // The byte kernel agrees with the generic Field axpy.
        let mut rng = StdRng::seed_from_u64(5);
        let src = random_bytes(&mut rng, 253);
        let mut dst = random_bytes(&mut rng, 253);
        let c: u8 = rng.gen();
        let mut field_acc: Vec<Gf256> = dst.iter().map(|&b| Gf256::new(b)).collect();
        let field_src: Vec<Gf256> = src.iter().map(|&b| Gf256::new(b)).collect();
        crate::field::axpy(&mut field_acc, Gf256::new(c), &field_src);
        mul_add_slice(&mut dst, c, &src);
        assert_eq!(
            dst,
            field_acc.iter().map(|f| f.value()).collect::<Vec<u8>>()
        );
    }

    #[test]
    fn fused_transform_kernels_match_two_pass() {
        let mut rng = StdRng::seed_from_u64(6);
        for backend in simd::available_backends() {
            for len in LENS {
                for c in [1u8, 2, 0x53, 255] {
                    let pad = random_bytes(&mut rng, len);
                    let orig = random_bytes(&mut rng, len);
                    // Forward: fused vs scale-then-xor.
                    let mut fused = orig.clone();
                    mul_xor_slice_on(backend, &mut fused, c, &pad);
                    let mut two_pass = orig.clone();
                    mul_slice_on(backend, &mut two_pass, c);
                    xor_slice(&mut two_pass, &pad);
                    assert_eq!(fused, two_pass, "forward {backend} len {len} c {c}");
                    // Inverse: fused vs xor-then-scale, and round-trip.
                    let inv = Gf256::new(c).inv().value();
                    xor_mul_slice_on(backend, &mut fused, inv, &pad);
                    assert_eq!(fused, orig, "round-trip {backend} len {len} c {c}");
                }
            }
        }
    }

    #[test]
    fn dot_slice8_matches_scalar_all_backends() {
        let mut rng = StdRng::seed_from_u64(8);
        for backend in simd::available_backends() {
            for len in LENS {
                let a = random_bytes(&mut rng, len);
                let b = random_bytes(&mut rng, len);
                let want = a
                    .iter()
                    .zip(b.iter())
                    .fold(0u8, |acc, (&x, &y)| acc ^ Gf256::mul_bytes(x, y));
                assert_eq!(
                    dot_slice8_on(backend, &a, &b),
                    want,
                    "backend {backend}, len {len}"
                );
            }
        }
    }

    #[test]
    fn fused_matches_independent_axpy_sweeps() {
        let mut rng = StdRng::seed_from_u64(9);
        for backend in simd::available_backends() {
            for len in LENS {
                for (nout, nsrc) in [(1, 1), (3, 3), (5, 2), (4, 7)] {
                    let srcs: Vec<Vec<u8>> =
                        (0..nsrc).map(|_| random_bytes(&mut rng, len)).collect();
                    let coeffs: Vec<u8> = (0..nout * nsrc).map(|_| rng.gen()).collect();
                    let mut outs: Vec<Vec<u8>> =
                        (0..nout).map(|_| random_bytes(&mut rng, len)).collect();
                    let mut want = outs.clone();
                    for (j, w) in want.iter_mut().enumerate() {
                        for (i, s) in srcs.iter().enumerate() {
                            mul_add_slice_on(Backend::Swar, w, coeffs[j * nsrc + i], s);
                        }
                    }
                    let src_refs: Vec<&[u8]> = srcs.iter().map(|s| s.as_slice()).collect();
                    let mut out_refs: Vec<&mut [u8]> =
                        outs.iter_mut().map(|o| o.as_mut_slice()).collect();
                    mul_add_fused_on(backend, &mut out_refs, &coeffs, &src_refs);
                    assert_eq!(outs, want, "backend {backend}, len {len}, {nout}x{nsrc}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        let mut dst = [0u8; 4];
        mul_add_slice(&mut dst, 3, &[0u8; 5]);
    }

    /// The GF(2¹⁶) kernels must agree with element-wise scalar `mul` for
    /// every coefficient class (zero, one, generic), length and backend.
    #[test]
    fn wide_kernels_match_scalar_all_lengths() {
        let mut rng = StdRng::seed_from_u64(7);
        for backend in simd::available_backends() {
            for len in LENS {
                let a: Vec<Gf65536> = (0..len).map(|_| Gf65536::random(&mut rng)).collect();
                let b: Vec<Gf65536> = (0..len).map(|_| Gf65536::random(&mut rng)).collect();
                for c in [Gf65536(0), Gf65536(1), Gf65536(0xA7C3), Gf65536(0xFFFF)] {
                    // dot (also exercises the zero-element skip).
                    let mut want = Gf65536::zero();
                    for (&x, &y) in a.iter().zip(b.iter()) {
                        want = want.add(x.mul(y));
                    }
                    assert_eq!(dot_slice16_on(backend, &a, &b), want, "dot {backend} {len}");
                    // axpy.
                    let mut got = a.clone();
                    mul_add_slice16_on(backend, &mut got, c, &b);
                    let want: Vec<Gf65536> = a
                        .iter()
                        .zip(b.iter())
                        .map(|(&x, &y)| x.add(c.mul(y)))
                        .collect();
                    assert_eq!(got, want, "axpy {backend} len {len} c {c:?}");
                    // scale.
                    let mut got = a.clone();
                    mul_slice16_on(backend, &mut got, c);
                    let want: Vec<Gf65536> = a.iter().map(|&x| x.mul(c)).collect();
                    assert_eq!(got, want, "scale {backend} len {len} c {c:?}");
                }
            }
        }
    }

    /// Sparse inputs (zeros interleaved) hit the skip branches.
    #[test]
    fn wide_kernels_handle_zero_elements() {
        let a: Vec<Gf65536> = (0..16u16)
            .map(|i| Gf65536(if i % 3 == 0 { 0 } else { i * 31 }))
            .collect();
        let mut acc = vec![Gf65536(0x1111); 16];
        let before = acc.clone();
        mul_add_slice16(&mut acc, Gf65536(0x20), &a);
        for i in 0..16 {
            assert_eq!(acc[i], before[i].add(Gf65536(0x20).mul(a[i])));
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wide_length_mismatch_panics() {
        let mut dst = [Gf65536(0); 4];
        mul_add_slice16(&mut dst, Gf65536(3), &[Gf65536(0); 5]);
    }
}
