//! Probable-prime generation with Miller–Rabin, for RSA keygen.

use rand::Rng;

use crate::bignum::BigUint;

/// Small primes used for fast trial division before Miller–Rabin.
const SMALL_PRIMES: [u64; 30] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89,
    97, 101, 103, 107, 109, 113,
];

/// Miller–Rabin probabilistic primality test with `rounds` random bases.
pub fn is_probable_prime<R: Rng + ?Sized>(n: &BigUint, rounds: usize, rng: &mut R) -> bool {
    let one = BigUint::one();
    let two = BigUint::from_u64(2);
    if n.cmp(&two) == std::cmp::Ordering::Less {
        return false;
    }
    for &p in &SMALL_PRIMES {
        let p_big = BigUint::from_u64(p);
        match n.cmp(&p_big) {
            std::cmp::Ordering::Equal => return true,
            std::cmp::Ordering::Less => return false,
            std::cmp::Ordering::Greater => {
                if n.rem(&p_big).is_zero() {
                    return false;
                }
            }
        }
    }
    // Write n - 1 = d · 2^s with d odd.
    let n_minus_1 = n.sub(&one);
    let mut d = n_minus_1.clone();
    let mut s = 0usize;
    while !d.is_odd() {
        d = d.shr(1);
        s += 1;
    }
    'witness: for _ in 0..rounds {
        // Base in [2, n-2].
        let a = loop {
            let a = BigUint::random_below(n, rng);
            if a.cmp(&two) != std::cmp::Ordering::Less && a.cmp(&n_minus_1) == std::cmp::Ordering::Less
            {
                break a;
            }
        };
        let mut x = a.mod_pow(&d, n);
        if x.cmp(&one) == std::cmp::Ordering::Equal
            || x.cmp(&n_minus_1) == std::cmp::Ordering::Equal
        {
            continue 'witness;
        }
        for _ in 0..s - 1 {
            x = x.mul_mod(&x, n);
            if x.cmp(&n_minus_1) == std::cmp::Ordering::Equal {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Generate a random probable prime with exactly `bits` bits.
///
/// # Panics
/// Panics if `bits < 8`.
pub fn gen_prime<R: Rng + ?Sized>(bits: usize, rng: &mut R) -> BigUint {
    assert!(bits >= 8, "prime too small to be useful");
    loop {
        let mut candidate = BigUint::random_bits(bits, rng);
        if !candidate.is_odd() {
            candidate = candidate.add(&BigUint::one());
        }
        if is_probable_prime(&candidate, 20, rng) {
            return candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn small_primes_recognized() {
        let mut rng = StdRng::seed_from_u64(1);
        for p in [2u64, 3, 5, 7, 11, 13, 127, 8191, 131071, 1_000_000_007] {
            assert!(
                is_probable_prime(&BigUint::from_u64(p), 20, &mut rng),
                "{p} should be prime"
            );
        }
    }

    #[test]
    fn composites_rejected() {
        let mut rng = StdRng::seed_from_u64(2);
        for c in [0u64, 1, 4, 6, 9, 15, 341, 561, 1105, 1729, 1_000_000_005] {
            assert!(
                !is_probable_prime(&BigUint::from_u64(c), 20, &mut rng),
                "{c} should be composite"
            );
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        // Classic Fermat pseudoprimes that Miller-Rabin must catch.
        let mut rng = StdRng::seed_from_u64(3);
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911, 41041, 825265] {
            assert!(!is_probable_prime(&BigUint::from_u64(c), 20, &mut rng));
        }
    }

    #[test]
    fn generated_primes_have_right_size_and_pass() {
        let mut rng = StdRng::seed_from_u64(4);
        for bits in [32usize, 64, 128] {
            let p = gen_prime(bits, &mut rng);
            assert_eq!(p.bits(), bits);
            assert!(is_probable_prime(&p, 20, &mut rng));
            assert!(p.is_odd());
        }
    }

    #[test]
    fn fermat_holds_for_generated_prime() {
        let mut rng = StdRng::seed_from_u64(5);
        let p = gen_prime(96, &mut rng);
        let a = BigUint::from_u64(2);
        assert_eq!(
            a.mod_pow(&p.sub(&BigUint::one()), &p),
            BigUint::one()
        );
    }
}
