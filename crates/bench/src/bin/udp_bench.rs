//! UDP-vs-TCP goodput under loss: streams a multi-message session
//! payload end to end over the real UDP transport at a sweep of
//! injected loss rates, plus the TCP transport as the
//! reliable-baseline row — and writes a machine-readable
//! `BENCH_udp.json` so CI records the trajectory across PRs.
//!
//! The interesting claim is the paper's: on a lossy substrate, coded
//! redundancy over an unreliable transport beats a reliable bytestream,
//! because losses cost a coded stream nothing until redundancy is
//! exhausted while TCP pays head-of-line blocking per drop. At 0% loss
//! UDP must at least match TCP (no reliability tax to pay).
//!
//! `--quick` (or `UDP_BENCH_QUICK=1`) runs the two-point sweep CI
//! uses. Output goes to stdout as the usual aligned table and to
//! `BENCH_udp.json` in the current directory (`--out PATH` overrides).

use std::time::Duration;

use slicing_bench::{banner, RunOpts, Table};
use slicing_core::{DestPlacement, GraphParams};
use slicing_overlay::experiment::Transport;
use slicing_overlay::{run_session_transfer, SessionTransferConfig, UdpFaults};

/// One measured row of the sweep.
struct Row {
    transport: &'static str,
    loss: f64,
    goodput_mbps: f64,
    elapsed_ms: u64,
    retransmits: u64,
    batch_ratio: f64,
    delivered: bool,
}

fn main() {
    let opts = RunOpts::from_args();
    let quick = opts.quick || std::env::var_os("UDP_BENCH_QUICK").is_some();
    let out_path = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1).cloned())
            .unwrap_or_else(|| "BENCH_udp.json".to_string())
    };
    let (payload_len, messages, losses): (usize, usize, &[f64]) = if quick {
        (48_000, 1, &[0.0, 0.10])
    } else {
        (96_000, 4, &[0.0, 0.05, 0.10, 0.20])
    };
    banner(
        "UDP vs TCP session goodput under loss",
        &format!(
            "{messages} × {payload_len} B streamed messages, L=3 d=2 d'=3, \
             loss sweep {losses:?}"
        ),
        "UDP ≥ TCP at 0% loss; UDP goodput degrades gracefully with loss",
    );

    let rt = tokio::runtime::Builder::new_multi_thread()
        .worker_threads(4)
        .enable_all()
        .build()
        .expect("tokio runtime");

    let cfg = |transport: Transport, seed: u64| SessionTransferConfig {
        params: GraphParams::new(3, 2)
            .with_paths(3)
            .with_dest_placement(DestPlacement::LastStage),
        transport,
        payload_len,
        messages,
        relay_shards: 2,
        session_shards: 2,
        seed,
        timeout: Duration::from_secs(180),
        ..SessionTransferConfig::default()
    };

    let mut rows = Vec::new();
    for (i, &loss) in losses.iter().enumerate() {
        let faults = UdpFaults {
            loss,
            ..UdpFaults::default()
        };
        let report = rt.block_on(run_session_transfer(&cfg(
            Transport::Udp(faults),
            opts.seed + i as u64,
        )));
        let udp = report.udp.expect("UDP run carries transport stats");
        let row = Row {
            transport: "udp",
            loss,
            goodput_mbps: goodput_mbps(report.payload_bytes, report.elapsed_ms),
            elapsed_ms: report.elapsed_ms,
            retransmits: report.retransmits,
            batch_ratio: udp.datagrams_sent as f64 / udp.send_calls.max(1) as f64,
            delivered: report.messages_delivered == messages && report.bytes_match,
        };
        println!(
            "row: udp loss={loss:.2} goodput={:.3} Mb/s elapsed={} ms \
             retx={} batch={:.2} drops={} delivered={}",
            row.goodput_mbps,
            row.elapsed_ms,
            row.retransmits,
            row.batch_ratio,
            udp.injected_drops,
            row.delivered,
        );
        rows.push(row);
    }

    // TCP baseline: the fault shim is UDP-only, so the one honest TCP
    // point is the clean link.
    let report = rt.block_on(run_session_transfer(&cfg(Transport::Tcp, opts.seed + 100)));
    let row = Row {
        transport: "tcp",
        loss: 0.0,
        goodput_mbps: goodput_mbps(report.payload_bytes, report.elapsed_ms),
        elapsed_ms: report.elapsed_ms,
        retransmits: report.retransmits,
        batch_ratio: 0.0,
        delivered: report.messages_delivered == messages && report.bytes_match,
    };
    println!(
        "row: tcp loss=0.00 goodput={:.3} Mb/s elapsed={} ms retx={} delivered={}",
        row.goodput_mbps, row.elapsed_ms, row.retransmits, row.delivered,
    );
    rows.push(row);

    let mut table = Table::new(&[
        "loss_pct",
        "udp=0/tcp=1",
        "goodput_mbps",
        "elapsed_ms",
        "retransmits",
        "batch_ratio",
    ]);
    for r in &rows {
        table.row(&[
            r.loss * 100.0,
            if r.transport == "udp" { 0.0 } else { 1.0 },
            r.goodput_mbps,
            r.elapsed_ms as f64,
            r.retransmits as f64,
            r.batch_ratio,
        ]);
    }
    table.print();

    let entries: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"transport\": \"{}\", \"loss\": {:.2}, \
                 \"goodput_mbps\": {:.3}, \"elapsed_ms\": {}, \
                 \"retransmits\": {}, \"batch_ratio\": {:.2}, \
                 \"delivered\": {}}}",
                r.transport, r.loss, r.goodput_mbps, r.elapsed_ms, r.retransmits, r.batch_ratio,
                r.delivered
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"udp_bench\",\n  \"payload_bytes\": {payload_len},\n  \
         \"messages\": {messages},\n  \"graph\": \"L=3 d=2 dprime=3\",\n  \
         \"rows\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    std::fs::write(&out_path, &json).expect("write BENCH_udp.json");
    println!("wrote {out_path}");

    let udp0 = rows
        .iter()
        .find(|r| r.transport == "udp" && r.loss == 0.0)
        .expect("udp 0-loss row");
    let tcp = rows.iter().find(|r| r.transport == "tcp").expect("tcp row");
    if !rows.iter().all(|r| r.delivered) {
        println!("WARNING: not every row delivered its full payload");
    }
    println!(
        "udp/tcp goodput at 0% loss: {:.2}x",
        udp0.goodput_mbps / tcp.goodput_mbps.max(1e-9)
    );
}

/// Application bytes over the data-phase wall clock, in Mbit/s.
fn goodput_mbps(bytes: u64, elapsed_ms: u64) -> f64 {
    if elapsed_ms == 0 {
        return 0.0;
    }
    (bytes as f64 * 8.0) / (elapsed_ms as f64 / 1000.0) / 1_000_000.0
}
