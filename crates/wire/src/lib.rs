//! Wire format for information-slicing packets (Fig. 3, §4.3.3, §9.4(c)).
//!
//! A packet carries a cleartext **flow-id** (so a relay can group the `d`
//! packets of one flow, §4.3.1) followed by a fixed number of equal-size
//! **slots**. Slot 0 is always the slice addressed to the receiving relay;
//! the remaining slots are opaque to it (they hold downstream slices,
//! possibly wrapped in per-hop transforms, or the random padding a relay
//! inserts in place of its consumed slice, §4.3.6).
//!
//! Every packet of a flow has identical length at every hop — the
//! slice-map machinery replaces consumed slices with padding rather than
//! shrinking packets, defeating packet-size analysis (§9.4(c)).
//!
//! # Zero-copy data plane
//!
//! A [`Packet`] is a parsed [`PacketHeader`] plus one frozen [`Bytes`]
//! buffer holding the full wire image. [`Packet::from_bytes`] validates a
//! received buffer and *keeps it* — slot accessors ([`Packet::slot`],
//! [`Packet::slot_bytes`]) are views into the receive buffer, and
//! [`Packet::encode`] hands the same buffer back for transmission, so a
//! relay that forwards a packet never copies its payload. New packets are
//! assembled once, in place, through [`PacketBuilder`] (reserve a slot,
//! code into it, freeze).

#![forbid(unsafe_code)]

pub mod crc;

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Magic bytes prefixed to every packet ("IS").
pub const MAGIC: [u8; 2] = [0x49, 0x53];
/// Wire format version.
pub const VERSION: u8 = 1;
/// Fixed header length in bytes.
pub const HEADER_LEN: usize = 20;

/// A 64-bit cleartext flow identifier.
///
/// Flow-ids change at every hop ("to prevent the attacker from detecting
/// the path by matching flow-ids", §4.3.1); all parents of one child use
/// the same flow-id so the child can group packets of the flow.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub u64);

impl FlowId {
    /// Sample a fresh random flow id.
    pub fn random<R: rand::Rng + ?Sized>(rng: &mut R) -> Self {
        FlowId(rng.gen())
    }
}

impl std::fmt::Debug for FlowId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "flow:{:016x}", self.0)
    }
}

/// What phase of the protocol a packet belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PacketKind {
    /// Graph-establishment packet: slots carry per-node information
    /// slices (§4.3.4).
    Setup,
    /// Data packet: slots carry coded data slices (§4.3.7).
    Data,
    /// Control packet: neighbour keepalives and failure notifications
    /// (slot 0 carries a [`control`] body). Control packets ride the
    /// same flow ids as data — keepalives travel downstream on forward
    /// flow ids, failure reports travel upstream on reverse flow ids.
    Control,
}

impl PacketKind {
    fn to_byte(self) -> u8 {
        match self {
            PacketKind::Setup => 0,
            PacketKind::Data => 1,
            PacketKind::Control => 2,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        match b {
            0 => Some(PacketKind::Setup),
            1 => Some(PacketKind::Data),
            2 => Some(PacketKind::Control),
            _ => None,
        }
    }
}

/// Control-packet bodies (slot 0 of a [`PacketKind::Control`] packet).
///
/// The first byte of the slot is the opcode; the rest is the
/// opcode-specific payload. Control packets are deliberately tiny — they
/// are the live overlay's failure-detection plane, not a data path.
pub mod control {
    use super::{FlowId, Packet, PacketBuilder, PacketHeader, PacketKind};

    /// Opcode: "I am alive" — sent by a relay to each child of an
    /// established flow on the child's forward flow id, so children can
    /// distinguish an idle parent from a dead one. The payload is the
    /// sender's own reverse flow id (8 bytes LE), which the child holds
    /// in its parent list: a flow-membership token that keeps a
    /// transport-level address forgery from refreshing a parent's
    /// liveness (and thereby suppressing failure detection).
    pub const KEEPALIVE: u8 = 1;

    /// Opcode: "a neighbour of this flow died" — sent toward the source
    /// on reverse flow ids. The payload is the dead node's address,
    /// AEAD-sealed under the *reporting* relay's secret key, so
    /// forwarding relays learn nothing about nodes beyond their own
    /// neighbours while the source (which knows every per-node key it
    /// issued) can recover and authenticate the report.
    pub const FLOW_FAILED: u8 = 2;

    /// Build a keepalive packet for `flow`, carrying the sender's own
    /// reverse flow id as the membership token the receiver checks
    /// against its parent list.
    pub fn keepalive(flow: FlowId, token: FlowId) -> Packet {
        let mut b = PacketBuilder::new(PacketHeader {
            kind: PacketKind::Control,
            flow_id: flow,
            seq: 0,
            d: 1,
            slot_count: 1,
            slot_len: 9,
        });
        let slot = b.slot();
        slot[0] = KEEPALIVE;
        slot[1..9].copy_from_slice(&token.0.to_le_bytes());
        b.build()
    }

    /// Build a flow-failed packet for `flow` carrying `sealed` (the
    /// AEAD-sealed address of the dead node).
    pub fn flow_failed(flow: FlowId, sealed: &[u8]) -> Packet {
        let mut b = PacketBuilder::new(PacketHeader {
            kind: PacketKind::Control,
            flow_id: flow,
            seq: 0,
            d: 1,
            slot_count: 1,
            slot_len: (1 + sealed.len()) as u16,
        });
        let slot = b.slot();
        slot[0] = FLOW_FAILED;
        slot[1..].copy_from_slice(sealed);
        b.build()
    }

    /// Split a control packet's slot 0 into `(opcode, payload)`.
    /// `None` if the packet is not a control packet.
    pub fn parse(packet: &Packet) -> Option<(u8, &[u8])> {
        if packet.header.kind != PacketKind::Control || packet.header.slot_count == 0 {
            return None;
        }
        let body = packet.slot(0);
        Some((body[0], &body[1..]))
    }
}

/// Parsed packet header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PacketHeader {
    /// Protocol phase.
    pub kind: PacketKind,
    /// Cleartext flow identifier.
    pub flow_id: FlowId,
    /// Message sequence number within the flow (0 for setup packets).
    pub seq: u32,
    /// Split factor of the flow (coefficients per slice).
    pub d: u8,
    /// Number of slots in the packet (the paper's `L` slices, Fig. 3).
    pub slot_count: u8,
    /// Length of each slot in bytes (`d + block_len`).
    pub slot_len: u16,
}

/// A wire packet: a parsed header over one frozen wire buffer with
/// `slot_count` opaque slots of `slot_len` bytes each.
///
/// Cloning is O(1) (the buffer is shared); equality compares the wire
/// bytes.
#[derive(Clone)]
pub struct Packet {
    /// The header (parsed from, and consistent with, the wire buffer).
    pub header: PacketHeader,
    /// Full wire image: header followed by the slots.
    wire: Bytes,
}

impl PartialEq for Packet {
    fn eq(&self, other: &Packet) -> bool {
        self.wire == other.wire
    }
}

impl Eq for Packet {}

impl std::fmt::Debug for Packet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Packet({:?}, {:?}, {} slots x {}B)",
            self.header.kind, self.header.flow_id, self.header.slot_count, self.header.slot_len
        )
    }
}

/// Decoding failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Input shorter than the header or the declared body.
    Truncated,
    /// Magic bytes missing.
    BadMagic,
    /// Unknown version.
    BadVersion,
    /// Unknown packet kind byte.
    BadKind,
    /// Header fields are internally inconsistent (e.g. zero slots).
    Inconsistent,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "packet truncated"),
            WireError::BadMagic => write!(f, "bad magic bytes"),
            WireError::BadVersion => write!(f, "unsupported version"),
            WireError::BadKind => write!(f, "unknown packet kind"),
            WireError::Inconsistent => write!(f, "inconsistent header"),
        }
    }
}

impl std::error::Error for WireError {}

impl Packet {
    /// Assemble a packet from owned slot vectors (convenience for tests
    /// and cold paths; hot paths use [`PacketBuilder`] to code slots in
    /// place).
    ///
    /// # Panics
    /// Panics if the slots don't match the header's declared shape.
    pub fn new(header: PacketHeader, slots: Vec<Vec<u8>>) -> Self {
        assert_eq!(slots.len(), header.slot_count as usize, "slot count");
        assert!(
            slots.iter().all(|s| s.len() == header.slot_len as usize),
            "slot length"
        );
        let mut b = PacketBuilder::new(header);
        for slot in &slots {
            b.push_slot(slot);
        }
        b.build()
    }

    /// Total encoded length.
    pub fn wire_len(&self) -> usize {
        HEADER_LEN + self.header.slot_count as usize * self.header.slot_len as usize
    }

    /// The frozen wire image, ready to transmit.
    ///
    /// O(1): returns a shared view of the buffer the packet was decoded
    /// from (or built into) — forwarding never re-serializes.
    pub fn encode(&self) -> Bytes {
        self.wire.clone()
    }

    /// Borrow slot `i` (zero-copy view into the wire buffer).
    ///
    /// # Panics
    /// Panics if `i >= slot_count`.
    pub fn slot(&self, i: usize) -> &[u8] {
        assert!(i < self.header.slot_count as usize, "slot index");
        let len = self.header.slot_len as usize;
        let start = HEADER_LEN + i * len;
        &self.wire[start..start + len]
    }

    /// Slot `i` as a shared [`Bytes`] view — O(1), keeps the receive
    /// buffer alive, lets a gather retain one slot without copying the
    /// packet.
    ///
    /// # Panics
    /// Panics if `i >= slot_count`.
    pub fn slot_bytes(&self, i: usize) -> Bytes {
        assert!(i < self.header.slot_count as usize, "slot index");
        let len = self.header.slot_len as usize;
        let start = HEADER_LEN + i * len;
        self.wire.slice(start..start + len)
    }

    /// Iterate over all slots.
    pub fn slots(&self) -> impl Iterator<Item = &[u8]> {
        (0..self.header.slot_count as usize).map(|i| self.slot(i))
    }

    /// Deserialize from a borrowed buffer, validating shape (copies the
    /// bytes; receive paths holding a [`Bytes`] should use
    /// [`Packet::from_bytes`] instead).
    pub fn decode(bytes: &[u8]) -> Result<Packet, WireError> {
        Packet::from_bytes(Bytes::copy_from_slice(bytes))
    }

    /// Zero-copy deserialize: validate `bytes` and adopt it as the
    /// packet's wire buffer. Accepts and rejects byte-identically to
    /// [`Packet::decode`].
    pub fn from_bytes(bytes: Bytes) -> Result<Packet, WireError> {
        let mut cursor: &[u8] = &bytes;
        if cursor.len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let mut magic = [0u8; 2];
        cursor.copy_to_slice(&mut magic);
        if magic != MAGIC {
            return Err(WireError::BadMagic);
        }
        let version = cursor.get_u8();
        if version != VERSION {
            return Err(WireError::BadVersion);
        }
        let kind = PacketKind::from_byte(cursor.get_u8()).ok_or(WireError::BadKind)?;
        let flow_id = FlowId(cursor.get_u64_le());
        let seq = cursor.get_u32_le();
        let d = cursor.get_u8();
        let slot_count = cursor.get_u8();
        let slot_len = cursor.get_u16_le();
        if d == 0 || slot_count == 0 || (d as u16) > slot_len {
            return Err(WireError::Inconsistent);
        }
        let body_len = slot_count as usize * slot_len as usize;
        if cursor.remaining() != body_len {
            return Err(WireError::Truncated);
        }
        Ok(Packet {
            header: PacketHeader {
                kind,
                flow_id,
                seq,
                d,
                slot_count,
                slot_len,
            },
            wire: bytes,
        })
    }
}

/// Read just the flow id out of a wire buffer, validating only the
/// fixed prelude (magic, version, kind byte) — the cheap peek a sharded
/// ingress uses to pick a shard before the owning shard runs the full
/// [`Packet::from_bytes`] validation. `None` means the buffer can never
/// parse as a packet and can be dropped at the door.
pub fn peek_flow_id(bytes: &[u8]) -> Option<FlowId> {
    if bytes.len() < HEADER_LEN || bytes[..2] != MAGIC || bytes[2] != VERSION {
        return None;
    }
    PacketKind::from_byte(bytes[3])?;
    Some(FlowId(u64::from_le_bytes(bytes[4..12].try_into().ok()?)))
}

/// Assembles a packet in a single buffer: header first, then each slot
/// written (or coded) in place, then [`build`](PacketBuilder::build)
/// freezes the buffer into a [`Packet`].
pub struct PacketBuilder {
    header: PacketHeader,
    buf: BytesMut,
    written: u8,
}

impl PacketBuilder {
    /// Start a packet with the given header (slot contents follow).
    pub fn new(header: PacketHeader) -> Self {
        let mut buf = BytesMut::with_capacity(
            HEADER_LEN + header.slot_count as usize * header.slot_len as usize,
        );
        buf.put_slice(&MAGIC);
        buf.put_u8(VERSION);
        buf.put_u8(header.kind.to_byte());
        buf.put_u64_le(header.flow_id.0);
        buf.put_u32_le(header.seq);
        buf.put_u8(header.d);
        buf.put_u8(header.slot_count);
        buf.put_u16_le(header.slot_len);
        PacketBuilder {
            header,
            buf,
            written: 0,
        }
    }

    /// Append the next (zero-initialized) slot and return it for in-place
    /// filling — the data plane codes slices directly into this region.
    ///
    /// # Panics
    /// Panics if all declared slots have already been written.
    pub fn slot(&mut self) -> &mut [u8] {
        assert!(self.written < self.header.slot_count, "too many slots");
        self.written += 1;
        self.buf.put_zeroed(self.header.slot_len as usize)
    }

    /// Re-borrow an already-written slot for further in-place editing.
    ///
    /// The fused relay coding path fills several packets' slots through
    /// one multi-output kernel call after all builders exist, then comes
    /// back here to stamp CRCs.
    ///
    /// # Panics
    /// Panics if slot `i` has not been written yet.
    pub fn slot_mut(&mut self, i: usize) -> &mut [u8] {
        assert!(i < self.written as usize, "slot not yet written");
        let len = self.header.slot_len as usize;
        let start = HEADER_LEN + i * len;
        &mut self.buf[start..start + len]
    }

    /// Append a pre-assembled slot.
    ///
    /// # Panics
    /// Panics on length mismatch or slot overflow.
    pub fn push_slot(&mut self, bytes: &[u8]) {
        assert_eq!(bytes.len(), self.header.slot_len as usize, "slot length");
        self.slot().copy_from_slice(bytes);
    }

    /// Freeze the buffer into an immutable [`Packet`].
    ///
    /// # Panics
    /// Panics unless exactly `slot_count` slots were written.
    pub fn build(self) -> Packet {
        assert_eq!(self.written, self.header.slot_count, "slot count");
        Packet {
            header: self.header,
            wire: self.buf.freeze(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Packet {
        Packet::new(
            PacketHeader {
                kind: PacketKind::Setup,
                flow_id: FlowId(0xDEADBEEF12345678),
                seq: 7,
                d: 2,
                slot_count: 3,
                slot_len: 10,
            },
            vec![vec![1u8; 10], vec![2u8; 10], vec![3u8; 10]],
        )
    }

    #[test]
    fn round_trip() {
        let p = sample();
        let bytes = p.encode();
        assert_eq!(bytes.len(), p.wire_len());
        assert_eq!(Packet::decode(&bytes).unwrap(), p);
    }

    #[test]
    fn from_bytes_is_zero_copy() {
        let wire = sample().encode();
        let p = Packet::from_bytes(wire.clone()).unwrap();
        // Re-encoding hands back the same buffer, not a copy.
        assert_eq!(p.encode(), wire);
        // Slots are views into it.
        assert_eq!(p.slot(1), &[2u8; 10]);
        assert_eq!(p.slot_bytes(2), &[3u8; 10]);
    }

    #[test]
    fn builder_in_place_slots() {
        let header = PacketHeader {
            kind: PacketKind::Data,
            flow_id: FlowId(5),
            seq: 1,
            d: 2,
            slot_count: 2,
            slot_len: 4,
        };
        let mut b = PacketBuilder::new(header);
        b.slot().copy_from_slice(&[9, 9, 9, 9]);
        let s = b.slot();
        s[0] = 1;
        s[3] = 2;
        let p = b.build();
        assert_eq!(p.slot(0), &[9, 9, 9, 9]);
        assert_eq!(p.slot(1), &[1, 0, 0, 2]);
        assert_eq!(Packet::decode(&p.encode()).unwrap(), p);
    }

    #[test]
    #[should_panic(expected = "slot count")]
    fn builder_missing_slot_panics() {
        let header = PacketHeader {
            kind: PacketKind::Data,
            flow_id: FlowId(5),
            seq: 1,
            d: 1,
            slot_count: 2,
            slot_len: 4,
        };
        let mut b = PacketBuilder::new(header);
        b.push_slot(&[0; 4]);
        let _ = b.build();
    }

    #[test]
    fn truncated_rejected() {
        let bytes = sample().encode();
        for cut in [0usize, 1, HEADER_LEN - 1, HEADER_LEN + 5, bytes.len() - 1] {
            assert_eq!(
                Packet::decode(&bytes[..cut]).unwrap_err(),
                WireError::Truncated,
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = sample().encode().to_vec();
        bytes.push(0);
        assert_eq!(Packet::decode(&bytes).unwrap_err(), WireError::Truncated);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample().encode().to_vec();
        bytes[0] ^= 0xFF;
        assert_eq!(Packet::decode(&bytes).unwrap_err(), WireError::BadMagic);
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = sample().encode().to_vec();
        bytes[2] = 99;
        assert_eq!(Packet::decode(&bytes).unwrap_err(), WireError::BadVersion);
    }

    #[test]
    fn bad_kind_rejected() {
        let mut bytes = sample().encode().to_vec();
        bytes[3] = 7;
        assert_eq!(Packet::decode(&bytes).unwrap_err(), WireError::BadKind);
    }

    #[test]
    fn zero_d_rejected() {
        let mut bytes = sample().encode().to_vec();
        bytes[16] = 0; // d field
        assert_eq!(Packet::decode(&bytes).unwrap_err(), WireError::Inconsistent);
    }

    #[test]
    fn constant_size_for_flow() {
        // Packets of one flow shape always encode to the same length,
        // regardless of slot content (§9.4(c)).
        let p1 = sample();
        let header = p1.header;
        let p2 = Packet::new(
            header,
            vec![vec![1u8; 10], vec![0xFF; 10], vec![3u8; 10]],
        );
        assert_eq!(p1.encode().len(), p2.encode().len());
    }

    #[test]
    fn kind_round_trips() {
        for kind in [PacketKind::Setup, PacketKind::Data, PacketKind::Control] {
            assert_eq!(PacketKind::from_byte(kind.to_byte()), Some(kind));
        }
        assert_eq!(PacketKind::from_byte(255), None);
    }

    #[test]
    fn control_bodies_round_trip() {
        let ka = control::keepalive(FlowId(9), FlowId(0x0102_0304_0506_0708));
        assert_eq!(
            control::parse(&ka),
            Some((
                control::KEEPALIVE,
                &0x0102_0304_0506_0708u64.to_le_bytes()[..],
            ))
        );
        let sealed = [7u8; 52];
        let ff = control::flow_failed(FlowId(9), &sealed);
        assert_eq!(control::parse(&ff), Some((control::FLOW_FAILED, &sealed[..])));
        // Control packets survive the wire like any other.
        let decoded = Packet::decode(&ff.encode()).unwrap();
        assert_eq!(decoded, ff);
        assert_eq!(peek_flow_id(&ff.encode()), Some(FlowId(9)));
        // Data packets are not control packets.
        assert_eq!(control::parse(&sample()), None);
    }

    #[test]
    fn peek_flow_id_agrees_with_full_decode() {
        let p = sample();
        let wire = p.encode();
        assert_eq!(peek_flow_id(&wire), Some(p.header.flow_id));
        // Too short, bad magic, bad version, bad kind: all rejected.
        assert_eq!(peek_flow_id(&wire[..HEADER_LEN - 1]), None);
        let mut bad = wire.to_vec();
        bad[0] ^= 0xFF;
        assert_eq!(peek_flow_id(&bad), None);
        let mut bad = wire.to_vec();
        bad[2] = 99;
        assert_eq!(peek_flow_id(&bad), None);
        let mut bad = wire.to_vec();
        bad[3] = 7;
        assert_eq!(peek_flow_id(&bad), None);
        // A truncated body still peeks (full validation is the shard's
        // job); only the fixed prelude gates the peek.
        assert_eq!(peek_flow_id(&wire[..HEADER_LEN]), Some(p.header.flow_id));
    }

    #[test]
    fn flow_id_randomness() {
        let mut rng = rand::thread_rng();
        let a = FlowId::random(&mut rng);
        let b = FlowId::random(&mut rng);
        assert_ne!(a, b); // 2^-64 collision chance
    }
}
