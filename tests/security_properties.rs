//! Integration tests for the security properties the paper argues in
//! §5 and §9: pi-security end to end, per-hop pattern hiding, constant
//! packet sizes, and what a compromised relay actually sees.

use information_slicing::codec::{coder, encode};
use information_slicing::core::testnet::TestNet;
use information_slicing::core::{GraphParams, OverlayAddr, SourceSession};
use information_slicing::gf::{Field, Gf256, Matrix};
use proptest::prelude::*;

fn addrs(base: u64, n: usize) -> Vec<OverlayAddr> {
    (0..n as u64).map(|i| OverlayAddr(base + i)).collect()
}

/// §9.4(c): every setup packet in a flow has exactly the same wire size,
/// at every hop.
#[test]
fn constant_packet_size_across_hops() {
    let (l, d) = (5usize, 2usize);
    let pseudo = addrs(10_000, d);
    let candidates = addrs(20_000, 20);
    let dest = OverlayAddr(1);
    let mut nodes = candidates.clone();
    nodes.push(dest);
    let (mut source, setup) =
        SourceSession::establish(GraphParams::new(l, d), &pseudo, &candidates, dest, 3).unwrap();
    let wire_len = setup[0].packet.encode().len();
    assert!(setup.iter().all(|s| s.packet.encode().len() == wire_len));

    // Count bytes through the test net: every transported setup packet
    // must be the same size, so total bytes divide evenly.
    let mut net = TestNet::new(&nodes, 3);
    net.submit(setup);
    net.run_to_quiescence(Some(&mut source));
    assert_eq!(
        net.bytes_transported % wire_len as u64,
        0,
        "a relay emitted a differently-sized setup packet"
    );
}

/// §9.4(a): the same logical slice never shows the same bit pattern on
/// two different links (per-hop transforms).
#[test]
fn no_repeated_slice_patterns_between_stages() {
    let (l, d) = (4usize, 2usize);
    let pseudo = addrs(10_000, d);
    let candidates = addrs(20_000, 20);
    let dest = OverlayAddr(1);
    let (source, setup) =
        SourceSession::establish(GraphParams::new(l, d), &pseudo, &candidates, dest, 5).unwrap();
    let _ = source;
    // Gather all slots of all first-hop packets; no two identical slots
    // may appear anywhere (each is either a distinct slice or distinct
    // wrapping).
    let mut seen = std::collections::HashSet::new();
    for instr in &setup {
        for slot in instr.packet.slots() {
            assert!(
                seen.insert(slot.to_vec()),
                "identical slot bytes on two first-hop packets"
            );
        }
    }
}

/// §5 / Lemma 5.1 at the system level: a relay that decodes its own info
/// learns its neighbours and nothing else — specifically, the receiver
/// flag of OTHER nodes is not derivable from fewer than d slices of their
/// info.
#[test]
fn single_relay_cannot_decode_other_nodes_info() {
    let (l, d) = (4usize, 2usize);
    let pseudo = addrs(10_000, d);
    let candidates = addrs(20_000, 20);
    let dest = OverlayAddr(1);
    let (source, _setup) =
        SourceSession::establish(GraphParams::new(l, d), &pseudo, &candidates, dest, 7).unwrap();
    let graph = source.graph();
    // A stage-2 node holds exactly one slice of each stage-3 node's info
    // (vertex-disjoint paths); one slice of a d=2 encoding is not enough:
    // by super-regularity *any* value of any byte remains consistent.
    let target_slices = &graph.info_slices[3][0];
    let one = &target_slices[0];
    // Consistency check for three candidate values of byte 0 of block 0.
    for candidate in [0u8, 1, 255] {
        // One equation, one fixed unknown (block0[0] = candidate), one
        // free unknown (block1[0]): solvable iff coeff of block1 != 0.
        let c1 = Gf256::new(one.coeffs[1]);
        assert!(!c1.is_zero(), "super-regular generator has no zero entries");
        let rhs = Gf256::new(one.payload[0])
            .sub(Gf256::new(one.coeffs[0]).mul(Gf256::new(candidate)));
        // block1[0] = rhs / c1 always exists.
        let _ = rhs.div(c1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// End-to-end pi-security: for random messages and random observed
    /// subsets of d−1 slices, every probe byte value stays consistent.
    #[test]
    fn pi_security_holds_for_random_subsets(
        seed in any::<u64>(),
        msg in proptest::collection::vec(any::<u8>(), 16..128),
        probe in any::<u8>(),
    ) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let d = 4usize;
        let mut rng = StdRng::seed_from_u64(seed);
        let coded = encode(&msg, d, d, &mut rng);
        // Observe slices 1..d (drop slice 0).
        let observed = &coded.slices[1..];
        let mut a = Matrix::<Gf256>::zero(d - 1, d - 1);
        let mut b = Vec::new();
        for (i, s) in observed.iter().enumerate() {
            for k in 1..d {
                a.set(i, k - 1, Gf256::new(s.coeffs[k]));
            }
            b.push(Gf256::new(s.payload[0])
                .sub(Gf256::new(s.coeffs[0]).mul(Gf256::new(probe))));
        }
        prop_assert!(a.solve(&b).is_some());
    }

    /// Data confidentiality end to end: flipping any wire bit of a data
    /// packet can only lose the message, never corrupt the plaintext.
    #[test]
    fn corruption_never_yields_wrong_plaintext(
        seed in any::<u64>(), flip in any::<(u16, u8)>(),
    ) {
        let (l, d) = (3usize, 2usize);
        let pseudo = addrs(10_000, d);
        let candidates = addrs(20_000, 14);
        let dest = OverlayAddr(1);
        let mut nodes = candidates.clone();
        nodes.push(dest);
        let (mut source, setup) = SourceSession::establish(
            GraphParams::new(l, d), &pseudo, &candidates, dest, seed,
        ).unwrap();
        let mut net = TestNet::new(&nodes, seed);
        net.submit(setup);
        net.run_to_quiescence(Some(&mut source));
        let (_, mut sends) = source.send_message(b"authentic").expect("within chunk budget");
        // Corrupt one bit of one data packet.
        let idx = (flip.0 as usize) % sends.len();
        let mut bytes = sends[idx].packet.encode().to_vec();
        let pos = 20 + (flip.0 as usize % (bytes.len() - 20));
        bytes[pos] ^= 1 << (flip.1 % 8);
        if let Ok(p) = information_slicing::wire::Packet::decode(&bytes) {
            sends[idx].packet = p;
        }
        net.submit(sends);
        net.settle(Some(&mut source), 1_500, 4);
        let got = net.messages_for(dest);
        // Either delivered intact (redundant slices cover it) or lost.
        for (_, body) in got {
            prop_assert_eq!(body, b"authentic".to_vec());
        }
    }
}

/// The codec rejects systematically-leaky encodings: coded payloads never
/// equal a plaintext block (super-regular generators have no unit rows).
#[test]
fn no_systematic_leak() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(9);
    let msg = vec![0x11u8; 300];
    for d in 2..=6 {
        let coded = encode(&msg, d, d, &mut rng);
        let (blocks, _) = coder::split_blocks(&msg, d);
        for s in &coded.slices {
            for b in &blocks {
                assert_ne!(&s.payload, b, "coded slice equals plaintext block");
            }
        }
    }
}
