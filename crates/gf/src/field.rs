//! The [`Field`] trait: the arithmetic interface all coding is generic over.

use std::fmt::Debug;
use std::hash::Hash;

use rand::Rng;

/// A finite field element.
///
/// Implementations are small `Copy` wrappers over an unsigned integer.
/// Both provided fields ([`crate::Gf256`], [`crate::Gf65536`]) have
/// characteristic 2, so addition and subtraction coincide (XOR); the trait
/// still exposes `sub` separately so generic code reads like the algebra in
/// the paper.
pub trait Field:
    Copy + Clone + Eq + PartialEq + Debug + Hash + Send + Sync + 'static
{
    /// Number of bytes in the canonical little-endian encoding of an element.
    const BYTES: usize;
    /// The field order (number of elements), as u64.
    const ORDER: u64;

    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Whether this element is the additive identity.
    fn is_zero(&self) -> bool {
        *self == Self::zero()
    }

    /// Field addition.
    fn add(self, rhs: Self) -> Self;
    /// Field subtraction.
    fn sub(self, rhs: Self) -> Self;
    /// Field multiplication.
    fn mul(self, rhs: Self) -> Self;
    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics if `self` is zero.
    fn inv(self) -> Self;

    /// Field division (`self * rhs.inv()`).
    ///
    /// # Panics
    /// Panics if `rhs` is zero.
    fn div(self, rhs: Self) -> Self {
        self.mul(rhs.inv())
    }

    /// Exponentiation by squaring.
    fn pow(self, mut e: u64) -> Self {
        let mut base = self;
        let mut acc = Self::one();
        while e > 0 {
            if e & 1 == 1 {
                acc = acc.mul(base);
            }
            base = base.mul(base);
            e >>= 1;
        }
        acc
    }

    /// Construct an element from an integer, reduced modulo the field order.
    fn from_u64(v: u64) -> Self;
    /// The canonical integer representation of this element.
    fn to_u64(self) -> u64;

    /// Sample a uniformly random element.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self::from_u64(rng.gen::<u64>() % Self::ORDER)
    }

    /// Sample a uniformly random *nonzero* element.
    fn random_nonzero<R: Rng + ?Sized>(rng: &mut R) -> Self {
        loop {
            let v = Self::random(rng);
            if !v.is_zero() {
                return v;
            }
        }
    }

    /// Write the canonical little-endian encoding into `out`
    /// (`out.len() == Self::BYTES`).
    fn write_bytes(self, out: &mut [u8]);
    /// Read an element from its canonical little-endian encoding.
    fn read_bytes(bytes: &[u8]) -> Self;
}

/// Dot product of two equal-length slices of field elements.
///
/// This is the inner loop of all slicing encode/decode/recombine
/// operations, kept free-standing so benches can measure it directly.
#[inline]
pub fn dot<F: Field>(a: &[F], b: &[F]) -> F {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = F::zero();
    for (&x, &y) in a.iter().zip(b.iter()) {
        acc = acc.add(x.mul(y));
    }
    acc
}

/// `acc[i] += c * src[i]` for all `i` — the axpy kernel used by matrix
/// multiplication and network-coding recombination.
#[inline]
pub fn axpy<F: Field>(acc: &mut [F], c: F, src: &[F]) {
    debug_assert_eq!(acc.len(), src.len());
    if c.is_zero() {
        return;
    }
    for (a, &s) in acc.iter_mut().zip(src.iter()) {
        *a = a.add(c.mul(s));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Gf256, Gf65536};

    fn axioms_hold<F: Field>() {
        let mut rng = rand::thread_rng();
        for _ in 0..200 {
            let a = F::random(&mut rng);
            let b = F::random(&mut rng);
            let c = F::random(&mut rng);
            // Commutativity.
            assert_eq!(a.add(b), b.add(a));
            assert_eq!(a.mul(b), b.mul(a));
            // Associativity.
            assert_eq!(a.add(b).add(c), a.add(b.add(c)));
            assert_eq!(a.mul(b).mul(c), a.mul(b.mul(c)));
            // Distributivity.
            assert_eq!(a.mul(b.add(c)), a.mul(b).add(a.mul(c)));
            // Identities.
            assert_eq!(a.add(F::zero()), a);
            assert_eq!(a.mul(F::one()), a);
            // Inverses.
            assert_eq!(a.sub(a), F::zero());
            if !a.is_zero() {
                assert_eq!(a.mul(a.inv()), F::one());
                assert_eq!(a.div(a), F::one());
            }
        }
    }

    #[test]
    fn gf256_axioms() {
        axioms_hold::<Gf256>();
    }

    #[test]
    fn gf65536_axioms() {
        axioms_hold::<Gf65536>();
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let mut rng = rand::thread_rng();
        let a = Gf256::random_nonzero(&mut rng);
        let mut acc = Gf256::one();
        for e in 0..20u64 {
            assert_eq!(a.pow(e), acc);
            acc = acc.mul(a);
        }
    }

    #[test]
    fn dot_and_axpy_agree() {
        let mut rng = rand::thread_rng();
        let a: Vec<Gf256> = (0..16).map(|_| Gf256::random(&mut rng)).collect();
        let b: Vec<Gf256> = (0..16).map(|_| Gf256::random(&mut rng)).collect();
        let d = dot(&a, &b);
        // Compute the same dot product via axpy into a 1-element accumulator
        // per term.
        let mut acc = Gf256::zero();
        for i in 0..16 {
            let mut cell = [acc];
            axpy(&mut cell, a[i], &[b[i]]);
            acc = cell[0];
        }
        assert_eq!(acc, d);
    }

    #[test]
    fn byte_round_trip() {
        let mut rng = rand::thread_rng();
        for _ in 0..64 {
            let a = Gf65536::random(&mut rng);
            let mut buf = [0u8; 2];
            a.write_bytes(&mut buf);
            assert_eq!(Gf65536::read_bytes(&buf), a);
        }
    }
}
