//! GF(2⁸) with log/exp table arithmetic.
//!
//! Modulus polynomial: `x⁸ + x⁴ + x³ + x² + 1` (0x11D), generator `α = 2`
//! — the classic Reed–Solomon field. Tables are built at compile time, so
//! multiplication is two loads, an add and a load.

use crate::field::Field;

pub(crate) const POLY: u16 = 0x11D;

/// `EXP[i] = α^i` for `i ∈ [0, 510)`; doubled so `mul` avoids a mod 255.
static EXP: [u8; 510] = build_exp();
/// `LOG[x] = log_α x` for `x ∈ [1, 256)`; `LOG[0]` is a sentinel (unused).
static LOG: [u8; 256] = build_log();

pub(crate) const fn build_exp() -> [u8; 510] {
    let mut t = [0u8; 510];
    let mut x: u16 = 1;
    let mut i = 0;
    while i < 255 {
        t[i] = x as u8;
        t[i + 255] = x as u8;
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= POLY;
        }
        i += 1;
    }
    t
}

pub(crate) const fn build_log() -> [u8; 256] {
    let exp = build_exp();
    let mut t = [0u8; 256];
    let mut i = 0;
    while i < 255 {
        t[exp[i] as usize] = i as u8;
        i += 1;
    }
    t
}

/// An element of GF(2⁸).
///
/// The canonical payload field: a byte of message data is exactly one
/// element, so slicing a buffer requires no re-packing.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Default)]
#[repr(transparent)]
pub struct Gf256(pub u8);

impl std::fmt::Debug for Gf256 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "gf256:{:02x}", self.0)
    }
}

impl Gf256 {
    /// Wrap a raw byte as a field element.
    #[inline]
    pub const fn new(v: u8) -> Self {
        Gf256(v)
    }

    /// The raw byte value.
    #[inline]
    pub const fn value(self) -> u8 {
        self.0
    }

    /// Multiply two raw bytes in GF(2⁸) (free function form used by the
    /// hot byte-slice kernels in `slicing-codec`).
    #[inline]
    pub fn mul_bytes(a: u8, b: u8) -> u8 {
        if a == 0 || b == 0 {
            return 0;
        }
        EXP[LOG[a as usize] as usize + LOG[b as usize] as usize]
    }
}

impl Field for Gf256 {
    const BYTES: usize = 1;
    const ORDER: u64 = 256;

    #[inline]
    fn zero() -> Self {
        Gf256(0)
    }

    #[inline]
    fn one() -> Self {
        Gf256(1)
    }

    #[inline]
    fn add(self, rhs: Self) -> Self {
        Gf256(self.0 ^ rhs.0)
    }

    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Gf256(self.0 ^ rhs.0)
    }

    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Gf256(Self::mul_bytes(self.0, rhs.0))
    }

    #[inline]
    fn inv(self) -> Self {
        assert!(self.0 != 0, "inverse of zero in GF(2^8)");
        Gf256(EXP[255 - LOG[self.0 as usize] as usize])
    }

    #[inline]
    fn from_u64(v: u64) -> Self {
        Gf256((v & 0xFF) as u8)
    }

    #[inline]
    fn to_u64(self) -> u64 {
        self.0 as u64
    }

    #[inline]
    fn write_bytes(self, out: &mut [u8]) {
        out[0] = self.0;
    }

    #[inline]
    fn read_bytes(bytes: &[u8]) -> Self {
        Gf256(bytes[0])
    }

    // ---- bulk slice hooks, routed through the runtime-dispatched
    // kernels in `crate::bulk` (SWAR table rows or SIMD split-nibble /
    // carry-less multiply, per `crate::simd::backend`). `Gf256` is
    // `#[repr(transparent)]` over `u8`, so the element slices reinterpret
    // directly as the byte slices the kernels take.

    #[inline]
    fn dot_slices(a: &[Self], b: &[Self]) -> Self {
        Gf256(crate::bulk::dot_slice8(as_bytes(a), as_bytes(b)))
    }

    #[inline]
    fn axpy_slices(acc: &mut [Self], c: Self, src: &[Self]) {
        crate::bulk::mul_add_slice(as_bytes_mut(acc), c.0, as_bytes(src));
    }

    #[inline]
    fn scale_slices(row_elems: &mut [Self], c: Self) {
        crate::bulk::mul_slice(as_bytes_mut(row_elems), c.0);
    }

    #[inline]
    fn sub_scaled_slices(dst: &mut [Self], c: Self, src: &[Self]) {
        // Characteristic 2: subtraction is addition.
        Self::axpy_slices(dst, c, src);
    }
}

/// Reinterpret a `Gf256` slice as raw bytes (`#[repr(transparent)]`
/// makes the layouts identical).
#[inline]
#[allow(unsafe_code)]
fn as_bytes(s: &[Gf256]) -> &[u8] {
    // SAFETY: `Gf256` is `#[repr(transparent)]` over `u8`: same size,
    // alignment and validity invariants, so the reinterpretation is
    // sound for the same length.
    unsafe { std::slice::from_raw_parts(s.as_ptr() as *const u8, s.len()) }
}

/// Mutable variant of [`as_bytes`].
#[inline]
#[allow(unsafe_code)]
fn as_bytes_mut(s: &mut [Gf256]) -> &mut [u8] {
    // SAFETY: as in `as_bytes`; the `&mut` borrow is carried through
    // unchanged, so aliasing rules are preserved.
    unsafe { std::slice::from_raw_parts_mut(s.as_mut_ptr() as *mut u8, s.len()) }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Schoolbook carry-less multiply + reduce, for cross-checking tables.
    fn slow_mul(a: u8, b: u8) -> u8 {
        let (a, b) = (a as u16, b as u16);
        let mut acc: u16 = 0;
        for i in 0..8 {
            if b & (1 << i) != 0 {
                acc ^= a << i;
            }
        }
        // Reduce modulo POLY.
        for bit in (8..16).rev() {
            if acc & (1 << bit) != 0 {
                acc ^= POLY << (bit - 8);
            }
        }
        acc as u8
    }

    #[test]
    fn table_mul_matches_schoolbook() {
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                assert_eq!(
                    Gf256::mul_bytes(a, b),
                    slow_mul(a, b),
                    "mismatch at {a} * {b}"
                );
            }
        }
    }

    #[test]
    fn every_nonzero_element_has_inverse() {
        for a in 1..=255u8 {
            let inv = Gf256(a).inv();
            assert_eq!(Gf256(a).mul(inv), Gf256::one());
        }
    }

    #[test]
    fn generator_has_full_order() {
        // α = 2 must generate all 255 nonzero elements.
        let mut seen = [false; 256];
        let mut x = Gf256::one();
        for _ in 0..255 {
            assert!(!seen[x.0 as usize], "generator order < 255");
            seen[x.0 as usize] = true;
            x = x.mul(Gf256(2));
        }
        assert_eq!(x, Gf256::one());
    }

    #[test]
    fn mul_by_zero_and_one() {
        for a in 0..=255u8 {
            assert_eq!(Gf256(a).mul(Gf256(0)), Gf256(0));
            assert_eq!(Gf256(a).mul(Gf256(1)), Gf256(a));
        }
    }
}
