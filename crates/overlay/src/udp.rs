//! Real UDP datagram transport on loopback — the transport the paper's
//! data plane actually assumes (§7.1 runs fixed-size packets over a
//! datagram substrate; loss and reordering are absorbed by the codec's
//! redundancy, the replay guard and the session retransmit window, not
//! by the transport).
//!
//! One socket per node: the node binds `127.0.0.1:0` and its overlay
//! address encodes the bound `ip:port`, so the *source address of every
//! datagram identifies the sender* — no hello preamble, no connection
//! cache, no per-peer state on the send path at all. Each wire packet
//! rides one datagram (fixed-size datagrams preserve the uniform-shape
//! property the anonymity argument needs), prefixed by a 9-byte
//! transport header carrying a send timestamp:
//!
//! ```text
//! data:     [0xDA][send_micros: u64 LE][wire packet bytes...]
//! feedback: [0xFB][owd_micros: u64 LE][datagrams: u32 LE]
//! ```
//!
//! Receivers measure each datagram's one-way delay from that timestamp
//! and periodically echo the latest sample back (`0xFB`); the sender
//! feeds the echoes into a per-neighbour delay-gradient congestion
//! controller ([`crate::cc`]) whose token budget gates egress. Sends
//! that exceed the budget queue per neighbour and drain from a pacer
//! task driven off the shared [`TimerWheel`] — and the controller's
//! pace hint flows up into the session layer's `pace_ms`, closing the
//! loop from transport delay to source admission.
//!
//! Egress is batched: the daemons already group consecutive
//! same-neighbour sends, and [`PortSender::send_many`] forwards each
//! group to the socket's `sendmmsg`-shaped batch call — one call (one
//! syscall, on a kernel-backed runtime) per batch. The
//! `datagrams_sent / send_calls` ratio in [`UdpStatsSnapshot`] makes
//! the batching directly observable.
//!
//! For tests and loss sweeps the net carries a deterministic
//! fault-injecting shim ([`UdpFaults`]): seeded per-port RNGs drop,
//! duplicate and reorder *data* datagrams on the receive path. Setup
//! packets are exempt from injected drops, mirroring the session-layer
//! proptests: setup has no retransmission layer, and the sweep measures
//! the data plane's loss recovery, not establishment luck.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

use bytes::Bytes;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use slicing_core::wheel::TimerWheel;
use slicing_core::Tick;
use slicing_graph::OverlayAddr;
use tokio::net::UdpSocket;
use tokio::sync::mpsc;

use crate::cc::{CcConfig, CcSnapshot, NeighborCc};
use crate::{NodePort, PortSender, PortSenderInner};

/// Transport-frame discriminator: a data datagram (timestamp + packet).
const FRAME_DATA: u8 = 0xDA;
/// Transport-frame discriminator: a delay-feedback echo.
const FRAME_FEEDBACK: u8 = 0xFB;
/// Bytes of the data-frame transport header.
const DATA_HDR: usize = 9;
/// Largest accepted datagram (the practical UDP/IPv4 payload ceiling).
const MAX_DATAGRAM: usize = 65_507;
/// Datagrams drained per receive wakeup.
const RECV_BATCH: usize = 32;
/// Echo a feedback frame at least every this many data datagrams…
const FEEDBACK_EVERY: u32 = 16;
/// …or after this much silence, whichever comes first.
const FEEDBACK_INTERVAL_US: u64 = 25_000;
/// Pacer wheel bucket width (ms) — token refills are sub-ms affairs.
const PACER_GRANULARITY_MS: u64 = 1;
/// Pacer wheel buckets (horizon 128 ms ≫ any refill wait).
const PACER_BUCKETS: usize = 128;
/// Per-neighbour pacer queue ceiling; beyond it datagrams drop
/// (datagram semantics — the session window retransmits).
const PACER_QUEUE_CAP: usize = 4_096;
/// Burst size (datagrams) the session pace hint is quoted for.
const HINT_BURST: usize = 16;

/// Deterministic receive-path fault injection for a [`UdpNet`].
///
/// Probabilities are per data datagram; setup packets are exempt from
/// `loss` (setup has no retransmission layer — see the module docs).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct UdpFaults {
    /// Drop probability.
    pub loss: f64,
    /// Probability of deferring a datagram behind its successors
    /// (reordering within a receive burst).
    pub reorder: f64,
    /// Probability of delivering a datagram twice.
    pub duplicate: f64,
}

/// Monotonic transport counters, shared by every port of one net.
#[derive(Debug, Default)]
pub(crate) struct UdpStats {
    datagrams_sent: AtomicU64,
    send_calls: AtomicU64,
    datagrams_received: AtomicU64,
    recv_calls: AtomicU64,
    feedback_sent: AtomicU64,
    feedback_received: AtomicU64,
    paced: AtomicU64,
    queue_drops: AtomicU64,
    injected_drops: AtomicU64,
    injected_dups: AtomicU64,
    injected_reorders: AtomicU64,
}

/// A point-in-time copy of a net's transport counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct UdpStatsSnapshot {
    /// Data datagrams put on the wire.
    pub datagrams_sent: u64,
    /// Transmit calls issued (each `send`/`send_many` is one call); the
    /// `datagrams_sent / send_calls` ratio is the realized batching.
    pub send_calls: u64,
    /// Data datagrams received (before fault injection).
    pub datagrams_received: u64,
    /// Receive wakeups (each drains up to a whole burst).
    pub recv_calls: u64,
    /// Delay-feedback frames echoed to senders.
    pub feedback_sent: u64,
    /// Delay-feedback frames consumed by the congestion controller.
    pub feedback_received: u64,
    /// Datagrams deferred into a pacer queue by the token budget.
    pub paced: u64,
    /// Datagrams dropped at a full pacer queue.
    pub queue_drops: u64,
    /// Datagrams dropped by injected loss.
    pub injected_drops: u64,
    /// Datagrams duplicated by injection.
    pub injected_dups: u64,
    /// Datagrams reordered by injection.
    pub injected_reorders: u64,
}

impl UdpStatsSnapshot {
    /// Every counter as a `(name, value)` pair, in declaration order.
    ///
    /// The single authoritative enumeration of the transport counters:
    /// metrics exposition iterates it instead of hand-listing fields,
    /// so the exported text can never drift from the atomics (see
    /// [`slicing_core::RelayStats::counters`]).
    pub fn counters(&self) -> [(&'static str, u64); 11] {
        [
            ("datagrams_sent", self.datagrams_sent),
            ("send_calls", self.send_calls),
            ("datagrams_received", self.datagrams_received),
            ("recv_calls", self.recv_calls),
            ("feedback_sent", self.feedback_sent),
            ("feedback_received", self.feedback_received),
            ("paced", self.paced),
            ("queue_drops", self.queue_drops),
            ("injected_drops", self.injected_drops),
            ("injected_dups", self.injected_dups),
            ("injected_reorders", self.injected_reorders),
        ]
    }
}

impl UdpStats {
    fn snapshot(&self) -> UdpStatsSnapshot {
        UdpStatsSnapshot {
            datagrams_sent: self.datagrams_sent.load(Ordering::Relaxed),
            send_calls: self.send_calls.load(Ordering::Relaxed),
            datagrams_received: self.datagrams_received.load(Ordering::Relaxed),
            recv_calls: self.recv_calls.load(Ordering::Relaxed),
            feedback_sent: self.feedback_sent.load(Ordering::Relaxed),
            feedback_received: self.feedback_received.load(Ordering::Relaxed),
            paced: self.paced.load(Ordering::Relaxed),
            queue_drops: self.queue_drops.load(Ordering::Relaxed),
            injected_drops: self.injected_drops.load(Ordering::Relaxed),
            injected_dups: self.injected_dups.load(Ordering::Relaxed),
            injected_reorders: self.injected_reorders.load(Ordering::Relaxed),
        }
    }
}

/// State shared by every port attached to one [`UdpNet`].
struct NetShared {
    /// Clock zero for datagram timestamps (one per net: ports of one
    /// net share it, so receiver-measured OWD has no offset; across
    /// processes the gradient controller tolerates a constant skew).
    epoch: Instant,
    faults: UdpFaults,
    seed: u64,
    cc: CcConfig,
    stats: UdpStats,
    /// Churned-out nodes: their datagrams drop at both ends, emulating
    /// a process kill without tearing down test sockets mid-poll.
    failed: Mutex<std::collections::HashSet<OverlayAddr>>,
    /// Ports attached so far (per-port fault RNG seeds).
    attached: AtomicU64,
}

impl NetShared {
    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    fn is_failed(&self, addr: OverlayAddr) -> bool {
        let failed = self.failed.lock();
        !failed.is_empty() && failed.contains(&addr)
    }
}

/// A real-UDP overlay network on loopback.
#[derive(Clone)]
pub struct UdpNet {
    shared: Arc<NetShared>,
}

impl UdpNet {
    /// A net with the given fault profile; `seed` makes the injected
    /// faults reproducible.
    pub fn new(faults: UdpFaults, seed: u64) -> Self {
        UdpNet::with_cc(faults, seed, CcConfig::default())
    }

    /// A net with explicit congestion-controller tuning.
    pub fn with_cc(faults: UdpFaults, seed: u64, cc: CcConfig) -> Self {
        UdpNet {
            shared: Arc::new(NetShared {
                epoch: Instant::now(),
                faults,
                seed,
                cc,
                stats: UdpStats::default(),
                failed: Mutex::new(std::collections::HashSet::new()),
                attached: AtomicU64::new(0),
            }),
        }
    }

    /// Bind a node socket on an ephemeral loopback port; the node's
    /// overlay address encodes `127.0.0.1:port`. The receive task runs
    /// until the returned `NodePort` is dropped.
    pub async fn attach(&self) -> std::io::Result<NodePort> {
        self.attach_at(0).await
    }

    /// Bind a node socket on a *fixed* loopback port (`0` = ephemeral).
    ///
    /// Daemon processes with config-declared listen addresses use this:
    /// their overlay address (`127.0.0.1:port`) must be knowable by
    /// peers before the process starts, and must be rebindable by a
    /// restarted process after a crash.
    pub async fn attach_at(&self, port: u16) -> std::io::Result<NodePort> {
        let sock = Arc::new(UdpSocket::bind(format!("127.0.0.1:{port}")).await?);
        let port = sock.local_addr()?.port();
        let addr = OverlayAddr::from_ipv4([127, 0, 0, 1], port);
        let (tx, rx) = mpsc::channel::<(OverlayAddr, Bytes)>(1024);

        let index = self.shared.attached.fetch_add(1, Ordering::Relaxed);
        let (wake_tx, wake_rx) = mpsc::channel::<()>(1);
        let pacer = Arc::new(Pacer {
            state: Mutex::new(PacerState {
                ccs: HashMap::new(),
                queues: HashMap::new(),
                wheel: TimerWheel::new(PACER_GRANULARITY_MS, PACER_BUCKETS),
                queued: 0,
            }),
            hint_ms: AtomicU64::new(0),
            wake: wake_tx,
        });
        tokio::spawn(pacer_task(
            Arc::downgrade(&pacer),
            wake_rx,
            sock.clone(),
            self.shared.clone(),
        ));
        tokio::spawn(recv_task(
            sock.clone(),
            tx,
            pacer.clone(),
            self.shared.clone(),
            StdRng::seed_from_u64(self.shared.seed ^ (0xDA7A_6E55 + index)),
        ));

        Ok(NodePort {
            addr,
            rx,
            tx: PortSender {
                addr,
                inner: PortSenderInner::Udp(UdpSender {
                    sock,
                    pacer,
                    shared: self.shared.clone(),
                }),
            },
        })
    }

    /// Kill a node: its traffic blackholes in both directions (the
    /// transport-level equivalent of an emulated-net `fail`).
    pub fn fail(&self, addr: OverlayAddr) {
        self.shared.failed.lock().insert(addr);
    }

    /// Current transport counters.
    pub fn stats(&self) -> UdpStatsSnapshot {
        self.shared.stats.snapshot()
    }
}

/// Sender half for the UDP transport: the node's own socket (so the
/// datagram source address is the node's overlay address) plus the
/// per-neighbour pacer.
#[derive(Clone)]
pub(crate) struct UdpSender {
    sock: Arc<UdpSocket>,
    pacer: Arc<Pacer>,
    shared: Arc<NetShared>,
}

/// Pacing state shared between the send path, the feedback consumer
/// (receive task) and the pacer drain task.
pub(crate) struct Pacer {
    state: Mutex<PacerState>,
    /// Latest session pace hint, ms (0 = none — link uncontended).
    hint_ms: AtomicU64,
    /// Nudges the pacer task out of park when a queue forms.
    wake: mpsc::Sender<()>,
}

struct PacerState {
    ccs: HashMap<OverlayAddr, NeighborCc>,
    queues: HashMap<OverlayAddr, VecDeque<Vec<u8>>>,
    wheel: TimerWheel<OverlayAddr>,
    /// Datagrams across all queues.
    queued: usize,
}

impl Pacer {
    /// Feed one echoed delay sample into `neigh`'s controller and
    /// refresh the session pace hint.
    fn on_feedback(&self, cc_cfg: &CcConfig, neigh: OverlayAddr, now_us: u64, owd_us: u64) {
        let mut s = self.state.lock();
        s.ccs
            .entry(neigh)
            .or_insert_with(|| NeighborCc::new(*cc_cfg))
            .on_sample(now_us, owd_us);
        // The session layer paces whole bursts; quote the slowest
        // neighbour (it gates the flow's weakest path).
        let hint = s
            .ccs
            .values()
            .filter_map(|cc| cc.pace_hint_ms(HINT_BURST))
            .max()
            .unwrap_or(0);
        self.hint_ms.store(hint, Ordering::Relaxed);
    }

    fn pace_hint_ms(&self) -> Option<u64> {
        match self.hint_ms.load(Ordering::Relaxed) {
            0 => None,
            ms => Some(ms),
        }
    }

    /// Copy every neighbour controller's observable state out (one lock
    /// acquisition; called at metrics-scrape cadence, not per packet).
    fn cc_snapshots(&self) -> Vec<(OverlayAddr, CcSnapshot)> {
        let s = self.state.lock();
        s.ccs.iter().map(|(&a, cc)| (a, cc.snapshot())).collect()
    }
}

impl UdpSender {
    pub(crate) fn pace_hint_ms(&self) -> Option<u64> {
        self.pacer.pace_hint_ms()
    }

    pub(crate) fn cc_snapshots(&self) -> Vec<(OverlayAddr, CcSnapshot)> {
        self.pacer.cc_snapshots()
    }

    /// Send one frame (fire-and-forget datagram semantics).
    pub(crate) async fn send(&self, from: OverlayAddr, to: OverlayAddr, bytes: Bytes) {
        let mut one = vec![bytes];
        self.send_many(from, to, &mut one).await;
    }

    /// Send a batch of frames to one neighbour in a single transmit
    /// call. Frames beyond the neighbour's token budget queue behind
    /// the pacer; frames to failed or oversize destinations drop.
    pub(crate) async fn send_many(&self, from: OverlayAddr, to: OverlayAddr, frames: &mut Vec<Bytes>) {
        if frames.is_empty() {
            return;
        }
        if self.shared.is_failed(from) || self.shared.is_failed(to) {
            frames.clear();
            return;
        }
        let now_us = self.shared.now_us();
        let mut datagrams: Vec<Vec<u8>> = Vec::with_capacity(frames.len());
        for bytes in frames.drain(..) {
            if bytes.len() + DATA_HDR > MAX_DATAGRAM {
                continue; // cannot ride one datagram; uniform shape says never split
            }
            let mut d = Vec::with_capacity(DATA_HDR + bytes.len());
            d.push(FRAME_DATA);
            d.extend_from_slice(&now_us.to_le_bytes());
            d.extend_from_slice(&bytes);
            datagrams.push(d);
        }
        if datagrams.is_empty() {
            return;
        }

        // Token gate: an empty queue may transmit its granted prefix
        // immediately; a backlogged neighbour appends behind the queue
        // to keep per-link FIFO order.
        let (now_batch, overflow) = self.state_take(to, now_us, datagrams);
        if overflow > 0 {
            self.shared
                .stats
                .queue_drops
                .fetch_add(overflow as u64, Ordering::Relaxed);
        }
        if !now_batch.is_empty() {
            self.transmit(&now_batch, to).await;
        }
    }

    /// Lock the pacer once: grant what the budget allows, queue the
    /// rest (bounded), arm the refill wheel. Returns the batch to send
    /// now plus the count dropped at a full queue.
    // lint: hot-path
    fn state_take(
        &self,
        to: OverlayAddr,
        now_us: u64,
        mut datagrams: Vec<Vec<u8>>,
    ) -> (Vec<Vec<u8>>, usize) {
        let mut guard = self.pacer.state.lock();
        // Split the guard's borrow so the neighbour's controller stays
        // bound across the disjoint `queues`/`queued`/`wheel` updates.
        let s = &mut *guard;
        let cc = s
            .ccs
            .entry(to)
            .or_insert_with(|| NeighborCc::new(self.shared.cc));
        let backlogged = s.queues.get(&to).is_some_and(|q| !q.is_empty());
        let granted = if backlogged {
            0
        } else {
            cc.take(now_us, datagrams.len())
        };
        let mut rest: Vec<Vec<u8>> = datagrams.split_off(granted);
        let mut overflow = 0;
        if !rest.is_empty() {
            self.shared
                .stats
                .paced
                .fetch_add(rest.len() as u64, Ordering::Relaxed);
            let added;
            {
                let q = s.queues.entry(to).or_default();
                let room = PACER_QUEUE_CAP.saturating_sub(q.len());
                if rest.len() > room {
                    overflow = rest.len() - room;
                    rest.truncate(room);
                }
                added = rest.len();
                q.extend(rest);
            }
            s.queued += added;
            let due = cc.next_token_due(now_us);
            s.wheel.schedule(due, to);
            drop(guard);
            let _ = self.pacer.wake.try_send(());
        }
        (datagrams, overflow)
    }

    async fn transmit(&self, batch: &[Vec<u8>], to: OverlayAddr) {
        let (ip, port) = to.to_ipv4();
        let target = std::net::SocketAddr::from((ip, port));
        self.shared.stats.send_calls.fetch_add(1, Ordering::Relaxed);
        if let Ok(n) = self.sock.send_many_to(batch, target).await {
            self.shared
                .stats
                .datagrams_sent
                .fetch_add(n as u64, Ordering::Relaxed);
        }
    }
}

/// The pacer drain task: parks until a send finds an empty token
/// bucket, then ticks the wheel until every queue drains. Holds only a
/// `Weak` on the pacer so dropped ports tear the task down.
// lint: hot-path
async fn pacer_task(
    pacer: Weak<Pacer>,
    mut wake: mpsc::Receiver<()>,
    sock: Arc<UdpSocket>,
    shared: Arc<NetShared>,
) {
    // Reusable tick-loop buffers: neither allocates once warm.
    // lint: allow(hot-path) — one-time task-startup construction, reused for every tick below.
    let mut fired: Vec<(Tick, OverlayAddr)> = Vec::new();
    // lint: allow(hot-path) — one-time task-startup construction, reused for every tick below.
    let mut batches: Vec<(OverlayAddr, Vec<Vec<u8>>)> = Vec::new();
    'park: loop {
        if wake.recv().await.is_none() {
            return; // every sender handle is gone
        }
        loop {
            tokio::time::sleep(Duration::from_millis(PACER_GRANULARITY_MS)).await;
            let Some(pacer) = pacer.upgrade() else { return };
            let now_us = shared.now_us();
            batches.clear();
            let mut drained = {
                let mut s = pacer.state.lock();
                fired.clear();
                let now_tick = Tick(now_us / 1_000);
                s.wheel.poll_expired(now_tick, &mut fired);
                for &(_, addr) in &fired {
                    // Lazy cancellation: duplicates and already-empty
                    // queues re-validate to a no-op here.
                    let granted = {
                        let queue_len = s.queues.get(&addr).map_or(0, |q| q.len());
                        if queue_len == 0 {
                            continue;
                        }
                        s.ccs
                            .get_mut(&addr)
                            .map_or(queue_len, |cc| cc.take(now_us, queue_len))
                    };
                    let Some(q) = s.queues.get_mut(&addr) else {
                        continue; // raced away; nothing to drain
                    };
                    // lint: allow(hot-path) — the batch must own its datagrams: it outlives the lock, crossing the send `.await`.
                    let batch: Vec<Vec<u8>> = q.drain(..granted).collect();
                    s.queued -= batch.len();
                    if !batch.is_empty() {
                        batches.push((addr, batch));
                    }
                    if !s.queues.get(&addr).is_some_and(|q| q.is_empty()) {
                        let due = s
                            .ccs
                            .get(&addr)
                            .map_or(Tick(now_us / 1_000 + 1), |cc| cc.next_token_due(now_us));
                        s.wheel.schedule(due, addr);
                    }
                }
                s.queued == 0
            };
            for (to, batch) in &batches {
                let (ip, port) = to.to_ipv4();
                let target = std::net::SocketAddr::from((ip, port));
                shared.stats.send_calls.fetch_add(1, Ordering::Relaxed);
                if let Ok(n) = sock.send_many_to(batch, target).await {
                    shared
                        .stats
                        .datagrams_sent
                        .fetch_add(n as u64, Ordering::Relaxed);
                }
            }
            if drained {
                // Drain any stale wake nudge so the park below blocks.
                while wake.try_recv().is_ok() {}
                drained = pacer.state.lock().queued == 0;
                if drained {
                    continue 'park;
                }
            }
        }
    }
}

/// Per-sender receive accounting for delay feedback.
struct RxPeer {
    since: u32,
    last_owd_us: u64,
    last_fb_us: u64,
}

/// The port's receive task: drains datagram bursts, measures one-way
/// delay, applies the fault shim, hands payloads to the node's inbox
/// and echoes delay feedback. Exits when the inbox receiver drops.
async fn recv_task(
    sock: Arc<UdpSocket>,
    tx: mpsc::Sender<(OverlayAddr, Bytes)>,
    pacer: Arc<Pacer>,
    shared: Arc<NetShared>,
    mut rng: StdRng,
) {
    let mut peers: HashMap<std::net::SocketAddr, RxPeer> = HashMap::new();
    let mut held: Option<(OverlayAddr, Bytes)> = None;
    loop {
        let recv = Box::pin(sock.recv_many_from(RECV_BATCH, MAX_DATAGRAM));
        let burst = tokio::select! {
            got = recv => match got {
                Ok(burst) => burst,
                Err(_) => break,
            },
            _ = tx.closed() => break,
        };
        shared.stats.recv_calls.fetch_add(1, Ordering::Relaxed);
        let now_us = shared.now_us();
        let mut exit = false;
        for (datagram, src) in burst {
            let Some(from) = overlay_addr_of(src) else {
                continue;
            };
            match datagram.first() {
                Some(&FRAME_FEEDBACK) if datagram.len() >= 13 => {
                    let owd = u64::from_le_bytes(datagram[1..9].try_into().expect("len checked"));
                    shared
                        .stats
                        .feedback_received
                        .fetch_add(1, Ordering::Relaxed);
                    pacer.on_feedback(&shared.cc, from, now_us, owd);
                }
                Some(&FRAME_DATA) if datagram.len() > DATA_HDR => {
                    shared
                        .stats
                        .datagrams_received
                        .fetch_add(1, Ordering::Relaxed);
                    if shared.is_failed(from) {
                        continue;
                    }
                    let sent_us =
                        u64::from_le_bytes(datagram[1..9].try_into().expect("len checked"));
                    let owd_us = now_us.saturating_sub(sent_us);
                    let peer = peers.entry(src).or_insert(RxPeer {
                        since: 0,
                        last_owd_us: 0,
                        last_fb_us: 0,
                    });
                    peer.since += 1;
                    peer.last_owd_us = owd_us;
                    let payload = Bytes::from(datagram).slice(DATA_HDR..);

                    // Fault shim (deterministic per-port RNG).
                    let f = &shared.faults;
                    if f.loss > 0.0 && !is_setup(&payload) && rng.gen::<f64>() < f.loss {
                        shared.stats.injected_drops.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    if f.reorder > 0.0 && held.is_none() && rng.gen::<f64>() < f.reorder {
                        shared
                            .stats
                            .injected_reorders
                            .fetch_add(1, Ordering::Relaxed);
                        held = Some((from, payload));
                        continue;
                    }
                    let dup = f.duplicate > 0.0 && rng.gen::<f64>() < f.duplicate;
                    if dup {
                        shared.stats.injected_dups.fetch_add(1, Ordering::Relaxed);
                    }
                    if tx.send((from, payload.clone())).await.is_err() {
                        exit = true;
                        break;
                    }
                    if dup && tx.send((from, payload)).await.is_err() {
                        exit = true;
                        break;
                    }
                    if let Some(deferred) = held.take() {
                        if tx.send(deferred).await.is_err() {
                            exit = true;
                            break;
                        }
                    }
                }
                _ => {} // runt or unknown frame: drop
            }
        }
        if exit {
            break;
        }
        // A datagram deferred past the end of its burst still delivers
        // (reordered across bursts, never wedged).
        if let Some(deferred) = held.take() {
            if tx.send(deferred).await.is_err() {
                break;
            }
        }
        // Echo delay feedback to chatty or overdue senders.
        for (src, peer) in peers.iter_mut() {
            if peer.since == 0 {
                continue;
            }
            if peer.since >= FEEDBACK_EVERY || now_us.saturating_sub(peer.last_fb_us) >= FEEDBACK_INTERVAL_US
            {
                let mut fb = Vec::with_capacity(13);
                fb.push(FRAME_FEEDBACK);
                fb.extend_from_slice(&peer.last_owd_us.to_le_bytes());
                fb.extend_from_slice(&peer.since.to_le_bytes());
                peer.since = 0;
                peer.last_fb_us = now_us;
                if sock.send_to(&fb, *src).await.is_ok() {
                    shared.stats.feedback_sent.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
}

/// The overlay address a datagram's source socket address implies
/// (every node sends from its bound socket, so this is the sender).
fn overlay_addr_of(src: std::net::SocketAddr) -> Option<OverlayAddr> {
    match src {
        std::net::SocketAddr::V4(v4) => {
            Some(OverlayAddr::from_ipv4(v4.ip().octets(), v4.port()))
        }
        std::net::SocketAddr::V6(_) => None,
    }
}

/// Whether a wire buffer is a setup packet (kind byte 0 behind the
/// 2-byte magic and version — see `slicing_wire`'s header layout).
fn is_setup(frame: &[u8]) -> bool {
    frame.len() >= 4 && frame[..2] == slicing_wire::MAGIC && frame[3] == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[tokio::test]
    async fn round_trip_over_loopback() {
        let net = UdpNet::new(UdpFaults::default(), 1);
        let a = net.attach().await.unwrap();
        let mut b = net.attach().await.unwrap();
        a.tx.send(b.addr, Bytes::from(&b"over udp"[..])).await;
        let (from, bytes) = b.rx.recv().await.unwrap();
        assert_eq!(from, a.addr);
        assert_eq!(bytes, b"over udp");
        let stats = net.stats();
        assert_eq!(stats.datagrams_sent, 1);
        assert_eq!(stats.send_calls, 1);
    }

    #[tokio::test]
    async fn batch_is_one_send_call() {
        let net = UdpNet::new(UdpFaults::default(), 2);
        let a = net.attach().await.unwrap();
        let mut b = net.attach().await.unwrap();
        let mut frames: Vec<Bytes> = (0..20u32)
            .map(|i| Bytes::from(i.to_le_bytes().to_vec()))
            .collect();
        a.tx.send_many(b.addr, &mut frames).await;
        assert!(frames.is_empty(), "send_many drains the batch");
        for i in 0..20u32 {
            let (from, bytes) = b.rx.recv().await.unwrap();
            assert_eq!(from, a.addr);
            assert_eq!(bytes, i.to_le_bytes());
        }
        let stats = net.stats();
        assert_eq!(stats.datagrams_sent, 20);
        assert_eq!(stats.send_calls, 1, "one batch, one transmit call");
        assert!(stats.datagrams_sent / stats.send_calls.max(1) > 1);
    }

    #[tokio::test]
    async fn bidirectional_and_feedback_flows() {
        let net = UdpNet::new(UdpFaults::default(), 3);
        let mut a = net.attach().await.unwrap();
        let mut b = net.attach().await.unwrap();
        // Enough traffic to cross the feedback threshold.
        for _ in 0..FEEDBACK_EVERY + 4 {
            a.tx.send(b.addr, Bytes::from(&b"ping"[..])).await;
            let (_, got) = b.rx.recv().await.unwrap();
            assert_eq!(got, &b"ping"[..]);
        }
        b.tx.send(a.addr, Bytes::from(&b"pong"[..])).await;
        let (_, got) = a.rx.recv().await.unwrap();
        assert_eq!(got, &b"pong"[..]);
        // Feedback frames eventually reach a's controller.
        let stats =
            crate::testutil::wait_until(|| net.stats(), |s| s.feedback_received > 0).await;
        assert!(stats.feedback_sent > 0, "receiver must echo delay samples");
        assert!(stats.feedback_received > 0, "sender must consume echoes");
    }

    #[tokio::test]
    async fn injected_loss_drops_data_not_setup() {
        let net = UdpNet::new(
            UdpFaults {
                loss: 1.0,
                ..Default::default()
            },
            4,
        );
        let a = net.attach().await.unwrap();
        let mut b = net.attach().await.unwrap();
        // A plain (non-wire) frame counts as data: total loss eats it.
        a.tx.send(b.addr, Bytes::from(&b"gone"[..])).await;
        // A real setup packet is exempt even at loss=1.0.
        let setup = slicing_wire::control::keepalive(
            slicing_wire::FlowId(7),
            slicing_wire::FlowId(8),
        );
        let mut setup_bytes = setup.encode().to_vec();
        setup_bytes[3] = 0; // rewrite kind to Setup for the shim's peek
        a.tx.send(b.addr, Bytes::from(setup_bytes.clone())).await;
        let (_, got) = b.rx.recv().await.unwrap();
        assert_eq!(&got[..], &setup_bytes[..], "setup must survive");
        assert_eq!(net.stats().injected_drops, 1);
    }

    #[tokio::test]
    async fn duplication_and_reorder_inject() {
        let net = UdpNet::new(
            UdpFaults {
                duplicate: 1.0,
                ..Default::default()
            },
            5,
        );
        let a = net.attach().await.unwrap();
        let mut b = net.attach().await.unwrap();
        a.tx.send(b.addr, Bytes::from(&b"twice"[..])).await;
        let (_, one) = b.rx.recv().await.unwrap();
        let (_, two) = b.rx.recv().await.unwrap();
        assert_eq!(one, two);
        assert_eq!(net.stats().injected_dups, 1);

        let net = UdpNet::new(
            UdpFaults {
                reorder: 1.0,
                ..Default::default()
            },
            6,
        );
        let a = net.attach().await.unwrap();
        let mut b = net.attach().await.unwrap();
        let mut frames: Vec<Bytes> =
            vec![Bytes::from(&b"first"[..]), Bytes::from(&b"second"[..])];
        a.tx.send_many(b.addr, &mut frames).await;
        let (_, one) = b.rx.recv().await.unwrap();
        let (_, two) = b.rx.recv().await.unwrap();
        // Both arrive; at reorder=1.0 the first defers behind the next.
        assert_eq!((&one[..], &two[..]), (&b"second"[..], &b"first"[..]));
        assert!(net.stats().injected_reorders >= 1);
    }

    #[tokio::test]
    async fn failed_node_blackholes() {
        let net = UdpNet::new(UdpFaults::default(), 7);
        let a = net.attach().await.unwrap();
        let mut b = net.attach().await.unwrap();
        net.fail(b.addr);
        a.tx.send(b.addr, Bytes::from(&b"x"[..])).await;
        tokio::time::sleep(Duration::from_millis(30)).await;
        assert!(b.rx.try_recv().is_err());
    }

    #[tokio::test]
    async fn oversize_frame_dropped_not_split() {
        let net = UdpNet::new(UdpFaults::default(), 8);
        let a = net.attach().await.unwrap();
        let mut b = net.attach().await.unwrap();
        a.tx.send(b.addr, Bytes::from(vec![0u8; MAX_DATAGRAM + 1])).await;
        a.tx.send(b.addr, Bytes::from(&b"after"[..])).await;
        let (_, got) = b.rx.recv().await.unwrap();
        assert_eq!(got, &b"after"[..], "oversize frame must drop, not wedge");
    }

    /// The budget gate: a paced net throttles a burst but loses nothing
    /// — queued datagrams drain from the wheel-driven pacer task.
    #[tokio::test]
    async fn pacer_queues_and_drains() {
        let cc = CcConfig {
            max_rate: 2_000.0,
            min_rate: 500.0,
            bucket_cap: 8.0,
            ..CcConfig::default()
        };
        let net = UdpNet::with_cc(UdpFaults::default(), 9, cc);
        let a = net.attach().await.unwrap();
        let mut b = net.attach().await.unwrap();
        let mut frames: Vec<Bytes> = (0..64u32)
            .map(|i| Bytes::from(i.to_le_bytes().to_vec()))
            .collect();
        a.tx.send_many(b.addr, &mut frames).await;
        for i in 0..64u32 {
            let (_, bytes) = b.rx.recv().await.unwrap();
            assert_eq!(bytes, i.to_le_bytes(), "paced drain must keep FIFO order");
        }
        let stats = net.stats();
        assert!(stats.paced > 0, "burst must exceed the 8-token bucket");
        assert_eq!(stats.queue_drops, 0);
    }

    #[tokio::test]
    async fn dropped_port_releases_socket() {
        let net = UdpNet::new(UdpFaults::default(), 10);
        let node = net.attach().await.unwrap();
        let (ip, port) = node.addr.to_ipv4();
        drop(node);
        let target = std::net::SocketAddr::from((ip, port));
        let rebound = crate::testutil::wait_until(
            || std::net::UdpSocket::bind(target).is_ok(),
            |ok| *ok,
        )
        .await;
        assert!(rebound, "socket must be released after drop");
    }
}
