//! End-to-end tests of the session layer: streamed multi-chunk messages
//! through a (sharded) relay overlay into a manager-hosted destination
//! endpoint, acks driving the source window, replies on the reverse
//! path, quotas and teardown hygiene.

mod common;

use common::SessionNet;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use slicing_core::{
    DestPlacement, GraphParams, OverlayAddr, RelayConfig, SessionConfig, SessionError, SessionId,
    SessionManager, SourceSession,
};

fn addrs(base: u64, n: usize) -> Vec<OverlayAddr> {
    (0..n as u64).map(|i| OverlayAddr(base + i)).collect()
}

/// Relay tuning for session tests: short flush timeouts so the reverse
/// (ack) path does not dawdle, liveness off (no churn here).
fn relay_config() -> RelayConfig {
    RelayConfig {
        setup_flush_ms: 400,
        data_flush_ms: 200,
        keepalive_ms: 0,
        liveness_timeout_ms: 0,
        ..RelayConfig::default()
    }
}

/// Session tuning compatible with the relay config above (retransmit
/// past the 2 × data_flush_ms gather quarantine).
fn session_config() -> SessionConfig {
    SessionConfig {
        retransmit_ms: 1_000,
        ack_interval_ms: 100,
        ..SessionConfig::default()
    }
}

/// Build one session's graph over the shared relay pool and host both
/// endpoints on `manager`; returns the endpoint ids and the setup
/// packets to submit. The destination endpoint gets its decoded info
/// out of band from the source (it ignores the setup copies addressed
/// to it).
#[allow(clippy::too_many_arguments)]
fn open_session(
    manager: &mut SessionManager,
    net: &SessionNet,
    pseudo: &[OverlayAddr],
    dest_addr: OverlayAddr,
    l: usize,
    d: usize,
    dp: usize,
    seed: u64,
) -> (SessionId, SessionId, Vec<slicing_core::SendInstr>) {
    let candidates: Vec<OverlayAddr> = net.relays.keys().copied().collect();
    let params = GraphParams::new(l, d)
        .with_paths(dp)
        .with_dest_placement(DestPlacement::LastStage);
    let (source, setup) =
        SourceSession::establish(params, pseudo, &candidates, dest_addr, seed).unwrap();
    let g = source.graph();
    let dest_flow = g.flow_ids[g.dest.stage][g.dest.index];
    let dest_info = g.infos[g.dest.stage][g.dest.index].clone();
    let now = net.now;
    let dest_id = manager
        .open_dest(now, dest_addr, dest_flow, dest_info, seed ^ 0xD5)
        .unwrap();
    let src_id = manager.open_source(now, source).unwrap();
    (src_id, dest_id, setup)
}

#[test]
fn stream_round_trip_32_chunks() {
    let relays = addrs(20_000, 24);
    let pseudo = addrs(10_000, 2);
    let dest = OverlayAddr(1);
    let mut net = SessionNet::new(&relays, 7, relay_config(), 2);
    let mut manager = SessionManager::new(2, 64, session_config());

    let (src, dst, setup) = open_session(&mut manager, &net, &pseudo, dest, 3, 2, 2, 7);
    net.submit(setup);
    net.run(&mut manager, 4, 200);

    // A payload spanning well over 32 chunks, byte-checkable.
    let chunk = manager.source_mut(src).unwrap().max_chunk_len();
    let mut payload = vec![0u8; chunk * 32 + 123];
    StdRng::seed_from_u64(99).fill_bytes(&mut payload);
    let (msg_id, sends) = manager.send(net.now, src, &payload).unwrap();
    net.submit(sends);
    net.run(&mut manager, 60, 100);

    assert_eq!(
        net.delivered.len(),
        1,
        "exactly one message must complete (stats: {:?})",
        manager.stats()
    );
    assert_eq!(net.delivered[0].0, dst);
    assert_eq!(net.delivered[0].1, msg_id);
    assert_eq!(net.delivered[0].2, payload, "byte-identical reassembly");

    // Source learned of the completion, window fully drained: no
    // per-message state survives delivery.
    assert!(net.acked.contains(&(src, msg_id)));
    assert!(manager.streams_idle(), "window must drain after acks");
    assert_eq!(manager.in_flight_chunks(), 0);
    let resident = manager.dest_mut(dst).unwrap().resident();
    assert_eq!(resident.partial_msgs, 0);
    assert_eq!(resident.ready_msgs, 0);
    assert_eq!(resident.reassembly_bytes, 0);
    assert_eq!(resident.gathers, 0, "per-seq gathers must be reaped");

    let stats = manager.stats();
    assert_eq!(stats.msgs_delivered, 1);
    assert_eq!(stats.msgs_acked, 1);
    assert!(stats.chunks_sent >= 33, "stats: {stats:?}");
}

#[test]
fn many_sessions_multiplex_in_order() {
    let relays = addrs(20_000, 30);
    let dest_pool = addrs(40_000, 8);
    let mut net = SessionNet::new(&relays, 11, relay_config(), 1);
    let mut manager = SessionManager::new(4, 256, session_config());

    let mut rng = StdRng::seed_from_u64(3);
    let mut sessions = Vec::new();
    for s in 0..24u64 {
        let pseudo = addrs(10_000 + s * 4, 2);
        let dest = dest_pool[rng.gen_range(0..dest_pool.len() - 1) + (s as usize % 2)];
        // Each session needs a distinct destination address per flow?
        // No — distinct flows share dest endpoints fine, but the
        // manager keys dest sessions by flow id, so reuse is fine.
        let (src, dst, setup) = open_session(&mut manager, &net, &pseudo, dest, 3, 2, 2, 100 + s);
        net.submit(setup);
        sessions.push((src, dst));
    }
    net.run(&mut manager, 5, 200);
    assert_eq!(manager.session_count(), 48);

    // Every session streams 3 distinct messages.
    let mut want: Vec<(SessionId, u32, Vec<u8>)> = Vec::new();
    for (i, &(src, dst)) in sessions.iter().enumerate() {
        for m in 0..3u32 {
            let payload = format!("session {i} message {m}").into_bytes();
            let (msg_id, sends) = manager.send(net.now, src, &payload).unwrap();
            net.submit(sends);
            want.push((dst, msg_id, payload));
        }
    }
    net.run(&mut manager, 40, 150);

    assert_eq!(
        net.delivered.len(),
        want.len(),
        "all messages delivered exactly once (stats: {:?})",
        manager.stats()
    );
    for w in &want {
        assert!(net.delivered.contains(w), "missing {w:?}");
    }
    // Per-session in-order delivery.
    for &(_, dst) in &sessions {
        let ids: Vec<u32> = net
            .delivered
            .iter()
            .filter(|(s, _, _)| *s == dst)
            .map(|&(_, id, _)| id)
            .collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted, "messages must release in order for {dst:?}");
    }
    assert!(manager.streams_idle());

    // Teardown: every close releases its router registrations.
    for &(src, dst) in &sessions {
        assert!(manager.close(src));
        assert!(manager.close(dst));
    }
    assert_eq!(manager.session_count(), 0);
    let stats = manager.stats();
    assert_eq!(stats.closed, 48);
}

#[test]
fn backpressure_and_oversize_are_typed() {
    let relays = addrs(20_000, 16);
    let pseudo = addrs(10_000, 2);
    let dest = OverlayAddr(1);
    let net = SessionNet::new(&relays, 13, relay_config(), 1);
    let tight = SessionConfig {
        send_buffer_bytes: 4_000,
        ..session_config()
    };
    let mut manager = SessionManager::new(1, 8, tight);
    let (src, _dst, _setup) = open_session(&mut manager, &net, &pseudo, dest, 3, 2, 2, 13);

    // Oversize: more than 65 535 chunks can never be expressed.
    let max = manager.source_mut(src).unwrap().max_stream_len();
    match manager.send(net.now, src, &vec![0u8; max + 1]).unwrap_err() {
        SessionError::Oversize { len, .. } => assert_eq!(len, max + 1),
        e => panic!("expected Oversize, got {e:?}"),
    }

    // Backpressure: the 4 KB quota admits one 3 KB message, rejects the
    // next until the window drains.
    manager.send(net.now, src, &vec![1u8; 3_000]).unwrap();
    match manager.send(net.now, src, &vec![2u8; 3_000]).unwrap_err() {
        SessionError::Backpressure { buffered, quota } => {
            assert!(buffered >= 3_000);
            assert_eq!(quota, 4_000);
        }
        e => panic!("expected Backpressure, got {e:?}"),
    }

    // Shard quota: the 8-session budget rejects the 9th open.
    let candidates: Vec<OverlayAddr> = net.relays.keys().copied().collect();
    let mut opened = 1; // src above
    loop {
        let (source, _) = SourceSession::establish(
            GraphParams::new(3, 2).with_dest_placement(DestPlacement::LastStage),
            &pseudo,
            &candidates,
            dest,
            500 + opened,
        )
        .unwrap();
        match manager.open_source(net.now, source) {
            Ok(_) => opened += 1,
            Err(SessionError::TooManySessions { limit }) => {
                assert_eq!(limit, 8);
                break;
            }
            Err(e) => panic!("unexpected {e:?}"),
        }
        assert!(opened <= 9, "quota never enforced");
    }

    // Unknown session id.
    assert_eq!(
        manager.send(net.now, SessionId(999), b"x").unwrap_err(),
        SessionError::UnknownSession
    );
}

/// Colocated lost-ack recovery: when a destination's ack is lost, the
/// source retransmits chunks the relay's replay guard suppresses —
/// `RelayOutput::replayed` must surface those so the colocated
/// `DestSession` re-announces its delivery state and the window drains.
#[test]
fn colocated_replay_surfaces_and_reacks() {
    use slicing_core::{DestSession, RelayNode, SendInstr, Tick};

    // A stage-1 destination so the source's packets hit the receiver
    // relay directly (no intermediate hops to drive).
    let params = GraphParams::new(1, 2).with_dest_placement(DestPlacement::LastStage);
    let pseudo = addrs(10_000, 2);
    let candidates = addrs(20_000, 8);
    let (mut source, setup) =
        SourceSession::establish(params, &pseudo, &candidates, OverlayAddr(1), 5).unwrap();
    source.set_session_config(session_config());
    let g = source.graph();
    let dest_addr = g.stages[g.dest.stage][g.dest.index];
    let dest_flow = g.flow_ids[g.dest.stage][g.dest.index];
    let dest_info = g.infos[g.dest.stage][g.dest.index].clone();
    let mut relay = RelayNode::with_config(dest_addr, 5, relay_config());
    let mut dest = DestSession::new(dest_addr, dest_flow, dest_info, session_config(), 5);

    let feed = |relay: &mut RelayNode, now: Tick, sends: &[SendInstr]| {
        let mut received = Vec::new();
        let mut replayed = Vec::new();
        for instr in sends.iter().filter(|s| s.to == dest_addr) {
            let out = relay.handle_packet(now, instr.from, &instr.packet);
            received.extend(out.received);
            replayed.extend(out.replayed);
        }
        (received, replayed)
    };

    feed(&mut relay, Tick(0), &setup);
    let (_, sends) = source.send(Tick(0), b"needs an ack").unwrap();
    let (received, replayed) = feed(&mut relay, Tick(10), &sends);
    assert_eq!(received.len(), 1, "chunk must deliver");
    assert!(replayed.is_empty());
    // The delivery produces the ack… which we "lose".
    let dout = dest.handle_delivery(Tick(10), received[0].seq, received[0].plaintext.clone());
    assert!(!dout.sends.is_empty(), "first delivery acks immediately");
    assert_eq!(source.stream_in_flight(), 1, "ack was lost, window still open");

    // Past the retransmit deadline *and* the relay's gather quarantine
    // (2 × data_flush_ms), the source retries; the relay suppresses the
    // duplicate delivery but must report the replay.
    relay.poll(Tick(900)); // reap the gather tombstone
    let retries = source.pump(Tick(1_100));
    assert!(!retries.is_empty(), "retransmit must fire");
    let (received, replayed) = feed(&mut relay, Tick(1_200), &retries);
    assert!(received.is_empty(), "replay guard keeps delivery at-most-once");
    assert!(!replayed.is_empty(), "suppressed replay must be surfaced");

    // The colocated session re-announces; the re-ack drains the window.
    let (flow, seq) = replayed[0];
    assert_eq!(flow, dest_flow);
    let dout = dest.handle_replay(Tick(1_200), seq);
    assert!(!dout.sends.is_empty(), "replay must trigger a re-ack");
    for instr in &dout.sends {
        let pseudo_addr = instr.to;
        if let Ok(p) = slicing_core::Packet::from_bytes(instr.packet.encode()) {
            source.handle_packet(Tick(1_300), pseudo_addr, instr.from, &p);
        }
    }
    let _ = source.pump(Tick(1_300));
    assert!(source.stream_idle(), "re-ack must drain the window");
    assert_eq!(source.pop_acked_msgs(), vec![0]);
}

#[test]
fn replies_reach_the_source() {
    let relays = addrs(20_000, 20);
    let pseudo = addrs(10_000, 2);
    let dest = OverlayAddr(1);
    let mut net = SessionNet::new(&relays, 17, relay_config(), 2);
    let mut manager = SessionManager::new(2, 16, session_config());
    let (src, dst, setup) = open_session(&mut manager, &net, &pseudo, dest, 3, 2, 2, 17);
    net.submit(setup);
    net.run(&mut manager, 4, 200);

    // Forward traffic first, so the reverse path's relays are warm.
    let (_, sends) = manager.send(net.now, src, b"ping").unwrap();
    net.submit(sends);
    net.run(&mut manager, 15, 150);
    assert_eq!(net.delivered.len(), 1);

    let (reply_id, sends) = manager
        .dest_mut(dst)
        .unwrap()
        .reply(net.now, b"pong from the hidden side")
        .unwrap();
    net.submit(sends);
    net.run(&mut manager, 15, 150);

    assert!(
        net.replies
            .contains(&(src, reply_id, b"pong from the hidden side".to_vec())),
        "reply must surface at the source (got {:?})",
        net.replies
    );
}
