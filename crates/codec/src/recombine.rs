//! Relay-side redundancy regeneration via network coding (§4.4.1).
//!
//! When a relay has received `k ≥ d` slices but an upstream failure cost
//! the flow one of its `d′` redundant slices, the relay fabricates a
//! replacement: `m′_new = Σ pᵢ·m′ᵢ` with the *same* random `pᵢ` applied to
//! the coefficient rows, `A′_new = Σ pᵢ·A′ᵢ`. The new slice is a valid
//! codeword of the original generator, so downstream decoding is
//! unaffected — "with a small amount of redundancy, we can survive many
//! node failures because at each stage the nodes can re-generate the lost
//! redundancy."

use rand::Rng;

use slicing_gf::bulk;

use crate::slice::InfoSlice;

fn assert_consistent(slices: &[InfoSlice]) -> (usize, usize) {
    assert!(!slices.is_empty(), "cannot recombine zero slices");
    let d = slices[0].coeffs.len();
    let block_len = slices[0].payload.len();
    assert!(
        slices
            .iter()
            .all(|s| s.coeffs.len() == d && s.payload.len() == block_len),
        "inconsistent slice shapes"
    );
    (d, block_len)
}

/// Accumulate one random combination into pre-zeroed `coeffs`/`payload`
/// buffers through the shared bulk kernels.
fn mix_into<R: Rng + ?Sized>(
    slices: &[InfoSlice],
    rng: &mut R,
    coeffs: &mut [u8],
    payload: &mut [u8],
) {
    for s in slices {
        let p: u8 = rng.gen_range(1..=255);
        bulk::mul_add_slice(coeffs, p, &s.coeffs);
        bulk::mul_add_slice(payload, p, &s.payload);
    }
}

/// Produce a fresh slice as a random linear combination of `slices`.
///
/// Every combination coefficient is nonzero, so the output mixes *all*
/// inputs. (For `d = 2` this provably preserves pairwise independence
/// across regeneration rounds; for larger `d` dependence is possible only
/// with probability ~`d/255` per round, matching the randomized network
/// coding guarantee the paper cites (its reference 18).)
///
/// # Panics
/// Panics if `slices` is empty or shapes are inconsistent.
pub fn recombine<R: Rng + ?Sized>(slices: &[InfoSlice], rng: &mut R) -> InfoSlice {
    let (d, block_len) = assert_consistent(slices);
    let mut coeffs = vec![0u8; d];
    let mut payload = vec![0u8; block_len];
    mix_into(slices, rng, &mut coeffs, &mut payload);
    InfoSlice::new(coeffs, payload)
}

/// Produce `n` fresh random combinations of `slices` in one pass.
///
/// This is the relay-side regeneration entry point (§4.4.1): a relay
/// that must fabricate several outgoing slices (lost redundancy, or
/// Recode-mode fan-out to all children) asks for them together, so every
/// coded byte goes through the same [`bulk`] kernels and the shape
/// checks run once instead of per slice.
///
/// # Panics
/// Panics if `slices` is empty or shapes are inconsistent.
pub fn recombine_batch<R: Rng + ?Sized>(
    slices: &[InfoSlice],
    n: usize,
    rng: &mut R,
) -> Vec<InfoSlice> {
    let (d, block_len) = assert_consistent(slices);
    // Draw all combination coefficients up front, output-major — the
    // same stream order as n sequential `mix_into` passes — then hand
    // the whole batch to the fused kernel, which loads each input slice
    // once per group of outputs instead of once per (output, input).
    let ps: Vec<u8> = (0..n * slices.len())
        .map(|_| rng.gen_range(1..=255))
        .collect();
    let src_coeffs: Vec<&[u8]> = slices.iter().map(|s| s.coeffs.as_slice()).collect();
    let src_payloads: Vec<&[u8]> = slices.iter().map(|s| s.payload.as_slice()).collect();
    let mut coeffs: Vec<Vec<u8>> = (0..n).map(|_| vec![0u8; d]).collect();
    let mut payloads: Vec<Vec<u8>> = (0..n).map(|_| vec![0u8; block_len]).collect();
    let mut coeff_refs: Vec<&mut [u8]> = coeffs.iter_mut().map(|c| c.as_mut_slice()).collect();
    let mut payload_refs: Vec<&mut [u8]> =
        payloads.iter_mut().map(|p| p.as_mut_slice()).collect();
    bulk::mul_add_fused(&mut coeff_refs, &ps, &src_coeffs);
    bulk::mul_add_fused(&mut payload_refs, &ps, &src_payloads);
    coeffs
        .into_iter()
        .zip(payloads)
        .map(|(c, p)| InfoSlice::new(c, p))
        .collect()
}

/// Accumulate one fresh random combination of raw slice buffers directly
/// into a pre-zeroed output buffer.
///
/// Each input is the wire image of a slice — `coeffs ‖ payload` — and
/// the output gets the same layout: because the same combination
/// coefficient multiplies both the generator row and the coded block,
/// one [`bulk::mul_add_slice`] pass per input covers both at once. This
/// is the relay data plane's zero-allocation path: the output buffer is
/// the outgoing packet's slot, and no [`InfoSlice`] is materialized.
///
/// # Panics
/// Panics if `slices` is empty or any input length differs from `out`.
pub fn recombine_into<R: Rng + ?Sized, S: AsRef<[u8]>>(
    slices: &[S],
    rng: &mut R,
    out: &mut [u8],
) {
    assert!(!slices.is_empty(), "cannot recombine zero slices");
    for s in slices {
        let p: u8 = rng.gen_range(1..=255);
        bulk::mul_add_slice(out, p, s.as_ref());
    }
}

/// Accumulate several fresh random combinations of raw slice buffers
/// into pre-zeroed output buffers through one fused kernel pass.
///
/// Combination coefficients are drawn **output-major** (for each output,
/// one coefficient per input slice), which makes the result bit-identical
/// to `outs.len()` sequential [`recombine_into`] calls on the same RNG —
/// but each input slice is loaded once per group of outputs instead of
/// once per (output, input) pair ([`bulk::mul_add_fused`]). This is the
/// relay forward path's regeneration kernel: one call fills every
/// outgoing packet slot that needs a fresh combination.
///
/// # Panics
/// Panics if `slices` is empty or any input/output length differs.
pub fn recombine_multi_into<R: Rng + ?Sized, S: AsRef<[u8]>>(
    slices: &[S],
    rng: &mut R,
    outs: &mut [&mut [u8]],
) {
    assert!(!slices.is_empty(), "cannot recombine zero slices");
    let ps: Vec<u8> = (0..outs.len() * slices.len())
        .map(|_| rng.gen_range(1..=255))
        .collect();
    let srcs: Vec<&[u8]> = slices.iter().map(|s| s.as_ref()).collect();
    bulk::mul_add_fused(outs, &ps, &srcs);
}

/// Regenerate up to `want` slices from the `have` received ones,
/// returning `have.len() + missing` slices where
/// `missing = want.saturating_sub(have.len())`.
///
/// This is what a relay runs when its parents delivered fewer slices than
/// the flow's `d′` (§4.4.1): the received slices are forwarded as-is and
/// the shortfall is made up with recombinations.
pub fn restore_redundancy<R: Rng + ?Sized>(
    have: &[InfoSlice],
    want: usize,
    rng: &mut R,
) -> Vec<InfoSlice> {
    let mut out: Vec<InfoSlice> = have.to_vec();
    if out.len() < want {
        out.extend(recombine_batch(have, want - out.len(), rng));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coder::{decode, encode};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use slicing_gf::{Field, Gf256};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(2024)
    }

    #[test]
    fn recombined_slice_decodes_with_originals() {
        let mut rng = rng();
        let msg = b"regenerate me";
        let coded = encode(msg, 2, 3, &mut rng);
        let fresh = recombine(&coded.slices, &mut rng);
        // fresh + one original must decode (2-of-* decodability).
        let set = vec![fresh.clone(), coded.slices[0].clone()];
        assert_eq!(decode(&set, 2).unwrap(), msg);
    }

    #[test]
    fn lost_slice_fully_replaced() {
        let mut rng = rng();
        let msg = b"one parent failed";
        let (d, dp) = (2, 3);
        let coded = encode(msg, d, dp, &mut rng);
        // A stage lost slice 2; the relay restores d' from the surviving 2.
        let survivors = &coded.slices[..2];
        let restored = restore_redundancy(survivors, dp, &mut rng);
        assert_eq!(restored.len(), dp);
        // Any 2 of the restored 3 decode — including the regenerated one.
        for i in 0..dp {
            for j in i + 1..dp {
                let set = vec![restored[i].clone(), restored[j].clone()];
                assert_eq!(decode(&set, d).unwrap(), msg, "({i},{j})");
            }
        }
    }

    #[test]
    fn chained_regeneration_over_stages() {
        // Simulate L=5 stages, each losing one slice then regenerating —
        // the scenario Fig. 17 relies on.
        let mut rng = rng();
        let msg = b"multi-stage survival";
        let (d, dp) = (2, 3);
        let coded = encode(msg, d, dp, &mut rng);
        let mut current = coded.slices.clone();
        for _stage in 0..5 {
            current.remove(0); // a parent fails
            current = restore_redundancy(&current, dp, &mut rng);
            assert_eq!(current.len(), dp);
        }
        assert_eq!(decode(&current, d).unwrap(), msg);
    }

    #[test]
    fn recombine_single_slice_is_scaled_copy() {
        let mut rng = rng();
        let coded = encode(b"solo", 2, 2, &mut rng);
        let fresh = recombine(&coded.slices[..1], &mut rng);
        // A combination of one slice spans the same line; it cannot decode
        // with the original alone (rank 1).
        let set = vec![fresh, coded.slices[0].clone()];
        assert!(decode(&set, 2).is_err());
    }

    #[test]
    fn recombine_into_matches_recombine() {
        // The raw-buffer path (coeffs ‖ payload in one pass) must produce
        // a slice distributed identically to the InfoSlice path: same RNG
        // stream in, same combination out.
        let mut rng_a = rng();
        let mut rng_b = rng();
        let coded = encode(b"one pass", 3, 4, &mut rng_a);
        // Re-sync: encode consumed randomness from rng_a; mirror on rng_b.
        let _ = encode(b"one pass", 3, 4, &mut rng_b);
        let via_slices = recombine(&coded.slices, &mut rng_a);
        let raw: Vec<Vec<u8>> = coded.slices.iter().map(|s| s.to_bytes()).collect();
        let mut out = vec![0u8; raw[0].len()];
        recombine_into(&raw, &mut rng_b, &mut out);
        assert_eq!(out, via_slices.to_bytes());
    }

    #[test]
    fn recombined_raw_buffer_decodes() {
        let mut r = rng();
        let msg = b"zero copy regen";
        let coded = encode(msg, 2, 3, &mut r);
        let raw: Vec<Vec<u8>> = coded.slices.iter().map(|s| s.to_bytes()).collect();
        let mut out = vec![0u8; raw[0].len()];
        recombine_into(&raw, &mut r, &mut out);
        let fresh = InfoSlice::from_bytes(2, coded.block_len, &out).unwrap();
        let set = vec![fresh, coded.slices[0].clone()];
        assert_eq!(decode(&set, 2).unwrap(), msg);
    }

    #[test]
    fn recombine_multi_into_matches_sequential_single() {
        // The fused multi-output path must be bit-identical to n
        // sequential recombine_into calls on the same RNG stream.
        for n in [1usize, 2, 3, 4, 5, 9] {
            let mut rng_a = rng();
            let mut rng_b = rng();
            let coded = encode(b"fused outputs", 3, 4, &mut rng_a);
            let _ = encode(b"fused outputs", 3, 4, &mut rng_b);
            let raw: Vec<Vec<u8>> = coded.slices.iter().map(|s| s.to_bytes()).collect();
            let len = raw[0].len();
            let mut seq: Vec<Vec<u8>> = (0..n).map(|_| vec![0u8; len]).collect();
            for out in seq.iter_mut() {
                recombine_into(&raw, &mut rng_a, out);
            }
            let mut fused: Vec<Vec<u8>> = (0..n).map(|_| vec![0u8; len]).collect();
            let mut refs: Vec<&mut [u8]> = fused.iter_mut().map(|o| o.as_mut_slice()).collect();
            recombine_multi_into(&raw, &mut rng_b, &mut refs);
            assert_eq!(fused, seq, "n = {n}");
        }
    }

    #[test]
    fn recombine_multi_into_outputs_decode() {
        let mut r = rng();
        let msg = b"fused regen decodes";
        let coded = encode(msg, 2, 3, &mut r);
        let raw: Vec<Vec<u8>> = coded.slices.iter().map(|s| s.to_bytes()).collect();
        let mut outs: Vec<Vec<u8>> = (0..2).map(|_| vec![0u8; raw[0].len()]).collect();
        let mut refs: Vec<&mut [u8]> = outs.iter_mut().map(|o| o.as_mut_slice()).collect();
        recombine_multi_into(&raw, &mut r, &mut refs);
        let a = InfoSlice::from_bytes(2, coded.block_len, &outs[0]).unwrap();
        let b = InfoSlice::from_bytes(2, coded.block_len, &outs[1]).unwrap();
        assert_eq!(decode(&[a, b], 2).unwrap(), msg);
    }

    #[test]
    fn gf_scaling_sanity() {
        // recombine of [s] with p must equal p·s elementwise.
        let s = InfoSlice::new(vec![1, 0], vec![2, 4, 8]);
        let mut rng = rng();
        let out = recombine(std::slice::from_ref(&s), &mut rng);
        // The ratio payload[i]/coeffs[0] must be constant = p.
        let p = Gf256::new(out.coeffs[0]);
        assert!(!p.is_zero());
        for (o, orig) in out.payload.iter().zip(s.payload.iter()) {
            assert_eq!(Gf256::new(*o), p.mul(Gf256::new(*orig)));
        }
    }
}
