//! Trial averaging — "the simulation procedure is repeated 1000 times
//! and the average anonymity is plotted" (§6.2).

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::chaum::{chaum_trial, ChaumParams};
use crate::scenario::{slicing_trial, ScenarioParams};

/// Averaged anonymity estimates over many trials.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AnonymityEstimate {
    /// Mean source anonymity.
    pub source: f64,
    /// Mean destination anonymity.
    pub dest: f64,
    /// Fraction of trials where source Case 1 fired.
    pub source_case1_rate: f64,
    /// Fraction of trials where destination Case 1 fired.
    pub dest_case1_rate: f64,
    /// Trials run.
    pub trials: usize,
}

/// Run `trials` slicing scenarios and average.
pub fn average_anonymity(params: &ScenarioParams, trials: usize, seed: u64) -> AnonymityEstimate {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut src = 0.0;
    let mut dst = 0.0;
    let mut c1s = 0usize;
    let mut c1d = 0usize;
    for _ in 0..trials {
        let t = slicing_trial(params, &mut rng);
        src += t.source;
        dst += t.dest;
        c1s += usize::from(t.source_case1);
        c1d += usize::from(t.dest_case1);
    }
    AnonymityEstimate {
        source: src / trials as f64,
        dest: dst / trials as f64,
        source_case1_rate: c1s as f64 / trials as f64,
        dest_case1_rate: c1d as f64 / trials as f64,
        trials,
    }
}

/// Run `trials` Chaum-mix scenarios and average.
pub fn average_chaum(params: &ChaumParams, trials: usize, seed: u64) -> AnonymityEstimate {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut src = 0.0;
    let mut dst = 0.0;
    let mut c1s = 0usize;
    let mut c1d = 0usize;
    for _ in 0..trials {
        let t = chaum_trial(params, &mut rng);
        src += t.source;
        dst += t.dest;
        c1s += usize::from(t.source_case1);
        c1d += usize::from(t.dest_case1);
    }
    AnonymityEstimate {
        source: src / trials as f64,
        dest: dst / trials as f64,
        source_case1_rate: c1s as f64 / trials as f64,
        dest_case1_rate: c1d as f64 / trials as f64,
        trials,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formulas;

    /// The simulated Case-1 rates must track the closed forms of
    /// Appendix A (Eq. 10 for the destination).
    #[test]
    fn case1_rates_match_formulas() {
        let p = ScenarioParams::new(10_000, 8, 3, 0.4);
        let est = average_anonymity(&p, 20_000, 7);
        let analytic_src = formulas::source_case1(3, 3, 0.4);
        assert!(
            (est.source_case1_rate - analytic_src).abs() < 0.02,
            "source case1: sim {} vs analytic {}",
            est.source_case1_rate,
            analytic_src
        );
        let analytic_dst = formulas::dest_case1(8, 3, 3, 0.4);
        assert!(
            (est.dest_case1_rate - analytic_dst).abs() < 0.03,
            "dest case1: sim {} vs analytic {}",
            est.dest_case1_rate,
            analytic_dst
        );
    }

    /// Fig. 7 shape: slicing anonymity is high at f ≤ 0.2 and decays.
    #[test]
    fn fig7_shape() {
        let anon = |f: f64| average_anonymity(&ScenarioParams::new(10_000, 8, 3, f), 1000, 9);
        let a01 = anon(0.01);
        let a02 = anon(0.2);
        let a05 = anon(0.5);
        assert!(a01.source > 0.9, "f=0.01 source {}", a01.source);
        assert!(a02.source > 0.6);
        assert!(a05.source > 0.3 && a05.source < a02.source);
        assert!(a05.dest < a02.dest);
        // Destination drops faster than source (§6.3.1).
        assert!(a05.dest <= a05.source + 0.02);
    }

    /// Fig. 9 shape: anonymity increases with path length.
    #[test]
    fn fig9_shape() {
        let anon = |l: usize| {
            average_anonymity(&ScenarioParams::new(10_000, l, 3, 0.1), 1500, 11).source
        };
        let short = anon(2);
        let long = anon(16);
        assert!(long > short, "L=16 {long} must beat L=2 {short}");
    }

    /// Chaum and slicing are comparable at low f (Fig. 7's headline).
    #[test]
    fn slicing_comparable_to_chaum_at_low_f() {
        let s = average_anonymity(&ScenarioParams::new(10_000, 8, 3, 0.1), 2000, 13);
        let c = average_chaum(
            &ChaumParams {
                n: 10_000,
                length: 8,
                fraction_malicious: 0.1,
            },
            2000,
            13,
        );
        assert!(
            (s.source - c.source).abs() < 0.15,
            "slicing {} vs chaum {}",
            s.source,
            c.source
        );
    }
}
