//! Fig. 11: per-flow throughput vs path length on the local-area
//! network — information slicing (d = 2) vs onion routing.
//!
//! Substitution: the paper's 1 Gbps switched LAN of Pentium boxes is
//! replaced by the emulated LAN profile (and, with `--tcp`, by real TCP
//! over loopback). Absolute Mb/s differ from 2007 hardware; the claim
//! under test is slicing > onion at every L, driven by d parallel paths.

use std::time::Duration;

use slicing_bench::{banner, RunOpts, Table};
use slicing_core::{DestPlacement, GraphParams};
use slicing_overlay::experiment::{
    run_onion_transfer, run_slicing_transfer, Transport,
};
use slicing_overlay::TransferConfig;
use slicing_sim::NetProfile;

fn main() {
    let opts = RunOpts::from_args();
    let use_tcp = std::env::args().any(|a| a == "--tcp");
    let messages = opts.trials(60);
    banner(
        "Figure 11 — throughput vs path length, LAN",
        "d=2, 1500B packets, L=2..5",
        "information slicing outperforms onion routing at every L \
         (parallel paths); both decline slowly with L",
    );
    let rt = tokio::runtime::Builder::new_multi_thread()
        .worker_threads(4)
        .enable_all()
        .build()
        .expect("tokio runtime");
    let mut table = Table::new(&["L", "slicing_mbps", "onion_mbps"]);
    for l in 2..=5usize {
        let transport = if use_tcp {
            Transport::Tcp
        } else {
            Transport::Emulated(NetProfile::lan())
        };
        let cfg = TransferConfig {
            params: GraphParams::new(l, 2).with_dest_placement(DestPlacement::LastStage),
            transport: transport.clone(),
            messages,
            payload_len: 1400,
            seed: opts.seed + l as u64,
            timeout: Duration::from_secs(120),
            relay_shards: 1,
            relay_config: Default::default(),
        };
        let slicing = rt.block_on(run_slicing_transfer(&cfg));
        let onion = rt.block_on(run_onion_transfer(&cfg));
        table.row(&[l as f64, slicing.throughput_mbps, onion.throughput_mbps]);
    }
    table.print();
}
