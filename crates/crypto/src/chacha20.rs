//! ChaCha20 stream cipher (RFC 8439) with runtime-dispatched multi-block
//! keystream generation.
//!
//! A [`ChaCha20`] instance carries a [`Backend`] chosen at construction
//! (the process-wide [`crate::simd::backend`] by default). Whole 64-byte
//! blocks are XOR'd by the SIMD engines in one dispatched call (four
//! blocks per pass on AVX2); sub-block tails fall back to the scalar
//! [`block`] function and are buffered for the next `apply`.
//!
//! The 32-bit block counter is tracked internally as a `u64`:
//! exhausting the counter space (more than 256 GiB of keystream under
//! one nonce, which would silently reuse keystream in the RFC
//! formulation) is a typed [`KeystreamExhausted`] error from
//! [`ChaCha20::try_apply`], checked *before* any bytes are touched.

use crate::simd::{self, Backend};

/// "expand 32-byte k" constants.
const SIGMA: [u32; 4] = [0x61707865, 0x3320646e, 0x79622d32, 0x6b206574];

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

/// Compute one 64-byte keystream block for (key, nonce, counter) — the
/// scalar reference the SIMD engines are tested against.
pub fn block(key: &[u8; 32], nonce: &[u8; 12], counter: u32) -> [u8; 64] {
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&SIGMA);
    for i in 0..8 {
        state[4 + i] = u32::from_le_bytes([
            key[i * 4],
            key[i * 4 + 1],
            key[i * 4 + 2],
            key[i * 4 + 3],
        ]);
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = u32::from_le_bytes([
            nonce[i * 4],
            nonce[i * 4 + 1],
            nonce[i * 4 + 2],
            nonce[i * 4 + 3],
        ]);
    }
    let mut working = state;
    for _ in 0..10 {
        // Column rounds.
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        // Diagonal rounds.
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }
    let mut out = [0u8; 64];
    for i in 0..16 {
        let v = working[i].wrapping_add(state[i]);
        out[i * 4..(i + 1) * 4].copy_from_slice(&v.to_le_bytes());
    }
    out
}

/// The 32-bit block counter ran out: more keystream was requested than
/// one (key, nonce) pair can produce (2³² blocks = 256 GiB). Continuing
/// would wrap the counter and reuse keystream, so the cipher refuses
/// instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeystreamExhausted;

impl std::fmt::Display for KeystreamExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ChaCha20 block counter exhausted (keystream would repeat)")
    }
}

impl std::error::Error for KeystreamExhausted {}

/// Number of keystream blocks one (key, nonce) pair may produce.
const MAX_BLOCKS: u64 = 1 << 32;

/// A ChaCha20 keystream positioned at an arbitrary block counter.
///
/// `apply` XORs the keystream into a buffer; applying twice with the same
/// (key, nonce, counter) decrypts.
pub struct ChaCha20 {
    key: [u8; 32],
    nonce: [u8; 12],
    /// Next block index to generate. Kept as `u64` so counter
    /// exhaustion is a detectable state rather than a silent 32-bit
    /// wrap; always ≤ [`MAX_BLOCKS`].
    counter: u64,
    buf: [u8; 64],
    /// Bytes of `buf` already consumed.
    used: usize,
    backend: Backend,
}

impl ChaCha20 {
    /// Create a cipher starting at block `counter` (RFC examples use 1 for
    /// payload encryption; 0 is fine for our protocol use), on the
    /// process-wide detected backend.
    pub fn new(key: &[u8; 32], nonce: &[u8; 12], counter: u32) -> Self {
        Self::new_on(simd::backend(), key, nonce, counter)
    }

    /// As [`ChaCha20::new`], pinned to a specific [`Backend`] (tests
    /// sweep every available engine against the scalar reference).
    pub fn new_on(backend: Backend, key: &[u8; 32], nonce: &[u8; 12], counter: u32) -> Self {
        ChaCha20 {
            key: *key,
            nonce: *nonce,
            counter: counter as u64,
            buf: [0; 64],
            used: 64,
            backend,
        }
    }

    /// Keystream bytes still available before the 32-bit counter runs out.
    fn remaining(&self) -> u64 {
        (64 - self.used) as u64 + (MAX_BLOCKS - self.counter) * 64
    }

    /// XOR the keystream into `data` in place, or refuse — leaving
    /// `data` untouched — if that would exhaust the 32-bit block
    /// counter and repeat keystream.
    pub fn try_apply(&mut self, data: &mut [u8]) -> Result<(), KeystreamExhausted> {
        if data.len() as u64 > self.remaining() {
            return Err(KeystreamExhausted);
        }
        let mut off = 0usize;
        // Drain the buffered partial block first.
        if self.used < 64 {
            let take = data.len().min(64 - self.used);
            for (b, k) in data[..take].iter_mut().zip(&self.buf[self.used..self.used + take]) {
                *b ^= k;
            }
            self.used += take;
            off = take;
        }
        // Bulk whole blocks: one dispatched SIMD call, scalar otherwise.
        if self.backend == Backend::Simd && data.len() - off >= 64 {
            let n = simd::kernels::chacha_xor(
                &self.key,
                &self.nonce,
                self.counter as u32,
                &mut data[off..],
            );
            self.counter += n as u64;
            off += n * 64;
        }
        while data.len() - off >= 64 {
            let ks = block(&self.key, &self.nonce, self.counter as u32);
            for (b, k) in data[off..off + 64].iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
            self.counter += 1;
            off += 64;
        }
        // Sub-block tail: generate and buffer one more block.
        if off < data.len() {
            self.buf = block(&self.key, &self.nonce, self.counter as u32);
            self.counter += 1;
            let take = data.len() - off;
            for (b, k) in data[off..].iter_mut().zip(self.buf.iter()) {
                *b ^= k;
            }
            self.used = take;
        }
        Ok(())
    }

    /// XOR the keystream into `data` in place.
    ///
    /// # Panics
    /// Panics if the 32-bit block counter would be exhausted (more than
    /// 256 GiB of keystream under one nonce); use
    /// [`ChaCha20::try_apply`] to handle that case as an error.
    pub fn apply(&mut self, data: &mut [u8]) {
        if self.try_apply(data).is_err() {
            panic!("ChaCha20 keystream exhausted: counter would wrap and repeat");
        }
    }

    /// Convenience: encrypt/decrypt a buffer with a one-shot cipher.
    ///
    /// # Panics
    /// As [`ChaCha20::apply`], on 32-bit counter exhaustion.
    pub fn xor(key: &[u8; 32], nonce: &[u8; 12], counter: u32, data: &mut [u8]) {
        ChaCha20::new(key, nonce, counter).apply(data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// RFC 8439 §2.3.2 block function test vector.
    #[test]
    fn rfc8439_block_vector() {
        let mut key = [0u8; 32];
        for (i, k) in key.iter_mut().enumerate() {
            *k = i as u8;
        }
        let nonce = [
            0x00, 0x00, 0x00, 0x09, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00,
        ];
        let out = block(&key, &nonce, 1);
        assert_eq!(
            hex(&out),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
        );
    }

    /// RFC 8439 §2.4.2 encryption test, swept across every available
    /// backend (full 114-byte ciphertext split in two for readability).
    #[test]
    fn rfc8439_encryption_all_backends() {
        let mut key = [0u8; 32];
        for (i, k) in key.iter_mut().enumerate() {
            *k = i as u8;
        }
        let nonce = [
            0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00,
        ];
        let plaintext = *b"Ladies and Gentlemen of the class of '99: If I could offer you \
only one tip for the future, sunscreen would be it.";
        for backend in crate::simd::available_backends() {
            let mut data = plaintext;
            ChaCha20::new_on(backend, &key, &nonce, 1).apply(&mut data);
            assert_eq!(
                hex(&data),
                "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b\
                 f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8\
                 07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736\
                 5af90bbf74a35be6b40b8eedf2785e42874d",
                "{backend} backend"
            );
        }
    }

    #[test]
    fn round_trip() {
        let key = [7u8; 32];
        let nonce = [3u8; 12];
        let original: Vec<u8> = (0..300u32).map(|i| (i * 7 % 256) as u8).collect();
        let mut data = original.clone();
        ChaCha20::xor(&key, &nonce, 0, &mut data);
        assert_ne!(data, original);
        ChaCha20::xor(&key, &nonce, 0, &mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn incremental_equals_oneshot_all_backends() {
        let key = [9u8; 32];
        let nonce = [1u8; 12];
        let mut oneshot = vec![0u8; 500];
        ChaCha20::new_on(Backend::Scalar, &key, &nonce, 0).apply(&mut oneshot);
        for backend in crate::simd::available_backends() {
            for chunk_size in [1usize, 13, 64, 65, 130] {
                let mut incremental = vec![0u8; 500];
                let mut c = ChaCha20::new_on(backend, &key, &nonce, 0);
                for chunk in incremental.chunks_mut(chunk_size) {
                    c.apply(chunk);
                }
                assert_eq!(oneshot, incremental, "{backend} backend, chunks of {chunk_size}");
            }
        }
    }

    #[test]
    fn different_nonces_differ() {
        let key = [1u8; 32];
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        ChaCha20::xor(&key, &[0u8; 12], 0, &mut a);
        ChaCha20::xor(&key, &[1u8; 12], 0, &mut b);
        assert_ne!(a, b);
    }

    /// The final counter value must be usable and the one past it must
    /// be a typed error, with the data left untouched on refusal.
    #[test]
    fn counter_exhaustion_at_boundary() {
        let key = [2u8; 32];
        let nonce = [4u8; 12];
        for backend in crate::simd::available_backends() {
            // Exactly one block remains at counter u32::MAX.
            let mut c = ChaCha20::new_on(backend, &key, &nonce, u32::MAX);
            let mut data = [0u8; 64];
            assert_eq!(c.try_apply(&mut data), Ok(()), "{backend} backend");
            let expected = block(&key, &nonce, u32::MAX);
            assert_eq!(data, expected, "{backend} backend");
            // The next byte would wrap: typed error, data untouched.
            let mut one = [0xAAu8; 1];
            assert_eq!(c.try_apply(&mut one), Err(KeystreamExhausted), "{backend} backend");
            assert_eq!(one, [0xAA], "{backend} backend");
        }
    }

    /// Refusal happens before any bytes are modified, even when part of
    /// the request would have fit.
    #[test]
    fn oversized_request_touches_nothing() {
        let key = [2u8; 32];
        let nonce = [4u8; 12];
        let mut c = ChaCha20::new(&key, &nonce, u32::MAX);
        let mut data = [0x55u8; 128]; // two blocks wanted, one available
        assert_eq!(c.try_apply(&mut data), Err(KeystreamExhausted));
        assert!(data.iter().all(|&b| b == 0x55));
        // The stream is still usable for what actually fits.
        let mut fits = [0u8; 64];
        assert_eq!(c.try_apply(&mut fits), Ok(()));
    }

    /// Partial consumption across the boundary: buffered bytes of the
    /// final block remain available after the counter itself is spent.
    #[test]
    fn buffered_tail_of_final_block() {
        let key = [8u8; 32];
        let nonce = [6u8; 12];
        let mut c = ChaCha20::new(&key, &nonce, u32::MAX);
        let mut a = [0u8; 40];
        assert_eq!(c.try_apply(&mut a), Ok(()));
        let mut b = [0u8; 24];
        assert_eq!(c.try_apply(&mut b), Ok(()));
        let mut overflow = [0u8; 1];
        assert_eq!(c.try_apply(&mut overflow), Err(KeystreamExhausted));
        let expected = block(&key, &nonce, u32::MAX);
        assert_eq!(&a[..], &expected[..40]);
        assert_eq!(&b[..], &expected[40..]);
    }

    #[test]
    #[should_panic(expected = "keystream exhausted")]
    fn apply_panics_on_exhaustion() {
        let mut c = ChaCha20::new(&[0u8; 32], &[0u8; 12], u32::MAX);
        let mut data = [0u8; 65];
        c.apply(&mut data);
    }
}
