//! Live-session churn end-to-end: kill a stage-2 relay mid-transfer on
//! the async runtime and assert (a) redundancy rides it out with no
//! repair, and (b) with `d′ = d` the source-side repair completes the
//! transfer — over both the emulated and the TCP transport.

mod common;

use common::kill_stage2;
use slicing_core::DataMode;
use slicing_overlay::experiment::Transport;
use slicing_overlay::{run_churn_session, ChurnSessionConfig};
use slicing_sim::wan::NetProfile;

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn redundant_session_survives_kill_emulated() {
    let cfg = kill_stage2(
        Transport::Emulated(NetProfile::lan()),
        3,
        DataMode::Recode,
        false,
    );
    let report = run_churn_session(&cfg).await;
    assert!(report.established, "report: {report:?}");
    assert_eq!(report.kills, 1, "report: {report:?}");
    assert_eq!(report.repairs, 0, "repair disabled");
    assert!(
        report.success,
        "d' > d must complete without repair: {report:?}"
    );
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn redundant_session_survives_kill_tcp() {
    let cfg = kill_stage2(Transport::Tcp, 3, DataMode::Recode, false);
    let report = run_churn_session(&cfg).await;
    assert!(report.established, "report: {report:?}");
    assert_eq!(report.kills, 1, "report: {report:?}");
    assert_eq!(report.repairs, 0, "repair disabled");
    assert!(
        report.success,
        "d' > d must complete without repair: {report:?}"
    );
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn repair_completes_session_emulated() {
    let cfg = kill_stage2(
        Transport::Emulated(NetProfile::lan()),
        2,
        DataMode::Map,
        true,
    );
    let report = run_churn_session(&cfg).await;
    assert!(report.established, "report: {report:?}");
    assert_eq!(report.kills, 1, "report: {report:?}");
    assert!(report.repairs >= 1, "source must have repaired: {report:?}");
    assert!(
        report.success,
        "d' = d must complete after repair: {report:?}"
    );
    // Repair locality: the initial establishment costs d'² packets; one
    // repair re-keys only the replacement and the dead node's direct
    // neighbours (1 + 2·d′ positions at d′ packets each). A full
    // re-establishment of all L·d′ relays would send far more.
    assert_eq!(
        report.setup_packets,
        (2 * 2) + report.repairs as u64 * 5 * 2,
        "repair must re-key only affected paths: {report:?}"
    );
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn repair_completes_session_tcp() {
    let cfg = kill_stage2(Transport::Tcp, 2, DataMode::Map, true);
    let report = run_churn_session(&cfg).await;
    assert!(report.established, "report: {report:?}");
    assert_eq!(report.kills, 1, "report: {report:?}");
    assert!(report.repairs >= 1, "source must have repaired: {report:?}");
    assert!(
        report.success,
        "d' = d must complete after repair: {report:?}"
    );
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn repair_completes_session_sharded_emulated() {
    // The same repair path with 4-way sharded relays: teardown arrives
    // on reverse flow ids (routed via the reverse-id map) and re-setup
    // on forward ids — both must land on the owning shard.
    let cfg = ChurnSessionConfig {
        relay_shards: 4,
        ..kill_stage2(
            Transport::Emulated(NetProfile::lan()),
            2,
            DataMode::Map,
            true,
        )
    };
    let report = run_churn_session(&cfg).await;
    assert!(report.established && report.success, "report: {report:?}");
    assert!(report.repairs >= 1, "report: {report:?}");
}
