//! Criterion benches for the finite-field substrate: the per-byte
//! multiplication kernel (the §7.1 cost driver) and matrix inversion
//! (the per-relay decode step).

// criterion_group! expands to an undocumented fn.
#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use slicing_gf::{bulk, Field, Gf256, Gf65536, Matrix};

fn gf(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(11);

    let mut group = c.benchmark_group("gf_mul");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_millis(600));
    group.warm_up_time(std::time::Duration::from_millis(200));
    let a256: Vec<Gf256> = (0..4096).map(|_| Gf256::random(&mut rng)).collect();
    let b256: Vec<Gf256> = (0..4096).map(|_| Gf256::random(&mut rng)).collect();
    group.throughput(Throughput::Bytes(4096));
    // The pre-port scalar loop (log/exp per element) the bulk-table
    // `field::dot` replaced; kept for the before/after delta.
    group.bench_function("gf256_4096", |bench| {
        bench.iter(|| {
            let mut acc = Gf256::zero();
            for (&x, &y) in a256.iter().zip(b256.iter()) {
                acc = acc.add(x.mul(y));
            }
            acc
        });
    });
    group.bench_function("gf256_4096_dot_bulk", |bench| {
        bench.iter(|| slicing_gf::dot(&a256, &b256));
    });
    // Field-element axpy: the matrix-elimination row kernel, scalar loop
    // vs the bulk-table `field::axpy` it now dispatches to.
    let mut acc256: Vec<Gf256> = (0..4096).map(|_| Gf256::random(&mut rng)).collect();
    group.bench_function("gf256_4096_axpy_scalar", |bench| {
        bench.iter(|| {
            let c = Gf256::new(0xA7);
            for (a, &s) in acc256.iter_mut().zip(b256.iter()) {
                *a = a.add(c.mul(s));
            }
        });
    });
    group.bench_function("gf256_4096_axpy_bulk", |bench| {
        bench.iter(|| slicing_gf::axpy(&mut acc256, Gf256::new(0xA7), &b256));
    });
    let a64k: Vec<Gf65536> = (0..2048).map(|_| Gf65536::random(&mut rng)).collect();
    let b64k: Vec<Gf65536> = (0..2048).map(|_| Gf65536::random(&mut rng)).collect();
    group.throughput(Throughput::Bytes(4096));
    // The pre-port scalar GF(2¹⁶) loop (tables fetch + two logs per
    // element) vs the word-slice kernels `Gf65536`'s hooks dispatch to.
    group.bench_function("gf65536_2048", |bench| {
        bench.iter(|| {
            let mut acc = Gf65536::zero();
            for (&x, &y) in a64k.iter().zip(b64k.iter()) {
                acc = acc.add(x.mul(y));
            }
            acc
        });
    });
    group.bench_function("gf65536_2048_dot_bulk", |bench| {
        bench.iter(|| slicing_gf::dot(&a64k, &b64k));
    });
    let mut acc64k: Vec<Gf65536> = (0..2048).map(|_| Gf65536::random(&mut rng)).collect();
    group.bench_function("gf65536_2048_axpy_scalar", |bench| {
        bench.iter(|| {
            let c = Gf65536::new(0xA7C3);
            for (a, &s) in acc64k.iter_mut().zip(b64k.iter()) {
                *a = a.add(c.mul(s));
            }
        });
    });
    group.bench_function("gf65536_2048_axpy_bulk", |bench| {
        bench.iter(|| slicing_gf::axpy(&mut acc64k, Gf65536::new(0xA7C3), &b64k));
    });
    group.finish();

    // The bulk byte-slice kernels every packet payload goes through,
    // against the element-at-a-time loops they replaced.
    let mut group = c.benchmark_group("bulk_kernels_4096B");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_millis(600));
    group.warm_up_time(std::time::Duration::from_millis(200));
    let mut src = vec![0u8; 4096];
    rng.fill_bytes(&mut src);
    let mut dst = vec![0u8; 4096];
    rng.fill_bytes(&mut dst);
    group.throughput(Throughput::Bytes(4096));
    group.bench_function("scalar_axpy", |bench| {
        bench.iter(|| {
            for (d, &s) in dst.iter_mut().zip(src.iter()) {
                *d ^= Gf256::mul_bytes(0xA7, s);
            }
        });
    });
    group.bench_function("bulk_mul_add", |bench| {
        bench.iter(|| bulk::mul_add_slice(&mut dst, 0xA7, &src));
    });
    group.bench_function("scalar_xor", |bench| {
        bench.iter(|| {
            for (d, &s) in dst.iter_mut().zip(src.iter()) {
                *d ^= s;
            }
        });
    });
    group.bench_function("bulk_xor", |bench| {
        bench.iter(|| bulk::xor_slice(&mut dst, &src));
    });
    group.bench_function("bulk_mul_slice", |bench| {
        bench.iter(|| bulk::mul_slice(&mut dst, 0xA7));
    });
    group.finish();

    // The same kernels pinned to each backend the host offers, so one
    // run shows the scalar → SWAR → SIMD trajectory side by side.
    let mut group = c.benchmark_group("gf_backends_4096B");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_millis(600));
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.throughput(Throughput::Bytes(4096));
    let dot_a = a256.iter().map(|g| g.value()).collect::<Vec<u8>>();
    let dot_b = b256.iter().map(|g| g.value()).collect::<Vec<u8>>();
    for backend in slicing_gf::simd::available_backends() {
        group.bench_function(BenchmarkId::new("axpy8", backend), |bench| {
            bench.iter(|| bulk::mul_add_slice_on(backend, &mut dst, 0xA7, &src));
        });
        group.bench_function(BenchmarkId::new("dot8", backend), |bench| {
            bench.iter(|| bulk::dot_slice8_on(backend, &dot_a, &dot_b));
        });
        group.bench_function(BenchmarkId::new("axpy16", backend), |bench| {
            bench.iter(|| {
                bulk::mul_add_slice16_on(backend, &mut acc64k, Gf65536::new(0xA7C3), &b64k)
            });
        });
        group.bench_function(BenchmarkId::new("dot16", backend), |bench| {
            bench.iter(|| bulk::dot_slice16_on(backend, &a64k, &b64k));
        });
    }
    group.finish();

    // The fused multi-output kernel (4 outputs × 4 sources) vs the 16
    // independent axpy sweeps it replaces in relay recombination.
    let mut group = c.benchmark_group("gf_fused_4x4x1024B");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_millis(600));
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.throughput(Throughput::Bytes(16 * 1024));
    let srcs: Vec<Vec<u8>> = (0..4)
        .map(|_| {
            let mut v = vec![0u8; 1024];
            rng.fill_bytes(&mut v);
            v
        })
        .collect();
    let src_refs: Vec<&[u8]> = srcs.iter().map(|s| s.as_slice()).collect();
    let coeffs: Vec<u8> = (0..16).map(|i| (i as u8).wrapping_mul(37) | 1).collect();
    let mut outs: Vec<Vec<u8>> = vec![vec![0u8; 1024]; 4];
    for backend in slicing_gf::simd::available_backends() {
        group.bench_function(BenchmarkId::new("sweeps", backend), |bench| {
            bench.iter(|| {
                for (j, out) in outs.iter_mut().enumerate() {
                    for (i, s) in src_refs.iter().enumerate() {
                        bulk::mul_add_slice_on(backend, out, coeffs[j * 4 + i], s);
                    }
                }
            });
        });
        group.bench_function(BenchmarkId::new("fused", backend), |bench| {
            bench.iter(|| {
                let mut out_refs: Vec<&mut [u8]> =
                    outs.iter_mut().map(|o| o.as_mut_slice()).collect();
                bulk::mul_add_fused_on(backend, &mut out_refs, &coeffs, &src_refs);
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("matrix_inverse");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_millis(600));
    group.warm_up_time(std::time::Duration::from_millis(200));
    for n in [2usize, 4, 8] {
        let m = Matrix::<Gf256>::random_invertible(n, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| m.inverse().unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, gf);
criterion_main!(benches);
