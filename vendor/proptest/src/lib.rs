//! Vendored, dependency-free subset of the `proptest` API.
//!
//! Implements the surface this workspace's property tests use: the
//! [`proptest!`] macro (with optional `#![proptest_config(..)]`
//! header), [`Strategy`] with `prop_map`, [`any`], ranges as
//! strategies, [`collection::vec`], and the `prop_assert*` macros.
//!
//! Unlike upstream proptest there is **no shrinking**: failures report
//! the seed-derived case as-is. Cases are generated from a deterministic
//! RNG keyed on (test name, case index), so failures reproduce exactly.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `f` (rejection sampling, bounded).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
#[derive(Clone, Copy, Debug)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn sample(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive samples: {}", self.whence);
    }
}

/// Strategy for any value of a [`rand::Standard`]-samplable type.
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: rand::Standard> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen()
    }
}

/// Uniform strategy over the whole of `T`.
pub fn any<T: rand::Standard>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// A constant strategy.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeFrom<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.start..=<$t>::MAX)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, u128, usize);

pub mod collection {
    //! Strategies for collections.

    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy for vectors with random length in `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.is_empty() {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A vector whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

#[doc(hidden)]
pub fn test_case_rng(test_name: &str, case: u32) -> StdRng {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    test_name.hash(&mut h);
    case.hash(&mut h);
    StdRng::seed_from_u64(h.finish())
}

/// Assert a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skip the current case when an assumption fails. The vendored runner
/// has no case accounting, so a failed assumption just ends the case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr);) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_case_rng(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $pat = $crate::Strategy::sample(&($strat), &mut __rng);)*
                let _ = __case;
                // Immediately-invoked closure so `prop_assume!`'s
                // `return` skips just this case.
                #[allow(clippy::redundant_closure_call)]
                (move || $body)();
            }
        }
        $crate::__proptest_items!(($cfg); $($rest)*);
    };
}

#[doc(hidden)]
pub mod prelude {
    //! The usual imports: `use proptest::prelude::*;`.

    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn small() -> impl Strategy<Value = u8> {
        any::<u8>().prop_map(|v| v % 10)
    }

    proptest! {
        #[test]
        fn ranges_in_bounds(a in 1usize..7, b in 0u64..64) {
            prop_assert!((1..7).contains(&a));
            prop_assert!(b < 64);
        }

        #[test]
        fn vec_len_in_bounds(v in collection::vec(any::<u8>(), 3..9)) {
            prop_assert!(v.len() >= 3 && v.len() < 9);
        }

        #[test]
        fn mapped_strategy(x in small()) {
            prop_assert!(x < 10);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        #[test]
        fn config_header_accepted(x in any::<u16>()) {
            let _ = x;
        }
    }
}
