//! Criterion benches for the slicing codec: the §7.1 coding-cost table
//! (encode/decode/recombine per 1500 B packet, per split factor).

// criterion_group! expands to an undocumented fn.
#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use slicing_codec::{decode, encode, recombine};

fn codec(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let packet = vec![0xABu8; 1500];

    let mut group = c.benchmark_group("codec_1500B");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_millis(800));
    group.warm_up_time(std::time::Duration::from_millis(200));
    for d in [2usize, 3, 5, 8] {
        group.throughput(Throughput::Bytes(1500));
        group.bench_with_input(BenchmarkId::new("encode", d), &d, |b, &d| {
            b.iter(|| encode(&packet, d, d, &mut rng));
        });
        let coded = encode(&packet, d, d, &mut rng);
        group.bench_with_input(BenchmarkId::new("decode", d), &d, |b, &d| {
            b.iter(|| decode(&coded.slices, d).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("recombine", d), &d, |b, _| {
            b.iter(|| recombine(&coded.slices, &mut rng));
        });
        // The fused multi-output path the relay forward flush uses: d
        // fresh combinations in one kernel pass over the input slices.
        let payloads: Vec<&[u8]> = coded.slices.iter().map(|s| s.payload.as_slice()).collect();
        let mut outs: Vec<Vec<u8>> = vec![vec![0u8; payloads[0].len()]; d];
        group.bench_with_input(BenchmarkId::new("recombine_multi", d), &d, |b, _| {
            b.iter(|| {
                for o in &mut outs {
                    o.fill(0);
                }
                let mut out_refs: Vec<&mut [u8]> =
                    outs.iter_mut().map(|o| o.as_mut_slice()).collect();
                slicing_codec::recombine::recombine_multi_into(&payloads, &mut rng, &mut out_refs);
            });
        });
    }
    group.finish();

    // Redundant encode (d' > d): the churn-resilience extra cost.
    let mut group = c.benchmark_group("codec_redundant");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_millis(800));
    group.warm_up_time(std::time::Duration::from_millis(200));
    for dp in [2usize, 3, 4] {
        group.bench_with_input(BenchmarkId::new("encode_d2", dp), &dp, |b, &dp| {
            b.iter(|| encode(&packet, 2, dp, &mut rng));
        });
    }
    group.finish();
}

criterion_group!(benches, codec);
criterion_main!(benches);
