//! Property tests for graph construction: structural invariants must
//! hold for every shape and seed.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use slicing_graph::{build, GraphParams, NodeInfo, OverlayAddr};

fn addrs(base: u64, n: usize) -> Vec<OverlayAddr> {
    (0..n as u64).map(|i| OverlayAddr(base + i)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every buildable graph validates: vertex-disjoint paths, Latin
    /// balance, unique flow ids.
    #[test]
    fn built_graphs_validate(seed in any::<u64>(), l in 1usize..8, d in 2usize..4,
                             extra in 0usize..3) {
        let dp = d + extra;
        let mut rng = StdRng::seed_from_u64(seed);
        let g = build::build(
            GraphParams::new(l, d).with_paths(dp),
            &addrs(10_000, dp),
            &addrs(20_000, l * dp + 4),
            OverlayAddr(1),
            &mut rng,
        ).unwrap();
        prop_assert!(g.validate().is_ok());
    }

    /// Info slices of every node decode back to the exact NodeInfo, from
    /// any d-subset.
    #[test]
    fn info_round_trips_from_any_subset(seed in any::<u64>(), l in 1usize..6) {
        let (d, dp) = (2usize, 3usize);
        let mut rng = StdRng::seed_from_u64(seed);
        let g = build::build(
            GraphParams::new(l, d).with_paths(dp),
            &addrs(10_000, dp),
            &addrs(20_000, l * dp + 4),
            OverlayAddr(1),
            &mut rng,
        ).unwrap();
        for stage in 1..=l {
            for v in 0..dp {
                for skip in 0..dp {
                    let subset: Vec<_> = g.info_slices[stage][v]
                        .iter()
                        .enumerate()
                        .filter(|(k, _)| *k != skip)
                        .map(|(_, s)| s.clone())
                        .collect();
                    let bytes = slicing_codec::decode(&subset, d).unwrap();
                    let info = NodeInfo::decode(&bytes).unwrap();
                    prop_assert_eq!(&info, &g.infos[stage][v]);
                }
            }
        }
    }

    /// Setup packets: exactly d'^2, all equal size, slot 0 always clean.
    #[test]
    fn setup_packets_shape(seed in any::<u64>(), l in 1usize..7, d in 2usize..4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = build::build(
            GraphParams::new(l, d),
            &addrs(10_000, d),
            &addrs(20_000, l * d + 4),
            OverlayAddr(1),
            &mut rng,
        ).unwrap();
        let packets = g.setup_packets(&mut rng);
        prop_assert_eq!(packets.len(), d * d);
        let len = packets[0].packet.encode().len();
        for p in &packets {
            prop_assert_eq!(p.packet.encode().len(), len);
            prop_assert!(build::BuiltGraph::parse_slot(
                d, g.info_block_len, p.packet.slot(0)).is_some());
        }
    }

    /// NodeInfo serialization round-trips for arbitrary-ish field values.
    #[test]
    fn node_info_round_trip(seed in any::<u64>(), receiver in any::<bool>(),
                            recode in any::<bool>(), has_children in any::<bool>()) {
        use slicing_codec::HopTransform;
        use slicing_crypto::SymmetricKey;
        use slicing_wire::FlowId;
        let mut rng = StdRng::seed_from_u64(seed);
        let dp = 3usize;
        let slots = 6usize;
        let info = NodeInfo {
            receiver,
            recode,
            secret_key: SymmetricKey::random(&mut rng),
            reverse_flow_id: FlowId::random(&mut rng),
            d: 2,
            d_prime: dp as u8,
            slots: slots as u8,
            out_real_slots: if has_children { 3 } else { 0 },
            transform: HopTransform::random(&mut rng),
            parents: (0..dp)
                .map(|i| (OverlayAddr(seed ^ i as u64), FlowId(i as u64 + 1)))
                .collect(),
            children: if has_children {
                (0..dp).map(|i| (OverlayAddr(900 + i as u64), FlowId(800 + i as u64))).collect()
            } else { vec![] },
            data_map: if has_children { vec![0, 1, 2] } else { vec![] },
            slice_map: if has_children {
                vec![vec![Some(0), Some(1), Some(2), None, None, None]; dp]
            } else { vec![] },
        };
        let decoded = NodeInfo::decode(&info.encode()).unwrap();
        prop_assert_eq!(decoded, info);
    }

    /// Corrupting any single byte of an encoded NodeInfo is detected.
    #[test]
    fn node_info_corruption_detected(pos_seed in any::<u16>(), bit in 0u8..8) {
        use slicing_codec::HopTransform;
        use slicing_crypto::SymmetricKey;
        use slicing_wire::FlowId;
        let mut rng = StdRng::seed_from_u64(7);
        let info = NodeInfo {
            receiver: false,
            recode: true,
            secret_key: SymmetricKey::random(&mut rng),
            reverse_flow_id: FlowId::random(&mut rng),
            d: 2,
            d_prime: 2,
            slots: 4,
            out_real_slots: 2,
            transform: HopTransform::random(&mut rng),
            parents: vec![(OverlayAddr(1), FlowId(2)), (OverlayAddr(3), FlowId(4))],
            children: vec![(OverlayAddr(5), FlowId(6)), (OverlayAddr(7), FlowId(8))],
            data_map: vec![0, 1],
            slice_map: vec![vec![Some(0), Some(1), None, None]; 2],
        };
        let mut bytes = info.encode();
        let pos = pos_seed as usize % bytes.len();
        bytes[pos] ^= 1 << bit;
        prop_assert!(NodeInfo::decode(&bytes).is_err());
    }
}
