//! Raw RSA for the onion-routing baseline.
//!
//! Onion routing (§2) wraps the route-setup message in layers of
//! public-key encryption; the data phase uses symmetric session keys
//! (§7.2). This module provides the asymmetric half with the correct
//! *cost structure* (modular exponentiation per layer). Moduli are
//! deliberately small-by-modern-standards (default 512 bits) so benches
//! and tests run quickly; this is a simulator component, not a secure
//! cryptosystem (raw RSA, no padding).

use rand::Rng;

use crate::bignum::BigUint;
use crate::prime::gen_prime;

/// Default modulus size in bits for benchmark runs.
pub const DEFAULT_MODULUS_BITS: usize = 512;

/// An RSA public key `(n, e)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RsaPublicKey {
    /// Modulus.
    pub n: BigUint,
    /// Public exponent (65537).
    pub e: BigUint,
}

/// An RSA key pair.
#[derive(Clone)]
pub struct RsaKeyPair {
    /// The public half.
    pub public: RsaPublicKey,
    /// Private exponent.
    d: BigUint,
}

impl std::fmt::Debug for RsaKeyPair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RsaKeyPair(n={:?}, d=..)", self.public.n)
    }
}

impl RsaKeyPair {
    /// Generate a key pair with an `bits`-bit modulus.
    ///
    /// # Panics
    /// Panics if `bits < 64`.
    pub fn generate<R: Rng + ?Sized>(bits: usize, rng: &mut R) -> Self {
        assert!(bits >= 64, "modulus too small");
        let e = BigUint::from_u64(65537);
        loop {
            let p = gen_prime(bits / 2, rng);
            let q = gen_prime(bits - bits / 2, rng);
            if p == q {
                continue;
            }
            let n = p.mul(&q);
            let one = BigUint::one();
            let phi = p.sub(&one).mul(&q.sub(&one));
            let Some(d) = e.mod_inverse(&phi) else {
                continue; // e not coprime with phi; rare, retry.
            };
            return RsaKeyPair {
                public: RsaPublicKey { n, e },
                d,
            };
        }
    }

    /// Decrypt (private-key exponentiation).
    ///
    /// Returns `None` if the ciphertext is out of range.
    pub fn decrypt(&self, ciphertext: &BigUint) -> Option<BigUint> {
        if ciphertext.cmp(&self.public.n) != std::cmp::Ordering::Less {
            return None;
        }
        Some(ciphertext.mod_pow(&self.d, &self.public.n))
    }

    /// Decrypt a byte message encrypted with [`RsaPublicKey::encrypt_bytes`].
    pub fn decrypt_bytes(&self, ciphertext: &[u8]) -> Option<Vec<u8>> {
        let c = BigUint::from_bytes_be(ciphertext);
        let m = self.decrypt(&c)?;
        let mut bytes = m.to_bytes_be();
        // Strip the 0x01 marker byte prepended at encryption.
        if bytes.first() != Some(&0x01) {
            return None;
        }
        bytes.remove(0);
        Some(bytes)
    }

    /// Maximum plaintext bytes for this modulus.
    pub fn max_plaintext_len(&self) -> usize {
        self.public.max_plaintext_len()
    }
}

impl RsaPublicKey {
    /// Encrypt (public-key exponentiation).
    ///
    /// Returns `None` if the plaintext is out of range.
    pub fn encrypt(&self, plaintext: &BigUint) -> Option<BigUint> {
        if plaintext.cmp(&self.n) != std::cmp::Ordering::Less {
            return None;
        }
        Some(plaintext.mod_pow(&self.e, &self.n))
    }

    /// Encrypt a short byte message. A 0x01 marker byte is prepended so
    /// leading zero bytes survive the integer round trip.
    ///
    /// Returns `None` if the message exceeds [`Self::max_plaintext_len`].
    pub fn encrypt_bytes(&self, plaintext: &[u8]) -> Option<Vec<u8>> {
        if plaintext.len() > self.max_plaintext_len() {
            return None;
        }
        let mut marked = Vec::with_capacity(plaintext.len() + 1);
        marked.push(0x01);
        marked.extend_from_slice(plaintext);
        let m = BigUint::from_bytes_be(&marked);
        let c = self.encrypt(&m)?;
        Some(c.to_bytes_be())
    }

    /// Maximum plaintext bytes encryptable under this modulus
    /// (one byte reserved for the marker).
    pub fn max_plaintext_len(&self) -> usize {
        (self.n.bits() - 1) / 8 - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keypair() -> RsaKeyPair {
        let mut rng = StdRng::seed_from_u64(11);
        RsaKeyPair::generate(256, &mut rng)
    }

    #[test]
    fn encrypt_decrypt_round_trip() {
        let kp = keypair();
        let m = BigUint::from_u64(123456789);
        let c = kp.public.encrypt(&m).unwrap();
        assert_ne!(c, m);
        assert_eq!(kp.decrypt(&c).unwrap(), m);
    }

    #[test]
    fn bytes_round_trip() {
        let kp = keypair();
        let msg = b"session-key-material-0123456";
        assert!(msg.len() <= kp.max_plaintext_len());
        let c = kp.public.encrypt_bytes(msg).unwrap();
        assert_eq!(kp.decrypt_bytes(&c).unwrap(), msg);
    }

    #[test]
    fn leading_zero_plaintext_survives() {
        let kp = keypair();
        let msg = [0u8, 0, 0, 42, 7];
        let c = kp.public.encrypt_bytes(&msg).unwrap();
        assert_eq!(kp.decrypt_bytes(&c).unwrap(), msg);
    }

    #[test]
    fn oversized_plaintext_rejected() {
        let kp = keypair();
        let too_big = vec![0xFF; kp.max_plaintext_len() + 1];
        assert!(kp.public.encrypt_bytes(&too_big).is_none());
    }

    #[test]
    fn out_of_range_integer_rejected() {
        let kp = keypair();
        assert!(kp.public.encrypt(&kp.public.n).is_none());
        assert!(kp.decrypt(&kp.public.n).is_none());
    }

    #[test]
    fn distinct_keys_incompatible() {
        let mut rng = StdRng::seed_from_u64(12);
        let kp1 = RsaKeyPair::generate(256, &mut rng);
        let kp2 = RsaKeyPair::generate(256, &mut rng);
        let msg = b"hello";
        let c = kp1.public.encrypt_bytes(msg).unwrap();
        // Decrypting with the wrong key must not produce the message.
        assert_ne!(kp2.decrypt_bytes(&c), Some(msg.to_vec()));
    }
}
