//! Synchronization primitives (mpsc channels).

pub mod mpsc {
    //! Multi-producer single-consumer channels with async receive and
    //! (for the bounded flavor) async backpressured send.

    use std::collections::VecDeque;
    use std::fmt;
    use std::future::Future;
    use std::pin::Pin;
    use std::sync::{Arc, Mutex};
    use std::task::{Context, Poll, Waker};

    pub use error::{SendError, TryRecvError, TrySendError};

    pub mod error {
        //! Channel error types.

        use std::fmt;

        /// The receiver was dropped; the value is handed back.
        #[derive(Clone, Copy, PartialEq, Eq)]
        pub struct SendError<T>(pub T);

        impl<T> fmt::Debug for SendError<T> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "SendError(..)")
            }
        }

        impl<T> fmt::Display for SendError<T> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "channel closed")
            }
        }

        impl<T> std::error::Error for SendError<T> {}

        /// Why [`super::Receiver::try_recv`] returned nothing.
        #[derive(Clone, Copy, Debug, PartialEq, Eq)]
        pub enum TryRecvError {
            /// No message currently queued.
            Empty,
            /// All senders dropped and the queue is drained.
            Disconnected,
        }

        impl fmt::Display for TryRecvError {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                match self {
                    TryRecvError::Empty => write!(f, "channel empty"),
                    TryRecvError::Disconnected => write!(f, "channel disconnected"),
                }
            }
        }

        impl std::error::Error for TryRecvError {}

        /// Why [`super::Sender::try_send`] rejected the value.
        #[derive(Clone, Copy, PartialEq, Eq)]
        pub enum TrySendError<T> {
            /// The channel is at capacity; the value is handed back.
            Full(T),
            /// The receiver was dropped; the value is handed back.
            Closed(T),
        }

        impl<T> fmt::Debug for TrySendError<T> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                match self {
                    TrySendError::Full(_) => write!(f, "TrySendError::Full(..)"),
                    TrySendError::Closed(_) => write!(f, "TrySendError::Closed(..)"),
                }
            }
        }

        impl<T> fmt::Display for TrySendError<T> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                match self {
                    TrySendError::Full(_) => write!(f, "channel full"),
                    TrySendError::Closed(_) => write!(f, "channel closed"),
                }
            }
        }

        impl<T> std::error::Error for TrySendError<T> {}
    }

    struct Inner<T> {
        queue: VecDeque<T>,
        capacity: usize,
        senders: usize,
        rx_alive: bool,
        rx_waker: Option<Waker>,
        tx_wakers: Vec<Waker>,
        /// Wakers parked by [`Sender::closed`]; woken only on receiver
        /// drop (unlike `tx_wakers`, which every receive drains).
        closed_wakers: Vec<Waker>,
    }

    struct Chan<T>(Mutex<Inner<T>>);

    impl<T> Chan<T> {
        fn wake_rx(inner: &mut Inner<T>) -> Option<Waker> {
            inner.rx_waker.take()
        }
    }

    /// Sender half of a bounded channel.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// Receiver half of a bounded channel.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// Sender half of an unbounded channel.
    pub struct UnboundedSender<T> {
        chan: Arc<Chan<T>>,
    }

    /// Receiver half of an unbounded channel.
    pub struct UnboundedReceiver<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "mpsc::Sender")
        }
    }

    impl<T> fmt::Debug for UnboundedSender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "mpsc::UnboundedSender")
        }
    }

    fn clone_sender<T>(chan: &Arc<Chan<T>>) -> Arc<Chan<T>> {
        chan.0.lock().unwrap().senders += 1;
        chan.clone()
    }

    fn drop_sender<T>(chan: &Arc<Chan<T>>) {
        let waker = {
            let mut inner = chan.0.lock().unwrap();
            inner.senders -= 1;
            if inner.senders == 0 {
                Chan::wake_rx(&mut inner)
            } else {
                None
            }
        };
        if let Some(w) = waker {
            w.wake();
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                chan: clone_sender(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            drop_sender(&self.chan);
        }
    }

    impl<T> Clone for UnboundedSender<T> {
        fn clone(&self) -> Self {
            UnboundedSender {
                chan: clone_sender(&self.chan),
            }
        }
    }

    impl<T> Drop for UnboundedSender<T> {
        fn drop(&mut self) {
            drop_sender(&self.chan);
        }
    }

    fn drop_receiver<T>(chan: &Arc<Chan<T>>) {
        let (mut wakers, closed) = {
            let mut inner = chan.0.lock().unwrap();
            inner.rx_alive = false;
            inner.queue.clear();
            (
                std::mem::take(&mut inner.tx_wakers),
                std::mem::take(&mut inner.closed_wakers),
            )
        };
        wakers.extend(closed);
        for w in wakers {
            w.wake();
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            drop_receiver(&self.chan);
        }
    }

    impl<T> Drop for UnboundedReceiver<T> {
        fn drop(&mut self) {
            drop_receiver(&self.chan);
        }
    }

    impl<T> Sender<T> {
        /// Send a value, waiting while the channel is full.
        pub fn send(&self, value: T) -> Send<'_, T> {
            Send {
                chan: &self.chan,
                value: Some(value),
            }
        }

        /// Send without waiting: fails immediately if the channel is at
        /// capacity or the receiver is gone. Mirrors upstream
        /// `tokio::sync::mpsc::Sender::try_send`.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let waker = {
                let mut inner = self.chan.0.lock().unwrap();
                if !inner.rx_alive {
                    return Err(TrySendError::Closed(value));
                }
                if inner.queue.len() >= inner.capacity {
                    return Err(TrySendError::Full(value));
                }
                inner.queue.push_back(value);
                Chan::wake_rx(&mut inner)
            };
            if let Some(w) = waker {
                w.wake();
            }
            Ok(())
        }

        /// Complete when the receiver half has been dropped: further
        /// sends can never succeed. Mirrors upstream
        /// `tokio::sync::mpsc::Sender::closed`.
        pub fn closed(&self) -> Closed<'_, T> {
            Closed { chan: &self.chan }
        }

        /// Whether `self` and `other` belong to the same channel.
        pub fn same_channel(&self, other: &Sender<T>) -> bool {
            Arc::ptr_eq(&self.chan, &other.chan)
        }
    }

    /// Future returned by [`Sender::closed`].
    pub struct Closed<'a, T> {
        chan: &'a Arc<Chan<T>>,
    }

    impl<T> Unpin for Closed<'_, T> {}

    impl<T> Future for Closed<'_, T> {
        type Output = ();

        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
            let mut inner = self.chan.0.lock().unwrap();
            if !inner.rx_alive {
                return Poll::Ready(());
            }
            // Parked separately from `tx_wakers` so receives don't wake
            // closed() watchers once per popped value; deduplicated by
            // task so a watcher that re-polls (e.g. a fresh `closed()`
            // per select iteration) doesn't grow the list unboundedly.
            if !inner.closed_wakers.iter().any(|w| w.will_wake(cx.waker())) {
                inner.closed_wakers.push(cx.waker().clone());
            }
            Poll::Pending
        }
    }

    /// Future returned by [`Sender::send`].
    pub struct Send<'a, T> {
        chan: &'a Arc<Chan<T>>,
        value: Option<T>,
    }

    impl<T> Unpin for Send<'_, T> {}

    impl<T> Future for Send<'_, T> {
        type Output = Result<(), SendError<T>>;

        fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
            let value = self.value.take().expect("polled Send after completion");
            let mut inner = self.chan.0.lock().unwrap();
            if !inner.rx_alive {
                return Poll::Ready(Err(SendError(value)));
            }
            if inner.queue.len() < inner.capacity {
                inner.queue.push_back(value);
                let waker = Chan::wake_rx(&mut inner);
                drop(inner);
                if let Some(w) = waker {
                    w.wake();
                }
                Poll::Ready(Ok(()))
            } else {
                inner.tx_wakers.push(cx.waker().clone());
                drop(inner);
                self.value = Some(value);
                Poll::Pending
            }
        }
    }

    impl<T> UnboundedSender<T> {
        /// Send a value; never blocks.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let waker = {
                let mut inner = self.chan.0.lock().unwrap();
                if !inner.rx_alive {
                    return Err(SendError(value));
                }
                inner.queue.push_back(value);
                Chan::wake_rx(&mut inner)
            };
            if let Some(w) = waker {
                w.wake();
            }
            Ok(())
        }
    }

    /// Future returned by receivers' `recv`.
    pub struct Recv<'a, T> {
        chan: &'a Arc<Chan<T>>,
    }

    impl<T> Unpin for Recv<'_, T> {}

    impl<T> Future for Recv<'_, T> {
        type Output = Option<T>;

        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
            let (out, wakers) = {
                let mut inner = self.chan.0.lock().unwrap();
                match inner.queue.pop_front() {
                    Some(v) => (Poll::Ready(Some(v)), std::mem::take(&mut inner.tx_wakers)),
                    None if inner.senders == 0 => (Poll::Ready(None), Vec::new()),
                    None => {
                        inner.rx_waker = Some(cx.waker().clone());
                        (Poll::Pending, Vec::new())
                    }
                }
            };
            for w in wakers {
                w.wake();
            }
            out
        }
    }

    fn try_recv_inner<T>(chan: &Arc<Chan<T>>) -> Result<T, TryRecvError> {
        let (out, wakers) = {
            let mut inner = chan.0.lock().unwrap();
            match inner.queue.pop_front() {
                Some(v) => (Ok(v), std::mem::take(&mut inner.tx_wakers)),
                None if inner.senders == 0 => (Err(TryRecvError::Disconnected), Vec::new()),
                None => (Err(TryRecvError::Empty), Vec::new()),
            }
        };
        for w in wakers {
            w.wake();
        }
        out
    }

    impl<T> Receiver<T> {
        /// Receive the next value; `None` once all senders are dropped
        /// and the queue is drained.
        pub fn recv(&mut self) -> Recv<'_, T> {
            Recv { chan: &self.chan }
        }

        /// Non-blocking receive.
        pub fn try_recv(&mut self) -> Result<T, TryRecvError> {
            try_recv_inner(&self.chan)
        }
    }

    impl<T> UnboundedReceiver<T> {
        /// Receive the next value; `None` once all senders are dropped
        /// and the queue is drained.
        pub fn recv(&mut self) -> Recv<'_, T> {
            Recv { chan: &self.chan }
        }

        /// Non-blocking receive.
        pub fn try_recv(&mut self) -> Result<T, TryRecvError> {
            try_recv_inner(&self.chan)
        }
    }

    fn new_chan<T>(capacity: usize) -> Arc<Chan<T>> {
        Arc::new(Chan(Mutex::new(Inner {
            queue: VecDeque::new(),
            capacity,
            senders: 1,
            rx_alive: true,
            rx_waker: None,
            tx_wakers: Vec::new(),
            closed_wakers: Vec::new(),
        })))
    }

    /// Create a bounded channel.
    pub fn channel<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        assert!(capacity > 0, "mpsc capacity must be > 0");
        let chan = new_chan(capacity);
        (Sender { chan: chan.clone() }, Receiver { chan })
    }

    /// Create an unbounded channel.
    pub fn unbounded_channel<T>() -> (UnboundedSender<T>, UnboundedReceiver<T>) {
        let chan = new_chan(usize::MAX);
        (
            UnboundedSender { chan: chan.clone() },
            UnboundedReceiver { chan },
        )
    }
}
