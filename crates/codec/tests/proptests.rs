//! Property-based tests for the codec: round-trips, any-d decodability,
//! recombination, transforms, and the pi-security shape.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use slicing_codec::{coder, decode, encode, itshare, recombine, transform, HopTransform};

proptest! {
    /// encode/decode round-trips for arbitrary messages and (d, d′).
    #[test]
    fn round_trip(seed in any::<u64>(),
                  msg in proptest::collection::vec(any::<u8>(), 0..2000),
                  d in 1usize..6, extra in 0usize..4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let coded = encode(&msg, d, d + extra, &mut rng);
        prop_assert_eq!(decode(&coded.slices, d).unwrap(), msg);
    }

    /// Any d-subset of d′ slices decodes.
    #[test]
    fn arbitrary_subset_decodes(seed in any::<u64>(),
                                msg in proptest::collection::vec(any::<u8>(), 1..500),
                                subset_seed in any::<u64>()) {
        let (d, dp) = (3usize, 5usize);
        let mut rng = StdRng::seed_from_u64(seed);
        let coded = encode(&msg, d, dp, &mut rng);
        use rand::seq::SliceRandom;
        let mut pick_rng = StdRng::seed_from_u64(subset_seed);
        let mut idx: Vec<usize> = (0..dp).collect();
        idx.shuffle(&mut pick_rng);
        let subset: Vec<_> = idx[..d].iter().map(|&i| coded.slices[i].clone()).collect();
        prop_assert_eq!(decode(&subset, d).unwrap(), msg);
    }

    /// Slices that survive a recombination storm still decode: replace
    /// slices with random combinations repeatedly, keep d' alive.
    #[test]
    fn recombination_storm(seed in any::<u64>(),
                           msg in proptest::collection::vec(any::<u8>(), 1..300),
                           rounds in 1usize..8) {
        let (d, dp) = (2usize, 3usize);
        let mut rng = StdRng::seed_from_u64(seed);
        let coded = encode(&msg, d, dp, &mut rng);
        let mut current = coded.slices;
        for _ in 0..rounds {
            // Lose one slice, regenerate from the survivors.
            current.remove(0);
            current.push(recombine(&current, &mut rng));
        }
        prop_assert_eq!(decode(&current, d).unwrap(), msg);
    }

    /// Per-hop transform chains preserve content and never repeat a wire
    /// pattern.
    #[test]
    fn transform_chain_round_trip(seed in any::<u64>(),
                                  data in proptest::collection::vec(any::<u8>(), 1..200),
                                  hops in 1usize..6) {
        let mut rng = StdRng::seed_from_u64(seed);
        let chain: Vec<HopTransform> =
            (0..hops).map(|_| HopTransform::random(&mut rng)).collect();
        let mut buf = data.clone();
        transform::apply_chain(&chain, &mut buf);
        for t in &chain {
            t.unapply(&mut buf);
        }
        prop_assert_eq!(buf, data);
    }

    /// Additive sharing round-trips and each proper subset differs from
    /// the plaintext.
    #[test]
    fn itshare_round_trip(seed in any::<u64>(),
                          block in proptest::collection::vec(any::<u8>(), 1..100),
                          d in 1usize..6) {
        let mut rng = StdRng::seed_from_u64(seed);
        let s = itshare::share(&block, d, &mut rng);
        prop_assert_eq!(itshare::reconstruct(&s), block);
    }

    /// split/join block framing round-trips for all message sizes.
    #[test]
    fn block_framing(msg in proptest::collection::vec(any::<u8>(), 0..1000), d in 1usize..8) {
        let (blocks, block_len) = coder::split_blocks(&msg, d);
        prop_assert_eq!(blocks.len(), d);
        prop_assert!(blocks.iter().all(|b| b.len() == block_len));
        prop_assert_eq!(coder::join_blocks(&blocks).unwrap(), msg);
    }

    /// pi-security: any d−1 slices are consistent with any value of any
    /// message byte (generalized form of the unit test, random positions).
    #[test]
    fn pi_security(seed in any::<u64>(),
                   msg in proptest::collection::vec(any::<u8>(), 8..64),
                   probe in any::<u8>(), pos_seed in any::<u16>()) {
        use slicing_gf::{Field, Gf256, Matrix};
        let d = 3usize;
        let mut rng = StdRng::seed_from_u64(seed);
        let coded = encode(&msg, d, d, &mut rng);
        let observed = &coded.slices[..d - 1];
        let block_len = coded.block_len;
        let byte_pos = (pos_seed as usize) % block_len;
        // Fix block 0's byte at `byte_pos` to `probe`; solve for the rest.
        let mut a = Matrix::<Gf256>::zero(d - 1, d - 1);
        let mut b = Vec::new();
        for (i, s) in observed.iter().enumerate() {
            for k in 1..d {
                a.set(i, k - 1, Gf256::new(s.coeffs[k]));
            }
            b.push(Gf256::new(s.payload[byte_pos])
                .sub(Gf256::new(s.coeffs[0]).mul(Gf256::new(probe))));
        }
        prop_assert!(a.solve(&b).is_some(), "partial slices leaked information");
    }

    /// encode_blocks → decode_blocks round-trips byte-identically through
    /// the bulk kernel path for every generator the MDS layer produces.
    #[test]
    fn encode_decode_blocks_bulk_round_trip(
        seed in any::<u64>(),
        msg in proptest::collection::vec(any::<u8>(), 0..2048),
        d in 1usize..6, extra in 0usize..4,
    ) {
        use slicing_gf::{mds, Gf256};
        let mut rng = StdRng::seed_from_u64(seed);
        let (blocks, _) = coder::split_blocks(&msg, d);
        let g = mds::strong_generator::<Gf256, _>(d + extra, d, &mut rng);
        let slices = coder::encode_blocks(&g, &blocks);
        let decoded = coder::decode_blocks(&slices, d).unwrap();
        prop_assert_eq!(&decoded, &blocks, "blocks must round-trip byte-identically");
        // And through redundancy: the *last* d slices alone decode too.
        let tail = coder::decode_blocks(&slices[extra..], d).unwrap();
        prop_assert_eq!(&tail, &blocks);
    }

    /// Batched regeneration is interchangeable with repeated single
    /// recombination: any d of the batch + survivors still decode.
    #[test]
    fn recombine_batch_decodes(
        seed in any::<u64>(),
        msg in proptest::collection::vec(any::<u8>(), 1..512),
        n in 1usize..5,
    ) {
        let (d, dp) = (2usize, 3usize);
        let mut rng = StdRng::seed_from_u64(seed);
        let coded = encode(&msg, d, dp, &mut rng);
        let fresh = recombine::recombine_batch(&coded.slices, n, &mut rng);
        prop_assert_eq!(fresh.len(), n);
        for f in &fresh {
            // A single random combination may (w.p. ~1/255) align with
            // slice 0, so offer two originals: greedy rank selection in
            // decode always finds d independent rows among the three.
            let set = vec![f.clone(), coded.slices[0].clone(), coded.slices[1].clone()];
            prop_assert_eq!(decode(&set, d).unwrap(), msg.clone());
        }
    }
}
