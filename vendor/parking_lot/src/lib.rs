//! Vendored, dependency-free subset of the `parking_lot` API.
//!
//! Backed by `std::sync` primitives; poisoning is swallowed (a poisoned
//! lock yields the inner guard), matching parking_lot's no-poisoning
//! semantics.

#![forbid(unsafe_code)]

use std::sync::{self, TryLockError};

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose methods never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new rwlock.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(1);
        *l.write() = 2;
        assert_eq!(*l.read(), 2);
    }
}
