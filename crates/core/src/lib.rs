//! The information-slicing protocol engine (§4.3), **sans-IO**.
//!
//! This crate implements the complete two-phase protocol —
//! graph establishment and data transmission, forward and reverse — as
//! pure state machines: packets in, `(next-hop, packet)` instructions
//! out, time passed explicitly as [`Tick`]s. No sockets, no threads, no
//! runtime. The tokio overlay (`slicing-overlay`) and the deterministic
//! simulator (`slicing-sim`) both drive exactly this code, so everything
//! the benchmarks measure is the same logic the unit tests verify.
//!
//! * [`SourceSession`] — builds the forwarding graph, emits setup
//!   packets, slices/encrypts outgoing data, decodes reverse-path data.
//! * [`RelayNode`] — the per-overlay-node daemon state: a flow table
//!   keyed on cleartext flow-ids (§7.1), slice gathering and decoding of
//!   the node's own `I_x`, slice-map/data-map forwarding, per-hop
//!   transform stripping, network-coded regeneration, destination
//!   decode+decrypt, and stale-flow garbage collection.
//! * [`ShardedRelay`] — the same engine fanned out over `N` independent
//!   [`relay::RelayShard`]s routed by `hash(flow_id) % N`, so one relay
//!   scales across cores (flows are independent; only stats and the
//!   reverse-flow-id routing are shared).
//! * [`session`] — the endpoint layer over all of the above:
//!   arbitrary-length streamed messages ([`SourceSession::send`]), the
//!   destination-side [`DestSession`] (gather → recombine → in-order
//!   reassembly, reverse-path acks/replies), and the [`SessionManager`]
//!   multiplexing thousands of sessions over one node, sharded by
//!   session id exactly like [`ShardedRelay`] shards flows.
//! * [`testnet`] — a deterministic in-memory network for driving whole
//!   graphs in tests and simulations, with failure injection.
//! * [`wheel`] — the hashed timer wheel behind the relay's flow table
//!   and the session shards: deadlines are registered once and `poll`
//!   touches only expired work.

#![forbid(unsafe_code)]

pub mod relay;
mod replay;
pub mod session;
pub mod shard;
pub mod source;
pub mod testnet;
pub mod time;
pub mod wheel;

pub use relay::{
    ReceivedData, RelayConfig, RelayNode, RelayOutput, RelayShard, RelayStats, RelayStatsAtomic,
};
pub use session::{
    DestOutput, DestResident, DestSession, SessionConfig, SessionError, SessionId, SessionManager,
    SessionOutput, SessionRouter, SessionShard, SessionStats, SessionStatsAtomic,
};
pub use shard::{FlowRouter, ShardedRelay};
pub use source::{SourceConfig, SourceSession};
pub use time::Tick;

// Re-export the vocabulary types users need alongside the engine.
pub use slicing_graph::{DataMode, DestPlacement, GraphParams, NodeInfo, OverlayAddr};
pub use slicing_wire::{FlowId, Packet, PacketKind};

/// A packet to put on the network: send `packet` from `from` to `to`.
///
/// Re-exported from the graph layer (setup emission) and produced by
/// [`RelayNode`] and [`SourceSession`] alike.
pub use slicing_graph::packets::SendInstr;
