//! Async read/write extension traits for [`crate::net::TcpStream`].

use std::future::Future;
use std::io;

use crate::net::TcpStream;

/// Async reading helpers.
pub trait AsyncReadExt {
    /// Read until `buf` is full; errors with `UnexpectedEof` if the peer
    /// closes first.
    fn read_exact<'a>(
        &'a mut self,
        buf: &'a mut [u8],
    ) -> impl Future<Output = io::Result<usize>> + 'a;
}

/// Async writing helpers.
pub trait AsyncWriteExt {
    /// Write the whole buffer.
    fn write_all<'a>(&'a mut self, buf: &'a [u8]) -> impl Future<Output = io::Result<()>> + 'a;
}

impl AsyncReadExt for TcpStream {
    async fn read_exact<'a>(&'a mut self, buf: &'a mut [u8]) -> io::Result<usize> {
        let mut filled = 0;
        while filled < buf.len() {
            let n = self.read_some(&mut buf[filled..]).await?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "peer closed during read_exact",
                ));
            }
            filled += n;
        }
        Ok(filled)
    }
}

impl AsyncWriteExt for TcpStream {
    async fn write_all<'a>(&'a mut self, buf: &'a [u8]) -> io::Result<()> {
        let mut written = 0;
        while written < buf.len() {
            written += self.write_some(&buf[written..]).await?;
        }
        Ok(())
    }
}
