//! Criterion benches for the crypto substrate — quantifying the paper's
//! setup-cost asymmetry: slicing's matrix decode vs onion routing's RSA
//! decryption per hop.

// criterion_group! expands to an undocumented fn.
#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use slicing_crypto::chacha20::ChaCha20;
use slicing_crypto::sha256::Sha256;
use slicing_crypto::{BigUint, RsaKeyPair};

fn crypto(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(13);
    let mut group = c.benchmark_group("crypto");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_millis(800));
    group.warm_up_time(std::time::Duration::from_millis(200));

    let data = vec![0x5Au8; 1500];
    group.throughput(Throughput::Bytes(1500));
    group.bench_function("sha256_1500B", |b| {
        b.iter(|| Sha256::digest(&data));
    });
    group.bench_function("chacha20_1500B", |b| {
        let key = [7u8; 32];
        let nonce = [1u8; 12];
        let mut buf = data.clone();
        b.iter(|| {
            ChaCha20::xor(&key, &nonce, 0, &mut buf);
        });
    });

    // RSA: the onion baseline's per-hop setup cost.
    let kp = RsaKeyPair::generate(512, &mut rng);
    let m = BigUint::from_u64(0xDEADBEEF);
    let ct = kp.public.encrypt(&m).unwrap();
    group.bench_function("rsa512_encrypt", |b| {
        b.iter(|| kp.public.encrypt(&m).unwrap());
    });
    group.bench_function("rsa512_decrypt", |b| {
        b.iter(|| kp.decrypt(&ct).unwrap());
    });

    // The slicing equivalent: decode a per-node info blob (no PKC).
    group.bench_function("slicing_info_decode_d3", |b| {
        let coded = slicing_codec::encode(&data[..256], 3, 3, &mut rng);
        b.iter(|| slicing_codec::decode(&coded.slices, 3).unwrap());
    });
    group.finish();
}

criterion_group!(benches, crypto);
criterion_main!(benches);
