//! Cache-friendly GF(2⁸) kernels over byte slices — the workspace's one
//! shared coding hot path.
//!
//! Every coded byte in the system flows through these three operations:
//!
//! * [`mul_add_slice`] — `dst[i] ^= c · src[i]` (axpy), the inner loop of
//!   slice encoding, Gaussian decode back-substitution, and relay
//!   network re-coding (§7.1 of the paper measures exactly this: coding
//!   costs ~`d` of these multiplies per byte);
//! * [`mul_slice`] / [`mul_slice_into`] — `dst[i] = c · dst[i]` /
//!   `dst[i] = c · src[i]`, the per-hop transform multiply;
//! * [`xor_slice`] — `dst[i] ^= src[i]`, the `c = 1` fast path, done
//!   eight bytes at a time (SWAR over `u64` words).
//!
//! Scalar [`Gf256`](crate::Gf256) arithmetic goes through log/exp tables
//! (two dependent loads plus a zero-test per byte). These kernels
//! instead index one 256-byte row of a 64 KiB compile-time
//! multiplication table per call: the row stays resident in L1 across
//! the whole slice, the per-byte loop is branch-free, and the add-only
//! case degenerates to pure word-wide XOR. `slicing-codec`,
//! `slicing-core`'s relays, and the criterion benches all call these —
//! there is exactly one place to optimize further (SIMD, GFNI) later.
//!
//! The module also hosts the GF(2¹⁶) word-slice kernels
//! ([`dot_slice16`], [`mul_add_slice16`], [`mul_slice16`]) that
//! [`Gf65536`]'s `Field` bulk hooks dispatch to, so both provided fields
//! ride shared kernels rather than per-element scalar loops.

use crate::gf256::{build_exp, build_log};

/// `MUL[a][b] = a · b` in GF(2⁸), built at compile time.
static MUL: [[u8; 256]; 256] = build_mul_table();

const fn build_mul_table() -> [[u8; 256]; 256] {
    let exp = build_exp();
    let log = build_log();
    let mut t = [[0u8; 256]; 256];
    let mut a = 1usize;
    while a < 256 {
        let mut b = 1usize;
        while b < 256 {
            t[a][b] = exp[log[a] as usize + log[b] as usize];
            b += 1;
        }
        a += 1;
    }
    t
}

/// The 256-byte multiplication row for a fixed coefficient:
/// `mul_row(c)[x] == c · x`.
///
/// Exposed so callers composing their own kernels (e.g. fused
/// multiply-and-pad loops) can reuse the shared table.
#[inline]
pub fn mul_row(c: u8) -> &'static [u8; 256] {
    &MUL[c as usize]
}

/// `dst[i] ^= src[i]` for all `i`, eight bytes at a time.
///
/// # Panics
/// Panics if the slices differ in length.
#[inline]
pub fn xor_slice(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "xor_slice length mismatch");
    let mut dst_words = dst.chunks_exact_mut(8);
    let mut src_words = src.chunks_exact(8);
    for (d, s) in dst_words.by_ref().zip(src_words.by_ref()) {
        let word = u64::from_ne_bytes(d.try_into().expect("8-byte chunk"))
            ^ u64::from_ne_bytes(s.try_into().expect("8-byte chunk"));
        d.copy_from_slice(&word.to_ne_bytes());
    }
    for (d, s) in dst_words
        .into_remainder()
        .iter_mut()
        .zip(src_words.remainder())
    {
        *d ^= s;
    }
}

/// `dst[i] = c · dst[i]` for all `i` (in-place scale).
#[inline]
pub fn mul_slice(dst: &mut [u8], c: u8) {
    match c {
        0 => dst.fill(0),
        1 => {}
        _ => {
            let row = mul_row(c);
            for d in dst.iter_mut() {
                *d = row[*d as usize];
            }
        }
    }
}

/// `dst[i] = c · src[i]` for all `i` (scale into a destination).
///
/// # Panics
/// Panics if the slices differ in length.
#[inline]
pub fn mul_slice_into(dst: &mut [u8], c: u8, src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "mul_slice_into length mismatch");
    match c {
        0 => dst.fill(0),
        1 => dst.copy_from_slice(src),
        _ => {
            let row = mul_row(c);
            for (d, &s) in dst.iter_mut().zip(src.iter()) {
                *d = row[s as usize];
            }
        }
    }
}

/// `dst[i] = c · dst[i] ^ pad[i]` for all `i` — the fused forward
/// per-hop transform (scale then pad) in one pass over the buffer.
///
/// # Panics
/// Panics if the slices differ in length.
#[inline]
pub fn mul_xor_slice(dst: &mut [u8], c: u8, pad: &[u8]) {
    assert_eq!(dst.len(), pad.len(), "mul_xor_slice length mismatch");
    if c == 1 {
        xor_slice(dst, pad);
        return;
    }
    let row = mul_row(c);
    for (d, &p) in dst.iter_mut().zip(pad.iter()) {
        *d = row[*d as usize] ^ p;
    }
}

/// `dst[i] = c · (dst[i] ^ pad[i])` for all `i` — the fused inverse
/// per-hop transform (unpad then scale) in one pass over the buffer.
///
/// # Panics
/// Panics if the slices differ in length.
#[inline]
pub fn xor_mul_slice(dst: &mut [u8], c: u8, pad: &[u8]) {
    assert_eq!(dst.len(), pad.len(), "xor_mul_slice length mismatch");
    if c == 1 {
        xor_slice(dst, pad);
        return;
    }
    let row = mul_row(c);
    for (d, &p) in dst.iter_mut().zip(pad.iter()) {
        *d = row[(*d ^ p) as usize];
    }
}

/// `dst[i] ^= c · src[i]` for all `i` — the axpy kernel.
///
/// `c = 0` is a no-op; `c = 1` takes the SWAR [`xor_slice`] path; other
/// coefficients stream through one L1-resident table row.
///
/// # Panics
/// Panics if the slices differ in length.
#[inline]
pub fn mul_add_slice(dst: &mut [u8], c: u8, src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "mul_add_slice length mismatch");
    match c {
        0 => {}
        1 => xor_slice(dst, src),
        _ => {
            let row = mul_row(c);
            for (d, &s) in dst.iter_mut().zip(src.iter()) {
                *d ^= row[s as usize];
            }
        }
    }
}

// ---- GF(2¹⁶) word-slice kernels -------------------------------------------
//
// The 16-bit field is too large for a full 2-D multiplication table
// (it would be 8 GiB), so its kernels hoist what *can* be hoisted out of
// the per-element loop instead: the `OnceLock` table fetch and the
// discrete log of the fixed coefficient. The scalar `Gf65536::mul` pays
// both per element; these pay them once per slice. `Gf65536`'s `Field`
// bulk hooks delegate here, which carries every GF(2¹⁶) consumer —
// `Matrix` (mul/rank/inverse/solve) and the `mds` generator
// constructions/verification — onto the shared kernel layer, the same
// way the byte kernels above carry the GF(2⁸) coders.

use crate::gf65536::{self, Gf65536};

/// Dot product `Σ a[i]·b[i]` over GF(2¹⁶) slices.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn dot_slice16(a: &[Gf65536], b: &[Gf65536]) -> Gf65536 {
    assert_eq!(a.len(), b.len(), "dot_slice16 length mismatch");
    let t = gf65536::tables();
    let mut acc: u16 = 0;
    for (&x, &y) in a.iter().zip(b.iter()) {
        if x.0 != 0 && y.0 != 0 {
            acc ^= t.exp[t.log[x.0 as usize] as usize + t.log[y.0 as usize] as usize];
        }
    }
    Gf65536(acc)
}

/// `acc[i] ^= c · src[i]` for all `i` — the GF(2¹⁶) axpy kernel
/// (`log c` hoisted out of the loop; `c = 1` degenerates to pure XOR).
///
/// # Panics
/// Panics if the slices differ in length.
pub fn mul_add_slice16(acc: &mut [Gf65536], c: Gf65536, src: &[Gf65536]) {
    assert_eq!(acc.len(), src.len(), "mul_add_slice16 length mismatch");
    match c.0 {
        0 => {}
        1 => {
            for (a, &s) in acc.iter_mut().zip(src.iter()) {
                a.0 ^= s.0;
            }
        }
        _ => {
            let t = gf65536::tables();
            let lc = t.log[c.0 as usize] as usize;
            for (a, &s) in acc.iter_mut().zip(src.iter()) {
                if s.0 != 0 {
                    a.0 ^= t.exp[lc + t.log[s.0 as usize] as usize];
                }
            }
        }
    }
}

/// `row[i] = c · row[i]` for all `i` — the GF(2¹⁶) in-place scale.
pub fn mul_slice16(row: &mut [Gf65536], c: Gf65536) {
    match c.0 {
        0 => row.fill(Gf65536(0)),
        1 => {}
        _ => {
            let t = gf65536::tables();
            let lc = t.log[c.0 as usize] as usize;
            for v in row.iter_mut() {
                if v.0 != 0 {
                    v.0 = t.exp[lc + t.log[v.0 as usize] as usize];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Field, Gf256};
    use rand::rngs::StdRng;
    use rand::{Rng, RngCore, SeedableRng};

    const LENS: [usize; 5] = [0, 1, 7, 64, 4096];

    fn random_bytes(rng: &mut StdRng, len: usize) -> Vec<u8> {
        let mut v = vec![0u8; len];
        rng.fill_bytes(&mut v);
        v
    }

    #[test]
    fn mul_table_matches_scalar() {
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                assert_eq!(mul_row(a)[b as usize], Gf256::mul_bytes(a, b));
            }
        }
    }

    #[test]
    fn xor_slice_matches_scalar_all_lengths() {
        let mut rng = StdRng::seed_from_u64(1);
        for len in LENS {
            let src = random_bytes(&mut rng, len);
            let mut dst = random_bytes(&mut rng, len);
            let expect: Vec<u8> = dst.iter().zip(src.iter()).map(|(d, s)| d ^ s).collect();
            xor_slice(&mut dst, &src);
            assert_eq!(dst, expect, "len {len}");
        }
    }

    #[test]
    fn mul_add_slice_matches_scalar_all_lengths() {
        let mut rng = StdRng::seed_from_u64(2);
        for len in LENS {
            for c in [0u8, 1, 2, 17, 255] {
                let src = random_bytes(&mut rng, len);
                let mut dst = random_bytes(&mut rng, len);
                let expect: Vec<u8> = dst
                    .iter()
                    .zip(src.iter())
                    .map(|(&d, &s)| d ^ Gf256::mul_bytes(c, s))
                    .collect();
                mul_add_slice(&mut dst, c, &src);
                assert_eq!(dst, expect, "len {len}, c {c}");
            }
        }
    }

    #[test]
    fn mul_slice_matches_scalar() {
        let mut rng = StdRng::seed_from_u64(3);
        for len in LENS {
            let c: u8 = rng.gen();
            let orig = random_bytes(&mut rng, len);
            let mut dst = orig.clone();
            mul_slice(&mut dst, c);
            let expect: Vec<u8> = orig.iter().map(|&b| Gf256::mul_bytes(c, b)).collect();
            assert_eq!(dst, expect, "len {len}, c {c}");
        }
    }

    #[test]
    fn mul_slice_into_matches_in_place() {
        let mut rng = StdRng::seed_from_u64(4);
        for len in LENS {
            for c in [0u8, 1, 99] {
                let src = random_bytes(&mut rng, len);
                let mut a = src.clone();
                mul_slice(&mut a, c);
                let mut b = vec![0xFFu8; len];
                mul_slice_into(&mut b, c, &src);
                assert_eq!(a, b, "len {len}, c {c}");
            }
        }
    }

    #[test]
    fn mul_add_is_field_axpy() {
        // The byte kernel agrees with the generic Field axpy.
        let mut rng = StdRng::seed_from_u64(5);
        let src = random_bytes(&mut rng, 253);
        let mut dst = random_bytes(&mut rng, 253);
        let c: u8 = rng.gen();
        let mut field_acc: Vec<Gf256> = dst.iter().map(|&b| Gf256::new(b)).collect();
        let field_src: Vec<Gf256> = src.iter().map(|&b| Gf256::new(b)).collect();
        crate::field::axpy(&mut field_acc, Gf256::new(c), &field_src);
        mul_add_slice(&mut dst, c, &src);
        assert_eq!(
            dst,
            field_acc.iter().map(|f| f.value()).collect::<Vec<u8>>()
        );
    }

    #[test]
    fn fused_transform_kernels_match_two_pass() {
        let mut rng = StdRng::seed_from_u64(6);
        for len in LENS {
            for c in [1u8, 2, 0x53, 255] {
                let pad = random_bytes(&mut rng, len);
                let orig = random_bytes(&mut rng, len);
                // Forward: fused vs scale-then-xor.
                let mut fused = orig.clone();
                mul_xor_slice(&mut fused, c, &pad);
                let mut two_pass = orig.clone();
                mul_slice(&mut two_pass, c);
                xor_slice(&mut two_pass, &pad);
                assert_eq!(fused, two_pass, "forward len {len} c {c}");
                // Inverse: fused vs xor-then-scale, and round-trip.
                let inv = Gf256::new(c).inv().value();
                xor_mul_slice(&mut fused, inv, &pad);
                assert_eq!(fused, orig, "round-trip len {len} c {c}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        let mut dst = [0u8; 4];
        mul_add_slice(&mut dst, 3, &[0u8; 5]);
    }

    /// The GF(2¹⁶) kernels must agree with element-wise scalar `mul` for
    /// every coefficient class (zero, one, generic) and length.
    #[test]
    fn wide_kernels_match_scalar_all_lengths() {
        let mut rng = StdRng::seed_from_u64(7);
        for len in LENS {
            let a: Vec<Gf65536> = (0..len).map(|_| Gf65536::random(&mut rng)).collect();
            let b: Vec<Gf65536> = (0..len).map(|_| Gf65536::random(&mut rng)).collect();
            for c in [Gf65536(0), Gf65536(1), Gf65536(0xA7C3), Gf65536(0xFFFF)] {
                // dot (also exercises the zero-element skip).
                let mut want = Gf65536::zero();
                for (&x, &y) in a.iter().zip(b.iter()) {
                    want = want.add(x.mul(y));
                }
                assert_eq!(dot_slice16(&a, &b), want, "dot len {len}");
                // axpy.
                let mut got = a.clone();
                mul_add_slice16(&mut got, c, &b);
                let want: Vec<Gf65536> = a
                    .iter()
                    .zip(b.iter())
                    .map(|(&x, &y)| x.add(c.mul(y)))
                    .collect();
                assert_eq!(got, want, "axpy len {len} c {c:?}");
                // scale.
                let mut got = a.clone();
                mul_slice16(&mut got, c);
                let want: Vec<Gf65536> = a.iter().map(|&x| x.mul(c)).collect();
                assert_eq!(got, want, "scale len {len} c {c:?}");
            }
        }
    }

    /// Sparse inputs (zeros interleaved) hit the skip branches.
    #[test]
    fn wide_kernels_handle_zero_elements() {
        let a: Vec<Gf65536> = (0..16u16)
            .map(|i| Gf65536(if i % 3 == 0 { 0 } else { i * 31 }))
            .collect();
        let mut acc = vec![Gf65536(0x1111); 16];
        let before = acc.clone();
        mul_add_slice16(&mut acc, Gf65536(0x20), &a);
        for i in 0..16 {
            assert_eq!(acc[i], before[i].add(Gf65536(0x20).mul(a[i])));
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wide_length_mismatch_panics() {
        let mut dst = [Gf65536(0); 4];
        mul_add_slice16(&mut dst, Gf65536(3), &[Gf65536(0); 5]);
    }
}
