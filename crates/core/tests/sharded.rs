//! Sharding must be unobservable: the same multi-flow trace pushed
//! through a 1-shard and an 8-shard relay has to produce identical
//! delivered messages, identical counters and identical forwarding
//! decisions (up to the random coding coefficients inside the payload,
//! which differ by RNG stream but never change *what* goes *where*).

use slicing_core::{
    DataMode, DestPlacement, FlowId, GraphParams, OverlayAddr, Packet, PacketKind, ShardedRelay,
    SourceSession, Tick,
};
use slicing_graph::packets::SendInstr;

/// One recorded step of the trace fed to both relays.
enum Step {
    /// Deliver a packet (from, packet).
    Packet(OverlayAddr, Packet),
    /// Fire the relay's timers at the given tick.
    Poll(Tick),
}

/// Build a deterministic multi-flow setup+data trace for one relay at
/// `target`: `forward_flows` flows where the relay is a stage-1
/// forwarder and `receiver_flows` where it is the destination, each
/// sending `messages` data messages, interleaved round-robin.
fn build_trace(
    target: OverlayAddr,
    forward_flows: usize,
    receiver_flows: usize,
    messages: usize,
) -> Vec<Step> {
    let pseudo: Vec<OverlayAddr> = (0..2u64).map(|i| OverlayAddr(10_000 + i)).collect();
    let candidates: Vec<OverlayAddr> = (0..16u64).map(|i| OverlayAddr(20_000 + i)).collect();
    let mut steps = Vec::new();
    let mut sources = Vec::new();

    for f in 0..forward_flows + receiver_flows {
        let receiver = f >= forward_flows;
        let params = if receiver {
            // Destination in stage 1: the relay under test receives the
            // flow's packets directly from the source and must decode.
            GraphParams::new(3, 2)
                .with_paths(2)
                .with_data_mode(DataMode::Recode)
                .with_dest_placement(DestPlacement::Stage(1))
        } else {
            GraphParams::new(3, 2)
                .with_paths(2)
                .with_data_mode(DataMode::Recode)
                .with_dest_placement(DestPlacement::LastStage)
        };
        let dest = if receiver { target } else { OverlayAddr(1) };
        let (source, setup) =
            SourceSession::establish(params, &pseudo, &candidates, dest, 500 + f as u64)
                .expect("valid params");
        let tap = if receiver {
            // The destination may land at any stage-1 index; packets to
            // `target` are the ones we feed.
            target
        } else {
            source.graph().stages[1][0]
        };
        for instr in setup {
            if instr.to == tap {
                steps.push(Step::Packet(instr.from, instr.packet));
            }
        }
        sources.push((source, tap));
    }

    // Data phase, flows interleaved so shards are hit in mixed order.
    for m in 0..messages {
        for (source, tap) in sources.iter_mut() {
            let payload = vec![0xA5u8; 600 + m];
            let (_, sends) = source.send_message(&payload).expect("within chunk budget");
            for instr in sends {
                if instr.to == *tap {
                    steps.push(Step::Packet(instr.from, instr.packet));
                }
            }
        }
        // A mid-trace poll (nothing due yet) and a data-flush poll.
        steps.push(Step::Poll(Tick(10 + m as u64)));
    }
    // Let every straggling gather flush.
    steps.push(Step::Poll(Tick(5_000)));
    steps
}

/// Everything observable about a run: what was delivered, what was
/// forwarded where, and the counters.
#[derive(Debug, PartialEq, Eq)]
struct Observed {
    delivered: Vec<(FlowId, u32, Vec<u8>)>,
    sends: Vec<(OverlayAddr, FlowId, u32, bool)>,
    stats: slicing_core::RelayStats,
    flow_count: usize,
}

fn run(mut relay: ShardedRelay, steps: &[Step]) -> Observed {
    let mut delivered = Vec::new();
    let mut sends: Vec<SendInstr> = Vec::new();
    for step in steps {
        let out = match step {
            Step::Packet(from, packet) => relay.handle_packet(Tick(1), *from, packet),
            Step::Poll(at) => relay.poll(*at),
        };
        for r in out.received {
            delivered.push((r.flow, r.seq, r.plaintext));
        }
        sends.extend(out.sends);
    }
    let mut sends: Vec<(OverlayAddr, FlowId, u32, bool)> = sends
        .into_iter()
        .map(|s| {
            (
                s.to,
                s.packet.header.flow_id,
                s.packet.header.seq,
                s.packet.header.kind == PacketKind::Data,
            )
        })
        .collect();
    sends.sort();
    let mut delivered_sorted = delivered;
    delivered_sorted.sort();
    Observed {
        delivered: delivered_sorted,
        sends,
        stats: relay.stats(),
        flow_count: relay.flow_count(),
    }
}

#[test]
fn one_shard_and_eight_shards_are_equivalent() {
    let target = OverlayAddr(42);
    let steps = build_trace(target, 24, 8, 4);

    let one = run(ShardedRelay::new(target, 7, 1), &steps);
    let eight = run(ShardedRelay::new(target, 7, 8), &steps);

    assert!(
        !one.delivered.is_empty(),
        "trace must exercise destination delivery"
    );
    assert!(one.stats.flows_established >= 32);
    assert_eq!(one.delivered, eight.delivered, "delivered messages differ");
    assert_eq!(one.sends, eight.sends, "forwarding decisions differ");
    assert_eq!(one.stats, eight.stats, "counters differ");
    assert_eq!(one.flow_count, eight.flow_count);
}

#[test]
fn sharded_stats_publish_to_shared_cell() {
    let target = OverlayAddr(42);
    let steps = build_trace(target, 8, 0, 2);
    let mut relay = ShardedRelay::new(target, 7, 4);
    let cell = relay.shared_stats();
    for step in &steps {
        match step {
            Step::Packet(from, packet) => {
                relay.handle_packet(Tick(1), *from, packet);
            }
            Step::Poll(at) => {
                relay.poll(*at);
            }
        }
    }
    // Nothing published yet: the shared cell lags the local counters.
    assert_eq!(cell.snapshot().packets_in, 0);
    let exact = relay.stats();
    let (mut shards, _router, _shared) = relay.into_parts();
    for s in &mut shards {
        s.publish_stats();
    }
    assert_eq!(cell.snapshot(), exact, "published stats must match exact");
}
