//! Source-side circuit construction and layered data encryption.

use rand::Rng;

use slicing_crypto::chacha20::ChaCha20;
use slicing_crypto::{aead, hkdf, SymmetricKey};
use slicing_graph::OverlayAddr;

use crate::wire::{OnionPacket, OnionPacketKind};
use crate::Directory;

/// A packet to transmit for the onion baseline.
#[derive(Clone, Debug)]
pub struct OnionSend {
    /// Sender address.
    pub from: OverlayAddr,
    /// Next hop.
    pub to: OverlayAddr,
    /// The packet.
    pub packet: OnionPacket,
}

/// Errors building a circuit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OnionError {
    /// A relay on the path has no directory entry.
    UnknownKey(OverlayAddr),
    /// Path empty.
    EmptyPath,
    /// An onion layer exceeded what the hop's RSA key can carry.
    LayerTooLarge,
}

impl std::fmt::Display for OnionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OnionError::UnknownKey(a) => write!(f, "no public key for {a:?}"),
            OnionError::EmptyPath => write!(f, "circuit path is empty"),
            OnionError::LayerTooLarge => write!(f, "onion layer too large for RSA key"),
        }
    }
}

impl std::error::Error for OnionError {}

/// A built circuit, from the source's point of view.
///
/// `Debug` omits key material.
#[derive(Clone)]
pub struct CircuitHandle {
    /// Source address.
    pub source: OverlayAddr,
    /// First relay.
    pub first_hop: OverlayAddr,
    /// Circuit id on the first link.
    pub first_circuit: u64,
    /// Per-hop data session keys, in path order (last = exit).
    pub session_keys: Vec<SymmetricKey>,
    next_seq: u32,
}

impl std::fmt::Debug for CircuitHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "CircuitHandle(first_hop={:?}, hops={})",
            self.first_hop,
            self.session_keys.len()
        )
    }
}

/// The onion-routing source.
pub struct OnionSource;

/// Derive the data-cell nonce for a sequence number.
pub(crate) fn data_nonce(seq: u32) -> [u8; 12] {
    let mut n = [0u8; 12];
    n[..4].copy_from_slice(&seq.to_le_bytes());
    n
}

/// Expand a 16-byte RSA-encrypted seed into the 32-byte layer key.
///
/// Keeping the RSA plaintext to 16 bytes lets the baseline run with the
/// small toy moduli the benchmarks use.
pub(crate) fn layer_key_from_seed(seed: &[u8; 16]) -> [u8; 32] {
    let mut key = [0u8; 32];
    hkdf::derive(b"onion-layer", seed, b"", &mut key);
    key
}

impl OnionSource {
    /// Build the single-pass setup onion for `path` (§2: "the sender
    /// encrypts the IP address of each node along the path with the
    /// public key of its previous hop, creating layers of encryption").
    ///
    /// Each layer is hybrid: RSA encrypts a fresh layer key; the layer
    /// body (flags, next hop, next circuit id, data session key, inner
    /// onion) is ChaCha20-encrypted under it.
    pub fn build_circuit<R: Rng + ?Sized>(
        source: OverlayAddr,
        path: &[OverlayAddr],
        directory: &Directory,
        rng: &mut R,
    ) -> Result<(CircuitHandle, OnionSend), OnionError> {
        if path.is_empty() {
            return Err(OnionError::EmptyPath);
        }
        let session_keys: Vec<SymmetricKey> =
            path.iter().map(|_| SymmetricKey::random(rng)).collect();
        let circuit_ids: Vec<u64> = path.iter().map(|_| rng.gen()).collect();

        // Build from the exit inward.
        let mut inner: Vec<u8> = Vec::new();
        for (i, &hop) in path.iter().enumerate().rev() {
            let pk = directory.get(hop).ok_or(OnionError::UnknownKey(hop))?;
            let is_exit = i == path.len() - 1;
            let (next_addr, next_circuit) = if is_exit {
                (OverlayAddr::NONE, 0u64)
            } else {
                (path[i + 1], circuit_ids[i + 1])
            };
            let mut body = Vec::with_capacity(53 + inner.len());
            body.push(if is_exit { 1 } else { 0 });
            body.extend_from_slice(&next_addr.to_bytes());
            body.extend_from_slice(&next_circuit.to_le_bytes());
            body.extend_from_slice(&session_keys[i].0);
            body.extend_from_slice(&(inner.len() as u32).to_le_bytes());
            body.extend_from_slice(&inner);

            let mut layer_seed = [0u8; 16];
            rng.fill_bytes(&mut layer_seed);
            let layer_key = layer_key_from_seed(&layer_seed);
            ChaCha20::xor(&layer_key, &[0u8; 12], 0, &mut body);
            let rsa_ct = pk
                .encrypt_bytes(&layer_seed)
                .ok_or(OnionError::LayerTooLarge)?;
            let mut layer = Vec::with_capacity(2 + rsa_ct.len() + body.len());
            layer.extend_from_slice(&(rsa_ct.len() as u16).to_le_bytes());
            layer.extend_from_slice(&rsa_ct);
            layer.extend_from_slice(&body);
            inner = layer;
        }

        let handle = CircuitHandle {
            source,
            first_hop: path[0],
            first_circuit: circuit_ids[0],
            session_keys,
            next_seq: 0,
        };
        let send = OnionSend {
            from: source,
            to: path[0],
            packet: OnionPacket {
                circuit: circuit_ids[0],
                kind: OnionPacketKind::Setup,
                seq: 0,
                payload: inner.into(),
            },
        };
        Ok((handle, send))
    }
}

impl CircuitHandle {
    /// Telescope-encrypt one data message toward the exit: innermost is
    /// an AEAD seal under the exit's session key (integrity at the exit),
    /// outer hops are stream layers stripped one per relay (§7.2's
    /// "computationally efficient symmetric session keys").
    pub fn send_data<R: Rng + ?Sized>(&mut self, plaintext: &[u8], rng: &mut R) -> (u32, OnionSend) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let exit_key = self.session_keys.last().expect("non-empty path");
        let mut payload = aead::seal(exit_key, plaintext, rng);
        // Apply layers from exit-1 inward to the first hop, so that each
        // relay strips one.
        for key in self.session_keys[..self.session_keys.len() - 1]
            .iter()
            .rev()
        {
            ChaCha20::xor(&key.0, &data_nonce(seq), 0, &mut payload);
        }
        (
            seq,
            OnionSend {
                from: self.source,
                to: self.first_hop,
                packet: OnionPacket {
                    circuit: self.first_circuit,
                    kind: OnionPacketKind::Data,
                    seq,
                    payload: payload.into(),
                },
            },
        )
    }

    /// Path length of this circuit.
    pub fn hops(&self) -> usize {
        self.session_keys.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn empty_path_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        let dir = Directory::new();
        let err = OnionSource::build_circuit(OverlayAddr(1), &[], &dir, &mut rng).unwrap_err();
        assert_eq!(err, OnionError::EmptyPath);
    }

    #[test]
    fn unknown_key_rejected() {
        let mut rng = StdRng::seed_from_u64(2);
        let dir = Directory::new();
        let err =
            OnionSource::build_circuit(OverlayAddr(1), &[OverlayAddr(5)], &dir, &mut rng)
                .unwrap_err();
        assert_eq!(err, OnionError::UnknownKey(OverlayAddr(5)));
    }

    #[test]
    fn circuit_built_for_registered_path() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut dir = Directory::new();
        let path = [OverlayAddr(10), OverlayAddr(11), OverlayAddr(12)];
        for &a in &path {
            dir.register(a, 512, &mut rng);
        }
        let (handle, send) =
            OnionSource::build_circuit(OverlayAddr(1), &path, &dir, &mut rng).unwrap();
        assert_eq!(handle.hops(), 3);
        assert_eq!(send.to, OverlayAddr(10));
        assert_eq!(send.packet.kind, OnionPacketKind::Setup);
        // Onion grows with path length (layering works).
        assert!(send.packet.payload.len() > 100);
    }

    #[test]
    fn data_seq_increments() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut dir = Directory::new();
        dir.register(OverlayAddr(10), 512, &mut rng);
        let (mut handle, _) =
            OnionSource::build_circuit(OverlayAddr(1), &[OverlayAddr(10)], &dir, &mut rng)
                .unwrap();
        let (s0, _) = handle.send_data(b"a", &mut rng);
        let (s1, _) = handle.send_data(b"b", &mut rng);
        assert_eq!((s0, s1), (0, 1));
    }
}
