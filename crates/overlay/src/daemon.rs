//! Daemon tasks: async drivers around the sans-IO engines.
//!
//! One tokio task per overlay node, mirroring the paper's per-node
//! multi-threaded daemon (§7.1): receive packets, update the flow table,
//! forward, and periodically fire timeouts / garbage-collect stale flows.

use std::time::{Duration, Instant};

use slicing_core::{OverlayAddr, Packet, RelayNode, Tick};
use slicing_onion::{OnionPacket, OnionRelay};
use tokio::sync::mpsc;

use crate::NodePort;

/// Events the daemons report to the experiment harness.
#[derive(Clone, Debug)]
pub enum OverlayEvent {
    /// A relay completed flow establishment; `receiver` = destination?
    Established {
        /// The node that established.
        addr: OverlayAddr,
        /// Whether it is the flow's destination.
        receiver: bool,
        /// Milliseconds since the daemon started.
        at_ms: u64,
    },
    /// The destination decoded and decrypted a data message.
    MessageReceived {
        /// Destination address.
        addr: OverlayAddr,
        /// Message sequence number.
        seq: u32,
        /// Plaintext length (payload itself omitted from events).
        len: usize,
        /// Milliseconds since the daemon started.
        at_ms: u64,
    },
}

/// Spawn a slicing relay daemon on `port`; runs until the port closes.
///
/// `epoch` anchors the Tick clock so all daemons share a timeline.
pub fn spawn_relay(
    mut relay: RelayNode,
    mut port: NodePort,
    events: mpsc::UnboundedSender<OverlayEvent>,
    epoch: Instant,
) -> tokio::task::JoinHandle<()> {
    tokio::spawn(async move {
        let addr = port.addr;
        let mut ticker = tokio::time::interval(Duration::from_millis(50));
        ticker.set_missed_tick_behavior(tokio::time::MissedTickBehavior::Delay);
        loop {
            let outputs = tokio::select! {
                maybe = port.rx.recv() => {
                    let Some((from, bytes)) = maybe else { break };
                    // Zero-copy: the packet adopts the receive buffer.
                    let Ok(packet) = Packet::from_bytes(bytes) else { continue };
                    relay.handle_packet(now_tick(epoch), from, &packet)
                }
                _ = ticker.tick() => relay.poll(now_tick(epoch)),
            };
            let at_ms = epoch.elapsed().as_millis() as u64;
            if let Some(receiver) = outputs.established {
                let _ = events.send(OverlayEvent::Established {
                    addr,
                    receiver,
                    at_ms,
                });
            }
            for r in &outputs.received {
                let _ = events.send(OverlayEvent::MessageReceived {
                    addr,
                    seq: r.seq,
                    len: r.plaintext.len(),
                    at_ms,
                });
            }
            for send in outputs.sends {
                port.tx.send(send.to, send.packet.encode()).await;
            }
        }
    })
}

/// Spawn an onion relay daemon on `port`.
pub fn spawn_onion_relay(
    mut relay: OnionRelay,
    mut port: NodePort,
    events: mpsc::UnboundedSender<OverlayEvent>,
    epoch: Instant,
) -> tokio::task::JoinHandle<()> {
    tokio::spawn(async move {
        let addr = port.addr;
        while let Some((_, bytes)) = port.rx.recv().await {
            let Ok(packet) = OnionPacket::from_bytes(bytes) else {
                continue;
            };
            let out = relay.handle_packet(&packet);
            let at_ms = epoch.elapsed().as_millis() as u64;
            if let Some(is_exit) = out.established {
                let _ = events.send(OverlayEvent::Established {
                    addr,
                    receiver: is_exit,
                    at_ms,
                });
            }
            for (seq, plaintext) in &out.delivered {
                let _ = events.send(OverlayEvent::MessageReceived {
                    addr,
                    seq: *seq,
                    len: plaintext.len(),
                    at_ms,
                });
            }
            for send in out.sends {
                port.tx.send(send.to, send.packet.encode()).await;
            }
        }
    })
}

/// Milliseconds since the epoch as a protocol [`Tick`].
pub fn now_tick(epoch: Instant) -> Tick {
    Tick(epoch.elapsed().as_millis() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EmulatedNet;
    use slicing_sim::wan::NetProfile;

    #[tokio::test]
    async fn relay_daemon_drops_garbage() {
        let net = EmulatedNet::new(NetProfile::lan(), 1);
        let relay_port = net.attach(OverlayAddr(10));
        let sender = net.attach(OverlayAddr(11));
        let (events_tx, _events_rx) = mpsc::unbounded_channel();
        let relay = RelayNode::new(OverlayAddr(10), 7);
        let handle = spawn_relay(relay, relay_port, events_tx, Instant::now());
        sender.tx.send(OverlayAddr(10), bytes::Bytes::from(&b"not a packet"[..])).await;
        tokio::time::sleep(Duration::from_millis(30)).await;
        handle.abort();
    }
}
