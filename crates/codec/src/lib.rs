//! The information-slicing codec (§4.1, §4.3.2, §4.4, §4.4.1, §9.4(a)).
//!
//! A message is randomized by multiplying it with a random invertible
//! matrix `A` and split into `d` **information slices** — each slice
//! carries one coded block plus the row of `A` that produced it (Fig. 3).
//! An observer holding fewer than `d` slices learns *nothing* about the
//! message (pi-security, Lemma 5.1); the intended recipient gathers `d`
//! slices and inverts: `m = A⁻¹ I*` (§4.3.5).
//!
//! For churn resilience the source can emit `d′ > d` *dependent* slices
//! using a generator in which any `d` rows are independent (§4.4(b));
//! relays can then regenerate lost redundancy by re-coding random linear
//! combinations of the slices they received — network coding, §4.4.1 —
//! via [`recombine()`].
//!
//! Module map:
//! * [`slice`](mod@slice) — the [`InfoSlice`] type and its serialization.
//! * [`coder`] — [`encode`] / [`decode`] and the byte-level GF kernels.
//! * [`recombine`](mod@recombine) — relay-side redundancy regeneration.
//! * [`transform`] — per-hop affine slice transforms that defeat
//!   pattern-insertion tracking (§9.4(a)).
//! * [`itshare`] — the information-theoretic mode sketched in §5
//!   (additive d-of-d secret sharing at d-fold space cost).

#![forbid(unsafe_code)]

pub mod coder;
pub mod itshare;
pub mod recombine;
pub mod slice;
pub mod transform;

pub use coder::{decode, decode_blocks, encode, encode_blocks, CodecError};
pub use recombine::recombine;
pub use slice::{InfoSlice, SlicedMessage};
pub use transform::HopTransform;
