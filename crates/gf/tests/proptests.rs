//! Property-based tests for field axioms, matrix identities, and the
//! bulk byte-slice kernels.

use proptest::prelude::*;
use slicing_gf::{bulk, mds, Field, Gf256, Gf65536, Matrix};

/// The slice lengths the bulk kernels must agree with scalar arithmetic
/// on: empty, single byte, sub-word, one cache line, and a full page.
const KERNEL_LENS: [usize; 5] = [0, 1, 7, 64, 4096];

fn gf256() -> impl Strategy<Value = Gf256> {
    any::<u8>().prop_map(Gf256::new)
}

fn gf64k() -> impl Strategy<Value = Gf65536> {
    any::<u16>().prop_map(Gf65536::new)
}

proptest! {
    #[test]
    fn gf256_add_assoc(a in gf256(), b in gf256(), c in gf256()) {
        prop_assert_eq!(a.add(b).add(c), a.add(b.add(c)));
    }

    #[test]
    fn gf256_mul_distributes(a in gf256(), b in gf256(), c in gf256()) {
        prop_assert_eq!(a.mul(b.add(c)), a.mul(b).add(a.mul(c)));
    }

    #[test]
    fn gf256_inverse(a in gf256()) {
        if !a.is_zero() {
            prop_assert_eq!(a.mul(a.inv()), Gf256::one());
        }
    }

    #[test]
    fn gf64k_mul_commutes(a in gf64k(), b in gf64k()) {
        prop_assert_eq!(a.mul(b), b.mul(a));
    }

    #[test]
    fn gf64k_inverse(a in gf64k()) {
        if !a.is_zero() {
            prop_assert_eq!(a.mul(a.inv()), Gf65536::one());
        }
    }

    #[test]
    fn gf64k_pow_law(a in gf64k(), e1 in 0u64..64, e2 in 0u64..64) {
        if !a.is_zero() {
            prop_assert_eq!(a.pow(e1).mul(a.pow(e2)), a.pow(e1 + e2));
        }
    }

    /// Random square matrices: inverse round-trips whenever it exists.
    #[test]
    fn matrix_inverse_round_trip(seed in any::<u64>(), n in 1usize..7) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let m = Matrix::<Gf256>::random(n, n, &mut rng);
        match m.inverse() {
            Some(inv) => {
                prop_assert_eq!(m.mul_mat(&inv), Matrix::identity(n));
                prop_assert!(m.is_invertible());
            }
            None => prop_assert!(!m.is_invertible()),
        }
    }

    /// (A·B)ᵀ = Bᵀ·Aᵀ.
    #[test]
    fn transpose_of_product(seed in any::<u64>(), n in 1usize..6, m in 1usize..6, k in 1usize..6) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::<Gf256>::random(n, m, &mut rng);
        let b = Matrix::<Gf256>::random(m, k, &mut rng);
        prop_assert_eq!(
            a.mul_mat(&b).transpose(),
            b.transpose().mul_mat(&a.transpose())
        );
    }

    /// solve(b) really solves A·x = b for invertible A.
    #[test]
    fn solve_is_correct(seed in any::<u64>(), n in 1usize..7) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::<Gf256>::random_invertible(n, &mut rng);
        let b: Vec<Gf256> = (0..n).map(|_| Gf256::random(&mut rng)).collect();
        let x = a.solve(&b).unwrap();
        prop_assert_eq!(a.mul_vec(&x), b);
    }

    /// Every MDS generator produced by the auto-chooser has the
    /// any-d-rows-invertible property (kept small so exhaustive check is fast).
    #[test]
    fn generator_property(seed in any::<u64>(), d in 1usize..5, extra in 0usize..4) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let dp = d + extra;
        let g = mds::generator::<Gf256, _>(dp, d, &mut rng);
        prop_assert!(mds::all_row_subsets_invertible(&g));
    }

    /// Matrix serialization round-trips.
    #[test]
    fn matrix_bytes_round_trip(seed in any::<u64>(), r in 1usize..6, c in 1usize..6) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let m = Matrix::<Gf65536>::random(r, c, &mut rng);
        prop_assert_eq!(Matrix::<Gf65536>::from_bytes(r, c, &m.to_bytes()), m);
    }

    /// `bulk::mul_add_slice` agrees with element-at-a-time `Gf256` ops
    /// at every interesting length, including the `c = 0`/`c = 1`
    /// special-cased paths.
    #[test]
    fn bulk_mul_add_matches_scalar(seed in any::<u64>(), c in any::<u8>()) {
        use rand::{rngs::StdRng, RngCore, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        for len in KERNEL_LENS {
            let mut src = vec![0u8; len];
            let mut dst = vec![0u8; len];
            rng.fill_bytes(&mut src);
            rng.fill_bytes(&mut dst);
            for c in [c, 0, 1] {
                let expect: Vec<u8> = dst
                    .iter()
                    .zip(src.iter())
                    .map(|(&d, &s)| Gf256::new(d).add(Gf256::new(c).mul(Gf256::new(s))).value())
                    .collect();
                let mut got = dst.clone();
                bulk::mul_add_slice(&mut got, c, &src);
                prop_assert_eq!(&got, &expect, "len {} c {}", len, c);
            }
        }
    }

    /// `bulk::mul_slice` (in place) and `bulk::mul_slice_into` agree
    /// with scalar multiplication at every interesting length.
    #[test]
    fn bulk_mul_matches_scalar(seed in any::<u64>(), c in any::<u8>()) {
        use rand::{rngs::StdRng, RngCore, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        for len in KERNEL_LENS {
            let mut src = vec![0u8; len];
            rng.fill_bytes(&mut src);
            for c in [c, 0, 1] {
                let expect: Vec<u8> = src
                    .iter()
                    .map(|&s| Gf256::new(c).mul(Gf256::new(s)).value())
                    .collect();
                let mut in_place = src.clone();
                bulk::mul_slice(&mut in_place, c);
                prop_assert_eq!(&in_place, &expect, "mul_slice len {} c {}", len, c);
                let mut into = vec![0xEEu8; len];
                bulk::mul_slice_into(&mut into, c, &src);
                prop_assert_eq!(&into, &expect, "mul_slice_into len {} c {}", len, c);
            }
        }
    }

    /// The SWAR XOR path is exact at word boundaries and remainders.
    #[test]
    fn bulk_xor_matches_scalar(seed in any::<u64>()) {
        use rand::{rngs::StdRng, RngCore, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        for len in KERNEL_LENS {
            let mut src = vec![0u8; len];
            let mut dst = vec![0u8; len];
            rng.fill_bytes(&mut src);
            rng.fill_bytes(&mut dst);
            let expect: Vec<u8> = dst.iter().zip(src.iter()).map(|(d, s)| d ^ s).collect();
            bulk::xor_slice(&mut dst, &src);
            prop_assert_eq!(&dst, &expect, "len {}", len);
        }
    }
}
