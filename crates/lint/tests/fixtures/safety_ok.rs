//! Fixture: fully annotated unsafe — zero findings, two ledger sites.

/// Reads one byte.
///
/// # Safety
/// `p` must be valid for reads.
pub unsafe fn contract(p: *const u8) -> u8 {
    // SAFETY: the fn contract guarantees `p` is readable.
    unsafe { *p }
}
