//! Chaum-mix / onion-routing anonymity baseline for Fig. 7.
//!
//! A mix chain is the `d = d′ = 1` degenerate case of the stage model:
//! one node per stage, a single path. A malicious mix knows its
//! predecessor and successor; colluding mixes in consecutive positions
//! merge their views (the same longest-known-window argument as Appendix
//! A with width 1). The destination is the final recipient: it is exposed
//! exactly when the attacker controls the exit (last mix), which knows it
//! is the exit.

use rand::Rng;

use crate::metric::{anonymity_from_groups, uniform_anonymity, ProbabilityGroup};
use crate::scenario::{longest_known_span, MaliciousLayout, TrialOutcome};

/// Parameters for the mix baseline.
#[derive(Clone, Copy, Debug)]
pub struct ChaumParams {
    /// Overlay size `N`.
    pub n: u64,
    /// Mix-chain length `L`.
    pub length: usize,
    /// Fraction of malicious mixes `f`.
    pub fraction_malicious: f64,
}

/// One trial of the mix baseline.
pub fn chaum_trial<R: Rng + ?Sized>(p: &ChaumParams, rng: &mut R) -> TrialOutcome {
    let f = p.fraction_malicious;
    let l = p.length;
    let honest = ((p.n as f64) * (1.0 - f)).max(2.0) as u64;
    let malicious: Vec<bool> = (0..l).map(|_| rng.gen::<f64>() < f).collect();
    let layout = MaliciousLayout {
        bad: malicious.iter().map(|&b| usize::from(b)).collect(),
        dest_stage: l,
    };

    // Source: the first mix malicious = it sees the true source address
    // and (colluding with a full downstream chain) may confirm position.
    // The paper's Case 1 analogue for d = 1: stage 1 malicious AND the
    // attacker can decode the rest — for onion routing a single malicious
    // first mix suffices to see the source's address but not to *know* it
    // is first; certainty needs the full chain. We follow the same
    // window logic as slicing with width 1.
    let source_case1 = malicious.iter().all(|&b| b);
    let s_span = longest_known_span(&layout, l);
    let source = if source_case1 {
        0.0
    } else if s_span == 0 {
        uniform_anonymity(honest, p.n)
    } else {
        let denom = (l as f64 - s_span as f64).max(1.0);
        let q = (1.0 / denom).min(1.0);
        let outside = honest.saturating_sub(1).max(1);
        anonymity_from_groups(
            &[
                ProbabilityGroup { count: 1, p: q },
                ProbabilityGroup {
                    count: outside,
                    p: (1.0 - q) / outside as f64,
                },
            ],
            p.n,
        )
    };

    // Destination: the exit knows it is the exit (it delivers to the
    // recipient outside the overlay), so a malicious exit identifies the
    // destination outright.
    let dest_case1 = *malicious.last().unwrap_or(&false);
    let dest = if dest_case1 {
        0.0
    } else if s_span == 0 {
        uniform_anonymity(honest, p.n)
    } else {
        // A known window of s stages contains the exit with probability
        // s/L; its (single) honest member would be the last mix, whose
        // successor is the destination.
        let p_in = (s_span as f64 / l as f64).min(1.0);
        let span_honest = ((s_span as f64) * (1.0 - f)).round().max(1.0) as u64;
        let outside = honest.saturating_sub(span_honest).max(1);
        anonymity_from_groups(
            &[
                ProbabilityGroup {
                    count: span_honest,
                    p: p_in / span_honest as f64,
                },
                ProbabilityGroup {
                    count: outside,
                    p: (1.0 - p_in) / outside as f64,
                },
            ],
            p.n,
        )
    };

    TrialOutcome {
        source,
        dest,
        source_case1,
        dest_case1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn avg(f: f64, rng: &mut StdRng) -> (f64, f64) {
        let p = ChaumParams {
            n: 10_000,
            length: 8,
            fraction_malicious: f,
        };
        let mut s = 0.0;
        let mut d = 0.0;
        let trials = 500;
        for _ in 0..trials {
            let t = chaum_trial(&p, rng);
            s += t.source;
            d += t.dest;
        }
        (s / trials as f64, d / trials as f64)
    }

    #[test]
    fn clean_network_anonymous() {
        let mut rng = StdRng::seed_from_u64(1);
        let (s, d) = avg(0.0, &mut rng);
        assert!(s > 0.99 && d > 0.99);
    }

    #[test]
    fn anonymity_decays_with_f() {
        let mut rng = StdRng::seed_from_u64(2);
        let (s1, d1) = avg(0.1, &mut rng);
        let (s2, d2) = avg(0.6, &mut rng);
        assert!(s1 > s2);
        assert!(d1 > d2);
    }

    #[test]
    fn dest_falls_at_least_as_fast_as_exit_compromise() {
        // Dest anonymity is bounded by 1 - f (malicious exit = 0).
        let mut rng = StdRng::seed_from_u64(3);
        let (_, d) = avg(0.5, &mut rng);
        assert!(d < 0.72, "dest anonymity {d} too high for f=0.5");
    }
}
