//! Forwarding-graph construction — the paper's Algorithm 1 plus the
//! per-node information, slice-maps, data-maps and flow-id machinery of
//! §4.3.
//!
//! The source arranges `L` stages of `d′` relays (stage 0 being itself and
//! its pseudo-sources), assigns every relay's confidential routing
//! information to `d′` slices travelling on **vertex-disjoint paths**, and
//! computes for every relay the slice-map (§4.3.6) and data-map (§4.3.7)
//! that tell it how to forward without learning anything beyond its own
//! parents and children.
//!
//! Our slice-to-node assignment uses a *balanced* variant of the paper's
//! "distribute randomly, one slice per node" rule: per target stage the
//! transition permutations between consecutive stages form a Latin-square
//! decomposition of the complete bipartite stage graph, which makes every
//! packet carry **exactly** `L − m` real slices at stage boundary
//! `m → m+1` — matching Fig. 4, where each source packet carries one slice
//! per downstream stage — so packets are constant-size with pure random
//! padding in the unused slots (§9.4(c)).
//!
//! Module map:
//! * [`addr`] — opaque overlay addresses.
//! * [`params`] — graph parameters and validation.
//! * [`info`] — the per-node information `I_x` (§4.3.1) and its
//!   fixed-size serialization.
//! * [`build`] — graph construction (Algorithm 1) and path/slice-map
//!   computation.
//! * [`packets`] — emission of the setup packets the pseudo-sources send.

#![forbid(unsafe_code)]

pub mod addr;
pub mod build;
pub mod info;
pub mod packets;
pub mod params;

pub use addr::OverlayAddr;
pub use build::{rebuild_excluding, BuiltGraph, GraphError, NodePosition};
pub use info::{NodeInfo, SliceMapEntry};
pub use params::{DataMode, DestPlacement, GraphParams};
