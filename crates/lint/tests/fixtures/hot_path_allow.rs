//! Fixture: allowlist semantics — justified suppresses, bare does not.

// lint: hot-path
pub fn drain(slots: &[u32]) -> Vec<u32> {
    // lint: allow(hot-path) — once per flush, measured negligible.
    let mut out = slots.to_vec();
    // lint: allow(hot-path)
    let tail = slots.to_vec();
    out.extend(tail);
    out
}

// lint: allow(made-up) — unknown rules are findings, not suppressions.
