//! Driver-side process harness: write configs, spawn `slicing-node`
//! children, kill/restart them mid-run, scrape their metrics.
//!
//! Everything here is deliberately synchronous `std` — the harness
//! runs in test binaries and the `soak` driver where a blocking scrape
//! with a socket timeout is simpler and more robust than threading the
//! async runtime through process management.

use crate::config::NodeConfig;
use crate::metrics::parse_exposition;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Ask the OS for a currently free UDP port (bind `:0`, read, drop).
/// The tiny reuse race is acceptable for localhost test fleets.
pub fn free_udp_port() -> u16 {
    let sock = std::net::UdpSocket::bind("127.0.0.1:0").expect("bind probe socket");
    sock.local_addr().expect("probe local_addr").port()
}

/// Ask the OS for a currently free TCP port.
pub fn free_tcp_port() -> u16 {
    let sock = std::net::TcpListener::bind("127.0.0.1:0").expect("bind probe socket");
    sock.local_addr().expect("probe local_addr").port()
}

/// One HTTP GET/POST against a node's metrics port, with timeouts.
fn http_request(port: u16, request: &str, timeout: Duration) -> std::io::Result<String> {
    let addr = std::net::SocketAddr::from(([127, 0, 0, 1], port));
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.write_all(request.as_bytes())?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    Ok(response)
}

/// Scrape one metrics endpoint into `series → value`. Series names
/// keep their label sets verbatim (`slicing_cc_rate_dps{peer="..."}`).
pub fn scrape_metrics(port: u16, timeout: Duration) -> std::io::Result<HashMap<String, f64>> {
    let response = http_request(port, "GET /metrics HTTP/1.0\r\n\r\n", timeout)?;
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, body)| body)
        .unwrap_or("");
    Ok(parse_exposition(body).into_iter().collect())
}

/// One managed `slicing-node` process.
pub struct NodeProc {
    /// Fleet-unique name (config and log files are named after it).
    pub name: String,
    /// The config the process runs (rewritten to disk at `add`).
    pub config: NodeConfig,
    config_path: PathBuf,
    log_path: PathBuf,
    child: Option<Child>,
}

impl NodeProc {
    /// Whether a spawned process is still running (reaps on exit).
    pub fn is_up(&mut self) -> bool {
        match &mut self.child {
            Some(child) => matches!(child.try_wait(), Ok(None)),
            None => false,
        }
    }
}

/// A localhost fleet of `slicing-node` processes.
pub struct Fleet {
    dir: PathBuf,
    bin: PathBuf,
    nodes: Vec<NodeProc>,
}

impl Fleet {
    /// A fleet rooted at `dir` (created if missing; holds configs and
    /// per-node logs), spawning the daemon binary at `bin`.
    pub fn new(dir: PathBuf, bin: PathBuf) -> std::io::Result<Fleet> {
        std::fs::create_dir_all(&dir)?;
        Ok(Fleet {
            dir,
            bin,
            nodes: Vec::new(),
        })
    }

    /// Resolve the `slicing-node` binary like a sibling of the current
    /// executable (how cargo lays out bins of one crate), with the
    /// `SLICING_NODE_BIN` environment override.
    pub fn sibling_binary() -> std::io::Result<PathBuf> {
        if let Ok(path) = std::env::var("SLICING_NODE_BIN") {
            return Ok(PathBuf::from(path));
        }
        let mut exe = std::env::current_exe()?;
        exe.set_file_name("slicing-node");
        Ok(exe)
    }

    /// Register a node (writes its config file) without spawning it.
    /// Returns its fleet index.
    pub fn add(&mut self, name: &str, config: NodeConfig) -> std::io::Result<usize> {
        let config_path = self.dir.join(format!("{name}.toml"));
        std::fs::write(&config_path, config.to_toml())?;
        self.nodes.push(NodeProc {
            name: name.to_string(),
            config,
            config_path,
            log_path: self.dir.join(format!("{name}.log")),
            child: None,
        });
        Ok(self.nodes.len() - 1)
    }

    /// Access a node.
    pub fn node(&mut self, idx: usize) -> &mut NodeProc {
        &mut self.nodes[idx]
    }

    /// Number of registered nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the fleet has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Spawn (or respawn) a node. Its stdin is a pipe we hold open:
    /// dropping it — including by this process dying — is the node's
    /// clean-shutdown signal. Stdout/stderr append to the node's log.
    pub fn spawn(&mut self, idx: usize) -> std::io::Result<()> {
        let node = &mut self.nodes[idx];
        let log = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&node.log_path)?;
        let child = Command::new(&self.bin)
            .arg(&node.config_path)
            .stdin(Stdio::piped())
            .stdout(log.try_clone()?)
            .stderr(log)
            .spawn()?;
        node.child = Some(child);
        Ok(())
    }

    /// SIGKILL a node (no clean shutdown — this is the crash model for
    /// churn tests) and reap it.
    pub fn kill(&mut self, idx: usize) {
        if let Some(mut child) = self.nodes[idx].child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }

    /// Ask a node to exit cleanly (drop its stdin pipe) and wait up to
    /// `timeout`; escalates to SIGKILL after. Returns whether the exit
    /// was clean.
    pub fn shutdown(&mut self, idx: usize, timeout: Duration) -> bool {
        let Some(mut child) = self.nodes[idx].child.take() else {
            return true;
        };
        drop(child.stdin.take());
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if matches!(child.try_wait(), Ok(Some(_))) {
                return true;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        let _ = child.kill();
        let _ = child.wait();
        false
    }

    /// Scrape a node's metrics endpoint.
    pub fn scrape(&self, idx: usize) -> std::io::Result<HashMap<String, f64>> {
        scrape_metrics(
            self.nodes[idx].config.metrics_listen,
            Duration::from_secs(2),
        )
    }

    /// Poll a node's `/healthz` until it answers (bounded retries).
    pub fn wait_healthy(&self, idx: usize, timeout: Duration) -> bool {
        let port = self.nodes[idx].config.metrics_listen;
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if http_request(port, "GET /healthz HTTP/1.0\r\n\r\n", Duration::from_millis(500))
                .map(|r| r.contains("ok"))
                .unwrap_or(false)
            {
                return true;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        false
    }

    /// Where a node's log lives (for failure diagnostics).
    pub fn log_path(&self, idx: usize) -> &Path {
        &self.nodes[idx].log_path
    }

    /// Kill every running node.
    pub fn kill_all(&mut self) {
        for idx in 0..self.nodes.len() {
            self.kill(idx);
        }
    }
}

impl Drop for Fleet {
    fn drop(&mut self) {
        self.kill_all();
    }
}
