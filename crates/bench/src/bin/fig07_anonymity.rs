//! Fig. 7: source and destination anonymity vs fraction of malicious
//! nodes, compared with Chaum mixes (N = 10000, L = 8, d = 3).

use slicing_anonymity::chaum::ChaumParams;
use slicing_anonymity::montecarlo::{average_anonymity, average_chaum};
use slicing_anonymity::ScenarioParams;
use slicing_bench::{banner, RunOpts, Table};

fn main() {
    let opts = RunOpts::from_args();
    let trials = opts.trials(1000);
    banner(
        "Figure 7 — anonymity vs fraction of malicious nodes",
        "N=10000, L=8, d=3, 1000 trials/point",
        "high (>0.9) anonymity for f <= 0.2; dest falls faster than source; \
         slicing tracks Chaum mixes",
    );
    let mut table = Table::new(&[
        "f",
        "src_slicing",
        "dst_slicing",
        "src_chaum",
        "dst_chaum",
    ]);
    for &f in &[
        0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9,
    ] {
        let s = average_anonymity(
            &ScenarioParams::new(10_000, 8, 3, f),
            trials,
            opts.seed,
        );
        let c = average_chaum(
            &ChaumParams {
                n: 10_000,
                length: 8,
                fraction_malicious: f,
            },
            trials,
            opts.seed,
        );
        table.row(&[f, s.source, s.dest, c.source, c.dest]);
    }
    table.print();
}
