//! Property tests: wire round-trip totality, decoder robustness, and
//! byte-identical accept/reject parity between the zero-copy decoder and
//! the PR 1 copying decoder it replaced.

use proptest::prelude::*;
use slicing_wire::{FlowId, Packet, PacketHeader, PacketKind, HEADER_LEN, MAGIC, VERSION};

/// The PR 1 decoder, reproduced verbatim as the model: parse the header
/// field-by-field and copy every slot out. The zero-copy
/// [`Packet::decode`] must accept exactly the inputs this accepts (with
/// identical parsed fields and slot bytes) and reject with the same
/// error.
#[allow(clippy::type_complexity)]
fn model_decode(bytes: &[u8]) -> Result<(PacketHeader, Vec<Vec<u8>>), slicing_wire::WireError> {
    use slicing_wire::WireError;
    if bytes.len() < HEADER_LEN {
        return Err(WireError::Truncated);
    }
    if bytes[0..2] != MAGIC {
        return Err(WireError::BadMagic);
    }
    if bytes[2] != VERSION {
        return Err(WireError::BadVersion);
    }
    let kind = match bytes[3] {
        0 => PacketKind::Setup,
        1 => PacketKind::Data,
        2 => PacketKind::Control,
        _ => return Err(WireError::BadKind),
    };
    let flow_id = FlowId(u64::from_le_bytes(bytes[4..12].try_into().unwrap()));
    let seq = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
    let d = bytes[16];
    let slot_count = bytes[17];
    let slot_len = u16::from_le_bytes(bytes[18..20].try_into().unwrap());
    if d == 0 || slot_count == 0 || (d as u16) > slot_len {
        return Err(WireError::Inconsistent);
    }
    let body_len = slot_count as usize * slot_len as usize;
    if bytes.len() - HEADER_LEN != body_len {
        return Err(WireError::Truncated);
    }
    let slots = bytes[HEADER_LEN..]
        .chunks_exact(slot_len as usize)
        .map(|c| c.to_vec())
        .collect();
    Ok((
        PacketHeader {
            kind,
            flow_id,
            seq,
            d,
            slot_count,
            slot_len,
        },
        slots,
    ))
}

/// Assert the zero-copy decoder and the model agree on `bytes`.
fn assert_parity(bytes: &[u8]) {
    match (Packet::decode(bytes), model_decode(bytes)) {
        (Ok(p), Ok((header, slots))) => {
            prop_assert_eq!(p.header, header);
            prop_assert_eq!(p.slots().count(), slots.len());
            for (i, slot) in slots.iter().enumerate() {
                prop_assert_eq!(p.slot(i), slot.as_slice());
                prop_assert_eq!(p.slot_bytes(i).as_ref(), slot.as_slice());
            }
            prop_assert_eq!(p.encode().as_ref(), bytes);
        }
        (Err(e), Err(m)) => prop_assert_eq!(e, m),
        (got, model) => prop_assert!(
            false,
            "decoder divergence: zero-copy {:?} vs model {:?}",
            got.map(|p| p.header),
            model.map(|(h, _)| h)
        ),
    }
}

/// Build a valid wire packet from sampled parameters.
fn build_packet_bytes(flow: u64, d: u8, slots: u8, extra: u16, kind: bool, seed: u64) -> Vec<u8> {
    let slot_len = d as u16 + extra;
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let slot_data: Vec<Vec<u8>> = (0..slots)
        .map(|_| (0..slot_len).map(|_| rng.gen()).collect())
        .collect();
    Packet::new(
        PacketHeader {
            kind: if kind {
                PacketKind::Setup
            } else {
                PacketKind::Data
            },
            flow_id: FlowId(flow),
            seq: flow as u32,
            d,
            slot_count: slots,
            slot_len,
        },
        slot_data,
    )
    .encode()
    .to_vec()
}

proptest! {
    /// encode ∘ decode is the identity for every valid packet shape.
    #[test]
    fn round_trip(flow in any::<u64>(), d in 1u8..16, slots in 1u8..12,
                  extra in 0u16..64, kind in any::<bool>(),
                  content_seed in any::<u64>()) {
        let bytes = build_packet_bytes(flow, d, slots, extra, kind, content_seed);
        let p = Packet::decode(&bytes).unwrap();
        prop_assert_eq!(p.encode().as_ref(), bytes.as_slice());
    }

    /// The decoder never panics on arbitrary input, and agrees with the
    /// PR 1 model on whether (and how) it fails.
    #[test]
    fn decode_never_panics_and_matches_model(
        bytes in proptest::collection::vec(any::<u8>(), 0..512)
    ) {
        assert_parity(&bytes);
    }

    /// Valid packets decode byte-identically to the PR 1 decoder.
    #[test]
    fn valid_packets_match_model(flow in any::<u64>(), d in 1u8..16, slots in 1u8..12,
                                 extra in 0u16..64, kind in any::<bool>(),
                                 content_seed in any::<u64>()) {
        let bytes = build_packet_bytes(flow, d, slots, extra, kind, content_seed);
        assert_parity(&bytes);
    }

    /// Mutation fuzz: overwriting any byte (header fields — magic,
    /// version, kind, d, slot_count, slot_len — or body) leaves both
    /// decoders in agreement: same accept set, same error, same parsed
    /// view.
    #[test]
    fn mutated_packets_match_model(flow in any::<u64>(), d in 1u8..16, slots in 1u8..12,
                                   extra in 0u16..64, content_seed in any::<u64>(),
                                   pos in any::<u16>(), value in any::<u8>()) {
        let mut bytes = build_packet_bytes(flow, d, slots, extra, false, content_seed);
        let idx = pos as usize % bytes.len();
        bytes[idx] = value;
        assert_parity(&bytes);
    }

    /// Header-focused mutation fuzz: hammer the 20 header bytes
    /// specifically, where every accept/reject branch lives.
    #[test]
    fn mutated_headers_match_model(flow in any::<u64>(), d in 1u8..16, slots in 1u8..12,
                                   extra in 0u16..64, content_seed in any::<u64>(),
                                   pos in 0usize..HEADER_LEN, value in any::<u8>()) {
        let mut bytes = build_packet_bytes(flow, d, slots, extra, true, content_seed);
        bytes[pos] = value;
        assert_parity(&bytes);
    }

    /// Truncation fuzz: every prefix of a valid packet is handled
    /// identically by both decoders.
    #[test]
    fn truncated_packets_match_model(flow in any::<u64>(), d in 1u8..16, slots in 1u8..12,
                                     extra in 0u16..64, content_seed in any::<u64>(),
                                     cut in any::<u16>()) {
        let bytes = build_packet_bytes(flow, d, slots, extra, false, content_seed);
        let cut = cut as usize % (bytes.len() + 1);
        assert_parity(&bytes[..cut]);
    }

    /// Any single-byte corruption either still parses to a same-shape
    /// packet or fails cleanly — never panics, never changes length
    /// interpretation silently.
    #[test]
    fn bitflip_robustness(pos in any::<u16>(), bit in 0u8..8) {
        let p = Packet::new(
            PacketHeader {
                kind: PacketKind::Data,
                flow_id: FlowId(42),
                seq: 1,
                d: 3,
                slot_count: 4,
                slot_len: 20,
            },
            vec![vec![7u8; 20]; 4],
        );
        let mut bytes = p.encode().to_vec();
        let idx = pos as usize % bytes.len();
        bytes[idx] ^= 1 << bit;
        if let Ok(decoded) = Packet::decode(&bytes) {
            prop_assert_eq!(decoded.wire_len(), bytes.len());
        }
    }
}
