//! GF(2¹⁶) with lazily-built log/exp tables.
//!
//! Modulus polynomial: `x¹⁶ + x¹² + x³ + x + 1` (0x1100B), generator
//! `α = 2`. This is the word-sized field of the paper's IP-splitting
//! example (Eq. 1): the low and high 16-bit words of an IPv4 address are
//! two elements of this field.
//!
//! Tables are 384 KiB, built on first use behind a `OnceLock` to keep
//! compile times and binary size down.

use std::sync::OnceLock;

use crate::field::Field;

pub(crate) const POLY: u32 = 0x1100B;
const ORDER_MINUS_1: usize = 65535;

pub(crate) struct Tables {
    /// `exp[i] = α^i` for `i ∈ [0, 2·65535)`, doubled to skip a modulo.
    pub(crate) exp: Vec<u16>,
    /// `log[x] = log_α x` for nonzero `x`.
    pub(crate) log: Vec<u16>,
}

pub(crate) fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut exp = vec![0u16; 2 * ORDER_MINUS_1];
        let mut log = vec![0u16; 65536];
        let mut x: u32 = 1;
        for i in 0..ORDER_MINUS_1 {
            exp[i] = x as u16;
            exp[i + ORDER_MINUS_1] = x as u16;
            log[x as usize] = i as u16;
            x <<= 1;
            if x & 0x1_0000 != 0 {
                x ^= POLY;
            }
        }
        debug_assert_eq!(x, 1, "0x1100B must be primitive with generator 2");
        Tables { exp, log }
    })
}

/// An element of GF(2¹⁶).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Default)]
#[repr(transparent)]
pub struct Gf65536(pub u16);

impl std::fmt::Debug for Gf65536 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "gf64k:{:04x}", self.0)
    }
}

impl Gf65536 {
    /// Wrap a raw 16-bit word as a field element.
    #[inline]
    pub const fn new(v: u16) -> Self {
        Gf65536(v)
    }

    /// The raw word value.
    #[inline]
    pub const fn value(self) -> u16 {
        self.0
    }
}

impl Field for Gf65536 {
    const BYTES: usize = 2;
    const ORDER: u64 = 65536;

    #[inline]
    fn zero() -> Self {
        Gf65536(0)
    }

    #[inline]
    fn one() -> Self {
        Gf65536(1)
    }

    #[inline]
    fn add(self, rhs: Self) -> Self {
        Gf65536(self.0 ^ rhs.0)
    }

    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Gf65536(self.0 ^ rhs.0)
    }

    #[inline]
    fn mul(self, rhs: Self) -> Self {
        if self.0 == 0 || rhs.0 == 0 {
            return Gf65536(0);
        }
        let t = tables();
        Gf65536(t.exp[t.log[self.0 as usize] as usize + t.log[rhs.0 as usize] as usize])
    }

    #[inline]
    fn inv(self) -> Self {
        assert!(self.0 != 0, "inverse of zero in GF(2^16)");
        let t = tables();
        Gf65536(t.exp[ORDER_MINUS_1 - t.log[self.0 as usize] as usize])
    }

    #[inline]
    fn from_u64(v: u64) -> Self {
        Gf65536((v & 0xFFFF) as u16)
    }

    #[inline]
    fn to_u64(self) -> u64 {
        self.0 as u64
    }

    #[inline]
    fn write_bytes(self, out: &mut [u8]) {
        out[..2].copy_from_slice(&self.0.to_le_bytes());
    }

    #[inline]
    fn read_bytes(bytes: &[u8]) -> Self {
        Gf65536(u16::from_le_bytes([bytes[0], bytes[1]]))
    }

    // Bulk hooks: route the matrix/mds inner loops through the shared
    // word-slice kernels in [`crate::bulk`] (one table fetch and one
    // hoisted `log c` per call instead of per element), mirroring what
    // `Gf256` does with its 64 KiB multiplication table.

    fn dot_slices(a: &[Self], b: &[Self]) -> Self {
        crate::bulk::dot_slice16(a, b)
    }

    fn axpy_slices(acc: &mut [Self], c: Self, src: &[Self]) {
        crate::bulk::mul_add_slice16(acc, c, src);
    }

    fn scale_slices(row: &mut [Self], c: Self) {
        crate::bulk::mul_slice16(row, c);
    }

    fn sub_scaled_slices(dst: &mut [Self], c: Self, src: &[Self]) {
        // Characteristic 2: subtraction is addition.
        crate::bulk::mul_add_slice16(dst, c, src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Schoolbook carry-less multiply + reduce, for cross-checking tables.
    fn slow_mul(a: u16, b: u16) -> u16 {
        let (a, b) = (a as u32, b as u32);
        let mut acc: u32 = 0;
        for i in 0..16 {
            if b & (1 << i) != 0 {
                acc ^= a << i;
            }
        }
        for bit in (16..32).rev() {
            if acc & (1 << bit) != 0 {
                acc ^= POLY << (bit - 16);
            }
        }
        acc as u16
    }

    #[test]
    fn table_mul_matches_schoolbook_sampled() {
        // Exhaustive is 4G pairs; sample a deterministic grid plus edges.
        let samples: Vec<u16> = (0..=16u32)
            .map(|i| ((i * 4099) % 65536) as u16)
            .chain([0, 1, 2, 0xFFFF, 0x8000, 0x1234])
            .collect();
        for &a in &samples {
            for &b in &samples {
                assert_eq!(
                    Gf65536(a).mul(Gf65536(b)).0,
                    slow_mul(a, b),
                    "mismatch at {a:#x} * {b:#x}"
                );
            }
        }
    }

    #[test]
    fn inverses_sampled() {
        for step in 1..=4096u32 {
            let a = ((step * 17) % 65535 + 1) as u16;
            let x = Gf65536(a);
            assert_eq!(x.mul(x.inv()), Gf65536::one());
        }
    }

    #[test]
    fn ip_word_split_round_trip() {
        // The paper's Eq. 1: an IPv4 address split into low/high words
        // must survive a transform/inverse-transform round trip.
        use crate::matrix::Matrix;
        let mut rng = rand::thread_rng();
        let ip: u32 = 0xC0A80102; // 192.168.1.2
        let lo = Gf65536((ip & 0xFFFF) as u16);
        let hi = Gf65536((ip >> 16) as u16);
        let a = Matrix::<Gf65536>::random_invertible(2, &mut rng);
        let coded = a.mul_vec(&[lo, hi]);
        let back = a.inverse().unwrap().mul_vec(&coded);
        assert_eq!(back, vec![lo, hi]);
    }
}
