//! A hashed timer wheel over protocol [`Tick`]s.
//!
//! The relay's flow table used to discover expired work by scanning every
//! flow on every 50 ms poll — O(flows) per tick, with a scratch
//! allocation to boot. The wheel inverts that: deadlines are registered
//! once when the work is created (a gather starts, a flow is admitted),
//! and [`poll_expired`](TimerWheel::poll_expired) touches only the
//! buckets the clock has swept past since the previous poll. A poll that
//! finds nothing due does no allocation and never looks at a live flow.
//!
//! Design notes:
//!
//! * **Hashed, not hierarchical**: a deadline lands in bucket
//!   `(deadline / granularity) % buckets`. Entries whose deadline lies
//!   beyond the wheel's horizon simply stay in their bucket across
//!   rotations and are re-examined once per rotation — a deliberate
//!   trade: `O(1)` insert, no cascade step, and the occasional re-check
//!   costs one comparison.
//! * **Exact firing at the boundary**: the bucket the current time falls
//!   into is swept *partially* (entries due now fire, the rest stay) and
//!   re-swept on the next poll, so a deadline fires on the first poll
//!   with `now >= deadline` — never early, never a bucket late.
//! * **Lazy cancellation**: there are no timer handles. Callers
//!   re-validate when an entry fires (is the gather still unflushed? is
//!   the flow actually idle?) and either act or re-arm. Stale entries
//!   cost one match arm each.

use crate::time::Tick;

/// A hashed timer wheel mapping deadlines to caller-defined keys.
#[derive(Clone, Debug)]
pub struct TimerWheel<K> {
    /// Bucket width in milliseconds.
    granularity_ms: u64,
    /// The buckets; each holds `(deadline, key)` pairs in arbitrary order.
    buckets: Vec<Vec<(Tick, K)>>,
    /// The next bucket-time (in `granularity_ms` units) to sweep; only
    /// ever advances.
    cursor: u64,
    /// Live entries across all buckets.
    len: usize,
}

impl<K> TimerWheel<K> {
    /// A wheel with the given bucket width and count (horizon =
    /// `granularity_ms × buckets`).
    ///
    /// # Panics
    /// Panics if either parameter is zero.
    pub fn new(granularity_ms: u64, buckets: usize) -> Self {
        assert!(granularity_ms > 0, "zero granularity");
        assert!(buckets > 0, "zero buckets");
        TimerWheel {
            granularity_ms,
            buckets: (0..buckets).map(|_| Vec::new()).collect(),
            cursor: 0,
            len: 0,
        }
    }

    /// Number of pending entries (including stale ones not yet fired).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no entries are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Register `key` to fire once `now >= deadline`.
    ///
    /// Deadlines already in the past are delivered on the next poll.
    pub fn schedule(&mut self, deadline: Tick, key: K) {
        // A deadline whose natural bucket the cursor has already swept
        // would wait a full rotation; clamp it to the cursor's bucket so
        // the next poll delivers it.
        let bucket_time = (deadline.0 / self.granularity_ms).max(self.cursor);
        let idx = (bucket_time % self.buckets.len() as u64) as usize;
        self.buckets[idx].push((deadline, key));
        self.len += 1;
    }

    /// Pop every entry with `deadline <= now` into `out` (appending, in
    /// bucket-sweep order), advancing the cursor. Reuses `out`'s capacity
    /// — an idle poll allocates nothing.
    ///
    /// Cost is `O(buckets swept + entries fired)`, and a catch-up after
    /// any gap is capped at one sweep of every bucket: a gap of ≥ one
    /// rotation visits each bucket exactly once rather than once per
    /// elapsed bucket-time (a suspended daemon or a simulator jumping
    /// virtual time hours ahead must not spin).
    pub fn poll_expired(&mut self, now: Tick, out: &mut Vec<(Tick, K)>) {
        // Re-arm monotonicity: the cursor never moves backwards, so a
        // deadline re-armed by a fired entry lands at or ahead of the
        // sweep (never in a bucket the sweep silently skipped).
        let swept_from = self.cursor;
        let now_bucket = now.0 / self.granularity_ms;
        let n = self.buckets.len() as u64;
        if now_bucket > self.cursor && now_bucket - self.cursor >= n {
            // Long gap: one full rotation covers every entry once.
            for bucket in &mut self.buckets {
                let mut i = 0;
                while i < bucket.len() {
                    if bucket[i].0 .0 <= now.0 {
                        out.push(bucket.swap_remove(i));
                        self.len -= 1;
                    } else {
                        i += 1;
                    }
                }
            }
            self.cursor = now_bucket;
            debug_assert!(self.cursor >= swept_from, "wheel cursor moved backwards");
            return;
        }
        while self.cursor <= now_bucket {
            let idx = (self.cursor % self.buckets.len() as u64) as usize;
            let bucket = &mut self.buckets[idx];
            let mut i = 0;
            while i < bucket.len() {
                if bucket[i].0 .0 <= now.0 {
                    out.push(bucket.swap_remove(i));
                    self.len -= 1;
                } else {
                    i += 1;
                }
            }
            if self.cursor == now_bucket {
                // The current bucket is only partially elapsed: entries
                // due later this bucket stay, and the cursor stays so the
                // next poll re-sweeps it.
                break;
            }
            self.cursor += 1;
        }
        debug_assert!(self.cursor >= swept_from, "wheel cursor moved backwards");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(w: &mut TimerWheel<u32>, now: u64) -> Vec<u32> {
        let mut out = Vec::new();
        w.poll_expired(Tick(now), &mut out);
        let mut keys: Vec<u32> = out.into_iter().map(|(_, k)| k).collect();
        keys.sort_unstable();
        keys
    }

    #[test]
    fn fires_exactly_at_deadline() {
        let mut w = TimerWheel::new(50, 64);
        w.schedule(Tick(1_234), 1);
        assert!(drain(&mut w, 1_233).is_empty(), "must not fire early");
        assert_eq!(drain(&mut w, 1_234), vec![1], "must fire at the boundary");
        assert!(w.is_empty());
    }

    #[test]
    fn deadline_on_bucket_boundary() {
        let mut w = TimerWheel::new(50, 64);
        w.schedule(Tick(100), 7); // exactly the start of a bucket
        assert!(drain(&mut w, 99).is_empty());
        assert_eq!(drain(&mut w, 100), vec![7]);
    }

    #[test]
    fn past_deadline_fires_on_next_poll() {
        let mut w = TimerWheel::new(50, 64);
        let mut out = Vec::new();
        w.poll_expired(Tick(10_000), &mut out); // advance cursor
        w.schedule(Tick(3), 9); // long past; natural bucket already swept
        assert_eq!(drain(&mut w, 10_000), vec![9]);
    }

    #[test]
    fn beyond_horizon_survives_rotation() {
        // Horizon = 50 ms × 8 buckets = 400 ms; a 1-second deadline wraps
        // twice and still fires exactly once, at the right time.
        let mut w = TimerWheel::new(50, 8);
        w.schedule(Tick(1_000), 3);
        for now in (0..1_000).step_by(40) {
            assert!(drain(&mut w, now).is_empty(), "fired early at {now}");
        }
        assert_eq!(drain(&mut w, 1_000), vec![3]);
    }

    #[test]
    fn skipped_polls_deliver_everything() {
        let mut w = TimerWheel::new(50, 16);
        for k in 0..100u32 {
            w.schedule(Tick(k as u64 * 37), k);
        }
        assert_eq!(w.len(), 100);
        // One giant jump collects all of them.
        let fired = drain(&mut w, 100 * 37);
        assert_eq!(fired, (0..100).collect::<Vec<_>>());
        assert!(w.is_empty());
    }

    #[test]
    fn partial_bucket_is_reswept() {
        let mut w = TimerWheel::new(50, 64);
        w.schedule(Tick(120), 1);
        w.schedule(Tick(140), 2);
        assert_eq!(drain(&mut w, 125), vec![1]); // same bucket, only #1 due
        assert_eq!(drain(&mut w, 140), vec![2]); // re-swept, #2 fires
    }

    #[test]
    fn giant_time_jump_is_one_rotation_not_a_spin() {
        // A day-long gap must complete instantly (one bucket sweep) and
        // still fire everything due while keeping future entries.
        let mut w = TimerWheel::new(50, 64);
        w.schedule(Tick(500), 1);
        let day = 24 * 3600 * 1000;
        w.schedule(Tick(day + 10_000), 2);
        assert_eq!(drain(&mut w, day), vec![1]);
        assert_eq!(w.len(), 1);
        // The wheel keeps working after the jump: exact firing resumes.
        assert!(drain(&mut w, day + 9_999).is_empty());
        assert_eq!(drain(&mut w, day + 10_000), vec![2]);
    }

    #[test]
    fn idle_poll_allocates_nothing() {
        let mut w: TimerWheel<u32> = TimerWheel::new(50, 64);
        w.schedule(Tick(1_000_000), 5);
        let mut out: Vec<(Tick, u32)> = Vec::new();
        w.poll_expired(Tick(500), &mut out);
        assert!(out.is_empty());
        assert_eq!(out.capacity(), 0, "idle poll must not allocate");
    }
}
