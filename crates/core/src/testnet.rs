//! A deterministic in-memory overlay for driving whole graphs through the
//! sans-IO engine — used by the integration tests, the churn simulator
//! (Fig. 17) and the property tests.
//!
//! Supports failure injection: nodes can be killed (they silently eat
//! packets, like a departed overlay peer) and links can drop packets with
//! a configured probability.

use std::collections::{HashMap, HashSet, VecDeque};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use slicing_graph::packets::SendInstr;
use slicing_graph::OverlayAddr;

use crate::relay::{ReceivedData, RelayConfig};
use crate::shard::ShardedRelay;
use crate::source::SourceSession;
use crate::time::Tick;

/// The in-memory network.
pub struct TestNet {
    /// Relay state machines by address. Hosted as [`ShardedRelay`]s so
    /// every scenario can also run with a sharded data plane (see
    /// [`TestNet::with_shards`]); the default single shard behaves
    /// bit-identically to the classic `RelayNode`.
    pub relays: HashMap<OverlayAddr, ShardedRelay>,
    /// Addresses that have failed (packets to them vanish).
    pub failed: HashSet<OverlayAddr>,
    /// Per-packet drop probability on every link.
    pub drop_prob: f64,
    /// In-flight packets (FIFO).
    queue: VecDeque<SendInstr>,
    /// Virtual clock.
    pub now: Tick,
    /// Messages delivered to destinations.
    pub delivered: Vec<(OverlayAddr, ReceivedData)>,
    /// Total packets transported.
    pub packets_transported: u64,
    /// Total payload bytes transported.
    pub bytes_transported: u64,
    /// Setup packets delivered per relay address — lets churn tests
    /// assert a repair re-established only the affected nodes.
    pub setup_delivered: HashMap<OverlayAddr, u64>,
    rng: StdRng,
}

impl TestNet {
    /// Create a network hosting relays at the given addresses.
    pub fn new(relay_addrs: &[OverlayAddr], seed: u64) -> Self {
        Self::with_config(relay_addrs, seed, RelayConfig::default())
    }

    /// Create with a custom relay configuration.
    pub fn with_config(relay_addrs: &[OverlayAddr], seed: u64, config: RelayConfig) -> Self {
        Self::with_shards(relay_addrs, seed, config, 1)
    }

    /// Create with every relay sharded `shards` ways — the same traffic
    /// flows through `hash(flow_id)`-routed [`crate::relay::RelayShard`]s
    /// instead of one state machine per node.
    pub fn with_shards(
        relay_addrs: &[OverlayAddr],
        seed: u64,
        config: RelayConfig,
        shards: usize,
    ) -> Self {
        let relays = relay_addrs
            .iter()
            .map(|&a| (a, ShardedRelay::with_config(a, seed, config, shards)))
            .collect();
        TestNet {
            relays,
            failed: HashSet::new(),
            drop_prob: 0.0,
            queue: VecDeque::new(),
            now: Tick::ZERO,
            delivered: Vec::new(),
            packets_transported: 0,
            bytes_transported: 0,
            setup_delivered: HashMap::new(),
            rng: StdRng::seed_from_u64(seed ^ 0xD15EA5E),
        }
    }

    /// Mark a node as failed (silent blackhole, like a churned-out peer).
    pub fn fail(&mut self, addr: OverlayAddr) {
        self.failed.insert(addr);
    }

    /// Revive a failed node (it keeps its old state, like a returning
    /// peer whose flow table survived).
    pub fn revive(&mut self, addr: OverlayAddr) {
        self.failed.remove(&addr);
    }

    /// Enqueue packets for delivery.
    pub fn submit(&mut self, sends: Vec<SendInstr>) {
        self.queue.extend(sends);
    }

    /// Deliver all queued packets (and the packets they generate) until
    /// the network is quiet. `source` receives reverse-path packets
    /// addressed to its pseudo-sources; decoded reverse messages are
    /// returned.
    pub fn run_to_quiescence(
        &mut self,
        source: Option<&mut SourceSession>,
    ) -> Vec<(u32, Vec<u8>)> {
        let mut reverse_messages = Vec::new();
        let mut source = source;
        let mut iterations = 0usize;
        while let Some(instr) = self.queue.pop_front() {
            iterations += 1;
            assert!(
                iterations < 10_000_000,
                "testnet did not quiesce; routing loop?"
            );
            if self.failed.contains(&instr.to) || self.failed.contains(&instr.from) {
                continue;
            }
            if self.drop_prob > 0.0 && self.rng.gen::<f64>() < self.drop_prob {
                continue;
            }
            self.packets_transported += 1;
            self.bytes_transported += instr.packet.encode().len() as u64;

            // Pseudo-source delivery (reverse path).
            if let Some(src) = source.as_deref_mut() {
                if src.pseudo_sources().contains(&instr.to) {
                    if let Some(msg) =
                        src.handle_packet(self.now, instr.to, instr.from, &instr.packet)
                    {
                        reverse_messages.push(msg);
                    }
                    continue;
                }
            }
            let Some(relay) = self.relays.get_mut(&instr.to) else {
                continue;
            };
            if instr.packet.header.kind == slicing_wire::PacketKind::Setup {
                *self.setup_delivered.entry(instr.to).or_insert(0) += 1;
            }
            let out = relay.handle_packet(self.now, instr.from, &instr.packet);
            for r in out.received {
                self.delivered.push((instr.to, r));
            }
            self.queue.extend(out.sends);
        }
        reverse_messages
    }

    /// Advance virtual time and poll every live relay (fires timeouts).
    pub fn advance(&mut self, ms: u64) {
        self.now = self.now.plus(ms);
        let addrs: Vec<OverlayAddr> = self.relays.keys().copied().collect();
        for addr in addrs {
            if self.failed.contains(&addr) {
                continue;
            }
            let out = self.relays.get_mut(&addr).unwrap().poll(self.now);
            for r in out.received {
                self.delivered.push((addr, r));
            }
            self.queue.extend(out.sends);
        }
    }

    /// Advance + run repeatedly until both the queue and the timers are
    /// exhausted (used after failures, when timeouts must fire). Returns
    /// any reverse-path messages decoded by the source along the way.
    ///
    /// When a source is supplied, its periodic work
    /// ([`SourceSession::poll`] — keepalives to the stage-1 relays) runs
    /// on every step, exactly as a live driver would run it.
    pub fn settle(
        &mut self,
        mut source: Option<&mut SourceSession>,
        step_ms: u64,
        steps: usize,
    ) -> Vec<(u32, Vec<u8>)> {
        let mut reverse = Vec::new();
        for _ in 0..steps {
            reverse.extend(self.run_to_quiescence(source.as_deref_mut()));
            self.advance(step_ms);
            if let Some(src) = source.as_deref_mut() {
                let sends = src.poll(self.now);
                self.submit(sends);
            }
        }
        reverse.extend(self.run_to_quiescence(source));
        reverse
    }

    /// Plaintexts delivered to a given destination address, in seq order.
    pub fn messages_for(&self, addr: OverlayAddr) -> Vec<(u32, Vec<u8>)> {
        let mut v: Vec<(u32, Vec<u8>)> = self
            .delivered
            .iter()
            .filter(|(a, _)| *a == addr)
            .map(|(_, r)| (r.seq, r.plaintext.clone()))
            .collect();
        v.sort();
        v.dedup();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slicing_graph::{DataMode, DestPlacement, GraphParams};

    fn addrs(base: u64, n: usize) -> Vec<OverlayAddr> {
        (0..n as u64).map(|i| OverlayAddr(base + i)).collect()
    }

    /// Full end-to-end: establish a graph, send a message, verify only
    /// the destination decodes it — with every relay sharded `shards`
    /// ways (1 = the classic single state machine per node).
    fn end_to_end_sharded(l: usize, d: usize, dp: usize, mode: DataMode, seed: u64, shards: usize) {
        let pseudo = addrs(10_000, dp);
        let candidates = addrs(20_000, l * dp + 10);
        let dest = OverlayAddr(1);
        let mut all_nodes = candidates.clone();
        all_nodes.push(dest);
        let params = GraphParams::new(l, d)
            .with_paths(dp)
            .with_data_mode(mode);
        let (mut source, setup) =
            SourceSession::establish(params, &pseudo, &candidates, dest, seed).unwrap();
        let mut net = TestNet::with_shards(&all_nodes, seed, RelayConfig::default(), shards);
        net.submit(setup);
        net.run_to_quiescence(Some(&mut source));

        let (_, sends) = source.send_message(b"Let's meet at 5pm").expect("within chunk budget");
        net.submit(sends);
        net.run_to_quiescence(Some(&mut source));

        let got = net.messages_for(dest);
        assert_eq!(got.len(), 1, "destination must decode exactly one message");
        assert_eq!(got[0].1, b"Let's meet at 5pm");
        // No other relay decoded anything.
        assert!(net.delivered.iter().all(|(a, _)| *a == dest));
    }

    fn end_to_end(l: usize, d: usize, dp: usize, mode: DataMode, seed: u64) {
        end_to_end_sharded(l, d, dp, mode, seed, 1);
    }

    #[test]
    fn end_to_end_recode_small() {
        end_to_end(3, 2, 2, DataMode::Recode, 1);
    }

    #[test]
    fn end_to_end_sharded_relays() {
        // The identical scenario through 8-way sharded relays: flow-id
        // routing must not change what arrives where.
        end_to_end_sharded(3, 2, 2, DataMode::Recode, 1, 8);
        end_to_end_sharded(5, 2, 3, DataMode::Recode, 2, 4);
        end_to_end_sharded(4, 2, 3, DataMode::Map, 3, 8);
    }

    /// A CRC-valid data slot whose length disagrees with the flow's must
    /// not panic the relay's recombination path nor corrupt delivery.
    #[test]
    fn malformed_slot_length_does_not_poison_flow() {
        use slicing_wire::{crc, Packet, PacketHeader, PacketKind};

        let (l, d, dp) = (3usize, 2usize, 2usize);
        let pseudo = addrs(10_000, dp);
        let candidates = addrs(20_000, l * dp + 10);
        let dest = OverlayAddr(1);
        let mut all_nodes = candidates.clone();
        all_nodes.push(dest);
        let params = GraphParams::new(l, d).with_paths(dp);
        let (mut source, setup) =
            SourceSession::establish(params, &pseudo, &candidates, dest, 2).unwrap();
        let mut net = TestNet::new(&all_nodes, 2);
        net.submit(setup);
        net.run_to_quiescence(Some(&mut source));

        // Legitimate message alongside a forged, CRC-valid slot of the
        // wrong length injected into a stage-1 relay for seq 0.
        let (seq, sends) = source.send_message(b"survives forgery").expect("within chunk budget");
        let target = source.graph().stages[1][0];
        let target_flow = source.graph().flow_ids[1][0];
        let bogus_block = 7usize; // flow's real block length differs
        let mut slot = vec![0xEEu8; d + bogus_block];
        crc::append_crc(&mut slot);
        let forged = Packet::new(
            PacketHeader {
                kind: PacketKind::Data,
                flow_id: target_flow,
                seq,
                d: d as u8,
                slot_count: 1,
                slot_len: slot.len() as u16,
            },
            vec![slot],
        );
        net.submit(vec![SendInstr {
            from: OverlayAddr(666),
            to: target,
            packet: forged,
        }]);
        net.submit(sends);
        net.run_to_quiescence(Some(&mut source));
        net.settle(Some(&mut source), 1_500, 6);

        let got = net.messages_for(dest);
        assert_eq!(got.len(), 1, "message must survive the forged slot");
        assert_eq!(got[0].1, b"survives forgery");
    }

    #[test]
    fn end_to_end_recode_redundant() {
        end_to_end(5, 2, 3, DataMode::Recode, 2);
    }

    #[test]
    fn end_to_end_map_mode() {
        end_to_end(4, 2, 3, DataMode::Map, 3);
    }

    #[test]
    fn end_to_end_bigger_graph() {
        end_to_end(8, 3, 3, DataMode::Recode, 4);
    }

    #[test]
    fn survives_single_relay_failure_with_redundancy() {
        let (l, d, dp) = (5usize, 2usize, 3usize);
        let pseudo = addrs(10_000, dp);
        let candidates = addrs(20_000, l * dp + 10);
        let dest = OverlayAddr(1);
        let mut all_nodes = candidates.clone();
        all_nodes.push(dest);
        let params = GraphParams::new(l, d)
            .with_paths(dp)
            .with_dest_placement(DestPlacement::LastStage);
        let (mut source, setup) =
            SourceSession::establish(params, &pseudo, &candidates, dest, 5).unwrap();
        let mut net = TestNet::new(&all_nodes, 5);
        net.submit(setup);
        net.run_to_quiescence(Some(&mut source));

        // Kill one non-destination relay in stage 2.
        let victim = source.graph().stages[2][0];
        assert_ne!(victim, dest);
        net.fail(victim);

        let (_, sends) = source.send_message(b"resilient").expect("within chunk budget");
        net.submit(sends);
        // Failures leave gathers waiting on the dead parent; let the data
        // flush timeout fire.
        net.settle(Some(&mut source), 1_500, 8);

        let got = net.messages_for(dest);
        assert_eq!(got.len(), 1, "message must survive one relay failure");
        assert_eq!(got[0].1, b"resilient");
    }

    #[test]
    fn reverse_path_delivers_to_source() {
        reverse_path_sharded(1);
    }

    #[test]
    fn reverse_path_delivers_to_source_sharded() {
        // Reverse packets arrive under the flow's *reverse* id, which
        // hashes to an arbitrary shard — delivery proves the router's
        // reverse-id registrations steer them to the owning shard.
        reverse_path_sharded(8);
    }

    fn reverse_path_sharded(shards: usize) {
        let (l, d, dp) = (4usize, 2usize, 2usize);
        let pseudo = addrs(10_000, dp);
        let candidates = addrs(20_000, l * dp + 10);
        let dest = OverlayAddr(1);
        let mut all_nodes = candidates.clone();
        all_nodes.push(dest);
        let params = GraphParams::new(l, d).with_paths(dp);
        let (mut source, setup) =
            SourceSession::establish(params, &pseudo, &candidates, dest, 6).unwrap();
        let mut net = TestNet::with_shards(&all_nodes, 6, RelayConfig::default(), shards);
        net.submit(setup);
        net.run_to_quiescence(Some(&mut source));

        // Destination responds over the reverse path.
        let dest_flow = source.graph().flow_ids[source.graph().dest.stage]
            [source.graph().dest.index];
        let relay = net.relays.get_mut(&dest).unwrap();
        let sends = relay
            .send_reverse(Tick(0), dest_flow, 0, b"pong")
            .expect("destination can send reverse");
        net.submit(sends);
        // First-hop reverse relays wait for their full child set, which
        // only the timeout resolves (the destination is one child).
        let reverse = net.settle(Some(&mut source), 1_500, 6);
        assert_eq!(reverse, vec![(0, b"pong".to_vec())]);
    }

    #[test]
    fn lossy_network_fails_gracefully() {
        // With 100% loss nothing is delivered and nothing panics.
        let (l, d, dp) = (3usize, 2usize, 2usize);
        let pseudo = addrs(10_000, dp);
        let candidates = addrs(20_000, 20);
        let dest = OverlayAddr(1);
        let mut all = candidates.clone();
        all.push(dest);
        let (mut source, setup) = SourceSession::establish(
            GraphParams::new(l, d),
            &pseudo,
            &candidates,
            dest,
            8,
        )
        .unwrap();
        let mut net = TestNet::new(&all, 8);
        net.drop_prob = 1.0;
        net.submit(setup);
        net.run_to_quiescence(Some(&mut source));
        assert!(net.delivered.is_empty());
        assert_eq!(net.packets_transported, 0);
    }
}
