//! Fig. 9: anonymity vs path length L (N = 10000, d = 3, f = 0.1).

use slicing_anonymity::montecarlo::average_anonymity;
use slicing_anonymity::ScenarioParams;
use slicing_bench::{banner, RunOpts, Table};

fn main() {
    let opts = RunOpts::from_args();
    let trials = opts.trials(1000);
    banner(
        "Figure 9 — anonymity vs number of stages L",
        "N=10000, d=3, f=0.1",
        "both source and destination anonymity increase with L",
    );
    let mut table = Table::new(&["L", "src_anonymity", "dst_anonymity"]);
    for l in (2..=20usize).step_by(2) {
        let e = average_anonymity(
            &ScenarioParams::new(10_000, l, 3, 0.1),
            trials,
            opts.seed,
        );
        table.row(&[l as f64, e.source, e.dest]);
    }
    table.print();
}
