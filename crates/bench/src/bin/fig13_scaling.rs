//! Fig. 13: aggregate network throughput vs number of concurrent flows
//! over a shared 100-node overlay (d = 3, L = 5).

use std::time::Duration;

use slicing_bench::{banner, RunOpts, Table};
use slicing_core::GraphParams;
use slicing_overlay::experiment::Transport;
use slicing_overlay::run_multi_flow;
use slicing_sim::NetProfile;

fn main() {
    let opts = RunOpts::from_args();
    let messages = opts.trials(20).min(20);
    banner(
        "Figure 13 — aggregate throughput vs number of flows",
        "overlay of 100 nodes, d=3, L=5 (15 nodes per flow)",
        "near-linear scaling at low load, levelling off as the overlay \
         saturates",
    );
    let rt = tokio::runtime::Builder::new_multi_thread()
        .worker_threads(8)
        .enable_all()
        .build()
        .expect("tokio runtime");
    let flow_counts: &[usize] = if opts.quick {
        &[1, 4, 8, 16]
    } else {
        &[1, 2, 4, 8, 16, 32, 64, 96, 128, 160]
    };
    let mut table = Table::new(&["flows", "aggregate_mbps", "established"]);
    for &flows in flow_counts {
        let report = rt.block_on(run_multi_flow(
            100,
            1,
            flows,
            GraphParams::new(5, 3),
            Transport::Emulated(NetProfile::planetlab()),
            messages,
            1200,
            opts.seed,
            Duration::from_secs(if opts.quick { 45 } else { 240 }),
        ));
        println!(
            "row: flows={flows} aggregate_mbps={:.4} established={}",
            report.aggregate_mbps, report.flows_established
        );
        table.row(&[
            flows as f64,
            report.aggregate_mbps,
            report.flows_established as f64,
        ]);
    }
    table.print();
}
