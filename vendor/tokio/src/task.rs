//! Task spawning and join handles.

use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Waker};

use crate::executor;

struct JoinShared<T> {
    result: Mutex<JoinSlot<T>>,
}

struct JoinSlot<T> {
    value: Option<T>,
    finished: bool,
    waker: Option<Waker>,
}

/// Error returned when a joined task was aborted.
#[derive(Debug)]
pub struct JoinError {
    aborted: bool,
}

impl JoinError {
    /// Whether the task failed because it was cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.aborted
    }
}

impl fmt::Display for JoinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.aborted {
            write!(f, "task was cancelled")
        } else {
            write!(f, "task failed")
        }
    }
}

impl std::error::Error for JoinError {}

/// Handle to a spawned task: await it for the result, or [`abort`] it.
///
/// [`abort`]: JoinHandle::abort
pub struct JoinHandle<T> {
    shared: Arc<JoinShared<T>>,
    task: Arc<executor::Task>,
}

impl<T> JoinHandle<T> {
    /// Request cancellation: the task is dropped at its next scheduling
    /// point and never polled again.
    pub fn abort(&self) {
        executor::abort_task(&self.task);
        // Wake any joiner so it observes the cancellation.
        let mut slot = self.shared.result.lock().unwrap();
        if let Some(w) = slot.waker.take() {
            drop(slot);
            w.wake();
        }
    }

    /// Whether the task has completed (successfully or by abort).
    pub fn is_finished(&self) -> bool {
        let slot = self.shared.result.lock().unwrap();
        slot.finished || self.task.aborted.load(std::sync::atomic::Ordering::Acquire)
    }
}

impl<T> Unpin for JoinHandle<T> {}

impl<T> Future for JoinHandle<T> {
    type Output = Result<T, JoinError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut slot = self.shared.result.lock().unwrap();
        if let Some(v) = slot.value.take() {
            return Poll::Ready(Ok(v));
        }
        if slot.finished || self.task.aborted.load(std::sync::atomic::Ordering::Acquire) {
            return Poll::Ready(Err(JoinError { aborted: true }));
        }
        slot.waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

/// Spawn a future onto the global multi-threaded executor.
pub fn spawn<F>(fut: F) -> JoinHandle<F::Output>
where
    F: Future + Send + 'static,
    F::Output: Send + 'static,
{
    let shared = Arc::new(JoinShared {
        result: Mutex::new(JoinSlot {
            value: None,
            finished: false,
            waker: None,
        }),
    });
    let shared2 = shared.clone();
    let wrapped = async move {
        let out = fut.await;
        let waker = {
            let mut slot = shared2.result.lock().unwrap();
            slot.value = Some(out);
            slot.finished = true;
            slot.waker.take()
        };
        if let Some(w) = waker {
            w.wake();
        }
    };
    let task = executor::spawn_raw(Box::pin(wrapped));
    JoinHandle { shared, task }
}

/// Yield back to the executor once, letting other tasks run.
pub async fn yield_now() {
    struct YieldOnce(bool);

    impl Future for YieldOnce {
        type Output = ();

        fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
            if self.0 {
                Poll::Ready(())
            } else {
                self.0 = true;
                cx.waker().wake_by_ref();
                Poll::Pending
            }
        }
    }

    YieldOnce(false).await
}
