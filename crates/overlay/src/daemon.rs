//! Daemon tasks: async drivers around the sans-IO engines.
//!
//! Two shapes, mirroring the paper's per-node multi-threaded daemon
//! (§7.1):
//!
//! * [`spawn_relay`] — the classic single-task daemon: one worker task
//!   owns the node's single [`RelayShard`] (fed straight from the
//!   port's inbox), so a relay uses at most one core.
//! * [`spawn_sharded_relay`] — the sharded runtime: one **ingress** task
//!   peeks just the flow id out of each received buffer and dispatches
//!   the frozen [`Bytes`] over an SPSC channel to the worker owning that
//!   flow's [`RelayShard`]; each **worker** drives its shard (packets +
//!   50 ms timer) and owns its own egress sender, batching consecutive
//!   sends to the same neighbour before awaiting the transport. Flows
//!   have shard affinity (`hash(flow_id) % N` via the shared
//!   [`FlowRouter`]), so shards never contend on flow state and a relay
//!   scales across cores.
//!
//! Wire-garbage (buffers that fail packet parsing) is counted into the
//! relay's shared [`slicing_core::RelayStatsAtomic`] by whichever task
//! rejects it, and every driver folds its shard's counters into the same
//! cell, so tests and dashboards can watch a live relay without owning
//! its state.

use std::time::{Duration, Instant};

use bytes::Bytes;
use slicing_core::{
    FlowRouter, OverlayAddr, Packet, RelayNode, RelayOutput, RelayShard, RelayStatsAtomic,
    ShardedRelay, Tick,
};
use slicing_onion::{OnionPacket, OnionRelay};
use slicing_wire::peek_flow_id;
use std::sync::Arc;
use tokio::sync::mpsc;

use crate::{NodePort, PortSender};

/// Most packets a shard worker drains from its inbox before touching
/// the network (bounds latency of the first queued send; keeps the
/// egress batches dense under load).
const WORKER_DRAIN_BATCH: usize = 32;

/// Timer cadence for the relay state machines. The select loops are
/// biased toward the packet arm, so under sustained traffic the ticker
/// arm may never win; every loop additionally runs overdue timer work
/// at batch boundaries so gather flushes and flow GC cannot be starved
/// by load.
const POLL_PERIOD: Duration = Duration::from_millis(50);

/// Events the daemons report to the experiment harness.
#[derive(Clone, Debug)]
pub enum OverlayEvent {
    /// A relay completed flow establishment; `receiver` = destination?
    Established {
        /// The node that established.
        addr: OverlayAddr,
        /// Whether it is the flow's destination.
        receiver: bool,
        /// Milliseconds since the daemon started.
        at_ms: u64,
    },
    /// The destination decoded and decrypted a data message.
    MessageReceived {
        /// Destination address.
        addr: OverlayAddr,
        /// Message sequence number.
        seq: u32,
        /// Plaintext length (payload itself omitted from events).
        len: usize,
        /// Milliseconds since the daemon started.
        at_ms: u64,
    },
}

/// Report one call's output as events.
fn emit_events(
    events: &mpsc::UnboundedSender<OverlayEvent>,
    addr: OverlayAddr,
    epoch: Instant,
    outputs: &RelayOutput,
) {
    let at_ms = epoch.elapsed().as_millis() as u64;
    for &receiver in &outputs.established {
        let _ = events.send(OverlayEvent::Established {
            addr,
            receiver,
            at_ms,
        });
    }
    for r in &outputs.received {
        let _ = events.send(OverlayEvent::MessageReceived {
            addr,
            seq: r.seq,
            len: r.plaintext.len(),
            at_ms,
        });
    }
}

/// A running relay daemon: the spawned task(s) plus a shutdown line.
///
/// Dropping the handle also stops the daemon (the stop channel closes),
/// so harnesses that collect daemons in a `Vec` clean up by dropping it.
pub struct RelayDaemon {
    stop: mpsc::Sender<()>,
    join: tokio::task::JoinHandle<()>,
}

impl RelayDaemon {
    /// Ask the daemon to exit its loop cleanly (pending work published,
    /// shard channels drained and closed) and wait until it has.
    ///
    /// Used by the churn driver to take a node off the overlay mid-flow:
    /// on TCP the node's port closes and peers' cached connections fail
    /// over to datagram drops, exactly like a crashed process.
    pub async fn shutdown(self) {
        let _ = self.stop.send(()).await;
        let _ = self.join.await;
    }

    /// Hard-abort the daemon task (tests and teardown).
    pub fn abort(&self) {
        self.join.abort();
    }
}

/// The stop line a worker loop selects on. For the single-shard daemon
/// it is the daemon's real stop channel; sharded workers get a dormant
/// line (the ingress dispatcher owns the real one and stopping it closes
/// every worker's inbox instead).
struct StopLine {
    rx: mpsc::Receiver<()>,
    /// Keeps a dormant line from resolving (a closed channel would).
    _keep: Option<mpsc::Sender<()>>,
}

impl StopLine {
    /// A line wired to `rx`: resolves on an explicit stop *or* when the
    /// daemon handle is dropped.
    fn live(rx: mpsc::Receiver<()>) -> Self {
        StopLine { rx, _keep: None }
    }

    /// A line that never resolves.
    fn dormant() -> Self {
        let (tx, rx) = mpsc::channel(1);
        StopLine {
            rx,
            _keep: Some(tx),
        }
    }
}

/// Transmit `sends`, grouping consecutive sends to the same neighbour
/// into one transport batch (`scratch` is reused across calls).
async fn flush_sends(port: &PortSender, outputs: RelayOutput, scratch: &mut Vec<Bytes>) {
    let sends = outputs.sends;
    let mut i = 0;
    while i < sends.len() {
        let to = sends[i].to;
        scratch.clear();
        while i < sends.len() && sends[i].to == to {
            scratch.push(sends[i].packet.encode());
            i += 1;
        }
        port.send_many(to, scratch).await;
    }
}

/// Spawn a slicing relay daemon on `port`; runs until the port closes.
///
/// `epoch` anchors the Tick clock so all daemons share a timeline.
/// This is the one-shard case of the sharded runtime: the node's single
/// [`RelayShard`] is driven by the same worker loop, with the port's
/// inbox as its packet channel (no ingress dispatcher needed).
pub fn spawn_relay(
    relay: RelayNode,
    port: NodePort,
    events: mpsc::UnboundedSender<OverlayEvent>,
    epoch: Instant,
) -> RelayDaemon {
    let (shard, _router, _stats) = relay.into_parts();
    let (stop_tx, stop_rx) = mpsc::channel(1);
    RelayDaemon {
        stop: stop_tx,
        join: tokio::spawn(shard_worker(
            shard,
            port.rx,
            port.tx,
            events,
            epoch,
            StopLine::live(stop_rx),
        )),
    }
}

/// Spawn a sharded relay: one ingress dispatcher plus one worker task
/// per shard, all on `port`. Runs until the port closes or the daemon
/// is [shut down](RelayDaemon::shutdown) — stopping the ingress drops
/// the shard channels, which shuts the workers down.
///
/// # Example
///
/// Run one 4-way sharded relay on the in-process emulated network,
/// watch it count an unparseable frame through the shared stats, and
/// shut it down cleanly:
///
/// ```
/// use std::time::{Duration, Instant};
/// use slicing_core::{OverlayAddr, ShardedRelay};
/// use slicing_overlay::{spawn_sharded_relay, EmulatedNet};
/// use slicing_sim::wan::NetProfile;
/// use tokio::sync::mpsc;
///
/// #[tokio::main]
/// async fn main() {
///     let net = EmulatedNet::new(NetProfile::lan(), 1);
///     let port = net.attach(OverlayAddr(10));
///     let sender = net.attach(OverlayAddr(11));
///     let relay = ShardedRelay::new(OverlayAddr(10), 7, 4);
///     let stats = relay.shared_stats();
///     let (events, _events_rx) = mpsc::unbounded_channel();
///     let daemon = spawn_sharded_relay(relay, port, events, Instant::now());
///
///     // Anything sent to OverlayAddr(10) is peeked for its flow id and
///     // dispatched to the shard owning that flow; garbage dies at the
///     // ingress and is counted in the shared stats.
///     sender.tx.send(OverlayAddr(10), bytes::Bytes::from(&b"junk"[..])).await;
///     while stats.snapshot().garbage == 0 {
///         tokio::time::sleep(Duration::from_millis(5)).await;
///     }
///     daemon.shutdown().await;
/// }
/// ```
pub fn spawn_sharded_relay(
    relay: ShardedRelay,
    port: NodePort,
    events: mpsc::UnboundedSender<OverlayEvent>,
    epoch: Instant,
) -> RelayDaemon {
    let (shards, router, stats) = relay.into_parts();
    let mut shard_txs = Vec::with_capacity(shards.len());
    for shard in shards {
        let (stx, srx) = mpsc::channel::<(OverlayAddr, Bytes)>(1024);
        tokio::spawn(shard_worker(
            shard,
            srx,
            port.tx.clone(),
            events.clone(),
            epoch,
            StopLine::dormant(),
        ));
        shard_txs.push(stx);
    }
    let (stop_tx, stop_rx) = mpsc::channel(1);
    RelayDaemon {
        stop: stop_tx,
        join: tokio::spawn(ingress(port, router, shard_txs, stats, stop_rx)),
    }
}

/// The ingress dispatcher: peek the flow id, pick the shard, hand the
/// frozen receive buffer over. Full packet validation happens in the
/// owning shard — the dispatcher reads 12 bytes per packet and never
/// blocks on protocol work.
async fn ingress(
    mut port: NodePort,
    router: FlowRouter,
    shard_txs: Vec<mpsc::Sender<(OverlayAddr, Bytes)>>,
    stats: Arc<RelayStatsAtomic>,
    mut stop: mpsc::Receiver<()>,
) {
    loop {
        let received = tokio::select! {
            maybe = port.rx.recv() => maybe,
            // Clean shutdown (or daemon handle dropped): stop
            // dispatching; dropping `shard_txs` below drains the
            // workers out.
            _ = stop.recv() => None,
        };
        let Some((from, bytes)) = received else { break };
        match peek_flow_id(&bytes) {
            Some(flow) => {
                let idx = router.route(flow);
                // Datagram semantics: if one shard's worker is stalled
                // behind a slow neighbour and its inbox is full, shed
                // this packet rather than blocking dispatch to the
                // other N−1 shards.
                if shard_txs[idx].try_send((from, bytes)).is_err() {
                    stats.record_drop();
                }
            }
            None => stats.record_garbage(),
        }
    }
    // Port closed or stopped: dropping `shard_txs` closes every
    // worker's inbox.
}

/// One shard's worker: owns the shard, drives packets and the 50 ms
/// timer, reports events, and transmits through its own egress handle
/// with consecutive same-neighbour sends batched.
async fn shard_worker(
    mut shard: RelayShard,
    mut rx: mpsc::Receiver<(OverlayAddr, Bytes)>,
    tx: PortSender,
    events: mpsc::UnboundedSender<OverlayEvent>,
    epoch: Instant,
    mut stop: StopLine,
) {
    let addr = shard.addr();
    let stats = shard.shared_stats();
    let mut ticker = tokio::time::interval(POLL_PERIOD);
    ticker.set_missed_tick_behavior(tokio::time::MissedTickBehavior::Delay);
    let mut scratch = Vec::new();
    let mut last_poll = Instant::now();
    let handle = |shard: &mut RelayShard, from: OverlayAddr, bytes: Bytes| match Packet::from_bytes(
        bytes,
    ) {
        Ok(packet) => shard.handle_packet(now_tick(epoch), from, &packet),
        Err(_) => {
            // The ingress peek admits buffers whose body later fails
            // full validation; they die here.
            stats.record_garbage();
            RelayOutput::default()
        }
    };
    loop {
        let mut outputs = tokio::select! {
            maybe = rx.recv() => {
                let Some((from, bytes)) = maybe else { break };
                handle(&mut shard, from, bytes)
            }
            _ = ticker.tick() => {
                last_poll = Instant::now();
                shard.poll(now_tick(epoch))
            }
            // Clean mid-flow shutdown (single-shard daemons; sharded
            // workers stop when the ingress closes their inbox).
            _ = stop.rx.recv() => break,
        };
        // Drain whatever else is already queued before touching the
        // network, so bursts produce dense egress batches.
        for _ in 0..WORKER_DRAIN_BATCH {
            match rx.try_recv() {
                Ok((from, bytes)) => outputs.merge(handle(&mut shard, from, bytes)),
                Err(_) => break,
            }
        }
        // Biased select: sustained traffic keeps the packet arm winning,
        // so run overdue timer work at batch boundaries as well.
        if last_poll.elapsed() >= POLL_PERIOD {
            last_poll = Instant::now();
            outputs.merge(shard.poll(now_tick(epoch)));
        }
        emit_events(&events, addr, epoch, &outputs);
        flush_sends(&tx, outputs, &mut scratch).await;
        shard.publish_stats();
    }
    // Exiting (port closed or shutdown): leave the shared stats exact.
    shard.publish_stats();
}

/// Spawn an onion relay daemon on `port`.
pub fn spawn_onion_relay(
    mut relay: OnionRelay,
    mut port: NodePort,
    events: mpsc::UnboundedSender<OverlayEvent>,
    epoch: Instant,
) -> tokio::task::JoinHandle<()> {
    tokio::spawn(async move {
        let addr = port.addr;
        while let Some((_, bytes)) = port.rx.recv().await {
            let Ok(packet) = OnionPacket::from_bytes(bytes) else {
                continue;
            };
            let out = relay.handle_packet(&packet);
            let at_ms = epoch.elapsed().as_millis() as u64;
            if let Some(is_exit) = out.established {
                let _ = events.send(OverlayEvent::Established {
                    addr,
                    receiver: is_exit,
                    at_ms,
                });
            }
            for (seq, plaintext) in &out.delivered {
                let _ = events.send(OverlayEvent::MessageReceived {
                    addr,
                    seq: *seq,
                    len: plaintext.len(),
                    at_ms,
                });
            }
            for send in out.sends {
                port.tx.send(send.to, send.packet.encode()).await;
            }
        }
    })
}

/// Milliseconds since the epoch as a protocol [`Tick`].
pub fn now_tick(epoch: Instant) -> Tick {
    Tick(epoch.elapsed().as_millis() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EmulatedNet;
    use slicing_sim::wan::NetProfile;

    /// Wait (bounded) until `cond` observes the shared stats; returns
    /// the last snapshot. No blind sleeps: the loop polls the counter
    /// the daemon publishes.
    async fn wait_stats(
        stats: &Arc<RelayStatsAtomic>,
        cond: impl Fn(&slicing_core::RelayStats) -> bool,
    ) -> slicing_core::RelayStats {
        let mut last = stats.snapshot();
        for _ in 0..400 {
            if cond(&last) {
                break;
            }
            tokio::time::sleep(Duration::from_millis(5)).await;
            last = stats.snapshot();
        }
        last
    }

    #[tokio::test]
    async fn relay_daemon_drops_garbage() {
        let net = EmulatedNet::new(NetProfile::lan(), 1);
        let relay_port = net.attach(OverlayAddr(10));
        let sender = net.attach(OverlayAddr(11));
        let (events_tx, _events_rx) = mpsc::unbounded_channel();
        let relay = RelayNode::new(OverlayAddr(10), 7);
        let stats = relay.shared_stats();
        let handle = spawn_relay(relay, relay_port, events_tx, Instant::now());
        sender
            .tx
            .send(OverlayAddr(10), bytes::Bytes::from(&b"not a packet"[..]))
            .await;
        let seen = wait_stats(&stats, |s| s.garbage >= 1).await;
        assert_eq!(seen.garbage, 1, "daemon must count the unparseable frame");
        assert_eq!(seen.packets_in, 0, "garbage never reaches the engine");
        handle.abort();
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn sharded_daemon_drops_garbage_at_ingress() {
        let net = EmulatedNet::new(NetProfile::lan(), 2);
        let relay_port = net.attach(OverlayAddr(10));
        let sender = net.attach(OverlayAddr(11));
        let (events_tx, _events_rx) = mpsc::unbounded_channel();
        let relay = ShardedRelay::new(OverlayAddr(10), 7, 4);
        let stats = relay.shared_stats();
        let handle = spawn_sharded_relay(relay, relay_port, events_tx, Instant::now());
        // Fails the ingress peek (bad magic): counted by the dispatcher.
        sender
            .tx
            .send(OverlayAddr(10), bytes::Bytes::from(&b"not a packet"[..]))
            .await;
        // Passes the peek but fails full validation (truncated body):
        // counted by the owning shard.
        let valid = slicing_wire::Packet::new(
            slicing_wire::PacketHeader {
                kind: slicing_wire::PacketKind::Data,
                flow_id: slicing_wire::FlowId(99),
                seq: 0,
                d: 2,
                slot_count: 1,
                slot_len: 10,
            },
            vec![vec![0u8; 10]],
        )
        .encode();
        sender
            .tx
            .send(OverlayAddr(10), valid.slice(..valid.len() - 1))
            .await;
        let seen = wait_stats(&stats, |s| s.garbage >= 2).await;
        assert_eq!(seen.garbage, 2, "both rejects must be counted");
        handle.abort();
    }
}
