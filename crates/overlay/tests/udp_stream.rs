//! End-to-end streamed sessions over the real UDP transport: a 96 KB
//! payload crosses a live sharded overlay on loopback datagrams and
//! reassembles byte-identically with the source window drained — at
//! 0%, 5% and 20% injected loss (the codec's path redundancy plus the
//! session retransmit window absorb what the wire drops). A multi-flow
//! run additionally proves the `sendmmsg`-shaped egress batching is
//! real (`datagrams_sent / send_calls > 1`), and a property test sweeps
//! random loss × reorder × duplication profiles, mirroring the session
//! layer's sans-IO proptests at the transport level.

mod common;

use std::time::Duration;

use common::{assert_delivered, udp_cfg};
use proptest::prelude::*;
use slicing_core::GraphParams;
use slicing_overlay::experiment::Transport;
use slicing_overlay::{run_multi_flow, run_session_transfer, SessionTransferConfig, UdpFaults};

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn stream_96kb_over_udp() {
    let report = run_session_transfer(&udp_cfg(UdpFaults::default())).await;
    assert_delivered(&report);
    let udp = report.udp.expect("stats");
    assert_eq!(udp.injected_drops, 0);
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn stream_96kb_over_udp_5pct_loss() {
    let report = run_session_transfer(&udp_cfg(UdpFaults {
        loss: 0.05,
        ..Default::default()
    }))
    .await;
    assert_delivered(&report);
    let udp = report.udp.expect("stats");
    assert!(udp.injected_drops > 0, "5% loss must actually drop: {udp:?}");
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn stream_96kb_over_udp_20pct_loss() {
    let report = run_session_transfer(&udp_cfg(UdpFaults {
        loss: 0.20,
        ..Default::default()
    }))
    .await;
    assert_delivered(&report);
    let udp = report.udp.expect("stats");
    assert!(udp.injected_drops > 0, "20% loss must actually drop: {udp:?}");
}

/// Multi-flow load over UDP: the daemons' same-neighbour egress grouping
/// must reach the wire as real batches — strictly more datagrams than
/// transmit calls.
#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn multi_flow_udp_batches_egress() {
    let report = run_multi_flow(
        12,
        2,
        4,
        GraphParams::new(3, 2),
        Transport::Udp(UdpFaults::default()),
        6,
        1_200,
        11,
        Duration::from_secs(60),
    )
    .await;
    assert!(report.payload_bytes > 0, "report: {report:?}");
    let udp = report.udp.expect("UDP run must carry transport stats");
    let ratio = udp.datagrams_sent as f64 / udp.send_calls.max(1) as f64;
    assert!(
        ratio > 1.2,
        "egress must batch (>1 datagram per transmit call, got {ratio:.2}): {udp:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Any mix of loss, reordering and duplication on the wire still
    /// yields exactly-once, in-order, byte-identical delivery with the
    /// source window drained.
    #[test]
    fn faulty_udp_delivers_exactly_once(
        loss_pm in 0u32..200,
        reorder_pm in 0u32..300,
        dup_pm in 0u32..200,
        seed in 0u64..1_000,
    ) {
        let rt = tokio::runtime::Builder::new_multi_thread()
            .worker_threads(2)
            .enable_all()
            .build()
            .expect("runtime");
        let faults = UdpFaults {
            loss: loss_pm as f64 / 1_000.0,
            reorder: reorder_pm as f64 / 1_000.0,
            duplicate: dup_pm as f64 / 1_000.0,
        };
        let cfg = SessionTransferConfig {
            payload_len: 12_000,
            seed,
            timeout: Duration::from_secs(90),
            ..udp_cfg(faults)
        };
        let report = rt.block_on(run_session_transfer(&cfg));
        prop_assert!(report.established, "report: {report:?}");
        prop_assert_eq!(report.messages_delivered, 1, "report: {:?}", report);
        prop_assert!(report.bytes_match, "byte-identical: {report:?}");
        prop_assert!(report.source_drained, "window drained: {report:?}");
    }
}
