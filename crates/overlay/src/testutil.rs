//! Bounded-retry polling for tests and harnesses.
//!
//! Daemons publish progress through shared atomics (stats cells,
//! transport counters) rather than synchronous return values, so tests
//! must wait for a counter to move. The discipline is: **no blind
//! sleeps** — poll the observable on a short interval with a hard
//! bound, and return the last observation either way so the caller's
//! assertion failure shows what was actually seen.
//!
//! This module is the single copy of that loop. The daemon, transport
//! and process-level suites (including `slicing-node`'s orchestrated
//! tests, which poll scraped metrics the same way) all call
//! [`wait_until`] instead of hand-rolling it.

use std::time::Duration;

/// Default number of polls: with [`DEFAULT_INTERVAL`] this bounds a
/// wait at two seconds of simulated patience.
pub const DEFAULT_TRIES: usize = 400;

/// Default pause between polls.
pub const DEFAULT_INTERVAL: Duration = Duration::from_millis(5);

/// Poll `probe` until `ok` accepts its observation or the bound runs
/// out; returns the last observation either way (so callers assert on
/// it and failures print what was seen, not a bare timeout).
pub async fn wait_until_for<T>(
    mut probe: impl FnMut() -> T,
    ok: impl Fn(&T) -> bool,
    tries: usize,
    interval: Duration,
) -> T {
    let mut last = probe();
    for _ in 0..tries {
        if ok(&last) {
            return last;
        }
        tokio::time::sleep(interval).await;
        last = probe();
    }
    last
}

/// [`wait_until_for`] at the default cadence (400 × 5 ms).
pub async fn wait_until<T>(probe: impl FnMut() -> T, ok: impl Fn(&T) -> bool) -> T {
    wait_until_for(probe, ok, DEFAULT_TRIES, DEFAULT_INTERVAL).await
}

/// Blocking variant for drivers that sit outside an async runtime (the
/// orchestrator scraping child processes over `std::net`).
pub fn wait_until_blocking<T>(
    mut probe: impl FnMut() -> T,
    ok: impl Fn(&T) -> bool,
    tries: usize,
    interval: Duration,
) -> T {
    let mut last = probe();
    for _ in 0..tries {
        if ok(&last) {
            return last;
        }
        std::thread::sleep(interval);
        last = probe();
    }
    last
}
