//! Fig. 17, measured on the *production* data plane: probability of
//! completing a session under churn vs added redundancy, with every
//! trial running the full async overlay runtime (`slicing-overlay`) —
//! daemons, emulated transport, keepalive/liveness failure detection —
//! instead of the lockstep `TestNet` simulator behind `fig17_churn`.
//!
//! Substitution: the paper's 30-minute PlanetLab sessions compress onto
//! a ~2-second wall clock (6 paced messages); the exponential-lifetime
//! churn model is calibrated to the same p = 0.2 per-session failure
//! probability and its failure times scale onto the compressed session.
//! Two slicing curves run side by side: detection only (`slicing_live`,
//! redundancy must absorb every loss) and detection + source-side
//! repair (`slicing_repair`, the source splices replacement relays into
//! the live flow). Standard onion routing has no detection or repair to
//! run — a session dies with its first relay — so its column is the
//! sampled lifetime model, as in `fig17_churn`.

use std::time::Duration;

use slicing_bench::{banner, RunOpts, Table};
use slicing_core::{DataMode, DestPlacement, GraphParams};
use slicing_overlay::{run_churn_session, ChurnSessionConfig};
use slicing_sim::churn::ChurnModel;
use slicing_sim::transfer::ChurnExperiment;

/// Live sessions run concurrently in one runtime (each is ~2 s of
/// paced wall-clock; 4 in flight keeps the timing comfortably slack).
const CONCURRENCY: usize = 4;

fn config(dp: usize, repair: bool, seed: u64) -> ChurnSessionConfig {
    ChurnSessionConfig {
        params: GraphParams::new(5, 2)
            .with_paths(dp)
            .with_data_mode(DataMode::Recode)
            .with_dest_placement(DestPlacement::LastStage),
        churn: Some(ChurnModel::with_failure_probability(0.2, 30.0)),
        repair,
        seed,
        // Failed sessions wait this out in full; keep it tight (the
        // paced session itself is ~1.8 s, repair adds well under 1 s).
        timeout: Duration::from_secs(8),
        ..ChurnSessionConfig::default()
    }
}

/// Success rate of `trials` live sessions at redundancy `dp`.
async fn live_rate(dp: usize, repair: bool, trials: usize, seed: u64) -> f64 {
    let mut successes = 0usize;
    let mut done = 0usize;
    while done < trials {
        let batch = CONCURRENCY.min(trials - done);
        let handles: Vec<_> = (0..batch)
            .map(|t| {
                let cfg = config(
                    dp,
                    repair,
                    seed.wrapping_add(((done + t) as u64) << 8 | dp as u64),
                );
                tokio::spawn(async move { run_churn_session(&cfg).await })
            })
            .collect();
        for h in handles {
            let report = h.await.expect("session task");
            successes += usize::from(report.established && report.success);
        }
        done += batch;
    }
    successes as f64 / trials as f64
}

fn main() {
    let opts = RunOpts::from_args();
    // Live sessions cost real wall-clock; trim both axes under --quick.
    let trials = if opts.quick { 6 } else { 20 };
    let dps: Vec<usize> = if opts.quick {
        (2..=4).collect()
    } else {
        (2..=6).collect()
    };
    banner(
        "Figure 17 (live) — session success vs redundancy under churn, async runtime",
        "L=5, d=2, 6-message sessions on the emulated transport, p=0.2/session churn",
        "standard onion mostly fails; live slicing approaches 1 with modest \
         redundancy; source-side repair holds even d'=d sessions together",
    );
    let rt = tokio::runtime::Builder::new_multi_thread()
        .worker_threads(4)
        .enable_all()
        .build()
        .expect("tokio runtime");
    let mut table = Table::new(&[
        "redundancy",
        "slicing_live",
        "slicing_repair",
        "standard_onion",
    ]);
    for dp in dps {
        let no_repair = rt.block_on(live_rate(dp, false, trials, opts.seed));
        let with_repair = rt.block_on(live_rate(dp, true, trials, opts.seed ^ 0x5EED));
        // The sampled-model baseline (cheap: no protocol to run).
        let e = ChurnExperiment {
            length: 5,
            split: 2,
            paths: dp,
            churn: ChurnModel::with_failure_probability(0.2, 30.0),
            messages: 6,
        };
        let onion_trials = 2_000;
        let onion = (0..onion_trials)
            .filter(|t| {
                e.standard_onion_session(
                    opts.seed.wrapping_add(*t as u64).wrapping_mul(0x9E3779B97F4A7C15),
                )
            })
            .count() as f64
            / onion_trials as f64;
        let redundancy = (dp - 2) as f64 / 2.0;
        table.row(&[redundancy, no_repair, with_repair, onion]);
    }
    table.print();
}
