//! Criterion benches for graph construction and setup-packet emission
//! (the source-side CPU cost of Algorithm 1, per L and d).

// criterion_group! expands to an undocumented fn.
#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use slicing_graph::{build, GraphParams, OverlayAddr};

fn addrs(base: u64, n: usize) -> Vec<OverlayAddr> {
    (0..n as u64).map(|i| OverlayAddr(base + i)).collect()
}

fn setup(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_build");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_millis(800));
    group.warm_up_time(std::time::Duration::from_millis(200));
    for (l, d) in [(5usize, 2usize), (8, 3), (12, 4)] {
        let pseudo = addrs(1_000, d);
        let candidates = addrs(10_000, l * d + 8);
        group.bench_with_input(
            BenchmarkId::new("build", format!("L{l}_d{d}")),
            &(l, d),
            |b, &(l, d)| {
                let mut rng = StdRng::seed_from_u64(17);
                b.iter(|| {
                    build::build(
                        GraphParams::new(l, d),
                        &pseudo,
                        &candidates,
                        OverlayAddr(1),
                        &mut rng,
                    )
                    .unwrap()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("setup_packets", format!("L{l}_d{d}")),
            &(l, d),
            |b, &(l, d)| {
                let mut rng = StdRng::seed_from_u64(17);
                let graph = build::build(
                    GraphParams::new(l, d),
                    &pseudo,
                    &candidates,
                    OverlayAddr(1),
                    &mut rng,
                )
                .unwrap();
                b.iter(|| graph.setup_packets(&mut rng));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, setup);
criterion_main!(benches);
