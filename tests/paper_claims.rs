//! Integration tests pinning the paper's quantitative claims: the
//! analytic formulas against the Monte-Carlo engines, and the headline
//! orderings of each figure.

use information_slicing::anonymity::chaum::ChaumParams;
use information_slicing::anonymity::montecarlo::{average_anonymity, average_chaum};
use information_slicing::anonymity::ScenarioParams;
use information_slicing::sim::analysis;
use information_slicing::sim::churn::ChurnModel;
use information_slicing::sim::transfer::ChurnExperiment;

/// Fig. 7: anonymity high at low f, destination decays faster, slicing
/// comparable to Chaum mixes.
#[test]
fn fig7_claims() {
    let trials = 800;
    let at = |f: f64| average_anonymity(&ScenarioParams::new(10_000, 8, 3, f), trials, 5);
    let low = at(0.05);
    assert!(low.source > 0.85 && low.dest > 0.75, "{low:?}");
    let mid = at(0.2);
    assert!(mid.dest < mid.source + 0.02, "dest decays faster: {mid:?}");
    let chaum = average_chaum(
        &ChaumParams {
            n: 10_000,
            length: 8,
            fraction_malicious: 0.05,
        },
        trials,
        5,
    );
    assert!((low.source - chaum.source).abs() < 0.12);
}

/// Fig. 8: at low f anonymity mildly decreases with d; at high f the
/// full-stage effect reverses the trend for the destination.
#[test]
fn fig8_claims() {
    let trials = 1200;
    let at = |d: usize, f: f64| average_anonymity(&ScenarioParams::new(10_000, 8, d, f), trials, 6);
    let low_d2 = at(2, 0.1);
    let low_d8 = at(8, 0.1);
    assert!(
        low_d8.source <= low_d2.source + 0.03,
        "low f: more exposure with d: {} vs {}",
        low_d8.source,
        low_d2.source
    );
    let high_d2 = at(2, 0.4);
    let high_d8 = at(8, 0.4);
    assert!(
        high_d8.dest > high_d2.dest,
        "high f: larger stages resist full compromise: {} vs {}",
        high_d8.dest,
        high_d2.dest
    );
}

/// Fig. 9: anonymity grows with L.
#[test]
fn fig9_claims() {
    let trials = 1200;
    let at = |l: usize| average_anonymity(&ScenarioParams::new(10_000, l, 3, 0.1), trials, 7);
    assert!(at(16).source > at(2).source);
    assert!(at(16).dest > at(2).dest);
}

/// Fig. 10: redundancy costs destination anonymity, not source.
#[test]
fn fig10_claims() {
    let trials = 1500;
    let at = |w: usize| {
        average_anonymity(
            &ScenarioParams::new(10_000, 8, 3, 0.1).with_width(w),
            trials,
            8,
        )
    };
    let no_red = at(3);
    let high_red = at(9);
    assert!(high_red.dest < no_red.dest, "dest falls with redundancy");
    // "Source anonymity is not that adversely affected": it must fall
    // strictly less than destination anonymity does, and stay high.
    let src_drop = no_red.source - high_red.source;
    let dst_drop = no_red.dest - high_red.dest;
    assert!(
        dst_drop > src_drop,
        "dest must suffer more: src drop {src_drop:.3} vs dst drop {dst_drop:.3}"
    );
    assert!(high_red.source > 0.6, "source stays high: {}", high_red.source);
}

/// Fig. 16: for equal redundancy and failure rate, Eq. 7 (slicing)
/// dominates Eq. 6 (onion + erasure codes).
#[test]
fn fig16_claims() {
    for p in [0.1, 0.3] {
        for dp in 2..=10u64 {
            assert!(
                analysis::slicing_success(5, 2, dp, p)
                    >= analysis::onion_ec_success(5, 2, dp, p) - 1e-12
            );
        }
    }
    // Crossover magnitude at the paper's example point.
    let s = analysis::slicing_success(5, 2, 4, 0.3);
    let o = analysis::onion_ec_success(5, 2, 4, 0.3);
    assert!(s - o > 0.25, "gap at R=1, p=0.3: {s} vs {o}");
}

/// Fig. 17: measured through the real engines — standard onion mostly
/// fails, slicing reaches high success with modest redundancy.
#[test]
fn fig17_claims() {
    let e = ChurnExperiment {
        length: 5,
        split: 2,
        paths: 4,
        churn: ChurnModel::with_failure_probability(0.2, 30.0),
        messages: 4,
    };
    let (s, ec, o) = e.run(40, 17);
    assert!(o.rate() < 0.55, "standard onion too lucky: {}", o.rate());
    assert!(s.rate() > 0.8, "slicing should mostly succeed: {}", s.rate());
    assert!(s.rate() >= ec.rate() - 0.05, "slicing >= onion+EC");
}

/// §7.1: coding cost is ~d GF multiplies per byte — encode time grows
/// roughly linearly in d.
#[test]
fn micro_cost_scaling() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::time::Instant;
    let mut rng = StdRng::seed_from_u64(3);
    let packet = vec![0u8; 1500];
    let time_at = |d: usize, rng: &mut StdRng| {
        let start = Instant::now();
        for _ in 0..300 {
            let _ = information_slicing::codec::encode(&packet, d, d, rng);
        }
        start.elapsed().as_secs_f64()
    };
    let t2 = time_at(2, &mut rng);
    let t8 = time_at(8, &mut rng);
    // 4x the multiplies; allow wide margin for fixed overheads.
    assert!(
        t8 > t2 * 1.5,
        "encode cost must grow with d: t2={t2:.4}s t8={t8:.4}s"
    );
}
