//! The emulated network: per-link delay, per-node and per-link
//! serialization, load delay, loss and node failure — all under real
//! tokio time, so throughput/latency measurements behave like a network.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use slicing_graph::OverlayAddr;
use slicing_sim::wan::NetProfile;
use tokio::sync::mpsc;
use tokio::time::Instant;

use crate::{NodePort, PortSender, PortSenderInner};

/// Shared state of the emulated network.
pub struct Hub {
    profile: NetProfile,
    state: Mutex<HubState>,
}

struct HubState {
    rng: StdRng,
    /// Receiver inboxes.
    inboxes: HashMap<OverlayAddr, mpsc::Sender<(OverlayAddr, Bytes)>>,
    /// Failed (churned-out) nodes.
    failed: std::collections::HashSet<OverlayAddr>,
    /// Stable per-link one-way propagation delay (ms).
    link_delay: HashMap<(OverlayAddr, OverlayAddr), f64>,
    /// Earliest next NIC availability per sender (node serialization).
    node_free: HashMap<OverlayAddr, Instant>,
    /// Earliest next availability per (sender, receiver) link.
    link_free: HashMap<(OverlayAddr, OverlayAddr), Instant>,
    /// Counters.
    packets: u64,
    bytes: u64,
}

/// An in-process emulated overlay network.
#[derive(Clone)]
pub struct EmulatedNet {
    hub: Arc<Hub>,
}

impl EmulatedNet {
    /// Create a network with the given condition profile.
    pub fn new(profile: NetProfile, seed: u64) -> Self {
        EmulatedNet {
            hub: Arc::new(Hub {
                profile,
                state: Mutex::new(HubState {
                    rng: StdRng::seed_from_u64(seed),
                    inboxes: HashMap::new(),
                    failed: std::collections::HashSet::new(),
                    link_delay: HashMap::new(),
                    node_free: HashMap::new(),
                    link_free: HashMap::new(),
                    packets: 0,
                    bytes: 0,
                }),
            }),
        }
    }

    /// Attach a node; returns its port.
    pub fn attach(&self, addr: OverlayAddr) -> NodePort {
        let (tx, rx) = mpsc::channel(1024);
        self.hub.state.lock().inboxes.insert(addr, tx);
        NodePort {
            addr,
            rx,
            tx: PortSender {
                addr,
                inner: PortSenderInner::Emu(self.hub.clone()),
            },
        }
    }

    /// Kill a node: it stops receiving (its daemon also sees its inbox
    /// starve) and all its in-flight traffic is dropped at delivery.
    pub fn fail(&self, addr: OverlayAddr) {
        self.hub.state.lock().failed.insert(addr);
    }

    /// Whether a node is failed.
    pub fn is_failed(&self, addr: OverlayAddr) -> bool {
        self.hub.state.lock().failed.contains(&addr)
    }

    /// (packets, bytes) transported so far.
    pub fn counters(&self) -> (u64, u64) {
        let s = self.hub.state.lock();
        (s.packets, s.bytes)
    }
}

impl Hub {
    /// Under the hub lock: apply loss, account the packet and compute
    /// its delivery instant through NIC serialization, the per-link
    /// throughput cap, stable propagation delay and host load. `None`
    /// means the profile dropped the packet.
    fn deliver_at_locked(
        &self,
        s: &mut HubState,
        now: Instant,
        from: OverlayAddr,
        to: OverlayAddr,
        len: usize,
    ) -> Option<Instant> {
        if self.profile.loss > 0.0 && s.rng.gen::<f64>() < self.profile.loss {
            return None;
        }
        s.packets += 1;
        s.bytes += len as u64;

        // Sender NIC serialization.
        let nic_tx_ms = self.profile.transmission_ms(len);
        let nic_free = s.node_free.entry(from).or_insert(now);
        let departure = (*nic_free).max(now) + dur_ms(nic_tx_ms);
        *nic_free = departure;

        // Per-link (single-connection) throughput cap.
        let link_tx_ms = if self.profile.link_bytes_per_ms > 0.0 {
            len as f64 / self.profile.link_bytes_per_ms
        } else {
            0.0
        };
        let link_free = s.link_free.entry((from, to)).or_insert(departure);
        let link_done = (*link_free).max(departure) + dur_ms(link_tx_ms);
        *link_free = link_done;

        // Propagation (stable per link) + receiver host load.
        let prop = {
            let profile = &self.profile;
            let rng = &mut s.rng;
            *{
                // Entry API needs the borrow split; compute first.
                let sampled = profile.sample_link_delay(rng);
                s.link_delay.entry((from, to)).or_insert(sampled)
            }
        };
        let load = {
            let profile = &self.profile;
            profile.sample_load_delay(&mut s.rng)
        };
        Some(link_done + dur_ms(prop + load))
    }

    /// Schedule delivery of one datagram with the profile's delays.
    pub(crate) async fn send(self: &Arc<Self>, from: OverlayAddr, to: OverlayAddr, bytes: Bytes) {
        let now = Instant::now();
        let (deliver_at, inbox) = {
            let mut s = self.state.lock();
            if s.failed.contains(&from) || s.failed.contains(&to) {
                return;
            }
            let Some(inbox) = s.inboxes.get(&to).cloned() else {
                return;
            };
            let Some(at) = self.deliver_at_locked(&mut s, now, from, to, bytes.len()) else {
                return;
            };
            (at, inbox)
        };
        let hub = self.clone();
        tokio::spawn(async move {
            tokio::time::sleep_until(deliver_at).await;
            if hub.state.lock().failed.contains(&to) {
                return;
            }
            let _ = inbox.send((from, bytes)).await;
        });
    }

    /// Schedule a whole same-destination batch, taking the hub lock
    /// once for the batch instead of once per frame and delivering from
    /// a single spawned task. The per-frame serialization math is
    /// identical to [`Hub::send`] — the NIC and link `free` cursors
    /// advance through the batch exactly as they would frame by frame.
    pub(crate) async fn send_many(
        self: &Arc<Self>,
        from: OverlayAddr,
        to: OverlayAddr,
        frames: &mut Vec<Bytes>,
    ) {
        if frames.is_empty() {
            return;
        }
        let now = Instant::now();
        let (deliveries, inbox) = {
            let mut s = self.state.lock();
            if s.failed.contains(&from) || s.failed.contains(&to) {
                frames.clear();
                return;
            }
            let Some(inbox) = s.inboxes.get(&to).cloned() else {
                frames.clear();
                return;
            };
            let mut deliveries = Vec::with_capacity(frames.len());
            for bytes in frames.drain(..) {
                if let Some(at) = self.deliver_at_locked(&mut s, now, from, to, bytes.len()) {
                    deliveries.push((at, bytes));
                }
            }
            (deliveries, inbox)
        };
        if deliveries.is_empty() {
            return;
        }
        let hub = self.clone();
        tokio::spawn(async move {
            for (deliver_at, bytes) in deliveries {
                tokio::time::sleep_until(deliver_at).await;
                if hub.state.lock().failed.contains(&to) {
                    return;
                }
                if inbox.send((from, bytes)).await.is_err() {
                    return;
                }
            }
        });
    }
}

fn dur_ms(ms: f64) -> Duration {
    Duration::from_secs_f64((ms / 1000.0).max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lan() -> NetProfile {
        NetProfile::lan()
    }

    #[tokio::test]
    async fn delivers_between_ports() {
        let net = EmulatedNet::new(lan(), 1);
        let a = net.attach(OverlayAddr(1));
        let mut b = net.attach(OverlayAddr(2));
        a.tx.send(OverlayAddr(2), bytes::Bytes::from(&b"hello"[..])).await;
        let (from, bytes) = b.rx.recv().await.unwrap();
        assert_eq!(from, OverlayAddr(1));
        assert_eq!(bytes, b"hello");
        assert_eq!(net.counters().0, 1);
    }

    #[tokio::test]
    async fn failed_node_blackholes() {
        let net = EmulatedNet::new(lan(), 2);
        let a = net.attach(OverlayAddr(1));
        let mut b = net.attach(OverlayAddr(2));
        net.fail(OverlayAddr(2));
        a.tx.send(OverlayAddr(2), bytes::Bytes::from(&b"x"[..])).await;
        tokio::time::sleep(Duration::from_millis(50)).await;
        assert!(b.rx.try_recv().is_err());
    }

    #[tokio::test]
    async fn wan_latency_applied() {
        let net = EmulatedNet::new(NetProfile::planetlab(), 3);
        let a = net.attach(OverlayAddr(1));
        let mut b = net.attach(OverlayAddr(2));
        let start = std::time::Instant::now();
        a.tx.send(OverlayAddr(2), bytes::Bytes::from(vec![0u8; 100])).await;
        let _ = b.rx.recv().await.unwrap();
        let elapsed = start.elapsed();
        assert!(
            elapsed >= Duration::from_millis(15),
            "WAN delivery too fast: {elapsed:?}"
        );
    }

    #[tokio::test]
    async fn link_serialization_limits_throughput() {
        // Pushing many packets down one link must take ~bytes/link_rate.
        let mut profile = lan();
        profile.link_bytes_per_ms = 100.0; // 100 B/ms
        profile.min_delay_ms = 0.01;
        profile.max_delay_ms = 0.02;
        profile.load_delay_ms = 0.0;
        let net = EmulatedNet::new(profile, 4);
        let a = net.attach(OverlayAddr(1));
        let mut b = net.attach(OverlayAddr(2));
        let start = std::time::Instant::now();
        for _ in 0..20 {
            a.tx.send(OverlayAddr(2), bytes::Bytes::from(vec![0u8; 500])).await;
        }
        for _ in 0..20 {
            let _ = b.rx.recv().await.unwrap();
        }
        // 10_000 bytes at 100 B/ms = 100 ms minimum.
        assert!(
            start.elapsed() >= Duration::from_millis(90),
            "link cap not enforced: {:?}",
            start.elapsed()
        );
    }

    #[tokio::test]
    async fn parallel_links_faster_than_one() {
        // The property Fig. 11 rests on: the same volume split over two
        // links completes ~2x faster than over one.
        let mut profile = lan();
        profile.link_bytes_per_ms = 100.0;
        profile.min_delay_ms = 0.01;
        profile.max_delay_ms = 0.02;
        profile.load_delay_ms = 0.0;
        profile.bandwidth_bytes_per_ms = 1e9;
        let net = EmulatedNet::new(profile, 5);
        let a = net.attach(OverlayAddr(1));
        let mut b = net.attach(OverlayAddr(2));
        let mut c = net.attach(OverlayAddr(3));

        // One link: 20 packets to b.
        let start = std::time::Instant::now();
        for _ in 0..20 {
            a.tx.send(OverlayAddr(2), bytes::Bytes::from(vec![0u8; 500])).await;
        }
        for _ in 0..20 {
            let _ = b.rx.recv().await.unwrap();
        }
        let one = start.elapsed();

        // Two links: 10 packets each to b and c.
        let start = std::time::Instant::now();
        for _ in 0..10 {
            a.tx.send(OverlayAddr(2), bytes::Bytes::from(vec![0u8; 500])).await;
            a.tx.send(OverlayAddr(3), bytes::Bytes::from(vec![0u8; 500])).await;
        }
        for _ in 0..10 {
            let _ = b.rx.recv().await.unwrap();
            let _ = c.rx.recv().await.unwrap();
        }
        let two = start.elapsed();
        assert!(
            two < one * 3 / 4,
            "parallel links not faster: one={one:?} two={two:?}"
        );
    }
}
