//! Fig. 17: measured probability of completing a 30-minute session under
//! churn vs added redundancy — information slicing vs onion routing with
//! erasure codes vs standard onion routing (L = 5, d = 2).
//!
//! Substitution: PlanetLab's failure-prone nodes (perceived lifetimes
//! < 20 minutes) become an exponential-lifetime churn model calibrated to
//! a per-session failure probability; each trial runs the *real* protocol
//! engines with failures injected mid-session.

use slicing_bench::{banner, RunOpts, Table};
use slicing_sim::churn::ChurnModel;
use slicing_sim::transfer::ChurnExperiment;

fn main() {
    let opts = RunOpts::from_args();
    let trials = opts.trials(100);
    banner(
        "Figure 17 — session success vs redundancy under churn (measured)",
        "L=5, d=2, 30-minute sessions, failure-prone relays (p=0.2/session)",
        "standard onion ~always fails; onion+EC improves slowly; slicing \
         reaches near-1 success with little redundancy",
    );
    let mut table = Table::new(&[
        "redundancy",
        "slicing",
        "onion_ec",
        "standard_onion",
    ]);
    for dp in 2..=6usize {
        let e = ChurnExperiment {
            length: 5,
            split: 2,
            paths: dp,
            churn: ChurnModel::with_failure_probability(0.2, 30.0),
            messages: 6,
        };
        let (s, ec, o) = e.run(trials, opts.seed);
        table.row(&[e.redundancy(), s.rate(), ec.rate(), o.rate()]);
    }
    table.print();
}
