//! The source session: the sans-IO equivalent of the paper's "source
//! utility" (§7.1).
//!
//! A session owns a forwarding graph. Creating it yields the setup
//! packets to transmit from the pseudo-sources; afterwards the source can
//! slice-and-send encrypted data messages (§4.3.7), decode reverse-path
//! data arriving at the pseudo-sources — and keep the session alive
//! through churn: sealed `FLOW_FAILED` reports from downstream relays
//! accumulate in [`SourceSession::failed_nodes`], and
//! [`SourceSession::repair`] re-runs Algorithm 1 around the dead nodes
//! ([`build::rebuild_excluding`]), splices the new routes into the live
//! flow with targeted re-setup packets, and retransmits the recent
//! message window so nothing queued is lost.
//!
//! The type is split along a durable/per-message seam:
//!
//! * **Durable session state** lives directly on [`SourceSession`] — the
//!   graph (addresses, keys, flow ids, transforms), configuration, RNG,
//!   failure set and keepalive clock. This is what a session *is* for
//!   its whole lifetime, and it is constant-size.
//! * **Per-message machinery** is bounded and transient: the reverse
//!   assembler (`ReverseAssembler` — capped gathers plus a
//!   constant-space replay guard), the retransmission log (ring of
//!   recent plaintexts), and the streaming window (`StreamState`,
//!   driven through [`SourceSession::send`] /
//!   [`SourceSession::pump`]). All of it
//!   drains back to empty once traffic is acknowledged, which is what
//!   lets a [`crate::session::SessionManager`] hold thousands of these
//!   without per-message residue.

use std::collections::{HashMap, HashSet, VecDeque};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use slicing_codec::{coder, recombine, InfoSlice};
use slicing_crypto::SealingKey;
use slicing_graph::packets::SendInstr;
use slicing_graph::{build, BuiltGraph, GraphError, GraphParams, NodeInfo, OverlayAddr};
use slicing_wire::{control, crc, Packet, PacketBuilder, PacketHeader, PacketKind};

use crate::replay::ReplayGuard;
use crate::session::{SessionError, StreamState};
use crate::time::Tick;

/// Source-side tunables.
#[derive(Clone, Copy, Debug)]
pub struct SourceConfig {
    /// Target wire size for data packets; the message chunk size is
    /// derived from it (paper uses 1500-byte packets, §7.2).
    pub data_packet_budget: usize,
    /// How often [`SourceSession::poll`] announces liveness to the
    /// stage-1 relays (who would otherwise declare their pseudo-source
    /// parents dead). Must stay below the relays'
    /// [`crate::RelayConfig::liveness_timeout_ms`]. `0` disables.
    pub keepalive_ms: u64,
    /// Recent plaintexts kept for retransmission after a repair (the
    /// destination's replay guard makes re-delivery at-most-once, so
    /// retransmitting generously is safe).
    pub retransmit_buffer: usize,
}

impl Default for SourceConfig {
    fn default() -> Self {
        SourceConfig {
            data_packet_budget: 1500,
            keepalive_ms: 10_000,
            retransmit_buffer: 64,
        }
    }
}

/// Per-seq reverse gathering state: (pseudo-source, sender) pairs heard
/// and the CRC-valid slices collected so far.
type ReverseGather = (HashSet<(OverlayAddr, OverlayAddr)>, Vec<InfoSlice>);

/// Upper bound on concurrently gathering reverse seqs; beyond it, seqs
/// far behind the newest are reaped (they will re-gather if their
/// slices ever complete).
const REVERSE_GATHER_CAP: usize = 128;
/// How far behind the newest reverse seq a gather may lag before the
/// cap reaps it.
const REVERSE_GATHER_HORIZON: u32 = 512;

/// The per-message half of the reverse path: bounded in-progress
/// gathers plus a constant-space at-most-once guard. Long-lived
/// sessions accumulate nothing here — decoded seqs collapse into the
/// guard's watermark+bitmap and stale gathers are reaped by the cap.
///
/// The cap cannot be pinned by forged traffic: the horizon tracks the
/// highest *authenticated* (decoded) seq — a forged far-future seq in a
/// cleartext header never moves it — and when the cap is reached the
/// oldest gather is evicted for the newcomer, so progress on fresh seqs
/// is always possible.
#[derive(Debug, Default)]
struct ReverseAssembler {
    /// Reverse-path gathering: seq → ((pseudo-source, sender) pairs
    /// heard, slices). Keyed on the pair because one relay legitimately
    /// delivers distinct slices to several pseudo-sources (e.g. a
    /// destination sitting in stage 1).
    gathers: HashMap<u32, ReverseGather>,
    /// Reverse seqs already decoded (constant space).
    done: ReplayGuard,
    /// Highest reverse seq successfully decoded (AEAD-authenticated;
    /// drives the gather horizon).
    highest: u32,
}

impl ReverseAssembler {
    /// Admit `seq` for gathering; `None` when it is already decoded.
    /// Enforces the gather cap: stale seqs far behind the newest
    /// decoded one are reaped first, then the oldest pending gather is
    /// evicted so the newcomer always finds room.
    fn admit(&mut self, seq: u32) -> Option<&mut ReverseGather> {
        if self.done.contains(seq) {
            return None;
        }
        if self.gathers.len() >= REVERSE_GATHER_CAP && !self.gathers.contains_key(&seq) {
            let horizon = self.highest.saturating_sub(REVERSE_GATHER_HORIZON);
            self.gathers.retain(|&s, _| s >= horizon);
            if self.gathers.len() >= REVERSE_GATHER_CAP {
                if let Some(&oldest) = self.gathers.keys().min() {
                    self.gathers.remove(&oldest);
                }
            }
        }
        Some(self.gathers.entry(seq).or_default())
    }

    /// Mark `seq` decoded (ratcheting the authenticated horizon) and
    /// drop its gather.
    fn finish(&mut self, seq: u32) {
        self.done.insert(seq);
        self.highest = self.highest.max(seq);
        self.gathers.remove(&seq);
    }
}

/// An anonymous connection from the source's point of view.
///
/// # Example
///
/// Establish a 3-stage graph over the deterministic
/// [`TestNet`](crate::testnet::TestNet), send one message, and observe
/// that only the destination decodes it:
///
/// ```
/// use slicing_core::testnet::TestNet;
/// use slicing_core::{GraphParams, OverlayAddr, SourceSession};
///
/// let pseudo: Vec<OverlayAddr> = (0..2).map(OverlayAddr).collect();
/// let relays: Vec<OverlayAddr> = (100..116).map(OverlayAddr).collect();
/// let dest = OverlayAddr(999);
/// let mut nodes = relays.clone();
/// nodes.push(dest);
///
/// // Build the forwarding graph (Algorithm 1) and its setup packets.
/// let (mut session, setup) =
///     SourceSession::establish(GraphParams::new(3, 2), &pseudo, &relays, dest, 42)
///         .expect("enough candidate relays");
/// let mut net = TestNet::new(&nodes, 42);
/// net.submit(setup);
/// net.run_to_quiescence(Some(&mut session));
///
/// // Slice, encrypt and send one data message.
/// let (seq, sends) = session.send_message(b"hello overlay").expect("fits one chunk");
/// net.submit(sends);
/// net.run_to_quiescence(Some(&mut session));
/// assert_eq!(
///     net.messages_for(dest),
///     vec![(seq, b"hello overlay".to_vec())],
/// );
/// ```
pub struct SourceSession {
    graph: BuiltGraph,
    pub(crate) config: SourceConfig,
    next_seq: u32,
    /// Per-message reverse-path machinery (bounded).
    reverse: ReverseAssembler,
    /// Relays reported dead (authenticated `FLOW_FAILED` reports) and
    /// not yet repaired around.
    failed: HashSet<OverlayAddr>,
    /// Recent messages kept for retransmission after a repair.
    sent_log: VecDeque<(u32, Vec<u8>)>,
    /// Last keepalive emission ([`SourceSession::poll`]).
    pub(crate) last_keepalive: Option<Tick>,
    /// Setup packets emitted over the session's lifetime (initial
    /// establishment plus repairs) — the measure of how much of the
    /// graph a repair had to touch.
    setup_packets_sent: u64,
    /// The streaming window (per-message machinery; see
    /// [`SourceSession::send`]).
    pub(crate) stream: StreamState,
    /// Cached sealing state for the destination key — subkeys and HMAC
    /// midstates derived once per session (rebuilt when a repair swaps
    /// the graph), not once per message.
    dest_sealer: SealingKey,
    /// Sealers for every per-node key the source issued, used to
    /// authenticate `FLOW_FAILED` reports. Built lazily on the first
    /// report (most sessions never see one) and cleared on repair.
    issued_sealers: Vec<SealingKey>,
    /// Reusable seal output buffer: steady-state sends write
    /// `nonce ‖ ciphertext ‖ tag` here without allocating.
    seal_buf: Vec<u8>,
    rng: StdRng,
}

impl SourceSession {
    /// Build a forwarding graph and the setup packets that establish it.
    ///
    /// Arguments mirror [`slicing_graph::build::build`]; see there for the
    /// requirements on `pseudo_sources` and `candidates`.
    pub fn establish(
        params: GraphParams,
        pseudo_sources: &[OverlayAddr],
        candidates: &[OverlayAddr],
        dest: OverlayAddr,
        seed: u64,
    ) -> Result<(SourceSession, Vec<SendInstr>), GraphError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = build::build(params, pseudo_sources, candidates, dest, &mut rng)?;
        let setup = graph.setup_packets(&mut rng);
        let dest_sealer = SealingKey::new(&graph.dest_key);
        Ok((
            SourceSession {
                graph,
                config: SourceConfig::default(),
                next_seq: 0,
                reverse: ReverseAssembler::default(),
                failed: HashSet::new(),
                sent_log: VecDeque::new(),
                last_keepalive: None,
                setup_packets_sent: setup.len() as u64,
                stream: StreamState::default(),
                dest_sealer,
                issued_sealers: Vec::new(),
                seal_buf: Vec::new(),
                rng,
            },
            setup,
        ))
    }

    /// Override the configuration.
    pub fn set_config(&mut self, config: SourceConfig) {
        self.config = config;
    }

    /// The underlying graph (stages, destination position, keys).
    pub fn graph(&self) -> &BuiltGraph {
        &self.graph
    }

    /// Largest plaintext chunk that fits the data-packet budget.
    ///
    /// A data slot is `d` coefficients + block + CRC; the sealed message
    /// (nonce + ciphertext + tag = plaintext + 44 bytes) is split into `d`
    /// blocks.
    pub fn max_chunk_len(&self) -> usize {
        let d = self.graph.params.split;
        let header = slicing_wire::HEADER_LEN;
        let block_budget = self
            .config
            .data_packet_budget
            .saturating_sub(header + d + 4);
        // block_len = ceil((sealed + 4) / d)  =>  sealed ≈ block_budget·d − 4
        (block_budget * d).saturating_sub(4 + 44).max(1)
    }

    /// Slice, encrypt and address one single-chunk data message; returns
    /// its sequence number and the packets to transmit (d′² of them, one
    /// per pseudo-source → stage-1 relay edge, §7.2).
    ///
    /// The plaintext is also retained in a bounded retransmission window
    /// ([`SourceConfig::retransmit_buffer`]) so a later
    /// [`SourceSession::repair`] can replay messages that were in flight
    /// when a relay died.
    ///
    /// Plaintexts larger than [`Self::max_chunk_len`] yield
    /// [`SessionError::Oversize`] — use the streaming
    /// [`SourceSession::send`], which chunks arbitrary lengths.
    ///
    /// Raw and streamed sends share the session's sequence space. On a
    /// session that uses the streaming `send`, prefer it exclusively:
    /// raw messages are not covered by the ack/retransmit window, and a
    /// raw seq that is *never* delivered stalls the destination's
    /// cumulative ack watermark (the ack bitmap reaches only 64 seqs
    /// past it). Drivers that mix the two — like the churn harness —
    /// must retry raw messages themselves.
    pub fn send_message(
        &mut self,
        plaintext: &[u8],
    ) -> Result<(u32, Vec<SendInstr>), SessionError> {
        if plaintext.len() > self.max_chunk_len() {
            return Err(SessionError::Oversize {
                len: plaintext.len(),
                max: self.max_chunk_len(),
            });
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.sent_log.push_back((seq, plaintext.to_vec()));
        while self.sent_log.len() > self.config.retransmit_buffer {
            self.sent_log.pop_front();
        }
        Ok((seq, self.encode_message(seq, plaintext)))
    }

    /// Allocate a sequence number and encode `plaintext` against the
    /// current graph without touching the retransmission log — the
    /// streaming window keeps its own copy of every in-flight chunk.
    pub(crate) fn send_raw(&mut self, plaintext: &[u8]) -> (u32, Vec<SendInstr>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        (seq, self.encode_message(seq, plaintext))
    }

    /// Slice, encrypt and address `plaintext` as message `seq` against
    /// the current graph (shared by fresh sends and repair
    /// retransmissions — the destination's replay guard keeps repeated
    /// seqs at-most-once).
    pub(crate) fn encode_message(&mut self, seq: u32, plaintext: &[u8]) -> Vec<SendInstr> {
        let params = self.graph.params;
        let (d, dp) = (params.split, params.paths);
        // Cached subkeys + midstates, sealed into the reusable buffer —
        // the steady-state seal allocates nothing.
        self.dest_sealer
            .seal_into(plaintext, &mut self.seal_buf, &mut self.rng);
        let coded = coder::encode(&self.seal_buf, d, dp, &mut self.rng);
        let slot_len = d + coded.block_len + 4;
        let recode = matches!(params.data_mode, slicing_graph::DataMode::Recode);
        let mut sends = Vec::with_capacity(dp * dp);
        for i in 0..dp {
            for v in 0..dp {
                let mut builder = PacketBuilder::new(PacketHeader {
                    kind: PacketKind::Data,
                    flow_id: self.graph.flow_ids[1][v],
                    seq,
                    d: d as u8,
                    slot_count: 1,
                    slot_len: slot_len as u16,
                });
                // Write the slice straight into the packet's slot.
                let slot = builder.slot();
                let body = d + coded.block_len;
                let fresh;
                let slice = if recode {
                    fresh = recombine::recombine(&coded.slices, &mut self.rng);
                    &fresh
                } else {
                    // Static assignment: slice (i + v + h₀) mod d′ crosses
                    // edge (pseudo-source i → stage-1 relay v).
                    &coded.slices[(i + v + self.graph.data_offsets[0]) % dp]
                };
                slot[..d].copy_from_slice(&slice.coeffs);
                slot[d..body].copy_from_slice(&slice.payload);
                crc::write_crc(slot);
                sends.push(SendInstr {
                    from: self.graph.stages[0][i],
                    to: self.graph.stages[1][v],
                    packet: builder.build(),
                });
            }
        }
        sends
    }

    /// Feed a packet received at one of the pseudo-sources; returns a
    /// decoded raw reverse-path message when one completes (§4.3.7).
    ///
    /// Sealed `FLOW_FAILED` control reports are consumed here too: the
    /// source tries every per-node key it issued, and an authentic
    /// report adds the dead relay to [`SourceSession::failed_nodes`]
    /// for the driver to [`repair`](SourceSession::repair) around.
    ///
    /// Stream control traffic (acknowledgements for the
    /// [`send`](SourceSession::send) window, framed replies) is consumed
    /// internally: acks open the window (emitted by the next
    /// [`pump`](SourceSession::pump)), replies are drained via
    /// [`pop_replies`](SourceSession::pop_replies).
    pub fn handle_packet(
        &mut self,
        _now: Tick,
        pseudo_source: OverlayAddr,
        from: OverlayAddr,
        packet: &Packet,
    ) -> Option<(u32, Vec<u8>)> {
        if packet.header.kind == PacketKind::Control {
            self.handle_control(packet);
            return None;
        }
        if packet.header.kind != PacketKind::Data {
            return None;
        }
        // Reverse packets arrive on the pseudo-sources' reverse flow ids
        // (borrowed in place — this runs once per received packet).
        if !self.graph.reverse_flow_ids[0].contains(&packet.header.flow_id) {
            return None;
        }
        let seq = packet.header.seq;
        let d = self.graph.params.split;
        // Parse before admitting: a packet with no CRC-valid slice
        // allocates no gather state (cheap chaff cannot occupy the cap).
        let mut slices = Vec::new();
        for slot in packet.slots() {
            if slot.len() < d + 4 {
                continue;
            }
            if let Some(payload) = crc::check_crc(slot) {
                if let Some(slice) = InfoSlice::from_bytes(d, slot.len() - d - 4, payload) {
                    slices.push(slice);
                }
            }
        }
        if slices.is_empty() {
            return None;
        }
        let entry = self.reverse.admit(seq)?;
        if !entry.0.insert((pseudo_source, from)) {
            return None;
        }
        entry.1.extend(slices);
        if entry.1.len() >= d {
            if let Ok(sealed) = coder::decode(&entry.1, d) {
                if let Ok(plaintext) = self.dest_sealer.open_owned(sealed) {
                    self.reverse.finish(seq);
                    return self.stream_consume(seq, plaintext);
                }
            }
        }
        None
    }

    /// Decode a control packet addressed to the source (a stage-0
    /// reverse flow id): sealed FLOW_FAILED reports name dead relays.
    fn handle_control(&mut self, packet: &Packet) {
        if !self.graph.reverse_flow_ids[0].contains(&packet.header.flow_id) {
            return;
        }
        let Some((control::FLOW_FAILED, sealed)) = control::parse(packet) else {
            return;
        };
        // The reporter sealed the address under its own secret key; the
        // source issued every key in the graph, so trying each is cheap
        // (L·d′ AEAD opens) and authenticates the report. The per-key
        // sealers (subkey derivations + HMAC midstates) are cached
        // across reports — a churn burst delivers many, and re-deriving
        // L·d′ subkey sets per report would dwarf the opens themselves.
        if self.issued_sealers.is_empty() {
            self.issued_sealers = self
                .graph
                .infos
                .iter()
                .skip(1)
                .flat_map(|stage| stage.iter())
                .map(|info| SealingKey::new(&info.secret_key))
                .collect();
        }
        for sealer in &self.issued_sealers {
            if let Ok(bytes) = sealer.open(sealed) {
                let Ok(addr_bytes) = <[u8; 8]>::try_from(bytes.as_slice()) else {
                    return;
                };
                let dead = OverlayAddr::from_bytes(addr_bytes);
                // Stragglers naming already-replaced nodes (reports
                // still washing up the reverse path) are ignored:
                // only a relay in the *current* graph can fail.
                if self.graph.relay_addrs().any(|a| a == dead)
                    && dead != self.graph.dest_addr()
                {
                    self.failed.insert(dead);
                }
                return;
            }
        }
    }

    /// Relays reported dead (and not yet repaired around).
    pub fn failed_nodes(&self) -> &HashSet<OverlayAddr> {
        &self.failed
    }

    /// Whether any relay of the live graph has been reported dead.
    pub fn needs_repair(&self) -> bool {
        !self.failed.is_empty()
    }

    /// Setup packets emitted so far (initial establishment plus every
    /// repair) — lets tests assert a repair re-keyed only the affected
    /// paths.
    pub fn setup_packets_sent(&self) -> u64 {
        self.setup_packets_sent
    }

    /// Periodic source-side work: liveness announcements to the stage-1
    /// relays (every [`SourceConfig::keepalive_ms`]) and stream-window
    /// driving ([`pump`](SourceSession::pump) — retransmits and paced
    /// chunk emission). Drive this from the daemon's timer alongside
    /// feeding received packets in; [`next_due`](SourceSession::next_due)
    /// says when the next call is actually needed.
    pub fn poll(&mut self, now: Tick) -> Vec<SendInstr> {
        let mut sends = self.pump(now);
        sends.extend(self.keepalives(now));
        sends
    }

    /// Emit keepalives to the stage-1 relays when the interval elapsed.
    fn keepalives(&mut self, now: Tick) -> Vec<SendInstr> {
        let interval = self.config.keepalive_ms;
        if interval == 0 {
            return Vec::new();
        }
        if let Some(last) = self.last_keepalive {
            if now.0 < last.0 + interval {
                return Vec::new();
            }
        }
        self.last_keepalive = Some(now);
        let dp = self.graph.params.paths;
        let mut sends = Vec::with_capacity(dp * dp);
        for i in 0..dp {
            for v in 0..dp {
                sends.push(SendInstr {
                    from: self.graph.stages[0][i],
                    to: self.graph.stages[1][v],
                    // Token = the pseudo-source's reverse flow id, as
                    // held in the stage-1 relay's parent list.
                    packet: control::keepalive(
                        self.graph.flow_ids[1][v],
                        self.graph.reverse_flow_ids[0][i],
                    ),
                });
            }
        }
        sends
    }

    /// Re-run Algorithm 1 around the reported-dead relays
    /// ([`build::rebuild_excluding`]) and splice the new routes into the
    /// live flow. Returns the packets to transmit:
    ///
    /// * **Targeted re-setup** — `d′` clean setup packets per *affected*
    ///   relay only (the replacements and the dead nodes' direct
    ///   neighbours), sent straight from the pseudo-sources. Survivors
    ///   authenticate the update against their flow's secret key and
    ///   splice the new neighbour lists in place; replacements establish
    ///   as fresh flows. Unaffected relays receive nothing.
    /// * **Retransmissions** — the buffered recent messages re-encoded
    ///   against the repaired graph (at-most-once at the destination via
    ///   its replay guard).
    ///
    /// `spares` are candidate replacement relays; addresses already in
    /// the graph (or themselves reported dead) are skipped.
    pub fn repair(&mut self, spares: &[OverlayAddr]) -> Result<Vec<SendInstr>, GraphError> {
        let failed = std::mem::take(&mut self.failed);
        let (graph, affected) =
            match build::rebuild_excluding(&self.graph, &failed, spares, &mut self.rng) {
                Ok(ok) => ok,
                Err(e) => {
                    self.failed = failed;
                    return Err(e);
                }
            };
        let d = graph.params.split;
        let dp = graph.params.paths;
        let mut sends = Vec::new();
        for pos in &affected {
            // The update a relay applies in place (or, for a
            // replacement, establishes from): correct parents/children
            // and maps, but no downstream slices to forward — repair
            // setup is delivered directly to each affected node.
            let mut info: NodeInfo = graph.infos[pos.stage][pos.index].clone();
            info.out_real_slots = 0;
            info.slice_map = Vec::new();
            let coded = coder::encode(&info.encode(), d, dp, &mut self.rng);
            let slot_len = d + coded.block_len + 4;
            for (i, slice) in coded.slices.iter().enumerate() {
                let mut builder = PacketBuilder::new(PacketHeader {
                    kind: PacketKind::Setup,
                    flow_id: graph.flow_ids[pos.stage][pos.index],
                    seq: 0,
                    d: d as u8,
                    slot_count: 1,
                    slot_len: slot_len as u16,
                });
                let slot = builder.slot();
                slot[..d].copy_from_slice(&slice.coeffs);
                slot[d..d + coded.block_len].copy_from_slice(&slice.payload);
                crc::write_crc(slot);
                sends.push(SendInstr {
                    from: graph.stages[0][i % dp],
                    to: graph.stages[pos.stage][pos.index],
                    packet: builder.build(),
                });
            }
        }
        self.setup_packets_sent += sends.len() as u64;
        self.graph = graph;
        // The repair re-keyed part of the graph: rebuild the cached
        // destination sealer and drop the issued-key sealers (rebuilt
        // lazily from the new key set on the next report).
        self.dest_sealer = SealingKey::new(&self.graph.dest_key);
        self.issued_sealers.clear();
        // Replay the recent message window over the repaired routes.
        let log: Vec<(u32, Vec<u8>)> = self.sent_log.iter().cloned().collect();
        for (seq, plaintext) in log {
            sends.extend(self.encode_message(seq, &plaintext));
        }
        Ok(sends)
    }

    /// Re-encode and re-address a recent message (fresh coded slices
    /// over the *current* graph). `None` if `seq` has aged out of the
    /// retransmission window.
    ///
    /// Drivers use this to retry messages the destination has not
    /// acknowledged — e.g. a message whose slices were in flight through
    /// a relay when it died, or a retransmission that raced a gather's
    /// duplicate-suppression window. Delivery stays at-most-once (the
    /// destination's replay guard).
    pub fn retransmit(&mut self, seq: u32) -> Option<Vec<SendInstr>> {
        let plaintext = self
            .sent_log
            .iter()
            .find(|(s, _)| *s == seq)?
            .1
            .clone();
        Some(self.encode_message(seq, &plaintext))
    }

    /// All addresses this session's pseudo-sources use.
    pub fn pseudo_sources(&self) -> &[OverlayAddr] {
        &self.graph.stages[0]
    }

    /// Random convenience access for drivers that need additional
    /// source-side randomness (e.g. jitter).
    pub fn rng(&mut self) -> &mut impl Rng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slicing_graph::DestPlacement;

    fn addrs(base: u64, n: usize) -> Vec<OverlayAddr> {
        (0..n as u64).map(|i| OverlayAddr(base + i)).collect()
    }

    fn session(l: usize, d: usize, dp: usize) -> (SourceSession, Vec<SendInstr>) {
        let params = GraphParams::new(l, d)
            .with_paths(dp)
            .with_dest_placement(DestPlacement::LastStage);
        SourceSession::establish(
            params,
            &addrs(10_000, dp),
            &addrs(20_000, l * dp + 8),
            OverlayAddr(1),
            7,
        )
        .unwrap()
    }

    #[test]
    fn establish_emits_setup_packets() {
        let (s, setup) = session(4, 2, 3);
        assert_eq!(setup.len(), 9); // d'^2
        assert_eq!(s.graph().params.length, 4);
    }

    #[test]
    fn send_message_emits_dp_squared_packets() {
        let (mut s, _) = session(4, 2, 3);
        let (seq, sends) = s.send_message(b"hello").unwrap();
        assert_eq!(seq, 0);
        assert_eq!(sends.len(), 9);
        let (seq2, _) = s.send_message(b"world").unwrap();
        assert_eq!(seq2, 1);
    }

    #[test]
    fn data_packets_fit_budget() {
        let (mut s, _) = session(5, 3, 3);
        let chunk = vec![0xAB; s.max_chunk_len()];
        let (_, sends) = s.send_message(&chunk).unwrap();
        for send in sends {
            assert!(
                send.packet.encode().len() <= 1500,
                "packet {} exceeds budget",
                send.packet.encode().len()
            );
        }
    }

    #[test]
    fn oversize_message_is_typed_error() {
        let (mut s, _) = session(5, 2, 2);
        let max = s.max_chunk_len();
        let too_big = vec![0u8; max + 1];
        assert_eq!(
            s.send_message(&too_big).unwrap_err(),
            crate::session::SessionError::Oversize { len: max + 1, max },
        );
        // The session stays usable — no seq was consumed.
        let (seq, _) = s.send_message(b"still fine").unwrap();
        assert_eq!(seq, 0);
    }

    #[test]
    fn map_mode_sends_each_slice_once_per_stage1_node() {
        let params = GraphParams::new(3, 2)
            .with_paths(3)
            .with_data_mode(slicing_graph::DataMode::Map);
        let (mut s, _) = SourceSession::establish(
            params,
            &addrs(10_000, 3),
            &addrs(20_000, 30),
            OverlayAddr(1),
            9,
        )
        .unwrap();
        let (_, sends) = s.send_message(b"map mode").unwrap();
        // Every stage-1 relay receives 3 distinct coefficient rows.
        for v in 0..3usize {
            let to = s.graph().stages[1][v];
            let rows: HashSet<Vec<u8>> = sends
                .iter()
                .filter(|x| x.to == to)
                .map(|x| x.packet.slot(0)[..2].to_vec())
                .collect();
            assert_eq!(rows.len(), 3, "stage-1 node {v} got duplicate slices");
        }
    }
}
