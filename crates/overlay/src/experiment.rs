//! Measurement harnesses for the paper's performance experiments
//! (Figs. 11–15): end-to-end transfers for information slicing and the
//! onion baseline, over either transport, plus the multi-flow scaling
//! driver.

use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use slicing_core::{
    DestPlacement, GraphParams, OverlayAddr, RelayConfig, RelayNode, SessionConfig,
    SessionManager, ShardedRelay, SourceConfig, SourceSession,
};
use slicing_graph::packets::SendInstr;
use slicing_onion::{Directory, OnionRelay, OnionSource};
use slicing_sim::churn::ChurnModel;
use slicing_sim::wan::NetProfile;
use tokio::sync::mpsc;

use crate::daemon::{
    now_tick, spawn_node, spawn_onion_relay, spawn_relay, spawn_sharded_relay, DestSessionSpec,
    NodeSpec, OverlayEvent, RelayDaemon, SessionEvent,
};
use crate::{EmulatedNet, NodePort, TcpNet, UdpFaults, UdpNet, UdpStatsSnapshot};

/// Spawn one relay daemon: the classic single-task loop for one shard,
/// the sharded ingress/worker runtime otherwise.
fn spawn_relay_daemon(
    addr: OverlayAddr,
    seed: u64,
    config: RelayConfig,
    shards: usize,
    port: NodePort,
    events: mpsc::UnboundedSender<OverlayEvent>,
    epoch: Instant,
) -> RelayDaemon {
    if shards > 1 {
        spawn_sharded_relay(
            ShardedRelay::with_config(addr, seed, config, shards),
            port,
            events,
            epoch,
        )
    } else {
        spawn_relay(RelayNode::with_config(addr, seed, config), port, events, epoch)
    }
}

/// Which transport to measure over.
#[derive(Clone, Debug)]
pub enum Transport {
    /// In-process emulated network with the given condition profile.
    Emulated(NetProfile),
    /// Real TCP sockets on loopback.
    Tcp,
    /// Real UDP datagrams on loopback, with delay-gradient congestion
    /// control and the given injected fault profile.
    Udp(UdpFaults),
}

/// Configuration of one transfer experiment.
#[derive(Clone, Debug)]
pub struct TransferConfig {
    /// Graph shape.
    pub params: GraphParams,
    /// Transport to run over.
    pub transport: Transport,
    /// Number of data messages.
    pub messages: usize,
    /// Plaintext bytes per message (clamped to the protocol's budget).
    pub payload_len: usize,
    /// RNG seed.
    pub seed: u64,
    /// Hard deadline for the whole run.
    pub timeout: Duration,
    /// Shards per relay daemon (1 = classic single-task daemons; more
    /// runs every relay through the sharded ingress/worker runtime).
    pub relay_shards: usize,
    /// Relay engine tuning (timeouts, keepalive/liveness intervals).
    pub relay_config: RelayConfig,
}

impl Default for TransferConfig {
    fn default() -> Self {
        TransferConfig {
            params: GraphParams::new(5, 2).with_dest_placement(DestPlacement::LastStage),
            transport: Transport::Emulated(NetProfile::lan()),
            messages: 20,
            payload_len: 1200,
            seed: 7,
            timeout: Duration::from_secs(60),
            relay_shards: 1,
            relay_config: RelayConfig::default(),
        }
    }
}

/// Results of one transfer run.
#[derive(Clone, Copy, Debug, Default)]
pub struct TransferReport {
    /// Route-setup latency: first setup packet sent → destination
    /// decoded its info (§7.4; the paper adds an explicit ack for
    /// collection, we observe the destination directly).
    pub setup_ms: u64,
    /// Data-phase duration: first data send → last delivery.
    pub transfer_ms: u64,
    /// Application payload bytes delivered.
    pub payload_bytes: u64,
    /// Messages delivered (of the configured count).
    pub messages_delivered: usize,
    /// Application-level throughput in Mbit/s.
    pub throughput_mbps: f64,
    /// Wire packets transported (emulated transport only).
    pub wire_packets: u64,
    /// Wire bytes transported (emulated transport only).
    pub wire_bytes: u64,
}

enum NetHandle {
    Emu(EmulatedNet),
    Tcp,
    Udp(UdpNet),
}

impl NetHandle {
    async fn attach(&self, suggested: OverlayAddr) -> NodePort {
        match self {
            NetHandle::Emu(net) => net.attach(suggested),
            NetHandle::Tcp => TcpNet::attach().await.expect("loopback bind"),
            NetHandle::Udp(net) => net.attach().await.expect("loopback bind"),
        }
    }

    fn counters(&self) -> (u64, u64) {
        match self {
            NetHandle::Emu(net) => net.counters(),
            NetHandle::Tcp => (0, 0),
            NetHandle::Udp(net) => (net.stats().datagrams_sent, 0),
        }
    }

    /// UDP transport counters, when the run went over UDP.
    fn udp_stats(&self) -> Option<UdpStatsSnapshot> {
        match self {
            NetHandle::Udp(net) => Some(net.stats()),
            _ => None,
        }
    }
}

fn make_net(t: &Transport, seed: u64) -> NetHandle {
    match t {
        Transport::Emulated(profile) => NetHandle::Emu(EmulatedNet::new(*profile, seed)),
        Transport::Tcp => NetHandle::Tcp,
        Transport::Udp(faults) => NetHandle::Udp(UdpNet::new(*faults, seed)),
    }
}

/// Run one information-slicing transfer end to end; see
/// [`TransferConfig`].
pub async fn run_slicing_transfer(cfg: &TransferConfig) -> TransferReport {
    let net = make_net(&cfg.transport, cfg.seed);
    let params = cfg.params;
    let dp = params.paths;
    let relay_count = params.relay_count() + 4;

    // Attach everything (transport assigns addresses for TCP).
    let mut pseudo_ports = Vec::with_capacity(dp);
    for i in 0..dp {
        pseudo_ports.push(net.attach(OverlayAddr(1_000 + i as u64)).await);
    }
    let dest_port = net.attach(OverlayAddr(1)).await;
    let dest_addr = dest_port.addr;
    let mut relay_ports = Vec::with_capacity(relay_count);
    for i in 0..relay_count {
        relay_ports.push(net.attach(OverlayAddr(10_000 + i as u64)).await);
    }
    let pseudo_addrs: Vec<OverlayAddr> = pseudo_ports.iter().map(|p| p.addr).collect();
    let candidate_addrs: Vec<OverlayAddr> = relay_ports.iter().map(|p| p.addr).collect();

    // Daemons.
    let (events_tx, mut events_rx) = mpsc::unbounded_channel();
    let epoch = Instant::now();
    let mut handles = Vec::new();
    for port in relay_ports {
        handles.push(spawn_relay_daemon(
            port.addr,
            cfg.seed,
            cfg.relay_config,
            cfg.relay_shards,
            port,
            events_tx.clone(),
            epoch,
        ));
    }
    handles.push(spawn_relay_daemon(
        dest_addr,
        cfg.seed,
        cfg.relay_config,
        cfg.relay_shards,
        dest_port,
        events_tx.clone(),
        epoch,
    ));

    // Source: build graph, emit setup from the pseudo-source ports.
    let (mut source, setup) = SourceSession::establish(
        params,
        &pseudo_addrs,
        &candidate_addrs,
        dest_addr,
        cfg.seed,
    )
    .expect("graph parameters validated by caller");
    let setup_start = Instant::now();
    for instr in setup {
        let port = pseudo_ports
            .iter()
            .find(|p| p.addr == instr.from)
            .expect("pseudo-source port");
        port.tx.send(instr.to, instr.packet.encode()).await;
    }

    // Wait for the destination to establish.
    let mut report = TransferReport::default();
    let deadline = tokio::time::sleep(cfg.timeout);
    tokio::pin!(deadline);
    loop {
        tokio::select! {
            ev = events_rx.recv() => {
                match ev {
                    Some(OverlayEvent::Established { addr, receiver: true, .. })
                        if addr == dest_addr =>
                    {
                        report.setup_ms = setup_start.elapsed().as_millis() as u64;
                        break;
                    }
                    Some(_) => continue,
                    None => return report,
                }
            }
            _ = &mut deadline => return report,
        }
    }

    // Data phase.
    let payload_len = cfg.payload_len.min(source.max_chunk_len());
    let payload = vec![0xA5u8; payload_len];
    let data_start = Instant::now();
    for _ in 0..cfg.messages {
        let (_, sends) = source.send_message(&payload).expect("payload clamped to budget");
        for instr in sends {
            let port = pseudo_ports
                .iter()
                .find(|p| p.addr == instr.from)
                .expect("pseudo-source port");
            port.tx.send(instr.to, instr.packet.encode()).await;
        }
    }
    let mut delivered = 0usize;
    let deadline = tokio::time::sleep(cfg.timeout);
    tokio::pin!(deadline);
    while delivered < cfg.messages {
        tokio::select! {
            ev = events_rx.recv() => {
                match ev {
                    Some(OverlayEvent::MessageReceived { addr, len, .. }) if addr == dest_addr => {
                        delivered += 1;
                        report.payload_bytes += len as u64;
                    }
                    Some(_) => continue,
                    None => break,
                }
            }
            _ = &mut deadline => break,
        }
    }
    report.transfer_ms = data_start.elapsed().as_millis() as u64;
    report.messages_delivered = delivered;
    report.throughput_mbps =
        throughput_mbps_f(report.payload_bytes, data_start.elapsed().as_secs_f64());
    let (p, b) = net.counters();
    report.wire_packets = p;
    report.wire_bytes = b;
    for h in handles {
        h.abort();
    }
    report
}

/// Run one onion-routing transfer (standard, single circuit) with the
/// same measurement points.
pub async fn run_onion_transfer(cfg: &TransferConfig) -> TransferReport {
    let net = make_net(&cfg.transport, cfg.seed ^ 0x0410);
    let hops = cfg.params.length;
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let source_port = net.attach(OverlayAddr(1_000)).await;
    let mut relay_ports = Vec::with_capacity(hops);
    for i in 0..hops {
        relay_ports.push(net.attach(OverlayAddr(10_000 + i as u64)).await);
    }
    let path: Vec<OverlayAddr> = relay_ports.iter().map(|p| p.addr).collect();
    let dest_addr = *path.last().expect("non-empty path");

    // PKI: register all relays.
    let mut dir = Directory::new();
    let mut keypairs = Vec::new();
    for &addr in &path {
        keypairs.push((addr, dir.register(addr, 512, &mut rng)));
    }

    let (events_tx, mut events_rx) = mpsc::unbounded_channel();
    let epoch = Instant::now();
    let mut handles = Vec::new();
    for port in relay_ports {
        let (_, kp) = keypairs
            .iter()
            .find(|(a, _)| *a == port.addr)
            .expect("registered");
        let relay = OnionRelay::new(port.addr, kp.clone());
        handles.push(spawn_onion_relay(relay, port, events_tx.clone(), epoch));
    }

    let mut report = TransferReport::default();
    let setup_start = Instant::now();
    let (mut handle, setup) =
        OnionSource::build_circuit(source_port.addr, &path, &dir, &mut rng)
            .expect("registered path");
    source_port.tx.send(setup.to, setup.packet.encode()).await;

    // Wait for the exit to establish.
    let deadline = tokio::time::sleep(cfg.timeout);
    tokio::pin!(deadline);
    loop {
        tokio::select! {
            ev = events_rx.recv() => {
                match ev {
                    Some(OverlayEvent::Established { addr, receiver: true, .. })
                        if addr == dest_addr =>
                    {
                        report.setup_ms = setup_start.elapsed().as_millis() as u64;
                        break;
                    }
                    Some(_) => continue,
                    None => return report,
                }
            }
            _ = &mut deadline => return report,
        }
    }

    // Data phase: same payload volume as the slicing run.
    let payload = vec![0xA5u8; cfg.payload_len];
    let data_start = Instant::now();
    for _ in 0..cfg.messages {
        let (_, send) = handle.send_data(&payload, &mut rng);
        source_port.tx.send(send.to, send.packet.encode()).await;
    }
    let mut delivered = 0usize;
    let deadline = tokio::time::sleep(cfg.timeout);
    tokio::pin!(deadline);
    while delivered < cfg.messages {
        tokio::select! {
            ev = events_rx.recv() => {
                match ev {
                    Some(OverlayEvent::MessageReceived { addr, len, .. }) if addr == dest_addr => {
                        delivered += 1;
                        report.payload_bytes += len as u64;
                    }
                    Some(_) => continue,
                    None => break,
                }
            }
            _ = &mut deadline => break,
        }
    }
    report.transfer_ms = data_start.elapsed().as_millis() as u64;
    report.messages_delivered = delivered;
    report.throughput_mbps =
        throughput_mbps_f(report.payload_bytes, data_start.elapsed().as_secs_f64());
    let (p, b) = net.counters();
    report.wire_packets = p;
    report.wire_bytes = b;
    for h in handles {
        h.abort();
    }
    report
}

/// Results of a multi-flow scaling run (Fig. 13).
#[derive(Clone, Copy, Debug, Default)]
pub struct MultiFlowReport {
    /// Concurrent flows attempted.
    pub flows: usize,
    /// Flows whose destination established.
    pub flows_established: usize,
    /// Total application bytes delivered across flows.
    pub payload_bytes: u64,
    /// Wall-clock duration of the data phase, ms.
    pub elapsed_ms: u64,
    /// Aggregate network throughput, Mbit/s.
    pub aggregate_mbps: f64,
    /// UDP transport counters (batching ratio, pacing, injected faults)
    /// when the run went over [`Transport::Udp`].
    pub udp: Option<UdpStatsSnapshot>,
}

/// Fig. 13: `flows` concurrent anonymous flows over a shared overlay of
/// `overlay_size` relay nodes (the paper: 100 nodes, d = 3, L = 5),
/// each relay sharded `relay_shards` ways (1 = classic daemons).
///
/// Built on the combined-node runtime: every overlay node is a
/// [`spawn_node`] hosting relay + destination roles (receiver flows get
/// colocated destination sessions that acknowledge and reassemble), and
/// **one** source node multiplexes every flow as a session of a single
/// sharded [`SessionManager`] over `d′` shared pseudo-source ports —
/// the paper's many-connections workload as one process would actually
/// run it, rather than `flows` independent driver loops.
#[allow(clippy::too_many_arguments)] // experiment knobs, used by one harness
pub async fn run_multi_flow(
    overlay_size: usize,
    relay_shards: usize,
    flows: usize,
    params: GraphParams,
    transport: Transport,
    messages: usize,
    payload_len: usize,
    seed: u64,
    timeout: Duration,
) -> MultiFlowReport {
    let net = make_net(&transport, seed);
    let (events_tx, mut events_rx) = mpsc::unbounded_channel();
    let (deliveries_tx, mut deliveries_rx) = mpsc::unbounded_channel();
    let epoch = Instant::now();
    let relay_config = RelayConfig {
        data_flush_ms: 250,
        ..RelayConfig::default()
    };
    let session_config = SessionConfig {
        retransmit_ms: 1_200,
        ack_interval_ms: 150,
        ..SessionConfig::default()
    };

    // Shared overlay nodes: relay + destination roles combined.
    let mut node_addrs = Vec::with_capacity(overlay_size);
    let mut handles = Vec::new();
    for i in 0..overlay_size {
        let port = net.attach(OverlayAddr(10_000 + i as u64)).await;
        node_addrs.push(port.addr);
        handles.push(spawn_node(NodeSpec {
            relay: Some(ShardedRelay::with_config(
                port.addr,
                seed,
                relay_config,
                relay_shards,
            )),
            sessions: None,
            ports: vec![port],
            dest_sessions: Some(DestSessionSpec {
                config: session_config,
                seed,
                deliveries: deliveries_tx.clone(),
            }),
            events: events_tx.clone(),
            session_events: None,
            epoch,
        }));
    }

    // The source node: d′ shared pseudo-source ports, one session
    // manager sharded like the relays.
    let mut pseudo_ports = Vec::with_capacity(params.paths);
    for i in 0..params.paths {
        pseudo_ports.push(net.attach(OverlayAddr(1_000_000 + i as u64)).await);
    }
    let pseudo_addrs: Vec<OverlayAddr> = pseudo_ports.iter().map(|p| p.addr).collect();
    let manager = SessionManager::new(relay_shards.max(1), flows.max(1) * 2 + 8, session_config);
    let (session_events_tx, mut session_events_rx) = mpsc::unbounded_channel();
    let source_node = spawn_node(NodeSpec {
        relay: None,
        sessions: Some(manager),
        ports: pseudo_ports,
        dest_sessions: None,
        events: events_tx.clone(),
        session_events: Some(session_events_tx),
        epoch,
    });
    let sessions = source_node
        .sessions
        .clone()
        .expect("source node hosts the session plane");

    // Open one session per flow (destinations are overlay nodes).
    let mut rng = StdRng::seed_from_u64(seed);
    let mut opened = 0usize;
    let mut session_ids = Vec::with_capacity(flows);
    for _ in 0..flows {
        let dest = node_addrs[rng.gen_range(0..node_addrs.len())];
        let candidates: Vec<OverlayAddr> = node_addrs
            .iter()
            .copied()
            .filter(|&a| a != dest)
            .collect();
        match SourceSession::establish(params, &pseudo_addrs, &candidates, dest, rng.gen()) {
            Ok((source, setup)) => {
                session_ids.push(sessions.open_source(source, setup).await);
                opened += 1;
            }
            Err(_) => continue,
        }
    }

    // Give setups a moment to land, then stream the data phase.
    tokio::time::sleep(Duration::from_millis(500)).await;
    let mut report = MultiFlowReport {
        flows,
        ..Default::default()
    };
    let data_start = Instant::now();
    let payload = vec![0x5Au8; payload_len];
    for &id in &session_ids {
        for _ in 0..messages {
            sessions.send(id, payload.clone()).await;
        }
    }
    let mut expected_total = opened * messages;

    let mut got = 0usize;
    let mut established = std::collections::HashSet::new();
    let deadline = tokio::time::sleep(timeout);
    tokio::pin!(deadline);
    while got < expected_total {
        tokio::select! {
            dv = deliveries_rx.recv() => {
                match dv {
                    Some(delivery) => {
                        got += 1;
                        report.payload_bytes += delivery.payload.len() as u64;
                        established.insert(delivery.flow);
                    }
                    None => break,
                }
            }
            ev = events_rx.recv() => {
                match ev {
                    Some(OverlayEvent::Established { flow, receiver: true, .. }) => {
                        established.insert(flow);
                    }
                    Some(_) => continue,
                    None => break,
                }
            }
            sev = session_events_rx.recv() => {
                match sev {
                    // A rejected send (or a send against a rejected
                    // open) can never deliver: shrink the target so a
                    // stray rejection does not burn the whole timeout.
                    Some(SessionEvent::Rejected { session, error, .. }) => {
                        eprintln!("run_multi_flow: {session:?} rejected: {error}");
                        if !matches!(error, slicing_core::SessionError::TooManySessions { .. }) {
                            expected_total = expected_total.saturating_sub(1);
                        }
                    }
                    Some(_) => continue,
                    None => break,
                }
            }
            _ = &mut deadline => break,
        }
    }
    report.elapsed_ms = data_start.elapsed().as_millis() as u64;
    report.flows_established = established.len().min(flows);
    report.aggregate_mbps =
        throughput_mbps_f(report.payload_bytes, data_start.elapsed().as_secs_f64());
    report.udp = net.udp_stats();
    source_node.abort();
    for h in handles {
        h.abort();
    }
    report
}

/// Configuration of one streamed session transfer: a single anonymous
/// session carrying arbitrary-length messages (chunked, windowed,
/// acknowledged end to end) over a live sharded overlay.
#[derive(Clone, Debug)]
pub struct SessionTransferConfig {
    /// Graph shape.
    pub params: GraphParams,
    /// Transport to run over.
    pub transport: Transport,
    /// Stream messages to send.
    pub messages: usize,
    /// Plaintext bytes per message — any length; the session layer
    /// chunks it.
    pub payload_len: usize,
    /// Shards per relay daemon.
    pub relay_shards: usize,
    /// Shards of the source node's session manager.
    pub session_shards: usize,
    /// Relay engine tuning.
    pub relay_config: RelayConfig,
    /// Session endpoint tuning.
    pub session_config: SessionConfig,
    /// RNG seed.
    pub seed: u64,
    /// Hard deadline for the whole run.
    pub timeout: Duration,
}

impl Default for SessionTransferConfig {
    fn default() -> Self {
        SessionTransferConfig {
            params: GraphParams::new(3, 2).with_dest_placement(DestPlacement::LastStage),
            transport: Transport::Emulated(NetProfile::lan()),
            messages: 1,
            payload_len: 100_000,
            relay_shards: 1,
            session_shards: 1,
            relay_config: RelayConfig {
                setup_flush_ms: 500,
                data_flush_ms: 150,
                ..RelayConfig::default()
            },
            session_config: SessionConfig {
                retransmit_ms: 1_000,
                ack_interval_ms: 120,
                ..SessionConfig::default()
            },
            seed: 7,
            timeout: Duration::from_secs(60),
        }
    }
}

/// Outcome of one streamed session transfer.
#[derive(Clone, Copy, Debug, Default)]
pub struct SessionTransferReport {
    /// The destination's receiver flow established.
    pub established: bool,
    /// Chunks each message spans (from the protocol budget).
    pub chunks_per_message: usize,
    /// Messages fully reassembled at the destination.
    pub messages_delivered: usize,
    /// Application bytes delivered.
    pub payload_bytes: u64,
    /// Every delivered message was byte-identical to what was sent, in
    /// order.
    pub bytes_match: bool,
    /// Every message was acknowledged end to end and the source window
    /// drained (no per-message state left behind).
    pub source_drained: bool,
    /// Chunk retransmissions the window performed.
    pub retransmits: u64,
    /// Data-phase duration, ms.
    pub elapsed_ms: u64,
    /// UDP transport counters (batching ratio, pacing, injected faults)
    /// when the run went over [`Transport::Udp`].
    pub udp: Option<UdpStatsSnapshot>,
}

/// Stream `messages × payload_len` bytes through one anonymous session
/// on a live overlay: relays and the destination are combined
/// [`spawn_node`]s (the destination's receiver flow gets a colocated
/// destination session that acks and reassembles), the source is a
/// session-plane node over `d′` pseudo-source ports.
pub async fn run_session_transfer(cfg: &SessionTransferConfig) -> SessionTransferReport {
    let net = make_net(&cfg.transport, cfg.seed ^ 0x5E55);
    let params = cfg.params;
    let dp = params.paths;
    let relay_count = params.relay_count() + 4;
    let mut report = SessionTransferReport::default();

    // Attach everything (the transport assigns addresses on TCP).
    let mut pseudo_ports = Vec::with_capacity(dp);
    for i in 0..dp {
        pseudo_ports.push(net.attach(OverlayAddr(1_000 + i as u64)).await);
    }
    let dest_port = net.attach(OverlayAddr(1)).await;
    let dest_addr = dest_port.addr;
    let mut relay_ports = Vec::with_capacity(relay_count);
    for i in 0..relay_count {
        relay_ports.push(net.attach(OverlayAddr(10_000 + i as u64)).await);
    }
    let pseudo_addrs: Vec<OverlayAddr> = pseudo_ports.iter().map(|p| p.addr).collect();
    let candidate_addrs: Vec<OverlayAddr> = relay_ports.iter().map(|p| p.addr).collect();

    // Combined nodes: every relay (and the destination) hosts the relay
    // plane plus colocated destination sessions.
    let (events_tx, mut events_rx) = mpsc::unbounded_channel();
    let (deliveries_tx, mut deliveries_rx) = mpsc::unbounded_channel();
    let epoch = Instant::now();
    let mut handles = Vec::new();
    for port in relay_ports.into_iter().chain(std::iter::once(dest_port)) {
        handles.push(spawn_node(NodeSpec {
            relay: Some(ShardedRelay::with_config(
                port.addr,
                cfg.seed,
                cfg.relay_config,
                cfg.relay_shards,
            )),
            sessions: None,
            ports: vec![port],
            dest_sessions: Some(DestSessionSpec {
                config: cfg.session_config,
                seed: cfg.seed,
                deliveries: deliveries_tx.clone(),
            }),
            events: events_tx.clone(),
            session_events: None,
            epoch,
        }));
    }

    // The source node: session plane over the pseudo-source ports.
    let (session_events_tx, mut session_events_rx) = mpsc::unbounded_channel();
    let manager = SessionManager::new(cfg.session_shards.max(1), 16, cfg.session_config);
    let source_node = spawn_node(NodeSpec {
        relay: None,
        sessions: Some(manager),
        ports: pseudo_ports,
        dest_sessions: None,
        events: events_tx.clone(),
        session_events: Some(session_events_tx),
        epoch,
    });
    let sessions = source_node
        .sessions
        .clone()
        .expect("source node hosts the session plane");

    let (source, setup) = match SourceSession::establish(
        params,
        &pseudo_addrs,
        &candidate_addrs,
        dest_addr,
        cfg.seed,
    ) {
        Ok(ok) => ok,
        Err(_) => return report,
    };
    report.chunks_per_message = cfg.payload_len.div_ceil(source.stream_chunk_len()).max(1);
    let id = sessions.open_source(source, setup).await;

    // Wait for the destination's receiver flow.
    let deadline = tokio::time::sleep(cfg.timeout);
    tokio::pin!(deadline);
    loop {
        tokio::select! {
            ev = events_rx.recv() => match ev {
                Some(OverlayEvent::Established { addr, receiver: true, .. })
                    if addr == dest_addr => break,
                Some(_) => continue,
                None => return report,
            },
            _ = &mut deadline => return report,
        }
    }
    report.established = true;

    // The data phase: distinct pseudo-random payloads, verified byte
    // for byte on arrival.
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xBEEF);
    let mut want: Vec<Vec<u8>> = Vec::with_capacity(cfg.messages);
    let data_start = Instant::now();
    for _ in 0..cfg.messages {
        let mut payload = vec![0u8; cfg.payload_len];
        rng.fill_bytes(&mut payload);
        sessions.send(id, payload.clone()).await;
        want.push(payload);
    }

    let mut acked = 0usize;
    let mut bytes_match = true;
    let deadline = tokio::time::sleep(cfg.timeout);
    tokio::pin!(deadline);
    while report.messages_delivered < cfg.messages || acked < cfg.messages {
        tokio::select! {
            dv = deliveries_rx.recv() => match dv {
                Some(delivery) if delivery.addr == dest_addr => {
                    bytes_match &= want
                        .get(delivery.msg_id as usize)
                        .is_some_and(|w| *w == delivery.payload);
                    report.payload_bytes += delivery.payload.len() as u64;
                    report.messages_delivered += 1;
                }
                Some(_) => continue,
                None => break,
            },
            sev = session_events_rx.recv() => match sev {
                Some(SessionEvent::Acked { .. }) => acked += 1,
                Some(SessionEvent::Rejected { error, .. }) => {
                    // A rejected send can never complete; fail fast.
                    eprintln!("session transfer: send rejected: {error}");
                    break;
                }
                Some(_) => continue,
                None => break,
            },
            _ = &mut deadline => break,
        }
    }
    report.elapsed_ms = data_start.elapsed().as_millis() as u64;
    report.bytes_match = bytes_match && report.messages_delivered == cfg.messages;
    report.source_drained = acked == cfg.messages;
    report.retransmits = sessions.stats().retransmits;
    report.udp = net.udp_stats();
    source_node.abort();
    for h in handles {
        h.abort();
    }
    report
}

/// Configuration of one live churn session: a paced message train
/// through the async runtime while relays churn out mid-flow — and,
/// optionally, the source repairs the forwarding graph around them
/// (Fig. 17 measured end-to-end on the production data plane).
#[derive(Clone, Debug)]
pub struct ChurnSessionConfig {
    /// Graph shape.
    pub params: GraphParams,
    /// Transport to run over.
    pub transport: Transport,
    /// Messages sent across the session.
    pub messages: usize,
    /// Plaintext bytes per message (clamped to the protocol's budget).
    pub payload_len: usize,
    /// Pacing between messages; the session's wall-clock length is
    /// `messages × message_interval` and churn times map onto it.
    pub message_interval: Duration,
    /// Relay tuning — keepalive/liveness intervals set the detection
    /// latency, so they should be a small fraction of the session.
    pub relay_config: RelayConfig,
    /// Shards per relay daemon.
    pub relay_shards: usize,
    /// Sample a failure time for every placed relay (the destination is
    /// exempt) from this model, scaled onto the session length.
    /// Replacements spliced in by a repair get their own lifetime drawn
    /// over the remaining session.
    pub churn: Option<ChurnModel>,
    /// Explicit kills: `(fraction of session, stage, index)` — resolved
    /// against the initial graph. Used by tests to kill one exact relay.
    pub kills: Vec<(f64, usize, usize)>,
    /// Whether the source repairs around reported failures.
    pub repair: bool,
    /// Retry cadence for sent-but-undelivered messages (the driver's
    /// reliability layer over the fire-and-forget data plane; delivery
    /// stays at-most-once via the destination's replay guard). Must
    /// exceed the relays' gather quarantine (`2 × data_flush_ms`) or
    /// retries are eaten as duplicates. `None` sends each message once.
    pub retransmit_interval: Option<Duration>,
    /// Spare relays attached beyond the graph's need (the repair pool).
    pub spares: usize,
    /// RNG seed.
    pub seed: u64,
    /// Hard deadline for the whole run.
    pub timeout: Duration,
}

impl Default for ChurnSessionConfig {
    fn default() -> Self {
        ChurnSessionConfig {
            params: GraphParams::new(5, 2).with_dest_placement(DestPlacement::LastStage),
            transport: Transport::Emulated(NetProfile::lan()),
            messages: 6,
            payload_len: 600,
            message_interval: Duration::from_millis(300),
            relay_config: RelayConfig {
                setup_flush_ms: 400,
                data_flush_ms: 200,
                keepalive_ms: 100,
                liveness_timeout_ms: 400,
                ..RelayConfig::default()
            },
            relay_shards: 1,
            churn: None,
            kills: Vec::new(),
            repair: true,
            retransmit_interval: Some(Duration::from_millis(600)),
            spares: 4,
            seed: 7,
            timeout: Duration::from_secs(30),
        }
    }
}

/// Outcome of one live churn session.
#[derive(Clone, Copy, Debug, Default)]
pub struct ChurnSessionReport {
    /// The destination decoded its info (setup survived).
    pub established: bool,
    /// Messages handed to the network.
    pub messages_sent: usize,
    /// Distinct messages the destination decoded.
    pub messages_delivered: usize,
    /// Relays killed during the session.
    pub kills: usize,
    /// Source-side repairs performed.
    pub repairs: usize,
    /// Setup packets the source emitted over the session (initial
    /// establishment + repairs) — the repair-locality measure.
    pub setup_packets: u64,
    /// Whole-session success: every message delivered.
    pub success: bool,
}

impl NetHandle {
    /// Take a node off the network (no-op on TCP, where killing the
    /// daemon closes the node's real socket instead; on UDP the node's
    /// datagrams blackhole in both directions).
    fn fail(&self, addr: OverlayAddr) {
        match self {
            NetHandle::Emu(net) => net.fail(addr),
            NetHandle::Tcp => {}
            NetHandle::Udp(net) => net.fail(addr),
        }
    }
}

/// Run one live churn session; see [`ChurnSessionConfig`].
pub async fn run_churn_session(cfg: &ChurnSessionConfig) -> ChurnSessionReport {
    let net = make_net(&cfg.transport, cfg.seed);
    let params = cfg.params;
    let dp = params.paths;
    let candidate_count = params.relay_count() + cfg.spares + 4;
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x00C0_FFEE);
    let mut report = ChurnSessionReport::default();

    // Attach everything (the transport assigns addresses on TCP).
    let mut pseudo_ports = Vec::with_capacity(dp);
    for i in 0..dp {
        pseudo_ports.push(net.attach(OverlayAddr(1_000 + i as u64)).await);
    }
    let dest_port = net.attach(OverlayAddr(1)).await;
    let dest_addr = dest_port.addr;
    let mut relay_ports = Vec::with_capacity(candidate_count);
    for i in 0..candidate_count {
        relay_ports.push(net.attach(OverlayAddr(10_000 + i as u64)).await);
    }
    let pseudo_addrs: Vec<OverlayAddr> = pseudo_ports.iter().map(|p| p.addr).collect();
    let candidate_addrs: Vec<OverlayAddr> = relay_ports.iter().map(|p| p.addr).collect();

    // Daemons, addressable for mid-session kills.
    let (events_tx, mut events_rx) = mpsc::unbounded_channel();
    let epoch = Instant::now();
    let mut daemons: HashMap<OverlayAddr, RelayDaemon> = HashMap::new();
    for port in relay_ports {
        let addr = port.addr;
        daemons.insert(
            addr,
            spawn_relay_daemon(
                addr,
                cfg.seed,
                cfg.relay_config,
                cfg.relay_shards,
                port,
                events_tx.clone(),
                epoch,
            ),
        );
    }
    daemons.insert(
        dest_addr,
        spawn_relay_daemon(
            dest_addr,
            cfg.seed,
            cfg.relay_config,
            cfg.relay_shards,
            dest_port,
            events_tx.clone(),
            epoch,
        ),
    );

    // Source session, tuned to the relays' liveness plane.
    let (mut source, setup) = match SourceSession::establish(
        params,
        &pseudo_addrs,
        &candidate_addrs,
        dest_addr,
        cfg.seed,
    ) {
        Ok(ok) => ok,
        Err(_) => return report,
    };
    source.set_config(SourceConfig {
        keepalive_ms: cfg.relay_config.keepalive_ms.max(1),
        ..SourceConfig::default()
    });

    // Split the pseudo-source ports into senders (for the source's
    // outgoing instructions) and a merged receive stream (reverse-path
    // data and FLOW_FAILED reports funneled into the driver loop).
    let mut pseudo_send: HashMap<OverlayAddr, crate::PortSender> = HashMap::new();
    let (merged_tx, mut merged_rx) =
        mpsc::unbounded_channel::<(OverlayAddr, OverlayAddr, bytes::Bytes)>();
    for mut port in pseudo_ports {
        pseudo_send.insert(port.addr, port.tx.clone());
        let tx = merged_tx.clone();
        let me = port.addr;
        tokio::spawn(async move {
            while let Some((from, bytes)) = port.rx.recv().await {
                if tx.send((me, from, bytes)).is_err() {
                    break;
                }
            }
        });
    }
    let transmit = |pseudo_send: &HashMap<OverlayAddr, crate::PortSender>,
                    sends: Vec<SendInstr>| {
        let pseudo_send = pseudo_send.clone();
        async move {
            for instr in sends {
                if let Some(port) = pseudo_send.get(&instr.from) {
                    port.send(instr.to, instr.packet.encode()).await;
                }
            }
        }
    };

    // Establish, bounded by the session timeout.
    transmit(&pseudo_send, setup).await;
    let deadline = tokio::time::sleep(cfg.timeout);
    tokio::pin!(deadline);
    loop {
        tokio::select! {
            ev = events_rx.recv() => match ev {
                Some(OverlayEvent::Established { addr, receiver: true, .. })
                    if addr == dest_addr => break,
                Some(_) => continue,
                None => return report,
            },
            _ = &mut deadline => return report,
        }
    }
    report.established = true;

    // Kill schedule over the session's wall clock.
    let session_len = cfg.message_interval * cfg.messages as u32;
    let mut kills: Vec<(Duration, OverlayAddr)> = Vec::new();
    for &(frac, stage, index) in &cfg.kills {
        let addr = source.graph().stages[stage][index];
        assert_ne!(addr, dest_addr, "the destination cannot be killed");
        kills.push((session_len.mul_f64(frac.clamp(0.0, 1.0)), addr));
    }
    if let Some(model) = cfg.churn {
        for addr in source.graph().relay_addrs() {
            if addr == dest_addr {
                continue;
            }
            let node = model.sample_node(&mut rng);
            if let Some(t) = node.sample_failure(model.session_minutes, &mut rng) {
                kills.push((session_len.mul_f64(t / model.session_minutes), addr));
            }
        }
    }
    kills.sort_by_key(|&(t, _)| t);
    let mut killed: HashSet<OverlayAddr> = HashSet::new();

    // The session: paced sends, arrivals into the source, kills on
    // schedule, keepalives and (optionally) repair on a driver tick.
    let payload_len = cfg.payload_len.min(source.max_chunk_len());
    let payload = vec![0xA5u8; payload_len];
    let data_start = Instant::now();
    let hard_deadline = data_start + cfg.timeout;
    let mut delivered: HashSet<u32> = HashSet::new();
    let mut sent_at: HashMap<u32, Instant> = HashMap::new();
    let mut ticker = tokio::time::interval(Duration::from_millis(25));
    loop {
        if delivered.len() >= cfg.messages || Instant::now() >= hard_deadline {
            break;
        }
        tokio::select! {
            got = merged_rx.recv() => {
                let Some((pseudo, from, bytes)) = got else { break };
                if let Ok(packet) = slicing_core::Packet::from_bytes(bytes) {
                    source.handle_packet(now_tick(epoch), pseudo, from, &packet);
                }
            }
            ev = events_rx.recv() => {
                if let Some(OverlayEvent::MessageReceived { addr, seq, .. }) = ev {
                    if addr == dest_addr {
                        delivered.insert(seq);
                    }
                }
            }
            _ = ticker.tick() => {
                let now = data_start.elapsed();
                // Kills whose time has come: shut the daemon down (on
                // the emulated transport the hub blackholes it too).
                while let Some(&(t, addr)) = kills.first() {
                    if t > now {
                        break;
                    }
                    kills.remove(0);
                    if killed.insert(addr) {
                        net.fail(addr);
                        if let Some(daemon) = daemons.remove(&addr) {
                            daemon.shutdown().await;
                        }
                        report.kills += 1;
                    }
                }
                // Paced message train.
                if report.messages_sent < cfg.messages
                    && now >= cfg.message_interval * report.messages_sent as u32
                {
                    let (seq, sends) =
                        source.send_message(&payload).expect("payload clamped to budget");
                    transmit(&pseudo_send, sends).await;
                    sent_at.insert(seq, Instant::now());
                    report.messages_sent += 1;
                }
                // Reliability layer: retry undelivered messages on a
                // cadence longer than the relays' gather quarantine.
                if let Some(interval) = cfg.retransmit_interval {
                    let now_i = Instant::now();
                    let due: Vec<u32> = sent_at
                        .iter()
                        .filter(|(seq, at)| {
                            !delivered.contains(seq)
                                && now_i.duration_since(**at) >= interval
                        })
                        .map(|(&seq, _)| seq)
                        .collect();
                    for seq in due {
                        if let Some(sends) = source.retransmit(seq) {
                            transmit(&pseudo_send, sends).await;
                        }
                        sent_at.insert(seq, now_i);
                    }
                }
                // Source-side periodic work: keepalives, then repair.
                let polled = source.poll(now_tick(epoch));
                if !polled.is_empty() {
                    transmit(&pseudo_send, polled).await;
                }
                if cfg.repair && source.needs_repair() {
                    let before: HashSet<OverlayAddr> = source.graph().relay_addrs().collect();
                    let pool: Vec<OverlayAddr> = candidate_addrs
                        .iter()
                        .copied()
                        .filter(|a| !killed.contains(a))
                        .collect();
                    if let Ok(sends) = source.repair(&pool) {
                        report.repairs += 1;
                        // Replacements live under the same churn model,
                        // over what remains of the session.
                        if let Some(model) = cfg.churn {
                            let remaining = session_len.saturating_sub(now);
                            let frac = remaining.as_secs_f64()
                                / session_len.as_secs_f64().max(1e-9);
                            for addr in source.graph().relay_addrs() {
                                if before.contains(&addr) || addr == dest_addr {
                                    continue;
                                }
                                let node = model.sample_node(&mut rng);
                                if let Some(t) = node
                                    .sample_failure(model.session_minutes * frac, &mut rng)
                                {
                                    let at = now
                                        + session_len.mul_f64(t / model.session_minutes);
                                    kills.push((at, addr));
                                }
                            }
                            kills.sort_by_key(|&(t, _)| t);
                        }
                        transmit(&pseudo_send, sends).await;
                    }
                }
            }
        }
    }

    report.messages_delivered = delivered.len();
    report.setup_packets = source.setup_packets_sent();
    report.success = report.messages_delivered >= cfg.messages;
    for (_, daemon) in daemons {
        daemon.abort();
    }
    report
}

/// Application throughput in Mbit/s from bytes over fractional seconds
/// (millisecond counters quantize badly on loopback).
fn throughput_mbps_f(bytes: u64, secs: f64) -> f64 {
    if secs <= 0.0 {
        return 0.0;
    }
    (bytes as f64 * 8.0) / (secs * 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn slicing_transfer_over_emulated_lan() {
        let cfg = TransferConfig {
            messages: 5,
            timeout: Duration::from_secs(30),
            ..TransferConfig::default()
        };
        let report = run_slicing_transfer(&cfg).await;
        assert_eq!(report.messages_delivered, 5, "report: {report:?}");
        assert!(report.setup_ms < 10_000);
        assert!(report.payload_bytes > 0);
        assert!(report.wire_packets > 0);
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn slicing_transfer_over_tcp() {
        let cfg = TransferConfig {
            transport: Transport::Tcp,
            messages: 5,
            timeout: Duration::from_secs(30),
            ..TransferConfig::default()
        };
        let report = run_slicing_transfer(&cfg).await;
        assert_eq!(report.messages_delivered, 5, "report: {report:?}");
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn slicing_transfer_sharded_relays_emulated() {
        let cfg = TransferConfig {
            messages: 5,
            timeout: Duration::from_secs(30),
            relay_shards: 4,
            ..TransferConfig::default()
        };
        let report = run_slicing_transfer(&cfg).await;
        assert_eq!(report.messages_delivered, 5, "report: {report:?}");
        assert!(report.setup_ms < 10_000);
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn slicing_transfer_sharded_relays_tcp() {
        let cfg = TransferConfig {
            transport: Transport::Tcp,
            messages: 5,
            timeout: Duration::from_secs(30),
            relay_shards: 4,
            ..TransferConfig::default()
        };
        let report = run_slicing_transfer(&cfg).await;
        assert_eq!(report.messages_delivered, 5, "report: {report:?}");
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn onion_transfer_over_emulated_lan() {
        let cfg = TransferConfig {
            messages: 5,
            timeout: Duration::from_secs(30),
            ..TransferConfig::default()
        };
        let report = run_onion_transfer(&cfg).await;
        assert_eq!(report.messages_delivered, 5, "report: {report:?}");
        assert!(report.setup_ms < 10_000);
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn multi_flow_smoke() {
        let params = GraphParams::new(3, 2);
        let report = run_multi_flow(
            30,
            1,
            3,
            params,
            Transport::Emulated(NetProfile::lan()),
            3,
            600,
            11,
            Duration::from_secs(30),
        )
        .await;
        assert!(report.payload_bytes > 0, "report: {report:?}");
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn multi_flow_sharded_smoke() {
        let params = GraphParams::new(3, 2);
        let report = run_multi_flow(
            30,
            4,
            3,
            params,
            Transport::Emulated(NetProfile::lan()),
            3,
            600,
            11,
            Duration::from_secs(30),
        )
        .await;
        assert!(report.payload_bytes > 0, "report: {report:?}");
    }
}
