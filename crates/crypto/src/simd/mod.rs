//! Runtime-dispatched SIMD engines for the symmetric primitives.
//!
//! Mirrors the proven [`slicing_gf::simd`](../../../gf/src/simd/mod.rs)
//! architecture: every hot symmetric operation ([`crate::chacha20`]
//! keystream XOR, [`crate::sha256`] compression — and everything built
//! on them: HMAC, HKDF, the AEAD) routes through one of two
//! [`Backend`]s, chosen **once** at first use and cached for the life
//! of the process:
//!
//! * [`Backend::Scalar`] — the portable reference implementations, the
//!   oracle every SIMD engine is tested against and the
//!   `SLICING_CRYPTO_FORCE=scalar` escape hatch.
//! * [`Backend::Simd`] — `std::arch` kernels selected by runtime
//!   feature detection.
//!
//! ## Supported ISAs
//!
//! | arch | ChaCha20 | SHA-256 |
//! |------|----------|---------|
//! | x86_64 | AVX2 4×-block, else SSSE3 1×-block | SHA-NI (`sha256rnds2`), else SSSE3 vectorized message schedule |
//! | aarch64 | NEON 2×-block (always present) | crypto extensions (`sha256h`/`sha256su*`) when `sha2` is detected |
//! | other | — (falls back to [`Backend::Scalar`]) | — |
//!
//! Feature detection is dynamic (`is_x86_feature_detected!`), so one
//! binary runs everywhere and uses the best engine the host offers; a
//! host with SSSE3 but no SHA extensions gets SIMD ChaCha20 and the
//! vectorized-schedule SHA-256.
//!
//! ## Forcing a backend
//!
//! The `SLICING_CRYPTO_FORCE` environment variable, read once at
//! dispatch initialization, pins the backend for the whole process:
//! `scalar` or `simd`. Unknown values — and `simd` on a host without a
//! usable ISA — **fail closed** to [`Backend::Scalar`]. CI runs the
//! full test suite under `SLICING_CRYPTO_FORCE=scalar` so the oracle
//! path stays green, and tests/benches use the explicit `*_on` entry
//! points ([`crate::chacha20::ChaCha20::new_on`],
//! [`crate::sha256::Sha256::new_on`], [`crate::hmac::HmacKey::new_on`],
//! [`crate::aead::SealingKey::new_on`]) to sweep every available
//! backend against the scalar reference in one process.

#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
pub(crate) mod x86;

#[cfg(target_arch = "aarch64")]
#[allow(unsafe_code)]
pub(crate) mod neon;

/// The cfg-selected arch kernels the primitives dispatch into when the
/// active backend is [`Backend::Simd`]. On architectures with no
/// kernels this re-exports scalar delegates that are never selected at
/// runtime (the detector never returns `Simd` there) but keep the call
/// sites compiling.
pub(crate) mod kernels {
    #[cfg(target_arch = "x86_64")]
    pub(crate) use super::x86::*;

    #[cfg(target_arch = "aarch64")]
    pub(crate) use super::neon::*;

    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    pub(crate) use super::portable_fallback::*;
}

#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
mod portable_fallback {
    //! Scalar delegates for architectures without SIMD kernels. Dead at
    //! runtime (detection never selects `Simd` here); present so the
    //! dispatch arms typecheck on every target.

    /// Never processes anything: the scalar tail path does all the work.
    pub(crate) fn chacha_xor(
        key: &[u8; 32],
        nonce: &[u8; 12],
        counter: u32,
        data: &mut [u8],
    ) -> usize {
        let _ = (key, nonce, counter, data);
        0
    }

    /// Never compresses: the caller falls back to the scalar rounds.
    pub(crate) fn sha256_compress(state: &mut [u32; 8], blocks: &[u8]) -> bool {
        let _ = (state, blocks);
        false
    }
}

use std::sync::OnceLock;

/// Which implementation family the symmetric primitives run on.
///
/// See the [module docs](self) for what each backend is and when it is
/// selected. Obtain the process-wide active backend with [`backend`];
/// pin one per object with the `new_on` constructors.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Portable reference implementations — the oracle.
    Scalar,
    /// Runtime-detected `std::arch` kernels (AVX2/SSSE3/SHA-NI/NEON).
    Simd,
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Backend::Scalar => "scalar",
            Backend::Simd => "simd",
        })
    }
}

/// What the `Simd` backend can use on this host.
#[derive(Copy, Clone, Debug)]
pub(crate) struct Caps {
    /// 4×-block AVX2 ChaCha20 rather than 1×-block SSSE3.
    #[cfg_attr(not(target_arch = "x86_64"), allow(dead_code))]
    pub(crate) wide_chacha: bool,
    /// Dedicated SHA-256 rounds (SHA-NI / ARMv8 crypto extensions)
    /// rather than the vectorized message schedule.
    #[cfg_attr(not(target_arch = "x86_64"), allow(dead_code))]
    pub(crate) sha_rounds: bool,
}

struct State {
    backend: Backend,
    caps: Caps,
    isa: &'static str,
}

fn detect() -> (Backend, Caps, &'static str) {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("ssse3") {
            let wide_chacha = std::arch::is_x86_feature_detected!("avx2");
            let sha_rounds = std::arch::is_x86_feature_detected!("sha")
                && std::arch::is_x86_feature_detected!("sse4.1");
            let isa = match (wide_chacha, sha_rounds) {
                (true, true) => "avx2+sha_ni",
                (true, false) => "avx2",
                (false, true) => "ssse3+sha_ni",
                (false, false) => "ssse3",
            };
            return (
                Backend::Simd,
                Caps {
                    wide_chacha,
                    sha_rounds,
                },
                isa,
            );
        }
        (
            Backend::Scalar,
            Caps {
                wide_chacha: false,
                sha_rounds: false,
            },
            "none",
        )
    }
    #[cfg(target_arch = "aarch64")]
    {
        // NEON is baseline on aarch64; the SHA-256 crypto extension is
        // optional and detected dynamically.
        let sha_rounds = std::arch::is_aarch64_feature_detected!("sha2");
        (
            Backend::Simd,
            Caps {
                wide_chacha: false,
                sha_rounds,
            },
            if sha_rounds { "neon+sha2" } else { "neon" },
        )
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        (
            Backend::Scalar,
            Caps {
                wide_chacha: false,
                sha_rounds: false,
            },
            "none",
        )
    }
}

fn state() -> &'static State {
    static STATE: OnceLock<State> = OnceLock::new();
    STATE.get_or_init(|| {
        let (detected, caps, isa) = detect();
        let backend = match std::env::var("SLICING_CRYPTO_FORCE") {
            Ok(v) => match v.as_str() {
                // `simd` honors detection: forcing it on a host without
                // a usable ISA fails closed to scalar, as does any
                // unrecognized value.
                "simd" => detected,
                _ => Backend::Scalar,
            },
            Err(_) => detected,
        };
        let isa = if backend == Backend::Simd {
            isa
        } else {
            "none"
        };
        State { backend, caps, isa }
    })
}

/// The process-wide active backend, selected once at first use.
///
/// Detection order: the `SLICING_CRYPTO_FORCE` environment variable
/// (`scalar` / `simd`; unknown values fail closed to
/// [`Backend::Scalar`]), then runtime CPU feature detection.
#[inline]
pub fn backend() -> Backend {
    state().backend
}

/// Human-readable name of the instruction set the active
/// [`Backend::Simd`] engines use (`"avx2+sha_ni"`, `"ssse3"`,
/// `"neon"`, …), or `"none"` when the active backend is not SIMD.
pub fn isa() -> &'static str {
    state().isa
}

#[inline]
#[cfg_attr(
    not(any(target_arch = "x86_64", target_arch = "aarch64")),
    allow(dead_code)
)]
pub(crate) fn caps() -> Caps {
    state().caps
}

/// Every backend usable on this host, in increasing order of expected
/// speed. [`Backend::Scalar`] is always present; [`Backend::Simd`] is
/// included only when detection found a usable ISA. Tests and benches
/// iterate this to sweep every engine against the scalar oracle.
pub fn available_backends() -> Vec<Backend> {
    let mut v = vec![Backend::Scalar];
    if detect().0 == Backend::Simd {
        v.push(Backend::Simd);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_always_available() {
        assert!(available_backends().contains(&Backend::Scalar));
    }

    #[test]
    fn active_backend_is_available() {
        assert!(available_backends().contains(&backend()));
    }

    #[test]
    fn isa_consistent_with_backend() {
        if backend() == Backend::Simd {
            assert_ne!(isa(), "none");
        } else {
            assert_eq!(isa(), "none");
        }
    }
}
