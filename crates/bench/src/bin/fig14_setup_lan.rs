//! Fig. 14: average route-setup time vs path length and split factor,
//! LAN — onion routing vs information slicing (d = 2, 3, 4).

use std::time::Duration;

use slicing_bench::{banner, RunOpts, Table};
use slicing_core::{DestPlacement, GraphParams};
use slicing_overlay::experiment::{
    run_onion_transfer, run_slicing_transfer, Transport,
};
use slicing_overlay::TransferConfig;
use slicing_sim::NetProfile;

fn main() {
    let opts = RunOpts::from_args();
    let repeats = if opts.quick { 2 } else { 5 };
    banner(
        "Figure 14 — route-setup time vs path length, LAN",
        "onion vs slicing d in {2,3,4}; receiver in the last stage (§7.4)",
        "setup grows with L and d (relays wait for the slowest parent); \
         sub-second on a LAN",
    );
    let rt = tokio::runtime::Builder::new_multi_thread()
        .worker_threads(4)
        .enable_all()
        .build()
        .expect("tokio runtime");
    let mut table = Table::new(&["L", "onion_s", "slicing_d2_s", "slicing_d3_s", "slicing_d4_s"]);
    for l in 1..=6usize {
        let mut row = vec![l as f64];
        // Onion baseline.
        let mut acc = 0.0;
        for r in 0..repeats {
            let cfg = TransferConfig {
                params: GraphParams::new(l, 2),
                transport: Transport::Emulated(NetProfile::lan()),
                messages: 0,
                payload_len: 0,
                seed: opts.seed + (l * 31 + r) as u64,
                timeout: Duration::from_secs(30),
                relay_shards: 1,
                relay_config: Default::default(),
            };
            acc += rt.block_on(run_onion_transfer(&cfg)).setup_ms as f64 / 1000.0;
        }
        row.push(acc / repeats as f64);
        // Slicing at d = 2, 3, 4.
        for d in 2..=4usize {
            let mut acc = 0.0;
            for r in 0..repeats {
                let cfg = TransferConfig {
                    params: GraphParams::new(l, d)
                        .with_dest_placement(DestPlacement::LastStage),
                    transport: Transport::Emulated(NetProfile::lan()),
                    messages: 0,
                    payload_len: 0,
                    seed: opts.seed + (l * 131 + d * 17 + r) as u64,
                    timeout: Duration::from_secs(30),
                    relay_shards: 1,
                    relay_config: Default::default(),
                };
                acc += rt.block_on(run_slicing_transfer(&cfg)).setup_ms as f64 / 1000.0;
            }
            row.push(acc / repeats as f64);
        }
        table.row(&row);
    }
    table.print();
}
