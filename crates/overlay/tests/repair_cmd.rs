//! The session plane's `Repair` command end to end: a manager-hosted
//! source session loses a mid-graph relay with `d′ = d` (no redundancy
//! headroom), the driver calls [`SessionHandle::repair`] speculatively
//! on a timer — exactly how the `slicing-node` soak driver nurses
//! wedged sessions — and the daemon repairs the graph, replays the
//! window and completes the transfer byte-identically.

mod common;

use std::time::{Duration, Instant};

use slicing_core::{
    DestPlacement, GraphParams, RelayConfig, SessionConfig, SessionManager, ShardedRelay,
    SourceConfig, SourceSession,
};
use slicing_overlay::{
    spawn_node, DestSessionSpec, EmulatedNet, NodeSpec, OverlayEvent, SessionEvent,
};
use slicing_sim::wan::NetProfile;
use tokio::sync::mpsc;

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn repair_command_recovers_manager_hosted_session() {
    const SEED: u64 = 11;
    let net = EmulatedNet::new(NetProfile::lan(), SEED);
    // d′ = d: losing any relay stalls the flow until a repair reroutes it.
    let params = GraphParams::new(3, 2).with_dest_placement(DestPlacement::LastStage);
    let relay_config = RelayConfig {
        setup_flush_ms: 400,
        data_flush_ms: 150,
        keepalive_ms: 100,
        liveness_timeout_ms: 400,
        ..RelayConfig::default()
    };
    let session_config = SessionConfig {
        retransmit_ms: 600,
        ack_interval_ms: 120,
        ..SessionConfig::default()
    };

    let dp = params.paths;
    let relay_count = params.relay_count() + 4; // 4 spares for the repair pool
    let mut pseudo_ports = Vec::with_capacity(dp);
    for i in 0..dp {
        pseudo_ports.push(net.attach(slicing_graph::OverlayAddr(1_000 + i as u64)));
    }
    let dest_port = net.attach(slicing_graph::OverlayAddr(1));
    let dest_addr = dest_port.addr;
    let mut relay_ports = Vec::with_capacity(relay_count);
    for i in 0..relay_count {
        relay_ports.push(net.attach(slicing_graph::OverlayAddr(10_000 + i as u64)));
    }
    let pseudo_addrs: Vec<_> = pseudo_ports.iter().map(|p| p.addr).collect();
    let candidates: Vec<_> = relay_ports.iter().map(|p| p.addr).collect();

    let (events_tx, mut events_rx) = mpsc::unbounded_channel();
    let (deliveries_tx, mut deliveries_rx) = mpsc::unbounded_channel();
    let epoch = Instant::now();
    let mut handles = Vec::new();
    for port in relay_ports.into_iter().chain(std::iter::once(dest_port)) {
        handles.push(spawn_node(NodeSpec {
            relay: Some(ShardedRelay::with_config(port.addr, SEED, relay_config, 2)),
            sessions: None,
            ports: vec![port],
            dest_sessions: Some(DestSessionSpec {
                config: session_config,
                seed: SEED,
                deliveries: deliveries_tx.clone(),
            }),
            events: events_tx.clone(),
            session_events: None,
            epoch,
        }));
    }

    let (session_events_tx, mut session_events_rx) = mpsc::unbounded_channel();
    let source_node = spawn_node(NodeSpec {
        relay: None,
        sessions: Some(SessionManager::new(2, 16, session_config)),
        ports: pseudo_ports,
        dest_sessions: None,
        events: events_tx.clone(),
        session_events: Some(session_events_tx),
        epoch,
    });
    let sessions = source_node.sessions.clone().expect("session plane");

    let (mut source, setup) =
        SourceSession::establish(params, &pseudo_addrs, &candidates, dest_addr, SEED)
            .expect("establish");
    // The source must announce liveness at the relays' cadence, or the
    // stage-1 relays declare the pseudo-sources dead and stop relaying
    // reverse traffic — including the FLOW_FAILED reports the repair
    // depends on.
    source.set_config(SourceConfig {
        keepalive_ms: relay_config.keepalive_ms,
        ..SourceConfig::default()
    });
    // The victim: a mid-graph relay (stage 2 of 3; the destination sits
    // in the last stage and must survive).
    let victim = source.graph().stages[2][0];
    assert_ne!(victim, dest_addr);
    let id = sessions.open_source(source, setup).await;

    // Wait for the destination's receiver flow, then start the stream.
    let deadline = tokio::time::sleep(Duration::from_secs(30));
    tokio::pin!(deadline);
    loop {
        tokio::select! {
            ev = events_rx.recv() => match ev.expect("events") {
                OverlayEvent::Established { addr, receiver: true, .. }
                    if addr == dest_addr => break,
                _ => continue,
            },
            _ = &mut deadline => panic!("flow never established"),
        }
    }
    let payload: Vec<u8> = (0..24_000u32).map(|i| (i * 31 % 251) as u8).collect();
    sessions.send(id, payload.clone()).await;

    // Kill the victim mid-transfer: blackhole it on the emulated net so
    // its upstream/downstream neighbours stop hearing keepalives.
    tokio::time::sleep(Duration::from_millis(150)).await;
    net.fail(victim);

    // Speculative repair, soak-driver style: every 200 ms nudge the
    // session with the pool of still-live candidates. Before failure
    // detection lands the command is a documented no-op; once the
    // FLOW_FAILED report reaches the source the daemon repairs and
    // replays the window.
    let pool: Vec<_> = candidates.iter().copied().filter(|a| *a != victim).collect();
    let mut repaired = 0usize;
    let mut acked = 0usize;
    let mut delivered: Option<Vec<u8>> = None;
    let mut nudge = tokio::time::interval(Duration::from_millis(200));
    let deadline = tokio::time::sleep(Duration::from_secs(60));
    tokio::pin!(deadline);
    while acked == 0 || delivered.is_none() {
        tokio::select! {
            _ = nudge.tick() => sessions.repair(id, pool.clone()).await,
            sev = session_events_rx.recv() => match sev.expect("session events") {
                SessionEvent::Repaired { session, failed, .. } => {
                    assert_eq!(session, id);
                    assert!(failed >= 1, "repair must route around a reported failure");
                    repaired += 1;
                }
                SessionEvent::Acked { session, .. } if session == id => acked += 1,
                SessionEvent::Rejected { error, .. } => panic!("rejected: {error}"),
                _ => continue,
            },
            dv = deliveries_rx.recv() => match dv.expect("deliveries") {
                d if d.addr == dest_addr => delivered = Some(d.payload),
                _ => continue,
            },
            _ = &mut deadline => panic!(
                "wedged: repaired={repaired} acked={acked} delivered={}",
                delivered.is_some()
            ),
        }
    }

    assert!(repaired >= 1, "the Repair command must have fired");
    assert_eq!(delivered.as_deref(), Some(payload.as_slice()), "byte-identical");
    // The handle's stats converge with the events (no drift between the
    // two observation channels).
    let stats = common::wait_until(|| sessions.stats(), |s| s.msgs_acked >= 1).await;
    assert!(stats.msgs_acked >= 1, "stats: {stats:?}");
    assert_eq!(stats.drops, 0, "stats: {stats:?}");

    source_node.abort();
    for h in handles {
        h.abort();
    }
}
