//! Metrics correctness: drive a known workload through a small
//! process fleet, then scrape every node and check that the exported
//! counters *exactly* equal the driver-side ground truth — no
//! atomics-vs-exposition drift, no lost or double-counted deliveries.

mod common;

use common::{process_relay_config, process_session_config, spawn_relay_fleet};
use slicing_core::{SessionManager, SourceConfig, SourceSession};
use slicing_graph::{DestPlacement, GraphParams, OverlayAddr};
use slicing_node::config::{NodeConfig, Roles, TransportKind};
use slicing_node::orchestrator::{free_tcp_port, free_udp_port};
use slicing_node::runtime::data_addr;
use slicing_overlay::daemon::{spawn_node, NodeSpec, SessionEvent};
use slicing_overlay::{UdpFaults, UdpNet};
use std::time::Duration;
use tokio::sync::mpsc;

const SEED: u64 = 0x3E7A;
const SESSIONS: usize = 20;
const PAYLOAD: usize = 4_096;

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn scraped_counters_match_driver_totals_exactly() {
    let relay_config = process_relay_config();
    let session_config = process_session_config();
    // L=1, d=d′=2: two relays and the destination per session — small
    // enough that every counter is exactly predictable.
    let params = GraphParams::new(1, 2).with_dest_placement(DestPlacement::LastStage);

    // Three relay-only processes plus one relay+dest process.
    let (mut fleet, data_ports) = spawn_relay_fleet(
        3,
        TransportKind::Udp,
        relay_config,
        session_config,
    );
    let dest_data_port = free_udp_port();
    let dest_idx = {
        let cfg = NodeConfig {
            listen: dest_data_port,
            metrics_listen: free_tcp_port(),
            roles: Roles {
                relay: true,
                dest: true,
                session: false,
            },
            seed: SEED,
            transport: TransportKind::Udp,
            relay: relay_config,
            session: session_config,
            ..NodeConfig::default()
        };
        let idx = fleet.add("dest", cfg).expect("write dest config");
        fleet.spawn(idx).expect("spawn dest process");
        idx
    };
    assert!(
        fleet.wait_healthy(dest_idx, Duration::from_secs(10)),
        "dest process never became healthy"
    );
    let dest = data_addr(dest_data_port);
    let candidates: Vec<OverlayAddr> = data_ports.iter().map(|&p| data_addr(p)).collect();

    // Driver session plane over d′ pseudo-source UDP ports.
    let net = UdpNet::new(UdpFaults::default(), SEED);
    let mut pseudo_ports = Vec::new();
    for _ in 0..params.paths {
        pseudo_ports.push(
            net.attach_at(free_udp_port())
                .await
                .expect("attach pseudo port"),
        );
    }
    let pseudo_addrs: Vec<OverlayAddr> = pseudo_ports.iter().map(|p| p.addr).collect();
    let (events_tx, mut events_rx) = mpsc::unbounded_channel();
    let (session_events_tx, mut session_events_rx) = mpsc::unbounded_channel();
    let driver = spawn_node(NodeSpec {
        relay: None,
        sessions: Some(SessionManager::new(2, 64, session_config)),
        ports: pseudo_ports,
        dest_sessions: None,
        events: events_tx,
        session_events: Some(session_events_tx),
        epoch: tokio::time::Instant::now(),
    });
    tokio::spawn(async move { while events_rx.recv().await.is_some() {} });
    let sessions = driver.sessions.clone().expect("session plane");
    let source_cfg = SourceConfig {
        keepalive_ms: relay_config.keepalive_ms,
        ..SourceConfig::default()
    };

    // The known workload: SESSIONS sessions, one PAYLOAD-byte message
    // each, driven to full acknowledgement.
    let mut acked = 0usize;
    for i in 0..SESSIONS {
        let (mut source, setup) = SourceSession::establish(
            params,
            &pseudo_addrs,
            &candidates,
            dest,
            SEED ^ (i as u64 + 1),
        )
        .expect("establish");
        source.set_config(source_cfg);
        let id = sessions.open_source(source, setup).await;
        sessions.send(id, vec![0xA5; PAYLOAD]).await;
        let deadline = tokio::time::sleep(Duration::from_secs(30));
        tokio::pin!(deadline);
        loop {
            tokio::select! {
                sev = session_events_rx.recv() => match sev.expect("session events") {
                    SessionEvent::Acked { session, .. } if session == id => {
                        acked += 1;
                        break;
                    }
                    SessionEvent::Rejected { error, .. } => panic!("rejected: {error}"),
                    _ => continue,
                },
                _ = &mut deadline => panic!("session {i} never acked"),
            }
        }
        sessions.close(id).await;
    }
    assert_eq!(acked, SESSIONS);

    // Driver-side atomics agree with the driver-side events.
    let stats = common::wait_until(
        || sessions.stats(),
        |s| s.msgs_acked as usize >= SESSIONS,
    )
    .await;
    assert_eq!(stats.msgs_acked as usize, acked, "stats: {stats:?}");
    assert_eq!(stats.msgs_sent as usize, SESSIONS, "stats: {stats:?}");
    // (`stats.drops` is intentionally unconstrained: closing a session
    // makes the duplicate ack slices still in flight for it count as
    // driver-side drops — expected protocol behaviour, not drift.)

    // Scrape the whole fleet: the exported counters must *exactly* sum
    // to the driver-side ground truth.
    let all = || (0..fleet.len());
    let delivered = common::fleet_counter_sum(&fleet, all(), "slicing_dest_delivered_msgs_total");
    assert_eq!(
        delivered as usize, acked,
        "fleet delivered_msgs must equal driver acked"
    );
    let delivered_bytes =
        common::fleet_counter_sum(&fleet, all(), "slicing_dest_delivered_bytes_total");
    assert_eq!(
        delivered_bytes as usize,
        acked * PAYLOAD,
        "fleet delivered_bytes must equal driver payload bytes"
    );
    let garbage = common::fleet_counter_sum(&fleet, all(), "slicing_relay_garbage");
    assert_eq!(garbage, 0.0, "no packet may die unclaimed in this workload");
    // Each session establishes exactly `relay_count()` flows across
    // the fleet: the destination occupies one of the `L × d′` graph
    // slots under `LastStage` placement, so relays host
    // `relay_count() − 1` forwarding flows and the destination hosts
    // one receiver flow.
    let established =
        common::fleet_counter_sum(&fleet, all(), "slicing_relay_flows_established");
    assert_eq!(
        established as usize,
        SESSIONS * params.relay_count(),
        "fleet flows_established must equal the workload's exact flow count"
    );

    driver.abort();
    fleet.kill_all();
}
