//! Real TCP transport on loopback: length-prefixed frames over cached
//! connections, with a hello preamble carrying the sender's overlay
//! address.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;
use slicing_graph::OverlayAddr;
use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::{TcpListener, TcpStream};
use tokio::sync::mpsc;

use crate::{NodePort, PortSender, PortSenderInner};

/// Maximum accepted frame size (sanity bound).
const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Sender half for the TCP transport.
#[derive(Clone)]
pub struct TcpSender {
    conns: Arc<Mutex<HashMap<OverlayAddr, mpsc::Sender<Bytes>>>>,
}

/// A TCP-backed overlay network on loopback.
pub struct TcpNet;

impl TcpNet {
    /// Bind a listener on an ephemeral loopback port and return the
    /// node's overlay address (which encodes `127.0.0.1:port`) plus its
    /// port.
    ///
    /// The accept loop runs until the returned `NodePort` is dropped.
    pub async fn attach() -> std::io::Result<NodePort> {
        let listener = TcpListener::bind("127.0.0.1:0").await?;
        let port = listener.local_addr()?.port();
        let addr = OverlayAddr::from_ipv4([127, 0, 0, 1], port);
        let (tx, rx) = mpsc::channel::<(OverlayAddr, Bytes)>(1024);

        // Accept loop.
        tokio::spawn(async move {
            loop {
                let Ok((stream, _)) = listener.accept().await else {
                    break;
                };
                let tx = tx.clone();
                tokio::spawn(async move {
                    let _ = read_peer(stream, tx).await;
                });
            }
        });

        Ok(NodePort {
            addr,
            rx,
            tx: PortSender {
                addr,
                inner: PortSenderInner::Tcp(TcpSender {
                    conns: Arc::new(Mutex::new(HashMap::new())),
                }),
            },
        })
    }
}

async fn read_peer(
    mut stream: TcpStream,
    tx: mpsc::Sender<(OverlayAddr, Bytes)>,
) -> std::io::Result<()> {
    // Hello: 8-byte sender overlay address.
    let mut hello = [0u8; 8];
    stream.read_exact(&mut hello).await?;
    let from = OverlayAddr::from_bytes(hello);
    loop {
        let mut len_buf = [0u8; 4];
        if stream.read_exact(&mut len_buf).await.is_err() {
            return Ok(()); // peer closed
        }
        let len = u32::from_le_bytes(len_buf);
        if len > MAX_FRAME {
            return Ok(());
        }
        let mut frame = vec![0u8; len as usize];
        stream.read_exact(&mut frame).await?;
        if tx.send((from, Bytes::from(frame))).await.is_err() {
            return Ok(()); // node shut down
        }
    }
}

impl TcpSender {
    /// Send one frame, establishing/caching the connection as needed.
    pub(crate) async fn send(&self, from: OverlayAddr, to: OverlayAddr, bytes: Bytes) {
        // Fast path: existing writer.
        let existing = self.conns.lock().get(&to).cloned();
        let writer = match existing {
            Some(w) => w,
            None => {
                let (ip, port) = to.to_ipv4();
                let target = std::net::SocketAddr::from((ip, port));
                let Ok(mut stream) = TcpStream::connect(target).await else {
                    return; // dead peer: datagram semantics, drop
                };
                let _ = stream.set_nodelay(true);
                let (wtx, mut wrx) = mpsc::channel::<Bytes>(256);
                tokio::spawn(async move {
                    // Hello preamble.
                    if stream.write_all(&from.to_bytes()).await.is_err() {
                        return;
                    }
                    while let Some(frame) = wrx.recv().await {
                        let len = (frame.len() as u32).to_le_bytes();
                        if stream.write_all(&len).await.is_err()
                            || stream.write_all(&frame).await.is_err()
                        {
                            return;
                        }
                    }
                });
                self.conns.lock().insert(to, wtx.clone());
                wtx
            }
        };
        if writer.send(bytes).await.is_err() {
            // Writer died; forget the connection so the next send retries.
            self.conns.lock().remove(&to);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[tokio::test]
    async fn round_trip_over_loopback() {
        let a = TcpNet::attach().await.unwrap();
        let mut b = TcpNet::attach().await.unwrap();
        a.tx.send(b.addr, bytes::Bytes::from(&b"over tcp"[..])).await;
        let (from, bytes) = b.rx.recv().await.unwrap();
        assert_eq!(from, a.addr);
        assert_eq!(bytes, b"over tcp");
    }

    #[tokio::test]
    async fn many_frames_in_order_per_connection() {
        let a = TcpNet::attach().await.unwrap();
        let mut b = TcpNet::attach().await.unwrap();
        for i in 0..50u32 {
            a.tx.send(b.addr, bytes::Bytes::from(i.to_le_bytes().to_vec())).await;
        }
        for i in 0..50u32 {
            let (_, bytes) = b.rx.recv().await.unwrap();
            assert_eq!(bytes, i.to_le_bytes());
        }
    }

    #[tokio::test]
    async fn bidirectional() {
        let mut a = TcpNet::attach().await.unwrap();
        let mut b = TcpNet::attach().await.unwrap();
        a.tx.send(b.addr, bytes::Bytes::from(&b"ping"[..])).await;
        let (_, ping) = b.rx.recv().await.unwrap();
        assert_eq!(ping, b"ping");
        b.tx.send(a.addr, bytes::Bytes::from(&b"pong"[..])).await;
        let (_, pong) = a.rx.recv().await.unwrap();
        assert_eq!(pong, b"pong");
    }

    #[tokio::test]
    async fn send_to_dead_peer_does_not_block() {
        let a = TcpNet::attach().await.unwrap();
        // Unbound address: connect fails, send becomes a no-op.
        let ghost = OverlayAddr::from_ipv4([127, 0, 0, 1], 1);
        a.tx.send(ghost, bytes::Bytes::from(&b"x"[..])).await;
    }
}
