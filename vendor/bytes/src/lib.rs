//! Vendored, dependency-free subset of the `bytes` API: the [`Buf`] /
//! [`BufMut`] cursor traits over byte slices, a growable [`BytesMut`]
//! with [`freeze`](BytesMut::freeze), and the cheaply-cloneable shared
//! [`Bytes`] view — little-endian accessors only (all this workspace's
//! wire formats are little-endian).
//!
//! [`Bytes`] is implemented without `unsafe` as an `Arc<[u8]>` plus a
//! `(start, end)` window: `clone()` is one refcount bump, and
//! [`slice`](Bytes::slice) narrows the window without copying — exactly
//! the operations the zero-copy packet data plane needs.

#![forbid(unsafe_code)]

use std::ops::{Bound, RangeBounds};
use std::sync::Arc;

/// A cursor over readable bytes; implemented for `&[u8]`, which advances
/// the slice itself as bytes are consumed.
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;
    /// View of the remaining bytes.
    fn chunk(&self) -> &[u8];
    /// Advance the cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copy `dst.len()` bytes out, advancing.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        *self = &self[cnt..];
    }
}

/// A sink for writable bytes.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// A cheaply-cloneable, immutable, shared view of a byte buffer.
///
/// Backed by an `Arc<[u8]>` and a `(start, end)` window: cloning bumps a
/// refcount, [`slice`](Bytes::slice) narrows the window in place. Both
/// are O(1) and never copy the underlying bytes.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// The empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copy `src` into a fresh shared buffer.
    pub fn copy_from_slice(src: &[u8]) -> Self {
        Bytes::from(src.to_vec())
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    fn view(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Zero-copy sub-view over `range` (relative to this view).
    ///
    /// # Panics
    /// Panics if the range is out of bounds or inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(start <= end, "slice start past end");
        assert!(end <= self.len(), "slice out of bounds");
        Bytes {
            data: self.data.clone(),
            start: self.start + start,
            end: self.start + end,
        }
    }

    /// Copy the view out as an owned vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.view().to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(s: &[u8; N]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.view()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.view()
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.view()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.view() == other.view()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.view() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.view() == other.as_slice()
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.view() == *other
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.view() == &other[..]
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.view() == other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.view().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({}B)", self.len())
    }
}

/// A growable byte buffer (thin wrapper over `Vec<u8>`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Copy out as a plain vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }

    /// Convert into an immutable shared [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.0)
    }

    /// Append `len` zero bytes and return a mutable view of just that
    /// region — the in-place "reserve a slot, then code into it" pattern
    /// the packet builder uses.
    pub fn put_zeroed(&mut self, len: usize) -> &mut [u8] {
        let start = self.0.len();
        self.0.resize(start + len, 0);
        &mut self.0[start..]
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_slice_is_zero_copy_view() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5, 6, 7]);
        let mid = b.slice(2..6);
        assert_eq!(mid, &[2, 3, 4, 5]);
        let inner = mid.slice(1..3);
        assert_eq!(inner, &[3, 4]);
        assert_eq!(inner.len(), 2);
        // Full-range and open-ended slices.
        assert_eq!(b.slice(..), b);
        assert_eq!(b.slice(6..), &[6, 7]);
        assert_eq!(b.slice(..2), &[0, 1]);
    }

    #[test]
    fn bytes_clone_shares_storage() {
        let b = Bytes::from(vec![9u8; 32]);
        let c = b.clone();
        assert!(Arc::ptr_eq(&b.data, &c.data));
        let s = b.slice(4..8);
        assert!(Arc::ptr_eq(&b.data, &s.data));
    }

    #[test]
    fn freeze_round_trip() {
        let mut m = BytesMut::with_capacity(8);
        m.put_u32_le(0xAABBCCDD);
        let frozen = m.freeze();
        assert_eq!(frozen, &[0xDD, 0xCC, 0xBB, 0xAA]);
        assert_eq!(frozen.to_vec(), vec![0xDD, 0xCC, 0xBB, 0xAA]);
    }

    #[test]
    fn put_zeroed_returns_writable_region() {
        let mut m = BytesMut::new();
        m.put_u8(7);
        let region = m.put_zeroed(3);
        assert_eq!(region, &[0, 0, 0]);
        region[1] = 42;
        assert_eq!(m.freeze(), &[7, 0, 42, 0]);
    }

    #[test]
    fn bytes_mut_deref_mut_edits_in_place() {
        let mut m = BytesMut::new();
        m.put_slice(&[1, 2, 3, 4]);
        m[1..3].copy_from_slice(&[9, 8]);
        assert_eq!(m.freeze(), &[1, 9, 8, 4]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bytes_slice_out_of_bounds_panics() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let _ = b.slice(1..5);
    }

    #[test]
    fn empty_bytes() {
        let b = Bytes::new();
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
        assert_eq!(b.slice(..), b);
    }

    #[test]
    fn write_then_read_round_trip() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(7);
        buf.put_u16_le(0x0102);
        buf.put_u32_le(0x03040506);
        buf.put_u64_le(0x0708090A0B0C0D0E);
        buf.put_slice(b"xyz");
        let v = buf.to_vec();
        let mut r: &[u8] = &v;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 0x0102);
        assert_eq!(r.get_u32_le(), 0x03040506);
        assert_eq!(r.get_u64_le(), 0x0708090A0B0C0D0E);
        let mut tail = [0u8; 3];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert_eq!(r.remaining(), 0);
    }
}
