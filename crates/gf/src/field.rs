//! The [`Field`] trait: the arithmetic interface all coding is generic over.

use std::fmt::Debug;
use std::hash::Hash;

use rand::Rng;

/// A finite field element.
///
/// Implementations are small `Copy` wrappers over an unsigned integer.
/// Both provided fields ([`crate::Gf256`], [`crate::Gf65536`]) have
/// characteristic 2, so addition and subtraction coincide (XOR); the trait
/// still exposes `sub` separately so generic code reads like the algebra in
/// the paper.
pub trait Field: Copy + Clone + Eq + PartialEq + Debug + Hash + Send + Sync + 'static {
    /// Number of bytes in the canonical little-endian encoding of an element.
    const BYTES: usize;
    /// The field order (number of elements), as u64.
    const ORDER: u64;

    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Whether this element is the additive identity.
    fn is_zero(&self) -> bool {
        *self == Self::zero()
    }

    /// Field addition.
    fn add(self, rhs: Self) -> Self;
    /// Field subtraction.
    fn sub(self, rhs: Self) -> Self;
    /// Field multiplication.
    fn mul(self, rhs: Self) -> Self;
    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics if `self` is zero.
    fn inv(self) -> Self;

    /// Field division (`self * rhs.inv()`).
    ///
    /// # Panics
    /// Panics if `rhs` is zero.
    fn div(self, rhs: Self) -> Self {
        self.mul(rhs.inv())
    }

    /// Exponentiation by squaring.
    fn pow(self, mut e: u64) -> Self {
        let mut base = self;
        let mut acc = Self::one();
        while e > 0 {
            if e & 1 == 1 {
                acc = acc.mul(base);
            }
            base = base.mul(base);
            e >>= 1;
        }
        acc
    }

    /// Construct an element from an integer, reduced modulo the field order.
    fn from_u64(v: u64) -> Self;
    /// The canonical integer representation of this element.
    fn to_u64(self) -> u64;

    /// Sample a uniformly random element.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self::from_u64(rng.gen::<u64>() % Self::ORDER)
    }

    /// Sample a uniformly random *nonzero* element.
    fn random_nonzero<R: Rng + ?Sized>(rng: &mut R) -> Self {
        loop {
            let v = Self::random(rng);
            if !v.is_zero() {
                return v;
            }
        }
    }

    /// Write the canonical little-endian encoding into `out`
    /// (`out.len() == Self::BYTES`).
    fn write_bytes(self, out: &mut [u8]);
    /// Read an element from its canonical little-endian encoding.
    fn read_bytes(bytes: &[u8]) -> Self;

    // ---- bulk slice hooks ------------------------------------------------
    //
    // The element-wise defaults below are what every field gets for free;
    // `Gf256` overrides them to stream through the 64 KiB compile-time
    // multiplication table (one L1-resident row per fixed coefficient,
    // one 2-D lookup per varying pair), the same table behind
    // [`crate::bulk`], and `Gf65536` overrides them with the word-slice
    // kernels (`bulk::mul_add_slice16` and friends — table fetch and
    // `log c` hoisted out of the loop). All matrix and dot-product code
    // routes through these hooks, so the ports cover `mul_mat`,
    // `mul_vec`, `rank`, `inverse`, `solve` and the `mds` generator
    // constructions at once.

    /// Dot product `Σ a[i]·b[i]` over equal-length slices.
    fn dot_slices(a: &[Self], b: &[Self]) -> Self {
        let mut acc = Self::zero();
        for (&x, &y) in a.iter().zip(b.iter()) {
            acc = acc.add(x.mul(y));
        }
        acc
    }

    /// `acc[i] += c · src[i]` for all `i` (axpy).
    fn axpy_slices(acc: &mut [Self], c: Self, src: &[Self]) {
        if c.is_zero() {
            return;
        }
        for (a, &s) in acc.iter_mut().zip(src.iter()) {
            *a = a.add(c.mul(s));
        }
    }

    /// `row[i] = c · row[i]` for all `i` (in-place scale).
    fn scale_slices(row: &mut [Self], c: Self) {
        for v in row.iter_mut() {
            *v = v.mul(c);
        }
    }

    /// `dst[i] -= c · src[i]` for all `i` — the Gaussian-elimination row
    /// update. Coincides with [`Field::axpy_slices`] in characteristic 2.
    fn sub_scaled_slices(dst: &mut [Self], c: Self, src: &[Self]) {
        if c.is_zero() {
            return;
        }
        for (d, &s) in dst.iter_mut().zip(src.iter()) {
            *d = d.sub(c.mul(s));
        }
    }
}

/// Dot product of two equal-length slices of field elements.
///
/// This is the inner loop of all slicing encode/decode/recombine
/// operations, kept free-standing so benches can measure it directly.
/// Dispatches through [`Field::dot_slices`] — for [`crate::Gf256`] that
/// is one 64 KiB-table lookup per element pair instead of the log/exp
/// dance.
#[inline]
pub fn dot<F: Field>(a: &[F], b: &[F]) -> F {
    debug_assert_eq!(a.len(), b.len());
    F::dot_slices(a, b)
}

/// `acc[i] += c * src[i]` for all `i` — the axpy kernel used by matrix
/// multiplication and network-coding recombination. Dispatches through
/// [`Field::axpy_slices`] (one table row per call for [`crate::Gf256`]).
#[inline]
pub fn axpy<F: Field>(acc: &mut [F], c: F, src: &[F]) {
    debug_assert_eq!(acc.len(), src.len());
    F::axpy_slices(acc, c, src);
}

/// `row[i] *= c` for all `i` — the pivot-normalization kernel of
/// Gaussian elimination.
#[inline]
pub fn scale<F: Field>(row: &mut [F], c: F) {
    F::scale_slices(row, c);
}

/// `dst[i] -= c * src[i]` for all `i` — the row-elimination kernel of
/// Gaussian elimination (rank, inversion, solving).
#[inline]
pub fn sub_scaled<F: Field>(dst: &mut [F], c: F, src: &[F]) {
    debug_assert_eq!(dst.len(), src.len());
    F::sub_scaled_slices(dst, c, src);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Gf256, Gf65536};

    fn axioms_hold<F: Field>() {
        let mut rng = rand::thread_rng();
        for _ in 0..200 {
            let a = F::random(&mut rng);
            let b = F::random(&mut rng);
            let c = F::random(&mut rng);
            // Commutativity.
            assert_eq!(a.add(b), b.add(a));
            assert_eq!(a.mul(b), b.mul(a));
            // Associativity.
            assert_eq!(a.add(b).add(c), a.add(b.add(c)));
            assert_eq!(a.mul(b).mul(c), a.mul(b.mul(c)));
            // Distributivity.
            assert_eq!(a.mul(b.add(c)), a.mul(b).add(a.mul(c)));
            // Identities.
            assert_eq!(a.add(F::zero()), a);
            assert_eq!(a.mul(F::one()), a);
            // Inverses.
            assert_eq!(a.sub(a), F::zero());
            if !a.is_zero() {
                assert_eq!(a.mul(a.inv()), F::one());
                assert_eq!(a.div(a), F::one());
            }
        }
    }

    #[test]
    fn gf256_axioms() {
        axioms_hold::<Gf256>();
    }

    #[test]
    fn gf65536_axioms() {
        axioms_hold::<Gf65536>();
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let mut rng = rand::thread_rng();
        let a = Gf256::random_nonzero(&mut rng);
        let mut acc = Gf256::one();
        for e in 0..20u64 {
            assert_eq!(a.pow(e), acc);
            acc = acc.mul(a);
        }
    }

    #[test]
    fn dot_and_axpy_agree() {
        let mut rng = rand::thread_rng();
        let a: Vec<Gf256> = (0..16).map(|_| Gf256::random(&mut rng)).collect();
        let b: Vec<Gf256> = (0..16).map(|_| Gf256::random(&mut rng)).collect();
        let d = dot(&a, &b);
        // Compute the same dot product via axpy into a 1-element accumulator
        // per term.
        let mut acc = Gf256::zero();
        for i in 0..16 {
            let mut cell = [acc];
            axpy(&mut cell, a[i], &[b[i]]);
            acc = cell[0];
        }
        assert_eq!(acc, d);
    }

    #[test]
    fn bulk_hooks_match_scalar_semantics() {
        // Gf256's table-backed overrides must agree with the element-wise
        // defaults (checked here via explicit scalar loops) for every
        // kernel the matrix code uses.
        let mut rng = rand::thread_rng();
        for len in [0usize, 1, 7, 64, 255] {
            let a: Vec<Gf256> = (0..len).map(|_| Gf256::random(&mut rng)).collect();
            let b: Vec<Gf256> = (0..len).map(|_| Gf256::random(&mut rng)).collect();
            for c in [Gf256::new(0), Gf256::new(1), Gf256::new(0xA7)] {
                // dot
                let mut want = Gf256::zero();
                for (&x, &y) in a.iter().zip(b.iter()) {
                    want = want.add(x.mul(y));
                }
                assert_eq!(dot(&a, &b), want, "dot len {len}");
                // axpy
                let mut got = a.clone();
                axpy(&mut got, c, &b);
                let want: Vec<Gf256> = a
                    .iter()
                    .zip(b.iter())
                    .map(|(&x, &y)| x.add(c.mul(y)))
                    .collect();
                assert_eq!(got, want, "axpy len {len} c {c:?}");
                // scale
                let mut got = a.clone();
                scale(&mut got, c);
                let want: Vec<Gf256> = a.iter().map(|&x| x.mul(c)).collect();
                assert_eq!(got, want, "scale len {len} c {c:?}");
                // sub_scaled
                let mut got = a.clone();
                sub_scaled(&mut got, c, &b);
                let want: Vec<Gf256> = a
                    .iter()
                    .zip(b.iter())
                    .map(|(&x, &y)| x.sub(c.mul(y)))
                    .collect();
                assert_eq!(got, want, "sub_scaled len {len} c {c:?}");
            }
        }
    }

    #[test]
    fn gf65536_hooks_match_scalar_semantics() {
        // Gf65536's kernel-backed overrides must agree with the
        // element-wise defaults for every kernel the matrix code uses.
        let mut rng = rand::thread_rng();
        for len in [0usize, 1, 7, 64, 255] {
            let a: Vec<Gf65536> = (0..len).map(|_| Gf65536::random(&mut rng)).collect();
            let b: Vec<Gf65536> = (0..len).map(|_| Gf65536::random(&mut rng)).collect();
            for c in [Gf65536::new(0), Gf65536::new(1), Gf65536::new(0xBEEF)] {
                let mut want = Gf65536::zero();
                for (&x, &y) in a.iter().zip(b.iter()) {
                    want = want.add(x.mul(y));
                }
                assert_eq!(dot(&a, &b), want, "dot len {len}");
                let mut got = a.clone();
                axpy(&mut got, c, &b);
                let want: Vec<Gf65536> = a
                    .iter()
                    .zip(b.iter())
                    .map(|(&x, &y)| x.add(c.mul(y)))
                    .collect();
                assert_eq!(got, want, "axpy len {len} c {c:?}");
                let mut got = a.clone();
                scale(&mut got, c);
                let want: Vec<Gf65536> = a.iter().map(|&x| x.mul(c)).collect();
                assert_eq!(got, want, "scale len {len} c {c:?}");
                let mut got = a.clone();
                sub_scaled(&mut got, c, &b);
                let want: Vec<Gf65536> = a
                    .iter()
                    .zip(b.iter())
                    .map(|(&x, &y)| x.sub(c.mul(y)))
                    .collect();
                assert_eq!(got, want, "sub_scaled len {len} c {c:?}");
            }
        }
    }

    #[test]
    fn byte_round_trip() {
        let mut rng = rand::thread_rng();
        for _ in 0..64 {
            let a = Gf65536::random(&mut rng);
            let mut buf = [0u8; 2];
            a.write_bytes(&mut buf);
            assert_eq!(Gf65536::read_bytes(&buf), a);
        }
    }
}
