//! Daemon tasks: async drivers around the sans-IO engines.
//!
//! Three shapes, mirroring (and extending) the paper's per-node
//! multi-threaded daemon (§7.1):
//!
//! * [`spawn_relay`] — the classic single-task daemon: one worker task
//!   owns the node's single [`RelayShard`] (fed straight from the
//!   port's inbox), so a relay uses at most one core.
//! * [`spawn_sharded_relay`] — the sharded runtime: one **ingress** task
//!   peeks just the flow id out of each received buffer and dispatches
//!   the frozen [`Bytes`] over an SPSC channel to the worker owning that
//!   flow's [`RelayShard`]; each **worker** drives its shard (packets +
//!   50 ms timer) and owns its own egress sender, batching consecutive
//!   sends to the same neighbour before awaiting the transport. Flows
//!   have shard affinity (`hash(flow_id) % N` via the shared
//!   [`FlowRouter`]), so shards never contend on flow state and a relay
//!   scales across cores.
//! * [`spawn_node`] — the combined node: relay, source and destination
//!   roles concurrently over shared transports. Every port's ingress
//!   peeks the flow id and routes the buffer to either the relay plane
//!   (shard workers, as above) or the session plane (a
//!   [`slicing_core::SessionManager`] split into per-shard workers that
//!   host thousands of source/destination endpoints). Receiver flows
//!   established by the relay plane get a colocated
//!   [`DestSession`] in their owning shard worker — flow affinity means
//!   the destination role adds no locks to the packet path — while the
//!   relay keeps forwarding downstream so neighbours cannot tell the
//!   node terminates traffic.
//!
//! Wire-garbage (buffers that fail packet parsing) is counted into the
//! relay's shared [`slicing_core::RelayStatsAtomic`] by whichever task
//! rejects it, and every driver folds its shard's counters into the same
//! cell, so tests and dashboards can watch a live relay without owning
//! its state.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use bytes::Bytes;
use slicing_core::{
    DestSession, FlowRouter, OverlayAddr, Packet, RelayNode, RelayOutput, RelayShard,
    RelayStatsAtomic, SessionConfig, SessionError, SessionId, SessionManager, SessionOutput,
    SessionRouter, SessionShard, SessionStats, SessionStatsAtomic, ShardedRelay, SourceSession,
    Tick,
};
use slicing_graph::packets::SendInstr;
use slicing_onion::{OnionPacket, OnionRelay};
use slicing_wire::{peek_flow_id, FlowId};
use std::sync::Arc;
use tokio::sync::mpsc;

use crate::{NodePort, PortSender};

/// Most packets a shard worker drains from its inbox before touching
/// the network (bounds latency of the first queued send; keeps the
/// egress batches dense under load).
const WORKER_DRAIN_BATCH: usize = 32;

/// Timer cadence for the relay state machines. The select loops are
/// biased toward the packet arm, so under sustained traffic the ticker
/// arm may never win; every loop additionally runs overdue timer work
/// at batch boundaries so gather flushes and flow GC cannot be starved
/// by load.
const POLL_PERIOD: Duration = Duration::from_millis(50);

/// Events the daemons report to the experiment harness.
#[derive(Clone, Debug)]
pub enum OverlayEvent {
    /// A relay completed flow establishment; `receiver` = destination?
    Established {
        /// The node that established.
        addr: OverlayAddr,
        /// The established flow.
        flow: FlowId,
        /// Whether it is the flow's destination.
        receiver: bool,
        /// Milliseconds since the daemon started.
        at_ms: u64,
    },
    /// The destination decoded and decrypted a data message.
    MessageReceived {
        /// Destination address.
        addr: OverlayAddr,
        /// Message sequence number.
        seq: u32,
        /// Plaintext length (payload itself omitted from events).
        len: usize,
        /// Milliseconds since the daemon started.
        at_ms: u64,
    },
}

/// Report one call's output as events.
fn emit_events(
    events: &mpsc::UnboundedSender<OverlayEvent>,
    addr: OverlayAddr,
    epoch: Instant,
    outputs: &RelayOutput,
) {
    let at_ms = epoch.elapsed().as_millis() as u64;
    for &(flow, receiver) in &outputs.established {
        let _ = events.send(OverlayEvent::Established {
            addr,
            flow,
            receiver,
            at_ms,
        });
    }
    for r in &outputs.received {
        let _ = events.send(OverlayEvent::MessageReceived {
            addr,
            seq: r.seq,
            len: r.plaintext.len(),
            at_ms,
        });
    }
}

/// A running relay daemon: the spawned task(s) plus a shutdown line.
///
/// Dropping the handle also stops the daemon (the stop channel closes),
/// so harnesses that collect daemons in a `Vec` clean up by dropping it.
pub struct RelayDaemon {
    stop: mpsc::Sender<()>,
    join: tokio::task::JoinHandle<()>,
}

impl RelayDaemon {
    /// Ask the daemon to exit its loop cleanly (pending work published,
    /// shard channels drained and closed) and wait until it has.
    ///
    /// Used by the churn driver to take a node off the overlay mid-flow:
    /// on TCP the node's port closes and peers' cached connections fail
    /// over to datagram drops, exactly like a crashed process.
    pub async fn shutdown(self) {
        let _ = self.stop.send(()).await;
        let _ = self.join.await;
    }

    /// Hard-abort the daemon task (tests and teardown).
    pub fn abort(&self) {
        self.join.abort();
    }
}

/// The stop line a worker loop selects on. For the single-shard daemon
/// it is the daemon's real stop channel; sharded workers get a dormant
/// line (the ingress dispatcher owns the real one and stopping it closes
/// every worker's inbox instead).
struct StopLine {
    rx: mpsc::Receiver<()>,
    /// Keeps a dormant line from resolving (a closed channel would).
    _keep: Option<mpsc::Sender<()>>,
}

impl StopLine {
    /// A line wired to `rx`: resolves on an explicit stop *or* when the
    /// daemon handle is dropped.
    fn live(rx: mpsc::Receiver<()>) -> Self {
        StopLine { rx, _keep: None }
    }

    /// A line that never resolves.
    fn dormant() -> Self {
        let (tx, rx) = mpsc::channel(1);
        StopLine {
            rx,
            _keep: Some(tx),
        }
    }
}

/// Transmit `sends`, grouping consecutive sends to the same neighbour
/// into one transport batch (`scratch` is reused across calls).
async fn flush_sends(
    port: &PortSender,
    outputs: RelayOutput,
    batches: &mut Vec<(OverlayAddr, Vec<Bytes>)>,
) {
    // Group every same-destination send across the whole flush into one
    // transport call: a relay generation fans its `d` packets out to
    // different next hops, so same-destination sends interleave — runs
    // alone would leave every batch at one frame. Per-destination order
    // is preserved; order between destinations carries no meaning.
    for instr in outputs.sends {
        let frames = match batches.iter_mut().find(|(to, _)| *to == instr.to) {
            Some((_, frames)) => frames,
            None => {
                batches.push((instr.to, Vec::new()));
                &mut batches.last_mut().expect("just pushed").1
            }
        };
        frames.push(instr.packet.encode());
    }
    for (to, frames) in batches.iter_mut() {
        port.send_many(*to, frames).await;
    }
    // Keep the bucket allocations; frames were drained in place.
    batches.retain(|(_, frames)| frames.capacity() > 0);
}

/// Spawn a slicing relay daemon on `port`; runs until the port closes.
///
/// `epoch` anchors the Tick clock so all daemons share a timeline.
/// This is the one-shard case of the sharded runtime: the node's single
/// [`RelayShard`] is driven by the same worker loop, with the port's
/// inbox as its packet channel (no ingress dispatcher needed).
pub fn spawn_relay(
    relay: RelayNode,
    port: NodePort,
    events: mpsc::UnboundedSender<OverlayEvent>,
    epoch: Instant,
) -> RelayDaemon {
    let (shard, _router, _stats) = relay.into_parts();
    let (stop_tx, stop_rx) = mpsc::channel(1);
    RelayDaemon {
        stop: stop_tx,
        join: tokio::spawn(shard_worker(
            shard,
            port.rx,
            port.tx,
            events,
            epoch,
            StopLine::live(stop_rx),
            None,
        )),
    }
}

/// Spawn a sharded relay: one ingress dispatcher plus one worker task
/// per shard, all on `port`. Runs until the port closes or the daemon
/// is [shut down](RelayDaemon::shutdown) — stopping the ingress drops
/// the shard channels, which shuts the workers down.
///
/// # Example
///
/// Run one 4-way sharded relay on the in-process emulated network,
/// watch it count an unparseable frame through the shared stats, and
/// shut it down cleanly:
///
/// ```
/// use std::time::{Duration, Instant};
/// use slicing_core::{OverlayAddr, ShardedRelay};
/// use slicing_overlay::{spawn_sharded_relay, EmulatedNet};
/// use slicing_sim::wan::NetProfile;
/// use tokio::sync::mpsc;
///
/// #[tokio::main]
/// async fn main() {
///     let net = EmulatedNet::new(NetProfile::lan(), 1);
///     let port = net.attach(OverlayAddr(10));
///     let sender = net.attach(OverlayAddr(11));
///     let relay = ShardedRelay::new(OverlayAddr(10), 7, 4);
///     let stats = relay.shared_stats();
///     let (events, _events_rx) = mpsc::unbounded_channel();
///     let daemon = spawn_sharded_relay(relay, port, events, Instant::now());
///
///     // Anything sent to OverlayAddr(10) is peeked for its flow id and
///     // dispatched to the shard owning that flow; garbage dies at the
///     // ingress and is counted in the shared stats.
///     sender.tx.send(OverlayAddr(10), bytes::Bytes::from(&b"junk"[..])).await;
///     while stats.snapshot().garbage == 0 {
///         tokio::time::sleep(Duration::from_millis(5)).await;
///     }
///     daemon.shutdown().await;
/// }
/// ```
pub fn spawn_sharded_relay(
    relay: ShardedRelay,
    port: NodePort,
    events: mpsc::UnboundedSender<OverlayEvent>,
    epoch: Instant,
) -> RelayDaemon {
    let (shards, router, stats) = relay.into_parts();
    let mut shard_txs = Vec::with_capacity(shards.len());
    for shard in shards {
        let (stx, srx) = mpsc::channel::<(OverlayAddr, Bytes)>(1024);
        tokio::spawn(shard_worker(
            shard,
            srx,
            port.tx.clone(),
            events.clone(),
            epoch,
            StopLine::dormant(),
            None,
        ));
        shard_txs.push(stx);
    }
    let (stop_tx, stop_rx) = mpsc::channel(1);
    RelayDaemon {
        stop: stop_tx,
        join: tokio::spawn(ingress(port, router, shard_txs, stats, stop_rx)),
    }
}

/// The ingress dispatcher: peek the flow id, pick the shard, hand the
/// frozen receive buffer over. Full packet validation happens in the
/// owning shard — the dispatcher reads 12 bytes per packet and never
/// blocks on protocol work.
async fn ingress(
    mut port: NodePort,
    router: FlowRouter,
    shard_txs: Vec<mpsc::Sender<(OverlayAddr, Bytes)>>,
    stats: Arc<RelayStatsAtomic>,
    mut stop: mpsc::Receiver<()>,
) {
    loop {
        let received = tokio::select! {
            maybe = port.rx.recv() => maybe,
            // Clean shutdown (or daemon handle dropped): stop
            // dispatching; dropping `shard_txs` below drains the
            // workers out.
            _ = stop.recv() => None,
        };
        let Some((from, bytes)) = received else { break };
        match peek_flow_id(&bytes) {
            Some(flow) => {
                let idx = router.route(flow);
                // Datagram semantics: if one shard's worker is stalled
                // behind a slow neighbour and its inbox is full, shed
                // this packet rather than blocking dispatch to the
                // other N−1 shards.
                if shard_txs[idx].try_send((from, bytes)).is_err() {
                    stats.record_drop();
                }
            }
            None => stats.record_garbage(),
        }
    }
    // Port closed or stopped: dropping `shard_txs` closes every
    // worker's inbox.
}

/// One shard's worker: owns the shard, drives packets and the 50 ms
/// timer, reports events, and transmits through its own egress handle
/// with consecutive same-neighbour sends batched.
///
/// With `dest_spec` set, the worker also plays the **destination role**
/// for receiver flows its shard establishes: each gets a colocated
/// [`DestSession`] (flow affinity — no locks), fed from the relay's
/// decoded deliveries; completed stream messages go out on the spec's
/// delivery channel and acks/replies ride the reverse path through this
/// worker's egress.
async fn shard_worker(
    mut shard: RelayShard,
    mut rx: mpsc::Receiver<(OverlayAddr, Bytes)>,
    tx: PortSender,
    events: mpsc::UnboundedSender<OverlayEvent>,
    epoch: Instant,
    mut stop: StopLine,
    dest_spec: Option<DestSessionSpec>,
) {
    let addr = shard.addr();
    let stats = shard.shared_stats();
    let mut ticker = tokio::time::interval(POLL_PERIOD);
    ticker.set_missed_tick_behavior(tokio::time::MissedTickBehavior::Delay);
    let mut scratch = Vec::new();
    let mut last_poll = Instant::now();
    let mut dests: HashMap<FlowId, DestSession> = HashMap::new();
    let handle = |shard: &mut RelayShard, from: OverlayAddr, bytes: Bytes| match Packet::from_bytes(
        bytes,
    ) {
        Ok(packet) => shard.handle_packet(now_tick(epoch), from, &packet),
        Err(_) => {
            // The ingress peek admits buffers whose body later fails
            // full validation; they die here.
            stats.record_garbage();
            RelayOutput::default()
        }
    };
    loop {
        let mut poll_boundary = false;
        let mut outputs = tokio::select! {
            maybe = rx.recv() => {
                let Some((from, bytes)) = maybe else { break };
                handle(&mut shard, from, bytes)
            }
            _ = ticker.tick() => {
                last_poll = Instant::now();
                poll_boundary = true;
                shard.poll(now_tick(epoch))
            }
            // Clean mid-flow shutdown (single-shard daemons; sharded
            // workers stop when the ingress closes their inbox).
            _ = stop.rx.recv() => break,
        };
        // Drain whatever else is already queued before touching the
        // network, so bursts produce dense egress batches.
        for _ in 0..WORKER_DRAIN_BATCH {
            match rx.try_recv() {
                Ok((from, bytes)) => outputs.merge(handle(&mut shard, from, bytes)),
                Err(_) => break,
            }
        }
        // Biased select: sustained traffic keeps the packet arm winning,
        // so run overdue timer work at batch boundaries as well.
        if last_poll.elapsed() >= POLL_PERIOD {
            last_poll = Instant::now();
            poll_boundary = true;
            outputs.merge(shard.poll(now_tick(epoch)));
        }
        if let Some(spec) = &dest_spec {
            drive_dest_role(
                &mut shard,
                &mut dests,
                spec,
                addr,
                epoch,
                &mut outputs,
                poll_boundary,
            );
        }
        emit_events(&events, addr, epoch, &outputs);
        flush_sends(&tx, outputs, &mut scratch).await;
        shard.publish_stats();
    }
    // Exiting (port closed or shutdown): leave the shared stats exact.
    shard.publish_stats();
}

/// The colocated destination role of one relay shard worker: register
/// sessions for freshly established receiver flows, feed relay
/// deliveries through them, run their periodic work at poll boundaries,
/// and GC sessions whose flow the relay evicted.
fn drive_dest_role(
    shard: &mut RelayShard,
    dests: &mut HashMap<FlowId, DestSession>,
    spec: &DestSessionSpec,
    addr: OverlayAddr,
    epoch: Instant,
    outputs: &mut RelayOutput,
    poll_boundary: bool,
) {
    let now = now_tick(epoch);
    for &(flow, receiver) in &outputs.established {
        if receiver && !dests.contains_key(&flow) {
            if let Some(info) = shard.flow_info(flow) {
                dests.insert(
                    flow,
                    DestSession::new(addr, flow, info.clone(), spec.config, spec.seed ^ flow.0),
                );
            }
        }
    }
    // Repair re-setups splice new neighbour lists into the relay's
    // flow; the colocated session's reverse routing must follow or its
    // acks keep fanning to the replaced parent.
    for &(flow, receiver) in &outputs.rekeyed {
        if receiver {
            if let (Some(dest), Some(info)) = (dests.get_mut(&flow), shard.flow_info(flow)) {
                dest.set_info(info.clone());
            }
        }
    }
    for r in &outputs.received {
        if let Some(dest) = dests.get_mut(&r.flow) {
            let dout = dest.handle_delivery(now, r.seq, r.plaintext.clone());
            absorb_dest_output(spec, addr, epoch, r.flow, dout, &mut outputs.sends);
        }
    }
    // Replays the relay suppressed mean a lost ack: re-announce.
    for &(flow, seq) in &outputs.replayed {
        if let Some(dest) = dests.get_mut(&flow) {
            let dout = dest.handle_replay(now, seq);
            absorb_dest_output(spec, addr, epoch, flow, dout, &mut outputs.sends);
        }
    }
    if poll_boundary && !dests.is_empty() {
        let mut douts: Vec<(FlowId, slicing_core::DestOutput)> = Vec::new();
        for (&flow, dest) in dests.iter_mut() {
            if dest.next_due().is_some_and(|d| d.0 <= now.0) {
                douts.push((flow, dest.poll(now)));
            }
        }
        for (flow, dout) in douts {
            absorb_dest_output(spec, addr, epoch, flow, dout, &mut outputs.sends);
        }
        // The relay's flow GC is authoritative: a session whose flow was
        // evicted dies with it.
        dests.retain(|flow, _| shard.flow_info(*flow).is_some());
    }
}

/// Queue a dest session's reverse sends and report completed messages.
fn absorb_dest_output(
    spec: &DestSessionSpec,
    addr: OverlayAddr,
    epoch: Instant,
    flow: FlowId,
    dout: slicing_core::DestOutput,
    sends: &mut Vec<SendInstr>,
) {
    sends.extend(dout.sends);
    let at_ms = epoch.elapsed().as_millis() as u64;
    for (msg_id, payload) in dout.messages {
        let _ = spec.deliveries.send(StreamDelivery {
            addr,
            flow,
            msg_id,
            payload,
            at_ms,
        });
    }
}

// ---- the combined node: relay + source + destination roles ---------------

/// Colocated destination-session support for relay workers: receiver
/// flows established by the relay plane get a [`DestSession`] in their
/// owning shard worker.
#[derive(Clone)]
pub struct DestSessionSpec {
    /// Session tuning (ack cadence, reassembly quotas).
    pub config: SessionConfig,
    /// Base RNG seed (mixed with the flow id per session).
    pub seed: u64,
    /// Completed stream messages are reported here.
    pub deliveries: mpsc::UnboundedSender<StreamDelivery>,
}

/// A stream message completed at a combined node's destination role.
#[derive(Clone, Debug)]
pub struct StreamDelivery {
    /// The destination node.
    pub addr: OverlayAddr,
    /// The receiver flow it arrived on.
    pub flow: FlowId,
    /// Stream message id (per-session, in delivery order).
    pub msg_id: u32,
    /// The reassembled payload.
    pub payload: Vec<u8>,
    /// Milliseconds since the daemon epoch.
    pub at_ms: u64,
}

/// Events the session plane reports to the harness.
#[derive(Clone, Debug)]
pub enum SessionEvent {
    /// A source-side stream message was fully acknowledged end to end.
    Acked {
        /// The source session.
        session: SessionId,
        /// The completed message.
        msg_id: u32,
        /// Milliseconds since the daemon epoch.
        at_ms: u64,
    },
    /// A manager-hosted destination endpoint completed a message.
    Delivered {
        /// The destination session.
        session: SessionId,
        /// Stream message id.
        msg_id: u32,
        /// The reassembled payload.
        payload: Vec<u8>,
        /// Milliseconds since the daemon epoch.
        at_ms: u64,
    },
    /// A destination reply surfaced at a source session.
    Reply {
        /// The source session.
        session: SessionId,
        /// Reply id.
        reply_id: u32,
        /// Reply payload.
        payload: Vec<u8>,
        /// Milliseconds since the daemon epoch.
        at_ms: u64,
    },
    /// An unframed (legacy) message surfaced at a session endpoint.
    Raw {
        /// The session.
        session: SessionId,
        /// Protocol sequence number.
        seq: u32,
        /// Decoded payload.
        payload: Vec<u8>,
        /// Milliseconds since the daemon epoch.
        at_ms: u64,
    },
    /// A source session repaired its forwarding graph around
    /// reported-dead relays (targeted re-setup transmitted; buffered
    /// messages re-encoded against the repaired graph).
    Repaired {
        /// The repaired source session.
        session: SessionId,
        /// Relays that had been reported dead and were routed around.
        failed: usize,
        /// Milliseconds since the daemon epoch.
        at_ms: u64,
    },
    /// A command against a session failed (backpressure, quota, unknown
    /// id) — the session plane's typed error surface.
    Rejected {
        /// The session the command addressed.
        session: SessionId,
        /// Why it was rejected.
        error: SessionError,
        /// Milliseconds since the daemon epoch.
        at_ms: u64,
    },
}

/// Commands a [`SessionHandle`] routes to session shard workers.
enum SessionCommand {
    OpenSource {
        id: SessionId,
        source: Box<SourceSession>,
        setup: Vec<SendInstr>,
    },
    OpenDest {
        id: SessionId,
        dest: Box<DestSession>,
    },
    Send {
        id: SessionId,
        payload: Vec<u8>,
    },
    Repair {
        id: SessionId,
        pool: Vec<OverlayAddr>,
    },
    Close {
        id: SessionId,
    },
}

/// Driver-side handle to a spawned node's session plane: open, feed and
/// close sessions while the workers own the shards. Cloneable; commands
/// route by session id to the owning worker, results surface through
/// [`SessionEvent`]s and the shared stats.
#[derive(Clone)]
pub struct SessionHandle {
    next_id: Arc<AtomicU64>,
    router: SessionRouter,
    config: SessionConfig,
    cmds: Vec<mpsc::Sender<SessionCommand>>,
    stats: Arc<SessionStatsAtomic>,
}

impl SessionHandle {
    /// Open a source session (applies the node's default session
    /// config); `setup` is transmitted by the owning worker once the
    /// session's flows are registered, so reverse traffic can never
    /// race its registration.
    pub async fn open_source(
        &self,
        mut source: SourceSession,
        setup: Vec<SendInstr>,
    ) -> SessionId {
        let id = SessionId(self.next_id.fetch_add(1, Ordering::Relaxed));
        source.set_session_config(self.config);
        let shard = self.router.route_id(id);
        let _ = self.cmds[shard]
            .send(SessionCommand::OpenSource {
                id,
                source: Box::new(source),
                setup,
            })
            .await;
        id
    }

    /// Open a destination endpoint (endpoint mode — the node's ingress
    /// routes the flow's data packets straight to it).
    pub async fn open_dest(&self, dest: DestSession) -> SessionId {
        let id = SessionId(self.next_id.fetch_add(1, Ordering::Relaxed));
        let shard = self.router.route_id(id);
        let _ = self.cmds[shard]
            .send(SessionCommand::OpenDest {
                id,
                dest: Box::new(dest),
            })
            .await;
        id
    }

    /// Queue one stream message on a session. Fire-and-forget: failures
    /// (backpressure, unknown id) surface as
    /// [`SessionEvent::Rejected`].
    pub async fn send(&self, id: SessionId, payload: Vec<u8>) {
        let shard = self.router.route_id(id);
        let _ = self.cmds[shard]
            .send(SessionCommand::Send { id, payload })
            .await;
    }

    /// Ask a source session to repair its forwarding graph around any
    /// relays reported dead, drawing replacements from `pool`.
    ///
    /// A no-op when the session has no reported failures, so drivers
    /// may call it speculatively (e.g. for every session not yet acked
    /// after a grace period). Outcomes surface as events: a performed
    /// repair emits [`SessionEvent::Repaired`]; an unknown id emits
    /// [`SessionEvent::Rejected`]; a repair the pool cannot satisfy
    /// emits nothing and the failure state is kept for a retry with a
    /// fresher pool.
    pub async fn repair(&self, id: SessionId, pool: Vec<OverlayAddr>) {
        let shard = self.router.route_id(id);
        let _ = self.cmds[shard]
            .send(SessionCommand::Repair { id, pool })
            .await;
    }

    /// Tear a session down.
    pub async fn close(&self, id: SessionId) {
        let shard = self.router.route_id(id);
        let _ = self.cmds[shard].send(SessionCommand::Close { id }).await;
    }

    /// Snapshot of the node's session-plane counters.
    pub fn stats(&self) -> SessionStats {
        self.stats.snapshot()
    }

    /// The session router (flow registrations; shard lookup).
    pub fn router(&self) -> &SessionRouter {
        &self.router
    }
}

/// Everything [`spawn_node`] needs to bring one overlay node up.
pub struct NodeSpec {
    /// The relay plane, if this node forwards traffic.
    pub relay: Option<ShardedRelay>,
    /// The session plane, if this node hosts endpoints.
    pub sessions: Option<SessionManager>,
    /// Every attachment point the node owns (its relay address and/or
    /// its pseudo-source addresses) — one shared ingress discipline
    /// routes each port's traffic to whichever plane owns the flow.
    pub ports: Vec<NodePort>,
    /// Colocated destination sessions on the relay plane's receiver
    /// flows.
    pub dest_sessions: Option<DestSessionSpec>,
    /// Relay-plane events.
    pub events: mpsc::UnboundedSender<OverlayEvent>,
    /// Session-plane events.
    pub session_events: Option<mpsc::UnboundedSender<SessionEvent>>,
    /// Shared epoch for the Tick clock.
    pub epoch: Instant,
}

/// A running combined node.
pub struct NodeHandle {
    stops: Vec<mpsc::Sender<()>>,
    joins: Vec<tokio::task::JoinHandle<()>>,
    /// The session plane's driver handle (when the node hosts one).
    pub sessions: Option<SessionHandle>,
}

impl NodeHandle {
    /// Ask every ingress to exit (workers drain out when their inboxes
    /// close) and wait for the ingress tasks.
    pub async fn shutdown(self) {
        for stop in &self.stops {
            let _ = stop.send(()).await;
        }
        for join in self.joins {
            let _ = join.await;
        }
    }

    /// Hard-abort the node's ingress tasks (teardown).
    pub fn abort(&self) {
        for join in &self.joins {
            join.abort();
        }
    }
}

/// A session-plane packet handed to a shard worker: `(owning session —
/// resolved once at the ingress — local, from, wire bytes)`.
type SessionPacket = (SessionId, OverlayAddr, OverlayAddr, Bytes);
/// A relay-plane packet handed to a shard worker: `(from, wire bytes)`.
type RelayPacket = (OverlayAddr, Bytes);

/// What a node ingress needs to steer one received buffer.
#[derive(Clone)]
struct IngressRouting {
    session: Option<(SessionRouter, Vec<mpsc::Sender<SessionPacket>>, Arc<SessionStatsAtomic>)>,
    relay: Option<(FlowRouter, Vec<mpsc::Sender<RelayPacket>>, Arc<RelayStatsAtomic>)>,
}

/// Spawn one overlay node hosting any combination of relay, source and
/// destination roles over shared transports.
///
/// Per port, an ingress task peeks each buffer's flow id and routes it:
/// flows registered with the session plane go to the owning
/// [`SessionShard`] worker, everything else to the relay plane's
/// [`RelayShard`] workers (or dies as garbage when no plane claims it).
/// Receiver flows the relay establishes get colocated [`DestSession`]s
/// when `dest_sessions` is set, so one node terminates, originates and
/// forwards traffic concurrently — with flow/session affinity keeping
/// every packet path lock-free.
pub fn spawn_node(spec: NodeSpec) -> NodeHandle {
    let NodeSpec {
        relay,
        sessions,
        ports,
        dest_sessions,
        events,
        session_events,
        epoch,
    } = spec;
    // Egress: one sender per attachment address, shared by the session
    // workers (SendInstr.from picks the port).
    let egress: Arc<HashMap<OverlayAddr, PortSender>> = Arc::new(
        ports
            .iter()
            .map(|p| (p.addr, p.tx.clone()))
            .collect(),
    );

    // Relay plane.
    let mut relay_routing = None;
    if let Some(relay) = relay {
        let relay_addr = relay.addr();
        let relay_tx = egress
            .get(&relay_addr)
            .cloned()
            .or_else(|| ports.first().map(|p| p.tx.clone()))
            .expect("spawn_node needs at least one port");
        let (shards, router, stats) = relay.into_parts();
        let mut shard_txs = Vec::with_capacity(shards.len());
        for shard in shards {
            let (stx, srx) = mpsc::channel::<(OverlayAddr, Bytes)>(1024);
            tokio::spawn(shard_worker(
                shard,
                srx,
                relay_tx.clone(),
                events.clone(),
                epoch,
                StopLine::dormant(),
                dest_sessions.clone(),
            ));
            shard_txs.push(stx);
        }
        relay_routing = Some((router, shard_txs, stats));
    }

    // Session plane.
    let mut session_routing = None;
    let mut session_handle = None;
    if let Some(manager) = sessions {
        let config = manager.default_config();
        let (shards, router, stats) = manager.into_parts();
        let mut packet_txs = Vec::with_capacity(shards.len());
        let mut cmd_txs = Vec::with_capacity(shards.len());
        for shard in shards {
            let (ptx, prx) = mpsc::channel::<SessionPacket>(1024);
            let (ctx, crx) = mpsc::channel::<SessionCommand>(256);
            tokio::spawn(session_worker(
                shard,
                prx,
                crx,
                Arc::clone(&egress),
                session_events.clone(),
                Arc::clone(&stats),
                epoch,
            ));
            packet_txs.push(ptx);
            cmd_txs.push(ctx);
        }
        session_handle = Some(SessionHandle {
            next_id: Arc::new(AtomicU64::new(1)),
            router: router.clone(),
            config,
            cmds: cmd_txs,
            stats: Arc::clone(&stats),
        });
        session_routing = Some((router, packet_txs, stats));
    }

    let routing = IngressRouting {
        session: session_routing,
        relay: relay_routing,
    };
    let mut stops = Vec::with_capacity(ports.len());
    let mut joins = Vec::with_capacity(ports.len());
    for port in ports {
        let (stop_tx, stop_rx) = mpsc::channel(1);
        stops.push(stop_tx);
        joins.push(tokio::spawn(node_ingress(port, routing.clone(), stop_rx)));
    }
    NodeHandle {
        stops,
        joins,
        sessions: session_handle,
    }
}

/// One port's ingress: peek the flow id, pick the plane, pick the
/// shard, hand the frozen buffer over. Datagram semantics — a full
/// worker inbox sheds the packet rather than stalling the other shards.
async fn node_ingress(mut port: NodePort, routing: IngressRouting, mut stop: mpsc::Receiver<()>) {
    let local = port.addr;
    loop {
        let received = tokio::select! {
            maybe = port.rx.recv() => maybe,
            _ = stop.recv() => None,
        };
        let Some((from, bytes)) = received else { break };
        match peek_flow_id(&bytes) {
            Some(flow) => {
                if let Some((router, txs, stats)) = &routing.session {
                    if let Some((shard, id)) = router.lookup(flow) {
                        if txs[shard].try_send((id, local, from, bytes)).is_err() {
                            stats.record_drop();
                        }
                        continue;
                    }
                }
                if let Some((router, txs, stats)) = &routing.relay {
                    let idx = router.route(flow);
                    if txs[idx].try_send((from, bytes)).is_err() {
                        stats.record_drop();
                    }
                    continue;
                }
                // No plane claims the flow on a session-only node.
                if let Some((_, _, stats)) = &routing.session {
                    stats.record_drop();
                }
            }
            None => {
                if let Some((_, _, stats)) = &routing.relay {
                    stats.record_garbage();
                } else if let Some((_, _, stats)) = &routing.session {
                    stats.record_drop();
                }
            }
        }
    }
    // Dropping the routing clones closes the workers' inboxes once
    // every ingress has exited.
}

/// A command line that can go dormant once the last handle is dropped
/// (so the worker's select loop does not spin on a closed channel).
struct CmdLine {
    rx: mpsc::Receiver<SessionCommand>,
    _keep: Option<mpsc::Sender<SessionCommand>>,
}

/// One session shard's worker: owns the shard, drives packets, driver
/// commands and the 50 ms wheel tick, transmits through the node's
/// shared egress map, and reports session events.
async fn session_worker(
    mut shard: SessionShard,
    mut packets: mpsc::Receiver<SessionPacket>,
    cmds: mpsc::Receiver<SessionCommand>,
    egress: Arc<HashMap<OverlayAddr, PortSender>>,
    events: Option<mpsc::UnboundedSender<SessionEvent>>,
    stats: Arc<SessionStatsAtomic>,
    epoch: Instant,
) {
    let mut cmds = CmdLine {
        rx: cmds,
        _keep: None,
    };
    let mut ticker = tokio::time::interval(POLL_PERIOD);
    ticker.set_missed_tick_behavior(tokio::time::MissedTickBehavior::Delay);
    let mut scratch = Vec::new();
    let handle = |shard: &mut SessionShard,
                  id: SessionId,
                  local: OverlayAddr,
                  from: OverlayAddr,
                  bytes: Bytes| match Packet::from_bytes(bytes) {
        Ok(packet) => shard.handle_routed(now_tick(epoch), id, local, from, &packet),
        Err(_) => {
            stats.record_drop();
            SessionOutput::default()
        }
    };
    loop {
        let mut out = tokio::select! {
            maybe = packets.recv() => {
                let Some((id, local, from, bytes)) = maybe else { break };
                handle(&mut shard, id, local, from, bytes)
            }
            cmd = cmds.rx.recv() => {
                match cmd {
                    Some(cmd) => apply_session_command(&mut shard, cmd, &events, epoch),
                    None => {
                        // Driver handle gone: keep serving packets, stop
                        // selecting on the closed channel.
                        let (keep, rx) = mpsc::channel(1);
                        cmds = CmdLine { rx, _keep: Some(keep) };
                        continue;
                    }
                }
            }
            _ = ticker.tick() => {
                // Fold the transport's congestion hint into the shard's
                // pacing floor: sources slow their admission to what the
                // wire is actually draining (0 clears the override).
                let hint = egress
                    .values()
                    .filter_map(|p| p.pace_hint_ms())
                    .max()
                    .unwrap_or(0);
                shard.set_pace_override(hint);
                shard.poll(now_tick(epoch))
            }
        };
        for _ in 0..WORKER_DRAIN_BATCH {
            match packets.try_recv() {
                Ok((id, local, from, bytes)) => {
                    out.merge(handle(&mut shard, id, local, from, bytes))
                }
                Err(_) => break,
            }
        }
        emit_session_events(&events, epoch, &mut out);
        flush_instr_batches(&egress, out.sends, &mut scratch).await;
        shard.publish_stats();
    }
    shard.publish_stats();
}

/// Apply one driver command to a session shard.
fn apply_session_command(
    shard: &mut SessionShard,
    cmd: SessionCommand,
    events: &Option<mpsc::UnboundedSender<SessionEvent>>,
    epoch: Instant,
) -> SessionOutput {
    let now = now_tick(epoch);
    let mut out = SessionOutput::default();
    let reject = |id: SessionId, error: SessionError| {
        if let Some(ev) = events {
            let _ = ev.send(SessionEvent::Rejected {
                session: id,
                error,
                at_ms: epoch.elapsed().as_millis() as u64,
            });
        }
    };
    match cmd {
        SessionCommand::OpenSource { id, source, setup } => {
            match shard.open_source(now, id, *source) {
                // The session's flows are registered; setup may now hit
                // the wire without racing reverse traffic.
                Ok(()) => out.sends.extend(setup),
                Err(e) => reject(id, e),
            }
        }
        SessionCommand::OpenDest { id, dest } => {
            if let Err(e) = shard.open_dest(now, id, *dest) {
                reject(id, e);
            }
        }
        SessionCommand::Send { id, payload } => match shard.send(now, id, &payload) {
            Ok((_, sends)) => out.sends.extend(sends),
            Err(e) => reject(id, e),
        },
        SessionCommand::Repair { id, pool } => match shard.source_mut(id) {
            Some(source) => {
                if source.needs_repair() {
                    let failed = source.failed_nodes().len();
                    // A pool that cannot satisfy the rebuild keeps the
                    // failure state; the driver retries with a fresher
                    // pool (e.g. after more restarts were observed).
                    if let Ok(sends) = source.repair(&pool) {
                        out.sends.extend(sends);
                        if let Some(ev) = events {
                            let _ = ev.send(SessionEvent::Repaired {
                                session: id,
                                failed,
                                at_ms: epoch.elapsed().as_millis() as u64,
                            });
                        }
                    }
                }
            }
            None => reject(id, SessionError::UnknownSession),
        },
        SessionCommand::Close { id } => {
            shard.close(id);
        }
    }
    out
}

/// Report a shard output's session events.
fn emit_session_events(
    events: &Option<mpsc::UnboundedSender<SessionEvent>>,
    epoch: Instant,
    out: &mut SessionOutput,
) {
    let Some(ev) = events else {
        out.delivered.clear();
        out.acked.clear();
        out.replies.clear();
        out.raw.clear();
        return;
    };
    let at_ms = epoch.elapsed().as_millis() as u64;
    for (session, msg_id) in out.acked.drain(..) {
        let _ = ev.send(SessionEvent::Acked {
            session,
            msg_id,
            at_ms,
        });
    }
    for (session, msg_id, payload) in out.delivered.drain(..) {
        let _ = ev.send(SessionEvent::Delivered {
            session,
            msg_id,
            payload,
            at_ms,
        });
    }
    for (session, reply_id, payload) in out.replies.drain(..) {
        let _ = ev.send(SessionEvent::Reply {
            session,
            reply_id,
            payload,
            at_ms,
        });
    }
    for (session, seq, payload) in out.raw.drain(..) {
        let _ = ev.send(SessionEvent::Raw {
            session,
            seq,
            payload,
            at_ms,
        });
    }
}

/// Transmit `sends` through a per-address egress map, grouping every
/// send that shares a `(from, to)` pair across the whole flush into one
/// transport call — one connection-cache probe on TCP, one
/// `sendmmsg`-shaped syscall on UDP. A relay generation fans its `d`
/// packets out to *different* next hops, so same-destination sends
/// interleave rather than run consecutively; grouping across the flush
/// is what makes the batches dense. Per-destination order is preserved
/// (the only order a datagram transport carries); ordering *between*
/// destinations has no protocol meaning. Sends from addresses the node
/// does not own are dropped (a mis-addressed instruction, not a
/// transport error).
async fn flush_instr_batches(
    egress: &HashMap<OverlayAddr, PortSender>,
    sends: Vec<SendInstr>,
    batches: &mut Vec<((OverlayAddr, OverlayAddr), Vec<Bytes>)>,
) {
    // A flush touches a handful of neighbours; linear scan over the
    // bucket list beats a map allocation at these sizes.
    for instr in sends {
        let key = (instr.from, instr.to);
        let frames = match batches.iter_mut().find(|(k, _)| *k == key) {
            Some((_, frames)) => frames,
            None => {
                batches.push((key, Vec::new()));
                &mut batches.last_mut().expect("just pushed").1
            }
        };
        frames.push(instr.packet.encode());
    }
    for ((from, to), frames) in batches.iter_mut() {
        if let Some(port) = egress.get(from) {
            port.send_many(*to, frames).await;
        } else {
            frames.clear();
        }
    }
    // Keep the bucket allocations (frame Vecs are drained in place).
    batches.retain(|(_, frames)| frames.capacity() > 0);
}

/// Spawn an onion relay daemon on `port`.
pub fn spawn_onion_relay(
    mut relay: OnionRelay,
    mut port: NodePort,
    events: mpsc::UnboundedSender<OverlayEvent>,
    epoch: Instant,
) -> tokio::task::JoinHandle<()> {
    tokio::spawn(async move {
        let addr = port.addr;
        while let Some((_, bytes)) = port.rx.recv().await {
            let Ok(packet) = OnionPacket::from_bytes(bytes) else {
                continue;
            };
            let out = relay.handle_packet(&packet);
            let at_ms = epoch.elapsed().as_millis() as u64;
            if let Some(is_exit) = out.established {
                let _ = events.send(OverlayEvent::Established {
                    addr,
                    // Onion circuits have no slicing flow id.
                    flow: FlowId(0),
                    receiver: is_exit,
                    at_ms,
                });
            }
            for (seq, plaintext) in &out.delivered {
                let _ = events.send(OverlayEvent::MessageReceived {
                    addr,
                    seq: *seq,
                    len: plaintext.len(),
                    at_ms,
                });
            }
            for send in out.sends {
                port.tx.send(send.to, send.packet.encode()).await;
            }
        }
    })
}

/// Milliseconds since the epoch as a protocol [`Tick`].
pub fn now_tick(epoch: Instant) -> Tick {
    Tick(epoch.elapsed().as_millis() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EmulatedNet;
    use slicing_sim::wan::NetProfile;

    /// Wait (bounded) until `cond` observes the shared stats; returns
    /// the last snapshot (see [`crate::testutil`]).
    async fn wait_stats(
        stats: &Arc<RelayStatsAtomic>,
        cond: impl Fn(&slicing_core::RelayStats) -> bool,
    ) -> slicing_core::RelayStats {
        crate::testutil::wait_until(|| stats.snapshot(), cond).await
    }

    #[tokio::test]
    async fn relay_daemon_drops_garbage() {
        let net = EmulatedNet::new(NetProfile::lan(), 1);
        let relay_port = net.attach(OverlayAddr(10));
        let sender = net.attach(OverlayAddr(11));
        let (events_tx, _events_rx) = mpsc::unbounded_channel();
        let relay = RelayNode::new(OverlayAddr(10), 7);
        let stats = relay.shared_stats();
        let handle = spawn_relay(relay, relay_port, events_tx, Instant::now());
        sender
            .tx
            .send(OverlayAddr(10), bytes::Bytes::from(&b"not a packet"[..]))
            .await;
        let seen = wait_stats(&stats, |s| s.garbage >= 1).await;
        assert_eq!(seen.garbage, 1, "daemon must count the unparseable frame");
        assert_eq!(seen.packets_in, 0, "garbage never reaches the engine");
        handle.abort();
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn sharded_daemon_drops_garbage_at_ingress() {
        let net = EmulatedNet::new(NetProfile::lan(), 2);
        let relay_port = net.attach(OverlayAddr(10));
        let sender = net.attach(OverlayAddr(11));
        let (events_tx, _events_rx) = mpsc::unbounded_channel();
        let relay = ShardedRelay::new(OverlayAddr(10), 7, 4);
        let stats = relay.shared_stats();
        let handle = spawn_sharded_relay(relay, relay_port, events_tx, Instant::now());
        // Fails the ingress peek (bad magic): counted by the dispatcher.
        sender
            .tx
            .send(OverlayAddr(10), bytes::Bytes::from(&b"not a packet"[..]))
            .await;
        // Passes the peek but fails full validation (truncated body):
        // counted by the owning shard.
        let valid = slicing_wire::Packet::new(
            slicing_wire::PacketHeader {
                kind: slicing_wire::PacketKind::Data,
                flow_id: slicing_wire::FlowId(99),
                seq: 0,
                d: 2,
                slot_count: 1,
                slot_len: 10,
            },
            vec![vec![0u8; 10]],
        )
        .encode();
        sender
            .tx
            .send(OverlayAddr(10), valid.slice(..valid.len() - 1))
            .await;
        let seen = wait_stats(&stats, |s| s.garbage >= 2).await;
        assert_eq!(seen.garbage, 2, "both rejects must be counted");
        handle.abort();
    }
}
