//! Shared fixture for the process-level suites: spawn a fleet of
//! `slicing-node` relay children, poll their scraped metrics with the
//! overlay's bounded-retry helper (no blind sleeps), and sum counters
//! across the fleet.

#![allow(dead_code)]

use slicing_core::{RelayConfig, SessionConfig};
use slicing_node::config::{NodeConfig, Roles, TransportKind};
use slicing_node::orchestrator::{free_tcp_port, free_udp_port, Fleet};
#[allow(unused_imports)]
pub use slicing_overlay::testutil::{
    wait_until, wait_until_blocking, wait_until_for, DEFAULT_INTERVAL, DEFAULT_TRIES,
};
use std::path::PathBuf;
use std::time::Duration;

/// The daemon binary under test (built by cargo for this crate).
pub fn node_bin() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_slicing-node"))
}

/// Relay tuning for process tests: fast flushes and aggressive
/// liveness so a SIGKILL is detected within a second.
pub fn process_relay_config() -> RelayConfig {
    RelayConfig {
        setup_flush_ms: 200,
        data_flush_ms: 100,
        keepalive_ms: 200,
        liveness_timeout_ms: 800,
        ..RelayConfig::default()
    }
}

/// Session tuning matched to [`process_relay_config`]: retransmits
/// clear the relays' gather quarantine (`2 × data_flush_ms`).
pub fn process_session_config() -> SessionConfig {
    SessionConfig {
        retransmit_ms: 600,
        ack_interval_ms: 120,
        ..SessionConfig::default()
    }
}

/// Spawn `count` relay-only `slicing-node` processes on free ports and
/// wait for every metrics endpoint to come up. Returns the fleet plus
/// each node's data port (fleet index == vector index).
pub fn spawn_relay_fleet(
    count: usize,
    transport: TransportKind,
    relay: RelayConfig,
    session: SessionConfig,
) -> (Fleet, Vec<u16>) {
    let dir = std::env::temp_dir().join(format!(
        "slicing-fleet-{}-{:p}",
        std::process::id(),
        &count as *const _
    ));
    let mut fleet = Fleet::new(dir, node_bin()).expect("create fleet dir");
    let mut data_ports = Vec::with_capacity(count);
    for i in 0..count {
        let data_port = free_udp_port();
        let cfg = NodeConfig {
            listen: data_port,
            metrics_listen: free_tcp_port(),
            roles: Roles {
                relay: true,
                dest: false,
                session: false,
            },
            seed: 0xF1EE7 + i as u64,
            transport,
            relay,
            session,
            ..NodeConfig::default()
        };
        let idx = fleet.add(&format!("relay-{i}"), cfg).expect("write config");
        fleet.spawn(idx).expect("spawn relay process");
        data_ports.push(data_port);
    }
    for idx in 0..count {
        assert!(
            fleet.wait_healthy(idx, Duration::from_secs(10)),
            "relay process {idx} never became healthy (log: {})",
            fleet.log_path(idx).display()
        );
    }
    (fleet, data_ports)
}

/// Sum one scraped series across every given fleet node.
pub fn fleet_counter_sum(fleet: &Fleet, indices: impl Iterator<Item = usize>, series: &str) -> f64 {
    indices
        .filter_map(|idx| fleet.scrape(idx).ok())
        .filter_map(|m| m.get(series).copied())
        .sum()
}
