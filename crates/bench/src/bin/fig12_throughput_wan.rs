//! Fig. 12: per-flow throughput vs path length on the wide-area network
//! (PlanetLab substitute) — information slicing (d = 2) vs onion routing.

use std::time::Duration;

use slicing_bench::{banner, RunOpts, Table};
use slicing_core::{DestPlacement, GraphParams};
use slicing_overlay::experiment::{
    run_onion_transfer, run_slicing_transfer, Transport,
};
use slicing_overlay::TransferConfig;
use slicing_sim::NetProfile;

fn main() {
    let opts = RunOpts::from_args();
    let messages = opts.trials(40);
    banner(
        "Figure 12 — throughput vs path length, WAN (PlanetLab profile)",
        "d=2, 1500B packets, L=2..5, world-spanning RTTs + loaded hosts",
        "throughput ~Mb/s scale; slicing beats onion at every L",
    );
    let rt = tokio::runtime::Builder::new_multi_thread()
        .worker_threads(4)
        .enable_all()
        .build()
        .expect("tokio runtime");
    let mut table = Table::new(&["L", "slicing_mbps", "onion_mbps"]);
    for l in 2..=5usize {
        let cfg = TransferConfig {
            params: GraphParams::new(l, 2).with_dest_placement(DestPlacement::LastStage),
            transport: Transport::Emulated(NetProfile::planetlab()),
            messages,
            payload_len: 1400,
            seed: opts.seed + l as u64,
            timeout: Duration::from_secs(if opts.quick { 25 } else { 180 }),
            relay_shards: 1,
            relay_config: Default::default(),
        };
        let slicing = rt.block_on(run_slicing_transfer(&cfg));
        let onion = rt.block_on(run_onion_transfer(&cfg));
        println!(
            "row: L={l} slicing={:.4} Mb/s ({} msgs) onion={:.4} Mb/s ({} msgs)",
            slicing.throughput_mbps,
            slicing.messages_delivered,
            onion.throughput_mbps,
            onion.messages_delivered
        );
        table.row(&[l as f64, slicing.throughput_mbps, onion.throughput_mbps]);
    }
    table.print();
}
