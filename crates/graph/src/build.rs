//! Graph construction: Algorithm 1 with balanced (Latin-square) slice
//! distribution, per-node info assembly, and path bookkeeping.

use std::collections::HashSet;

use rand::seq::SliceRandom;
use rand::Rng;

use slicing_codec::{coder, HopTransform, InfoSlice};
use slicing_crypto::SymmetricKey;
use slicing_wire::FlowId;

use crate::addr::OverlayAddr;
use crate::info::NodeInfo;
use crate::params::{DestPlacement, GraphParams};

/// A node's position in the graph: stage (0 = source stage) and index
/// within the stage.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct NodePosition {
    /// Stage, `0..=L`.
    pub stage: usize,
    /// Index within the stage, `0..d′`.
    pub index: usize,
}

/// Construction failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// Parameter validation failed.
    BadParams(String),
    /// Not enough distinct candidate relays for `L × d′ − 1` slots.
    NotEnoughRelays {
        /// Candidates supplied (excluding destination).
        have: usize,
        /// Required.
        need: usize,
    },
    /// Wrong number of pseudo-sources (must equal `d′`).
    WrongPseudoSourceCount {
        /// Supplied.
        have: usize,
        /// Required (`d′`).
        need: usize,
    },
    /// An address appears more than once across candidates,
    /// pseudo-sources and destination.
    DuplicateAddress(OverlayAddr),
    /// A node that cannot be excluded from the graph (the destination or
    /// a pseudo-source) was reported dead.
    UnrepairableNode(OverlayAddr),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::BadParams(msg) => write!(f, "bad parameters: {msg}"),
            GraphError::NotEnoughRelays { have, need } => {
                write!(f, "need {need} candidate relays, have {have}")
            }
            GraphError::WrongPseudoSourceCount { have, need } => {
                write!(f, "need {need} pseudo-sources, have {have}")
            }
            GraphError::DuplicateAddress(a) => write!(f, "duplicate address {a:?}"),
            GraphError::UnrepairableNode(a) => {
                write!(f, "node {a:?} cannot be replaced (destination or pseudo-source)")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// Slice-position bookkeeping: where each slice of each target node sits
/// at each upstream stage.
///
/// `holder(l, x, k, m)` = index within stage `m` of the node carrying
/// slice `k` of the target at `(stage l, index x)`, for `0 ≤ m < l`.
///
/// The construction is `(κ_{l,x}(k) + x·m + γ_{l,m}) mod d′` with a random
/// permutation `κ` per target and random offsets `γ` per (target-stage,
/// path-stage). Per boundary `m → m+1` the transition of target `x`'s
/// slices is the shift `i ↦ i + x + δ`, so across the `d′` targets of a
/// stage the transitions tile the complete bipartite stage graph exactly
/// once — every edge carries exactly one slice per downstream stage
/// (matching Fig. 4), and paths of one target's slices are vertex-disjoint
/// (distinct shifts of a permutation).
#[derive(Clone, Debug)]
pub struct Holders {
    d_prime: usize,
    /// `kappa[l][x]` — slice-index permutation per target (stage `l ≥ 1`).
    kappa: Vec<Vec<Vec<usize>>>,
    /// `gamma[l][m]` — offset per (target stage, path stage).
    gamma: Vec<Vec<usize>>,
}

impl Holders {
    fn generate<R: Rng + ?Sized>(length: usize, d_prime: usize, rng: &mut R) -> Self {
        let mut kappa = vec![Vec::new()];
        let mut gamma = vec![Vec::new()];
        for l in 1..=length {
            let mut per_target = Vec::with_capacity(d_prime);
            for _ in 0..d_prime {
                let mut perm: Vec<usize> = (0..d_prime).collect();
                perm.shuffle(rng);
                per_target.push(perm);
            }
            kappa.push(per_target);
            gamma.push((0..l).map(|_| rng.gen_range(0..d_prime)).collect());
        }
        Holders {
            d_prime,
            kappa,
            gamma,
        }
    }

    /// Index within stage `m` holding slice `k` of target `(l, x)`.
    ///
    /// # Panics
    /// Panics unless `1 ≤ l`, `m < l`, `x < d′`, `k < d′`.
    pub fn holder(&self, l: usize, x: usize, k: usize, m: usize) -> usize {
        assert!(l >= 1 && m < l && x < self.d_prime && k < self.d_prime);
        (self.kappa[l][x][k] + x * m + self.gamma[l][m]) % self.d_prime
    }

    /// Full path of slice `k` of target `(l, x)`: holder indices at stages
    /// `0..l` (position 0 is the pseudo-source index).
    pub fn path(&self, l: usize, x: usize, k: usize) -> Vec<usize> {
        (0..l).map(|m| self.holder(l, x, k, m)).collect()
    }
}

/// A fully constructed forwarding graph, ready to emit setup packets.
#[derive(Clone, Debug)]
pub struct BuiltGraph {
    /// The parameters it was built with.
    pub params: GraphParams,
    /// Node addresses: `stages[0]` = pseudo-sources, `stages[1..=L]` = relays.
    pub stages: Vec<Vec<OverlayAddr>>,
    /// The destination's position (stage ≥ 1).
    pub dest: NodePosition,
    /// The destination's secret key (what the source encrypts data with).
    pub dest_key: SymmetricKey,
    /// Forward flow-ids per relay: `flow_ids[stage][index]` (stage ≥ 1).
    pub flow_ids: Vec<Vec<FlowId>>,
    /// Reverse flow-ids per node, including stage 0 (where the source
    /// listens for reverse-path data).
    pub reverse_flow_ids: Vec<Vec<FlowId>>,
    /// Per-relay info blobs: `infos[stage][index]` (stage ≥ 1).
    pub infos: Vec<Vec<NodeInfo>>,
    /// Per-relay hop transforms (duplicated from infos for source-side
    /// wrapping).
    pub transforms: Vec<Vec<HopTransform>>,
    /// Coded info slices per relay: `info_slices[stage][index][k]`.
    pub info_slices: Vec<Vec<Vec<InfoSlice>>>,
    /// Slice-position bookkeeping.
    pub holders: Holders,
    /// Codec block length of the info slices.
    pub info_block_len: usize,
    /// Per-boundary offsets `h_m` for the static data-map
    /// (`slice (i + j + h_m) mod d′` crosses edge `(i, j)`).
    pub data_offsets: Vec<usize>,
}

/// Build a forwarding graph.
///
/// * `pseudo_sources` — exactly `d′` addresses the source controls (§3(c)).
/// * `candidates` — the pool of overlay relays to draw from (the paper's
///   node list, §7.1); must not contain `dest` or any pseudo-source.
/// * `dest` — the destination's address; placed per
///   [`GraphParams::dest_placement`].
pub fn build<R: Rng + ?Sized>(
    params: GraphParams,
    pseudo_sources: &[OverlayAddr],
    candidates: &[OverlayAddr],
    dest: OverlayAddr,
    rng: &mut R,
) -> Result<BuiltGraph, GraphError> {
    params.validate().map_err(GraphError::BadParams)?;
    let (l_len, d, dp) = (params.length, params.split, params.paths);

    if pseudo_sources.len() != dp {
        return Err(GraphError::WrongPseudoSourceCount {
            have: pseudo_sources.len(),
            need: dp,
        });
    }
    let need = l_len * dp - 1;
    if candidates.len() < need {
        return Err(GraphError::NotEnoughRelays {
            have: candidates.len(),
            need,
        });
    }
    // Address uniqueness across the whole graph.
    let mut seen = HashSet::new();
    for &a in pseudo_sources.iter().chain(candidates.iter()).chain([&dest]) {
        if !seen.insert(a) {
            return Err(GraphError::DuplicateAddress(a));
        }
    }

    // Pick L·d′ − 1 distinct relays, then splice the destination in at its
    // placement (§4.2.1: "randomly assigned to one of the stages").
    let mut pool: Vec<OverlayAddr> = candidates.to_vec();
    pool.shuffle(rng);
    pool.truncate(need);
    let dest_stage = match params.dest_placement {
        DestPlacement::Random => rng.gen_range(1..=l_len),
        DestPlacement::LastStage => l_len,
        DestPlacement::Stage(s) => s,
    };
    let dest_index = rng.gen_range(0..dp);
    let mut stages: Vec<Vec<OverlayAddr>> = vec![pseudo_sources.to_vec()];
    let mut pool_iter = pool.into_iter();
    for stage in 1..=l_len {
        let mut nodes = Vec::with_capacity(dp);
        for idx in 0..dp {
            if stage == dest_stage && idx == dest_index {
                nodes.push(dest);
            } else {
                nodes.push(pool_iter.next().expect("pool sized above"));
            }
        }
        stages.push(nodes);
    }

    // Flow ids (unique across the graph), reverse flow ids, keys,
    // transforms.
    let mut used_flows = HashSet::new();
    let mut fresh_flow = |rng: &mut R| loop {
        let f = FlowId::random(rng);
        if f.0 != 0 && used_flows.insert(f) {
            return f;
        }
    };
    let mut flow_ids: Vec<Vec<FlowId>> = vec![vec![]];
    let mut reverse_flow_ids: Vec<Vec<FlowId>> =
        vec![(0..dp).map(|_| fresh_flow(rng)).collect()];
    let mut keys: Vec<Vec<SymmetricKey>> = vec![vec![]];
    let mut transforms: Vec<Vec<HopTransform>> = vec![vec![]];
    for _stage in 1..=l_len {
        flow_ids.push((0..dp).map(|_| fresh_flow(rng)).collect());
        reverse_flow_ids.push((0..dp).map(|_| fresh_flow(rng)).collect());
        keys.push((0..dp).map(|_| SymmetricKey::random(rng)).collect());
        transforms.push((0..dp).map(|_| HopTransform::random(rng)).collect());
    }

    let holders = Holders::generate(l_len, dp, rng);
    let data_offsets: Vec<usize> = (0..l_len).map(|_| rng.gen_range(0..dp)).collect();

    let infos = assemble_infos(
        &params,
        &stages,
        &flow_ids,
        &reverse_flow_ids,
        &keys,
        &transforms,
        &holders,
        &data_offsets,
        dest_stage,
        dest_index,
    );
    let (info_slices, info_block_len) = slice_infos(&infos, d, dp, rng);

    Ok(BuiltGraph {
        params,
        dest: NodePosition {
            stage: dest_stage,
            index: dest_index,
        },
        dest_key: keys[dest_stage][dest_index],
        stages,
        flow_ids,
        reverse_flow_ids,
        infos,
        transforms,
        info_slices,
        holders,
        info_block_len,
        data_offsets,
    })
}

/// Assemble per-node infos for a graph whose node placement, keys, flow
/// ids, transforms and slice-position bookkeeping are already fixed.
/// Shared by initial construction and by [`rebuild_excluding`] (which
/// changes only the entries at replaced positions and recomputes the
/// rest from the same inputs).
#[allow(clippy::too_many_arguments)] // internal assembly step over one graph's parts
fn assemble_infos(
    params: &GraphParams,
    stages: &[Vec<OverlayAddr>],
    flow_ids: &[Vec<FlowId>],
    reverse_flow_ids: &[Vec<FlowId>],
    keys: &[Vec<SymmetricKey>],
    transforms: &[Vec<HopTransform>],
    holders: &Holders,
    data_offsets: &[usize],
    dest_stage: usize,
    dest_index: usize,
) -> Vec<Vec<NodeInfo>> {
    let (l_len, d, dp) = (params.length, params.split, params.paths);
    let mut infos: Vec<Vec<NodeInfo>> = vec![vec![]];
    for stage in 1..=l_len {
        let mut stage_infos = Vec::with_capacity(dp);
        for v in 0..dp {
            let has_children = stage < l_len;
            // Parents: stage-1 relays' parents are the pseudo-sources.
            let parents: Vec<(OverlayAddr, FlowId)> = (0..dp)
                .map(|i| (stages[stage - 1][i], reverse_flow_ids[stage - 1][i]))
                .collect();
            let children: Vec<(OverlayAddr, FlowId)> = if has_children {
                (0..dp)
                    .map(|j| (stages[stage + 1][j], flow_ids[stage + 1][j]))
                    .collect()
            } else {
                vec![]
            };
            // Static data-map (Map mode): to child j, forward the data
            // slice received from parent (j + h_stage − h_{stage−1}).
            let data_map: Vec<u8> = if has_children {
                (0..dp)
                    .map(|j| {
                        ((j + data_offsets[stage] + dp - data_offsets[stage - 1]) % dp) as u8
                    })
                    .collect()
            } else {
                vec![]
            };
            // Slice-map: out slot s of the packet to child j.
            let out_real = if has_children { l_len - stage } else { 0 };
            let slice_map: Vec<Vec<Option<u8>>> = if has_children {
                (0..dp)
                    .map(|j| {
                        (0..l_len)
                            .map(|s| {
                                if s >= out_real {
                                    return None;
                                }
                                if s == 0 {
                                    // Slot 0: child j's own slice — the
                                    // one whose path puts it at me (v) at
                                    // this stage.
                                    let k = (0..dp)
                                        .find(|&k| holders.holder(stage + 1, j, k, stage) == v)
                                        .expect("own-slice permutation");
                                    let parent = holders.holder(stage + 1, j, k, stage - 1);
                                    return Some(parent as u8);
                                }
                                // Slot s ≥ 1 carries the slice of the
                                // unique target at stage (stage + 1 + s)
                                // passing through (me=v at `stage`, child
                                // j at `stage+1`).
                                let target_stage = stage + 1 + s;
                                let (x, k) = find_transit(
                                    holders, target_stage, stage, v, j, dp,
                                );
                                let parent = holders.holder(target_stage, x, k, stage - 1);
                                Some(parent as u8)
                            })
                            .collect()
                    })
                    .collect()
            } else {
                vec![]
            };
            stage_infos.push(NodeInfo {
                receiver: stage == dest_stage && v == dest_index,
                recode: matches!(params.data_mode, crate::params::DataMode::Recode),
                secret_key: keys[stage][v],
                reverse_flow_id: reverse_flow_ids[stage][v],
                d: d as u8,
                d_prime: dp as u8,
                slots: l_len as u8,
                out_real_slots: out_real as u8,
                transform: transforms[stage][v],
                parents,
                children,
                data_map,
                slice_map,
            });
        }
        infos.push(stage_infos);
    }
    infos
}

/// Code every info blob into `d′` slices of `d` blocks each.
fn slice_infos<R: Rng + ?Sized>(
    infos: &[Vec<NodeInfo>],
    d: usize,
    dp: usize,
    rng: &mut R,
) -> (Vec<Vec<Vec<InfoSlice>>>, usize) {
    let mut info_slices: Vec<Vec<Vec<InfoSlice>>> = vec![vec![]];
    let mut info_block_len = 0;
    for stage_infos in infos.iter().skip(1) {
        let mut per_node = Vec::with_capacity(dp);
        for info in stage_infos {
            let bytes = info.encode();
            let coded = coder::encode(&bytes, d, dp, rng);
            if info_block_len == 0 {
                info_block_len = coded.block_len;
            }
            assert_eq!(
                coded.block_len, info_block_len,
                "fixed-size info encoding violated"
            );
            per_node.push(coded.slices);
        }
        info_slices.push(per_node);
    }
    (info_slices, info_block_len)
}

/// Re-run Algorithm 1 after node failures, reusing everything that
/// survived: surviving nodes keep their positions, addresses, secret
/// keys, transforms and flow ids, and the slice-position bookkeeping
/// ([`Holders`]) and data offsets are carried over unchanged. Only the
/// dead positions are re-keyed — each gets a fresh address drawn from
/// `replacements`, a fresh key, transform and fresh flow ids — so the
/// repair touches exactly the dead nodes and their direct neighbours
/// (whose parent/child lists name the replacement).
///
/// Returns the repaired graph plus the positions whose [`NodeInfo`]
/// changed (the replacement itself and the dead node's neighbours);
/// everything else is byte-identical and needs no re-establishment.
///
/// `dead` addresses not present in the graph are ignored. Reporting the
/// destination or a pseudo-source dead is an error
/// ([`GraphError::UnrepairableNode`]) — the session cannot outlive
/// either.
pub fn rebuild_excluding<R: Rng + ?Sized>(
    graph: &BuiltGraph,
    dead: &HashSet<OverlayAddr>,
    replacements: &[OverlayAddr],
    rng: &mut R,
) -> Result<(BuiltGraph, Vec<NodePosition>), GraphError> {
    let params = graph.params;
    let (l_len, d, dp) = (params.length, params.split, params.paths);

    if let Some(&a) = dead.iter().find(|a| graph.stages[0].contains(a)) {
        return Err(GraphError::UnrepairableNode(a));
    }
    if dead.contains(&graph.dest_addr()) {
        return Err(GraphError::UnrepairableNode(graph.dest_addr()));
    }

    // Locate the dead positions (dead addresses not in the graph are
    // someone else's problem).
    let mut dead_positions: Vec<NodePosition> = Vec::new();
    for stage in 1..=l_len {
        for v in 0..dp {
            if dead.contains(&graph.stages[stage][v]) {
                dead_positions.push(NodePosition { stage, index: v });
            }
        }
    }

    // Fresh addresses: replacements minus anything already placed, the
    // dead themselves, and duplicates within the caller's list (a
    // repeated spare handed to two dead positions would place one
    // address twice and corrupt both paths).
    let placed: HashSet<OverlayAddr> = graph
        .stages
        .iter()
        .flatten()
        .copied()
        .collect();
    let mut seen_fresh = HashSet::new();
    let fresh: Vec<OverlayAddr> = replacements
        .iter()
        .copied()
        .filter(|&a| !placed.contains(&a) && !dead.contains(&a) && seen_fresh.insert(a))
        .collect();
    if fresh.len() < dead_positions.len() {
        return Err(GraphError::NotEnoughRelays {
            have: fresh.len(),
            need: dead_positions.len(),
        });
    }
    let mut fresh_addrs = fresh.into_iter();
    // Fresh flow ids must not collide with any id the graph still uses.
    let mut used_flows: HashSet<FlowId> = graph
        .flow_ids
        .iter()
        .chain(graph.reverse_flow_ids.iter())
        .flatten()
        .copied()
        .collect();
    let mut fresh_flow = |rng: &mut R| loop {
        let f = FlowId::random(rng);
        if f.0 != 0 && used_flows.insert(f) {
            return f;
        }
    };

    // Carry everything over; re-key only the dead positions.
    let mut stages = graph.stages.clone();
    let mut flow_ids = graph.flow_ids.clone();
    let mut reverse_flow_ids = graph.reverse_flow_ids.clone();
    let mut transforms = graph.transforms.clone();
    // Keys live inside the infos (the graph does not store them
    // separately); recover the surviving ones from there.
    let mut keys: Vec<Vec<SymmetricKey>> = vec![vec![]];
    for stage_infos in graph.infos.iter().skip(1) {
        keys.push(stage_infos.iter().map(|i| i.secret_key).collect());
    }
    for &pos in &dead_positions {
        let addr = fresh_addrs.next().expect("count checked above");
        stages[pos.stage][pos.index] = addr;
        flow_ids[pos.stage][pos.index] = fresh_flow(rng);
        reverse_flow_ids[pos.stage][pos.index] = fresh_flow(rng);
        keys[pos.stage][pos.index] = SymmetricKey::random(rng);
        transforms[pos.stage][pos.index] = HopTransform::random(rng);
    }

    let infos = assemble_infos(
        &params,
        &stages,
        &flow_ids,
        &reverse_flow_ids,
        &keys,
        &transforms,
        &graph.holders,
        &graph.data_offsets,
        graph.dest.stage,
        graph.dest.index,
    );
    let (info_slices, info_block_len) = slice_infos(&infos, d, dp, rng);

    // Affected = every position whose info changed (replacements plus
    // the dead nodes' direct parents and children).
    let mut affected = Vec::new();
    for (stage, stage_infos) in infos.iter().enumerate().skip(1) {
        for (v, info) in stage_infos.iter().enumerate() {
            if *info != graph.infos[stage][v] {
                affected.push(NodePosition { stage, index: v });
            }
        }
    }

    Ok((
        BuiltGraph {
            params,
            dest: graph.dest,
            dest_key: graph.dest_key,
            stages,
            flow_ids,
            reverse_flow_ids,
            infos,
            transforms,
            info_slices,
            holders: graph.holders.clone(),
            info_block_len,
            data_offsets: graph.data_offsets.clone(),
        },
        affected,
    ))
}

/// Find the unique `(target index, slice index)` of stage `target_stage`
/// whose slice transits `(node v at stage m) → (node j at stage m+1)`.
///
/// # Panics
/// Panics if the Latin-square balance invariant is violated (no match or
/// multiple matches) — this is a construction bug, not a runtime input.
fn find_transit(
    holders: &Holders,
    target_stage: usize,
    m: usize,
    v: usize,
    j: usize,
    dp: usize,
) -> (usize, usize) {
    let mut found = None;
    for x in 0..dp {
        for k in 0..dp {
            if holders.holder(target_stage, x, k, m) == v
                && holders.holder(target_stage, x, k, m + 1) == j
            {
                assert!(
                    found.is_none(),
                    "balance violated: multiple slices on one edge"
                );
                found = Some((x, k));
            }
        }
    }
    found.expect("balance violated: no slice for edge")
}

impl BuiltGraph {
    /// Address of a node by position.
    pub fn addr(&self, pos: NodePosition) -> OverlayAddr {
        self.stages[pos.stage][pos.index]
    }

    /// The destination's address.
    pub fn dest_addr(&self) -> OverlayAddr {
        self.addr(self.dest)
    }

    /// Forward flow-id of a relay (stage ≥ 1).
    pub fn flow_id(&self, pos: NodePosition) -> FlowId {
        self.flow_ids[pos.stage][pos.index]
    }

    /// All relay addresses (stages 1..=L) in stage order.
    pub fn relay_addrs(&self) -> impl Iterator<Item = OverlayAddr> + '_ {
        self.stages[1..].iter().flatten().copied()
    }

    /// Validate structural invariants (used by tests and debug builds):
    /// vertex-disjoint slice paths, Latin balance, unique flow ids.
    pub fn validate(&self) -> Result<(), String> {
        let dp = self.params.paths;
        let l_len = self.params.length;
        // Vertex-disjointness: for each target, at each stage m the d'
        // slices occupy d' distinct nodes.
        for l in 1..=l_len {
            for x in 0..dp {
                for m in 0..l {
                    let mut seen = HashSet::new();
                    for k in 0..dp {
                        if !seen.insert(self.holders.holder(l, x, k, m)) {
                            return Err(format!(
                                "paths not vertex-disjoint at l={l} x={x} m={m}"
                            ));
                        }
                    }
                }
            }
        }
        // Latin balance: each edge (i, j) at boundary m→m+1 carries exactly
        // one slice per downstream target stage.
        for m in 0..l_len.saturating_sub(1) {
            for target in m + 2..=l_len {
                let mut count = vec![vec![0usize; dp]; dp];
                for x in 0..dp {
                    for k in 0..dp {
                        let i = self.holders.holder(target, x, k, m);
                        let j = self.holders.holder(target, x, k, m + 1);
                        count[i][j] += 1;
                    }
                }
                for (i, row) in count.iter().enumerate() {
                    for (j, &c) in row.iter().enumerate() {
                        if c != 1 {
                            return Err(format!(
                                "edge ({i},{j}) at boundary {m} carries {c} slices of stage {target}"
                            ));
                        }
                    }
                }
            }
        }
        // Unique flow ids.
        let mut flows = HashSet::new();
        for stage in self.flow_ids.iter().chain(self.reverse_flow_ids.iter()) {
            for f in stage {
                if !flows.insert(*f) {
                    return Err(format!("duplicate flow id {f:?}"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn addrs(base: u64, n: usize) -> Vec<OverlayAddr> {
        (0..n as u64).map(|i| OverlayAddr(base + i)).collect()
    }

    fn build_graph(l: usize, d: usize, dp: usize, seed: u64) -> BuiltGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let params = GraphParams::new(l, d).with_paths(dp);
        let pseudo = addrs(10_000, dp);
        let candidates = addrs(20_000, l * dp + 10);
        build(params, &pseudo, &candidates, OverlayAddr(1), &mut rng).unwrap()
    }

    #[test]
    fn builds_and_validates() {
        for (l, d, dp) in [(3, 2, 2), (5, 2, 3), (8, 3, 3), (4, 2, 4), (1, 2, 2)] {
            let g = build_graph(l, d, dp, 42 + l as u64);
            g.validate().unwrap();
            assert_eq!(g.stages.len(), l + 1);
            assert!(g.stages.iter().all(|s| s.len() == dp));
        }
    }

    #[test]
    fn destination_present_once() {
        let g = build_graph(5, 2, 3, 7);
        let count = g
            .relay_addrs()
            .filter(|&a| a == OverlayAddr(1))
            .count();
        assert_eq!(count, 1);
        assert_eq!(g.dest_addr(), OverlayAddr(1));
        assert!(g.dest.stage >= 1 && g.dest.stage <= 5);
        // Receiver flag set exactly at the destination.
        for stage in 1..=5 {
            for v in 0..3 {
                let is_dest = stage == g.dest.stage && v == g.dest.index;
                assert_eq!(g.infos[stage][v].receiver, is_dest);
            }
        }
    }

    #[test]
    fn dest_placement_respected() {
        let mut rng = StdRng::seed_from_u64(3);
        let params = GraphParams::new(6, 2)
            .with_dest_placement(DestPlacement::LastStage);
        let g = build(
            params,
            &addrs(10_000, 2),
            &addrs(20_000, 20),
            OverlayAddr(1),
            &mut rng,
        )
        .unwrap();
        assert_eq!(g.dest.stage, 6);

        let params = GraphParams::new(6, 2)
            .with_dest_placement(DestPlacement::Stage(2));
        let g = build(
            params,
            &addrs(10_000, 2),
            &addrs(20_000, 20),
            OverlayAddr(1),
            &mut rng,
        )
        .unwrap();
        assert_eq!(g.dest.stage, 2);
    }

    #[test]
    fn errors_reported() {
        let mut rng = StdRng::seed_from_u64(4);
        let params = GraphParams::new(5, 2);
        // Too few candidates.
        let err = build(
            params,
            &addrs(10_000, 2),
            &addrs(20_000, 3),
            OverlayAddr(1),
            &mut rng,
        )
        .unwrap_err();
        assert!(matches!(err, GraphError::NotEnoughRelays { .. }));
        // Wrong pseudo-source count.
        let err = build(
            params,
            &addrs(10_000, 1),
            &addrs(20_000, 30),
            OverlayAddr(1),
            &mut rng,
        )
        .unwrap_err();
        assert!(matches!(err, GraphError::WrongPseudoSourceCount { .. }));
        // Duplicate address.
        let err = build(
            params,
            &addrs(10_000, 2),
            &addrs(10_000, 30),
            OverlayAddr(1),
            &mut rng,
        )
        .unwrap_err();
        assert!(matches!(err, GraphError::DuplicateAddress(_)));
    }

    #[test]
    fn slice_maps_reference_valid_parents() {
        let g = build_graph(6, 2, 3, 9);
        for stage in 1..=6usize {
            for v in 0..3 {
                let info = &g.infos[stage][v];
                let out_real = info.out_real_slots as usize;
                if stage == 6 {
                    assert_eq!(out_real, 0);
                    assert!(info.children.is_empty());
                    continue;
                }
                assert_eq!(out_real, 6 - stage);
                for row in &info.slice_map {
                    for (s, entry) in row.iter().enumerate() {
                        if s < out_real {
                            let p = entry.expect("real slot needs a parent");
                            assert!((p as usize) < 3);
                        } else {
                            assert!(entry.is_none(), "padding slot must be rand");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn data_map_is_a_permutation_per_child_view() {
        // Each child must receive all d' distinct data slices: across its
        // parents v, the slice indices (v + j + h) they forward to child j
        // must be distinct.
        let g = build_graph(5, 2, 3, 11);
        let dp = 3usize;
        for stage in 1..5usize {
            for j in 0..dp {
                let mut seen = HashSet::new();
                for v in 0..dp {
                    let parent_idx = g.infos[stage][v].data_map[j] as usize;
                    // Slice that v received from parent_idx:
                    let slice_idx = (parent_idx + v + g.data_offsets[stage - 1]) % dp;
                    assert!(seen.insert(slice_idx), "child {j} gets duplicate slice");
                }
            }
        }
    }

    #[test]
    fn info_slices_decode_back() {
        use slicing_codec::decode;
        let g = build_graph(4, 2, 3, 13);
        for stage in 1..=4usize {
            for v in 0..3 {
                let decoded = decode(&g.info_slices[stage][v], 2).unwrap();
                let info = NodeInfo::decode(&decoded).unwrap();
                assert_eq!(&info, &g.infos[stage][v]);
            }
        }
    }

    #[test]
    fn rebuild_replaces_only_the_dead_position() {
        let g = build_graph(5, 2, 3, 23);
        let victim = g.stages[2][1];
        let dead: HashSet<OverlayAddr> = [victim].into();
        let spares = addrs(90_000, 4);
        let mut rng = StdRng::seed_from_u64(99);
        let (g2, affected) = rebuild_excluding(&g, &dead, &spares, &mut rng).unwrap();
        g2.validate().unwrap();
        // The victim is gone; its position holds a spare.
        assert!(!g2.relay_addrs().any(|a| a == victim));
        assert_eq!(g2.stages[2][1], OverlayAddr(90_000));
        // Everything else kept its address, flow ids and key.
        for stage in 1..=5usize {
            for v in 0..3 {
                if (stage, v) == (2, 1) {
                    assert_ne!(g2.flow_ids[2][1], g.flow_ids[2][1]);
                    assert_ne!(g2.infos[2][1].secret_key, g.infos[2][1].secret_key);
                    continue;
                }
                assert_eq!(g2.stages[stage][v], g.stages[stage][v]);
                assert_eq!(g2.flow_ids[stage][v], g.flow_ids[stage][v]);
                assert_eq!(g2.infos[stage][v].secret_key, g.infos[stage][v].secret_key);
            }
        }
        // Affected = the replacement plus the victim's parents (stage 1)
        // and children (stage 3): 1 + 3 + 3 positions.
        assert_eq!(affected.len(), 7, "affected: {affected:?}");
        for pos in &affected {
            assert!(
                pos.stage == 2 && pos.index == 1 || pos.stage == 1 || pos.stage == 3,
                "unexpected affected position {pos:?}"
            );
        }
        // Unaffected infos are byte-identical (no re-establishment).
        assert_eq!(g2.infos[4], g.infos[4]);
        assert_eq!(g2.infos[5], g.infos[5]);
        assert_eq!(g2.dest_key, g.dest_key);
    }

    #[test]
    fn rebuild_rejects_unrepairable_and_exhausted() {
        let g = build_graph(4, 2, 2, 29);
        let mut rng = StdRng::seed_from_u64(1);
        // Destination is sacred.
        let err = rebuild_excluding(
            &g,
            &[g.dest_addr()].into(),
            &addrs(90_000, 4),
            &mut rng,
        )
        .unwrap_err();
        assert!(matches!(err, GraphError::UnrepairableNode(_)));
        // Pseudo-sources too.
        let err = rebuild_excluding(
            &g,
            &[g.stages[0][0]].into(),
            &addrs(90_000, 4),
            &mut rng,
        )
        .unwrap_err();
        assert!(matches!(err, GraphError::UnrepairableNode(_)));
        // No spare relays left.
        let victim = g
            .relay_addrs()
            .find(|&a| a != g.dest_addr())
            .expect("some non-destination relay");
        let err = rebuild_excluding(&g, &[victim].into(), &[], &mut rng).unwrap_err();
        assert!(matches!(err, GraphError::NotEnoughRelays { .. }));
        // A spare already placed in the graph does not count.
        let err =
            rebuild_excluding(&g, &[victim].into(), &[g.stages[3][0]], &mut rng).unwrap_err();
        assert!(matches!(err, GraphError::NotEnoughRelays { .. }));
        // Duplicate spares collapse to one usable address: two dead
        // nodes cannot share it (that would place one overlay address
        // at two positions and corrupt both paths).
        let second = g
            .relay_addrs()
            .find(|&a| a != g.dest_addr() && a != victim)
            .expect("a second victim");
        let err = rebuild_excluding(
            &g,
            &[victim, second].into(),
            &[OverlayAddr(90_000), OverlayAddr(90_000)],
            &mut rng,
        )
        .unwrap_err();
        assert!(
            matches!(err, GraphError::NotEnoughRelays { have: 1, need: 2 }),
            "got {err:?}"
        );
    }

    #[test]
    fn rebuild_infos_decode_back() {
        use slicing_codec::decode;
        let g = build_graph(4, 2, 3, 31);
        let mut rng = StdRng::seed_from_u64(5);
        let (g2, _) = rebuild_excluding(
            &g,
            &[g.stages[3][2]].into(),
            &addrs(90_000, 2),
            &mut rng,
        )
        .unwrap();
        for stage in 1..=4usize {
            for v in 0..3 {
                let decoded = decode(&g2.info_slices[stage][v], 2).unwrap();
                let info = NodeInfo::decode(&decoded).unwrap();
                assert_eq!(&info, &g2.infos[stage][v]);
            }
        }
        assert_eq!(g2.info_block_len, g.info_block_len, "fixed-size encoding");
    }

    #[test]
    fn holder_paths_are_consistent() {
        let g = build_graph(5, 2, 3, 17);
        for l in 1..=5usize {
            for x in 0..3 {
                for k in 0..3 {
                    let path = g.holders.path(l, x, k);
                    assert_eq!(path.len(), l);
                    for (m, &h) in path.iter().enumerate() {
                        assert_eq!(h, g.holders.holder(l, x, k, m));
                    }
                }
            }
        }
    }
}
