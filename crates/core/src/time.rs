//! Explicit time for the sans-IO engine.

/// A point in time, in milliseconds from an arbitrary epoch.
///
/// The engine never reads a clock; drivers pass `Tick`s in. The tokio
/// overlay derives them from `Instant`, the simulator from virtual time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Tick(pub u64);

impl Tick {
    /// Zero.
    pub const ZERO: Tick = Tick(0);

    /// `self + ms`.
    pub fn plus(self, ms: u64) -> Tick {
        Tick(self.0 + ms)
    }

    /// Milliseconds elapsed since `earlier` (saturating).
    pub fn since(self, earlier: Tick) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = Tick(100);
        assert_eq!(t.plus(50), Tick(150));
        assert_eq!(t.plus(50).since(t), 50);
        assert_eq!(t.since(t.plus(50)), 0); // saturating
    }
}
