//! The deployable node daemon: `slicing-node <config.toml>`.
//!
//! Exits 2 on a config error (with the parser's typed message on
//! stderr), 1 on a runtime bind failure, 0 on a clean shutdown
//! (stdin EOF or `POST /shutdown` on the metrics port).

use slicing_node::config::NodeConfig;

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        eprintln!("usage: slicing-node <config.toml>");
        std::process::exit(2);
    };
    let cfg = match NodeConfig::load(std::path::Path::new(&path)) {
        Ok(cfg) => cfg,
        Err(err) => {
            eprintln!("slicing-node: {path}: {err}");
            std::process::exit(2);
        }
    };
    let runtime = tokio::runtime::Builder::new_multi_thread()
        .enable_all()
        .build()
        .expect("build tokio runtime");
    if let Err(err) = runtime.block_on(slicing_node::runtime::run(cfg)) {
        eprintln!("slicing-node: {err}");
        std::process::exit(1);
    }
}
