//! Measurement harnesses for the paper's performance experiments
//! (Figs. 11–15): end-to-end transfers for information slicing and the
//! onion baseline, over either transport, plus the multi-flow scaling
//! driver.

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use slicing_core::{
    DestPlacement, GraphParams, OverlayAddr, RelayNode, ShardedRelay, SourceSession,
};
use slicing_onion::{Directory, OnionRelay, OnionSource};
use slicing_sim::wan::NetProfile;
use tokio::sync::mpsc;

use crate::daemon::{spawn_onion_relay, spawn_relay, spawn_sharded_relay, OverlayEvent};
use crate::{EmulatedNet, NodePort, TcpNet};

/// Spawn one relay daemon: the classic single-task loop for one shard,
/// the sharded ingress/worker runtime otherwise.
fn spawn_relay_daemon(
    addr: OverlayAddr,
    seed: u64,
    shards: usize,
    port: NodePort,
    events: mpsc::UnboundedSender<OverlayEvent>,
    epoch: Instant,
) -> tokio::task::JoinHandle<()> {
    if shards > 1 {
        spawn_sharded_relay(ShardedRelay::new(addr, seed, shards), port, events, epoch)
    } else {
        spawn_relay(RelayNode::new(addr, seed), port, events, epoch)
    }
}

/// Which transport to measure over.
#[derive(Clone, Debug)]
pub enum Transport {
    /// In-process emulated network with the given condition profile.
    Emulated(NetProfile),
    /// Real TCP sockets on loopback.
    Tcp,
}

/// Configuration of one transfer experiment.
#[derive(Clone, Debug)]
pub struct TransferConfig {
    /// Graph shape.
    pub params: GraphParams,
    /// Transport to run over.
    pub transport: Transport,
    /// Number of data messages.
    pub messages: usize,
    /// Plaintext bytes per message (clamped to the protocol's budget).
    pub payload_len: usize,
    /// RNG seed.
    pub seed: u64,
    /// Hard deadline for the whole run.
    pub timeout: Duration,
    /// Shards per relay daemon (1 = classic single-task daemons; more
    /// runs every relay through the sharded ingress/worker runtime).
    pub relay_shards: usize,
}

impl Default for TransferConfig {
    fn default() -> Self {
        TransferConfig {
            params: GraphParams::new(5, 2).with_dest_placement(DestPlacement::LastStage),
            transport: Transport::Emulated(NetProfile::lan()),
            messages: 20,
            payload_len: 1200,
            seed: 7,
            timeout: Duration::from_secs(60),
            relay_shards: 1,
        }
    }
}

/// Results of one transfer run.
#[derive(Clone, Copy, Debug, Default)]
pub struct TransferReport {
    /// Route-setup latency: first setup packet sent → destination
    /// decoded its info (§7.4; the paper adds an explicit ack for
    /// collection, we observe the destination directly).
    pub setup_ms: u64,
    /// Data-phase duration: first data send → last delivery.
    pub transfer_ms: u64,
    /// Application payload bytes delivered.
    pub payload_bytes: u64,
    /// Messages delivered (of the configured count).
    pub messages_delivered: usize,
    /// Application-level throughput in Mbit/s.
    pub throughput_mbps: f64,
    /// Wire packets transported (emulated transport only).
    pub wire_packets: u64,
    /// Wire bytes transported (emulated transport only).
    pub wire_bytes: u64,
}

enum NetHandle {
    Emu(EmulatedNet),
    Tcp,
}

impl NetHandle {
    async fn attach(&self, suggested: OverlayAddr) -> NodePort {
        match self {
            NetHandle::Emu(net) => net.attach(suggested),
            NetHandle::Tcp => TcpNet::attach().await.expect("loopback bind"),
        }
    }

    fn counters(&self) -> (u64, u64) {
        match self {
            NetHandle::Emu(net) => net.counters(),
            NetHandle::Tcp => (0, 0),
        }
    }
}

fn make_net(t: &Transport, seed: u64) -> NetHandle {
    match t {
        Transport::Emulated(profile) => NetHandle::Emu(EmulatedNet::new(*profile, seed)),
        Transport::Tcp => NetHandle::Tcp,
    }
}

/// Run one information-slicing transfer end to end; see
/// [`TransferConfig`].
pub async fn run_slicing_transfer(cfg: &TransferConfig) -> TransferReport {
    let net = make_net(&cfg.transport, cfg.seed);
    let params = cfg.params;
    let dp = params.paths;
    let relay_count = params.relay_count() + 4;

    // Attach everything (transport assigns addresses for TCP).
    let mut pseudo_ports = Vec::with_capacity(dp);
    for i in 0..dp {
        pseudo_ports.push(net.attach(OverlayAddr(1_000 + i as u64)).await);
    }
    let dest_port = net.attach(OverlayAddr(1)).await;
    let dest_addr = dest_port.addr;
    let mut relay_ports = Vec::with_capacity(relay_count);
    for i in 0..relay_count {
        relay_ports.push(net.attach(OverlayAddr(10_000 + i as u64)).await);
    }
    let pseudo_addrs: Vec<OverlayAddr> = pseudo_ports.iter().map(|p| p.addr).collect();
    let candidate_addrs: Vec<OverlayAddr> = relay_ports.iter().map(|p| p.addr).collect();

    // Daemons.
    let (events_tx, mut events_rx) = mpsc::unbounded_channel();
    let epoch = Instant::now();
    let mut handles = Vec::new();
    for port in relay_ports {
        handles.push(spawn_relay_daemon(
            port.addr,
            cfg.seed,
            cfg.relay_shards,
            port,
            events_tx.clone(),
            epoch,
        ));
    }
    handles.push(spawn_relay_daemon(
        dest_addr,
        cfg.seed,
        cfg.relay_shards,
        dest_port,
        events_tx.clone(),
        epoch,
    ));

    // Source: build graph, emit setup from the pseudo-source ports.
    let (mut source, setup) = SourceSession::establish(
        params,
        &pseudo_addrs,
        &candidate_addrs,
        dest_addr,
        cfg.seed,
    )
    .expect("graph parameters validated by caller");
    let setup_start = Instant::now();
    for instr in setup {
        let port = pseudo_ports
            .iter()
            .find(|p| p.addr == instr.from)
            .expect("pseudo-source port");
        port.tx.send(instr.to, instr.packet.encode()).await;
    }

    // Wait for the destination to establish.
    let mut report = TransferReport::default();
    let deadline = tokio::time::sleep(cfg.timeout);
    tokio::pin!(deadline);
    loop {
        tokio::select! {
            ev = events_rx.recv() => {
                match ev {
                    Some(OverlayEvent::Established { addr, receiver: true, .. })
                        if addr == dest_addr =>
                    {
                        report.setup_ms = setup_start.elapsed().as_millis() as u64;
                        break;
                    }
                    Some(_) => continue,
                    None => return report,
                }
            }
            _ = &mut deadline => return report,
        }
    }

    // Data phase.
    let payload_len = cfg.payload_len.min(source.max_chunk_len());
    let payload = vec![0xA5u8; payload_len];
    let data_start = Instant::now();
    for _ in 0..cfg.messages {
        let (_, sends) = source.send_message(&payload);
        for instr in sends {
            let port = pseudo_ports
                .iter()
                .find(|p| p.addr == instr.from)
                .expect("pseudo-source port");
            port.tx.send(instr.to, instr.packet.encode()).await;
        }
    }
    let mut delivered = 0usize;
    let deadline = tokio::time::sleep(cfg.timeout);
    tokio::pin!(deadline);
    while delivered < cfg.messages {
        tokio::select! {
            ev = events_rx.recv() => {
                match ev {
                    Some(OverlayEvent::MessageReceived { addr, len, .. }) if addr == dest_addr => {
                        delivered += 1;
                        report.payload_bytes += len as u64;
                    }
                    Some(_) => continue,
                    None => break,
                }
            }
            _ = &mut deadline => break,
        }
    }
    report.transfer_ms = data_start.elapsed().as_millis() as u64;
    report.messages_delivered = delivered;
    report.throughput_mbps =
        throughput_mbps_f(report.payload_bytes, data_start.elapsed().as_secs_f64());
    let (p, b) = net.counters();
    report.wire_packets = p;
    report.wire_bytes = b;
    for h in handles {
        h.abort();
    }
    report
}

/// Run one onion-routing transfer (standard, single circuit) with the
/// same measurement points.
pub async fn run_onion_transfer(cfg: &TransferConfig) -> TransferReport {
    let net = make_net(&cfg.transport, cfg.seed ^ 0x0410);
    let hops = cfg.params.length;
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let source_port = net.attach(OverlayAddr(1_000)).await;
    let mut relay_ports = Vec::with_capacity(hops);
    for i in 0..hops {
        relay_ports.push(net.attach(OverlayAddr(10_000 + i as u64)).await);
    }
    let path: Vec<OverlayAddr> = relay_ports.iter().map(|p| p.addr).collect();
    let dest_addr = *path.last().expect("non-empty path");

    // PKI: register all relays.
    let mut dir = Directory::new();
    let mut keypairs = Vec::new();
    for &addr in &path {
        keypairs.push((addr, dir.register(addr, 512, &mut rng)));
    }

    let (events_tx, mut events_rx) = mpsc::unbounded_channel();
    let epoch = Instant::now();
    let mut handles = Vec::new();
    for port in relay_ports {
        let (_, kp) = keypairs
            .iter()
            .find(|(a, _)| *a == port.addr)
            .expect("registered");
        let relay = OnionRelay::new(port.addr, kp.clone());
        handles.push(spawn_onion_relay(relay, port, events_tx.clone(), epoch));
    }

    let mut report = TransferReport::default();
    let setup_start = Instant::now();
    let (mut handle, setup) =
        OnionSource::build_circuit(source_port.addr, &path, &dir, &mut rng)
            .expect("registered path");
    source_port.tx.send(setup.to, setup.packet.encode()).await;

    // Wait for the exit to establish.
    let deadline = tokio::time::sleep(cfg.timeout);
    tokio::pin!(deadline);
    loop {
        tokio::select! {
            ev = events_rx.recv() => {
                match ev {
                    Some(OverlayEvent::Established { addr, receiver: true, .. })
                        if addr == dest_addr =>
                    {
                        report.setup_ms = setup_start.elapsed().as_millis() as u64;
                        break;
                    }
                    Some(_) => continue,
                    None => return report,
                }
            }
            _ = &mut deadline => return report,
        }
    }

    // Data phase: same payload volume as the slicing run.
    let payload = vec![0xA5u8; cfg.payload_len];
    let data_start = Instant::now();
    for _ in 0..cfg.messages {
        let (_, send) = handle.send_data(&payload, &mut rng);
        source_port.tx.send(send.to, send.packet.encode()).await;
    }
    let mut delivered = 0usize;
    let deadline = tokio::time::sleep(cfg.timeout);
    tokio::pin!(deadline);
    while delivered < cfg.messages {
        tokio::select! {
            ev = events_rx.recv() => {
                match ev {
                    Some(OverlayEvent::MessageReceived { addr, len, .. }) if addr == dest_addr => {
                        delivered += 1;
                        report.payload_bytes += len as u64;
                    }
                    Some(_) => continue,
                    None => break,
                }
            }
            _ = &mut deadline => break,
        }
    }
    report.transfer_ms = data_start.elapsed().as_millis() as u64;
    report.messages_delivered = delivered;
    report.throughput_mbps =
        throughput_mbps_f(report.payload_bytes, data_start.elapsed().as_secs_f64());
    let (p, b) = net.counters();
    report.wire_packets = p;
    report.wire_bytes = b;
    for h in handles {
        h.abort();
    }
    report
}

/// Results of a multi-flow scaling run (Fig. 13).
#[derive(Clone, Copy, Debug, Default)]
pub struct MultiFlowReport {
    /// Concurrent flows attempted.
    pub flows: usize,
    /// Flows whose destination established.
    pub flows_established: usize,
    /// Total application bytes delivered across flows.
    pub payload_bytes: u64,
    /// Wall-clock duration of the data phase, ms.
    pub elapsed_ms: u64,
    /// Aggregate network throughput, Mbit/s.
    pub aggregate_mbps: f64,
}

/// Fig. 13: `flows` concurrent anonymous flows over a shared overlay of
/// `overlay_size` relay nodes (the paper: 100 nodes, d = 3, L = 5),
/// each relay sharded `relay_shards` ways (1 = classic daemons).
#[allow(clippy::too_many_arguments)] // experiment knobs, used by one harness
pub async fn run_multi_flow(
    overlay_size: usize,
    relay_shards: usize,
    flows: usize,
    params: GraphParams,
    profile: NetProfile,
    messages: usize,
    payload_len: usize,
    seed: u64,
    timeout: Duration,
) -> MultiFlowReport {
    let net = EmulatedNet::new(profile, seed);
    let (events_tx, mut events_rx) = mpsc::unbounded_channel();
    let epoch = Instant::now();

    // Shared overlay nodes.
    let mut node_addrs = Vec::with_capacity(overlay_size);
    let mut handles = Vec::new();
    for i in 0..overlay_size {
        let port = net.attach(OverlayAddr(10_000 + i as u64));
        node_addrs.push(port.addr);
        handles.push(spawn_relay_daemon(
            port.addr,
            seed,
            relay_shards,
            port,
            events_tx.clone(),
            epoch,
        ));
    }

    // Per-flow sources and destinations (destinations are overlay nodes).
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sources = Vec::new();
    let mut dest_of_flow = Vec::new();
    for flow in 0..flows {
        let mut pseudo_ports = Vec::new();
        for i in 0..params.paths {
            pseudo_ports.push(net.attach(OverlayAddr(1_000_000 + (flow * 16 + i) as u64)));
        }
        let pseudo_addrs: Vec<OverlayAddr> = pseudo_ports.iter().map(|p| p.addr).collect();
        let dest = node_addrs[rng.gen_range(0..node_addrs.len())];
        let candidates: Vec<OverlayAddr> = node_addrs
            .iter()
            .copied()
            .filter(|&a| a != dest)
            .collect();
        match SourceSession::establish(params, &pseudo_addrs, &candidates, dest, rng.gen()) {
            Ok((source, setup)) => {
                for instr in &setup {
                    let port = pseudo_ports
                        .iter()
                        .find(|p| p.addr == instr.from)
                        .expect("pseudo port");
                    port.tx.send(instr.to, instr.packet.encode()).await;
                }
                dest_of_flow.push(dest);
                sources.push((source, pseudo_ports));
            }
            Err(_) => continue,
        }
    }

    // Give setups a moment to land, then count established flows.
    tokio::time::sleep(Duration::from_millis(500)).await;
    let mut report = MultiFlowReport {
        flows,
        ..Default::default()
    };

    // Data phase: every flow sends `messages` chunks.
    let data_start = Instant::now();
    let mut expected_total = 0usize;
    for (source, pseudo_ports) in sources.iter_mut() {
        let len = payload_len.min(source.max_chunk_len());
        let payload = vec![0x5Au8; len];
        for _ in 0..messages {
            let (_, sends) = source.send_message(&payload);
            for instr in sends {
                let port = pseudo_ports
                    .iter()
                    .find(|p| p.addr == instr.from)
                    .expect("pseudo port");
                port.tx.send(instr.to, instr.packet.encode()).await;
            }
            expected_total += 1;
        }
    }

    let mut got = 0usize;
    let mut established = std::collections::HashSet::new();
    let deadline = tokio::time::sleep(timeout);
    tokio::pin!(deadline);
    while got < expected_total {
        tokio::select! {
            ev = events_rx.recv() => {
                match ev {
                    Some(OverlayEvent::MessageReceived { len, addr, .. }) => {
                        got += 1;
                        report.payload_bytes += len as u64;
                        established.insert(addr);
                    }
                    Some(OverlayEvent::Established { addr, receiver: true, .. }) => {
                        established.insert(addr);
                    }
                    Some(_) => continue,
                    None => break,
                }
            }
            _ = &mut deadline => break,
        }
    }
    report.elapsed_ms = data_start.elapsed().as_millis() as u64;
    report.flows_established = established.len().min(flows);
    report.aggregate_mbps =
        throughput_mbps_f(report.payload_bytes, data_start.elapsed().as_secs_f64());
    for h in handles {
        h.abort();
    }
    report
}

/// Application throughput in Mbit/s from bytes over fractional seconds
/// (millisecond counters quantize badly on loopback).
fn throughput_mbps_f(bytes: u64, secs: f64) -> f64 {
    if secs <= 0.0 {
        return 0.0;
    }
    (bytes as f64 * 8.0) / (secs * 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn slicing_transfer_over_emulated_lan() {
        let cfg = TransferConfig {
            messages: 5,
            timeout: Duration::from_secs(30),
            ..TransferConfig::default()
        };
        let report = run_slicing_transfer(&cfg).await;
        assert_eq!(report.messages_delivered, 5, "report: {report:?}");
        assert!(report.setup_ms < 10_000);
        assert!(report.payload_bytes > 0);
        assert!(report.wire_packets > 0);
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn slicing_transfer_over_tcp() {
        let cfg = TransferConfig {
            transport: Transport::Tcp,
            messages: 5,
            timeout: Duration::from_secs(30),
            ..TransferConfig::default()
        };
        let report = run_slicing_transfer(&cfg).await;
        assert_eq!(report.messages_delivered, 5, "report: {report:?}");
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn slicing_transfer_sharded_relays_emulated() {
        let cfg = TransferConfig {
            messages: 5,
            timeout: Duration::from_secs(30),
            relay_shards: 4,
            ..TransferConfig::default()
        };
        let report = run_slicing_transfer(&cfg).await;
        assert_eq!(report.messages_delivered, 5, "report: {report:?}");
        assert!(report.setup_ms < 10_000);
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn slicing_transfer_sharded_relays_tcp() {
        let cfg = TransferConfig {
            transport: Transport::Tcp,
            messages: 5,
            timeout: Duration::from_secs(30),
            relay_shards: 4,
            ..TransferConfig::default()
        };
        let report = run_slicing_transfer(&cfg).await;
        assert_eq!(report.messages_delivered, 5, "report: {report:?}");
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn onion_transfer_over_emulated_lan() {
        let cfg = TransferConfig {
            messages: 5,
            timeout: Duration::from_secs(30),
            ..TransferConfig::default()
        };
        let report = run_onion_transfer(&cfg).await;
        assert_eq!(report.messages_delivered, 5, "report: {report:?}");
        assert!(report.setup_ms < 10_000);
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn multi_flow_smoke() {
        let params = GraphParams::new(3, 2);
        let report = run_multi_flow(
            30,
            1,
            3,
            params,
            NetProfile::lan(),
            3,
            600,
            11,
            Duration::from_secs(30),
        )
        .await;
        assert!(report.payload_bytes > 0, "report: {report:?}");
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn multi_flow_sharded_smoke() {
        let params = GraphParams::new(3, 2);
        let report = run_multi_flow(
            30,
            4,
            3,
            params,
            NetProfile::lan(),
            3,
            600,
            11,
            Duration::from_secs(30),
        )
        .await;
        assert!(report.payload_bytes > 0, "report: {report:?}");
    }
}
