//! Endpoint crypto throughput smoke: GiB/s per primitive per available
//! backend, plus AEAD seal+open round trips per second with and without
//! the per-session caches — and a machine-readable `BENCH_crypto.json`
//! so CI records the perf trajectory across PRs.
//!
//! Self-timed (no criterion) so it runs in seconds as a CI step.
//! `--quick` (or `CRYPTO_BENCH_QUICK=1`) cuts trial counts for the CI
//! smoke run. Output goes to stdout as the usual aligned tables and to
//! `BENCH_crypto.json` in the current directory (`--out PATH`
//! overrides).
//!
//! The AEAD section times two shapes per backend and message size:
//!
//! * **cached** — a per-session [`SealingKey`] driving the zero-alloc
//!   `seal_into`/`open_in_place` pair (what the endpoints run now);
//! * **rederive** — a fresh `SealingKey` constructed for every seal and
//!   every open (the pre-PR cost structure: two HKDF subkey derivations
//!   plus HMAC ipad/opad compressions per operation, per side).
//!
//! The headline ratios the acceptance gate reads: SIMD cached vs scalar
//! rederive at 1500 B (the full PR speedup over the old path), and
//! scalar cached vs scalar rederive (the subkey/midstate caching win in
//! isolation, reported per message size — the relative win shrinks as
//! the fixed per-message derivation cost amortizes over longer
//! messages).

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use slicing_bench::{banner, RunOpts, Table};
use slicing_crypto::{simd, ChaCha20, HmacKey, SealingKey, Sha256, SymmetricKey};

/// Bytes per bulk-primitive pass (L1-resident: measures the kernels,
/// not the memory bus).
const BULK: usize = 4096;

/// AEAD message sizes: a small control frame, a typical session chunk,
/// and a full data-packet budget (§7.2 uses 1500 B packets).
const SIZES: [usize; 3] = [64, 400, 1500];

/// Time `f` over `reps` calls and return GiB/s for `bytes_per_call`.
fn gibs(reps: usize, bytes_per_call: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up: fault pages, prime the dispatch
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    let secs = start.elapsed().as_secs_f64();
    (reps * bytes_per_call) as f64 / secs / (1u64 << 30) as f64
}

/// Time `f` over `reps` calls and return calls per second.
fn per_sec(reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    reps as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    let opts = RunOpts::from_args();
    let quick = opts.quick || std::env::var_os("CRYPTO_BENCH_QUICK").is_some();
    let opts = RunOpts { quick, ..opts };
    let bulk_reps = opts.trials(100_000);
    let aead_reps = opts.trials(30_000);
    let out_path = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1).cloned())
            .unwrap_or_else(|| "BENCH_crypto.json".to_string())
    };
    banner(
        "Endpoint crypto throughput (ChaCha20 / SHA-256 / AEAD)",
        &format!(
            "dispatch: {} ({}); backends: {:?}; bulk {BULK} B; aead {SIZES:?} B",
            simd::backend(),
            simd::isa(),
            simd::available_backends()
        ),
        "SIMD+caching ≥4× the re-deriving scalar seal+open at 1500 B",
    );

    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut bulk = vec![0u8; BULK];
    rng.fill_bytes(&mut bulk);
    let chacha_key = [0x42u8; 32];
    let nonce = [7u8; 12];
    let key = SymmetricKey([0xA7; 32]);

    // ---- bulk primitives, per backend ---------------------------------
    let backends = simd::available_backends();
    let mut prim_table = Table::new(&["backend", "chacha20", "sha256", "hmac"]);
    let mut prim_json = Vec::new();
    let mut prim_gibs = Vec::new();
    for (bi, &backend) in backends.iter().enumerate() {
        let chacha = gibs(bulk_reps, BULK, || {
            ChaCha20::new_on(backend, &chacha_key, &nonce, 0).apply(&mut bulk);
        });
        let sha = gibs(bulk_reps, BULK, || {
            std::hint::black_box(Sha256::digest_on(backend, &bulk));
        });
        let mac_key = HmacKey::new_on(backend, &key.0);
        let hmac = gibs(bulk_reps, BULK, || {
            std::hint::black_box(mac_key.mac(&bulk));
        });
        prim_table.row(&[bi as f64, chacha, sha, hmac]);
        prim_json.push(format!(
            "    {{\"backend\": \"{backend}\", \"chacha20_gibs\": {chacha:.3}, \
             \"sha256_gibs\": {sha:.3}, \"hmac_gibs\": {hmac:.3}}}"
        ));
        prim_gibs.push((backend, chacha, sha));
    }
    println!("(backend column: index into {backends:?}; GiB/s, {BULK} B passes)");
    prim_table.print();
    println!();

    // ---- AEAD seal+open round trips, per backend and size -------------
    // cached   = per-session SealingKey + seal_into/open_in_place
    // rederive = fresh SealingKey per seal and per open (pre-PR shape)
    let mut aead_table = Table::new(&["backend", "msg_len", "cached/s", "rederive/s", "speedup"]);
    let mut aead_json = Vec::new();
    let mut results = Vec::new();
    for (bi, &backend) in backends.iter().enumerate() {
        for &len in &SIZES {
            let msg = vec![0xC3u8; len];
            let mut buf = Vec::new();
            let sk = SealingKey::new_on(backend, &key);
            let cached = per_sec(aead_reps, || {
                sk.seal_into(&msg, &mut buf, &mut rng);
                std::hint::black_box(sk.open_in_place(&mut buf).expect("tag"));
            });
            let rederive = per_sec(aead_reps, || {
                SealingKey::new_on(backend, &key).seal_into(&msg, &mut buf, &mut rng);
                std::hint::black_box(
                    SealingKey::new_on(backend, &key)
                        .open_in_place(&mut buf)
                        .expect("tag"),
                );
            });
            let speedup = cached / rederive;
            aead_table.row(&[bi as f64, len as f64, cached, rederive, speedup]);
            aead_json.push(format!(
                "    {{\"backend\": \"{backend}\", \"msg_len\": {len}, \
                 \"cached_msgs_per_s\": {cached:.0}, \
                 \"rederive_msgs_per_s\": {rederive:.0}, \
                 \"caching_speedup\": {speedup:.2}}}"
            ));
            results.push((backend, len, cached, rederive));
        }
    }
    println!("(seal+open round trips per second)");
    aead_table.print();
    println!();

    // ---- headline ratios ----------------------------------------------
    let scalar_rederive_1500 = results
        .iter()
        .find(|(b, l, ..)| format!("{b}") == "scalar" && *l == 1500)
        .map(|&(_, _, _, r)| r)
        .unwrap_or(f64::NAN);
    let best_cached_1500 = results
        .iter()
        .filter(|(_, l, ..)| *l == 1500)
        .map(|&(_, _, c, _)| c)
        .fold(f64::NAN, f64::max);
    let full_speedup_1500 = best_cached_1500 / scalar_rederive_1500;
    let scalar_caching: Vec<(usize, f64)> = results
        .iter()
        .filter(|(b, ..)| format!("{b}") == "scalar")
        .map(|&(_, l, c, r)| (l, c / r))
        .collect();
    println!("headline: best cached seal+open at 1500 B vs scalar rederive = {full_speedup_1500:.2}x");
    for (l, s) in &scalar_caching {
        println!("headline: scalar caching alone at {l} B = {s:.2}x");
    }

    let caching_json: Vec<String> = scalar_caching
        .iter()
        .map(|(l, s)| format!("\"{l}\": {s:.2}"))
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"crypto_bench\",\n  \"bulk_bytes\": {BULK},\n  \
         \"dispatch\": \"{}\",\n  \"isa\": \"{}\",\n  \"primitives\": [\n{}\n  ],\n  \
         \"aead\": [\n{}\n  ],\n  \"headline\": {{\n    \
         \"simd_cached_vs_scalar_rederive_1500B\": {full_speedup_1500:.2},\n    \
         \"scalar_caching_speedup\": {{{}}}\n  }}\n}}\n",
        simd::backend(),
        simd::isa(),
        prim_json.join(",\n"),
        aead_json.join(",\n"),
        caching_json.join(", ")
    );
    std::fs::write(&out_path, &json).expect("write BENCH_crypto.json");
    println!("wrote {out_path}");
}
