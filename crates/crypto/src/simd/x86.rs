//! x86_64 kernels: multi-block ChaCha20 (AVX2 8×, SSSE3 1×) and
//! SHA-256 compression (SHA-NI rounds, else an SSSE3-vectorized message
//! schedule).
//!
//! Every public entry here is a **safe** wrapper around
//! `#[target_feature]` inner loops; the wrappers pick the widest engine
//! [`crate::simd::caps`] detected at startup and leave sub-block tails
//! to the caller's scalar path, so callers never see alignment or
//! length restrictions. The `unsafe` is confined to `std::arch`
//! intrinsics on the little-endian x86_64 memory model they assume.
//!
//! ## ChaCha20 dataflow
//!
//! The kernels keep the 4×4 ChaCha state as four row registers and run
//! the diagonal rounds by lane-rotating rows 1–3 (`pshufd`) before and
//! after a column quarter-round — the classic "horizontal" layout. In
//! the AVX2 engine each 256-bit register holds the same row of **two**
//! consecutive blocks (one per 128-bit lane, counters differing by
//! one), and the main loop interleaves four such units per iteration,
//! so eight blocks (512 bytes) of keystream are produced per pass.
//! Rotations by 16 and 8 are byte shuffles (`pshufb`); 12 and 7 are
//! shift+or pairs.
//!
//! ## SHA-256 dataflow
//!
//! With SHA-NI, two rounds per `sha256rnds2` and on-the-fly message
//! expansion via `sha256msg1`/`sha256msg2` in the standard rolling
//! four-register schedule; the `[a..h]` state is packed to the
//! `ABEF`/`CDGH` register layout the instructions expect once per call,
//! not per block. Without SHA-NI, the 48 message-schedule words are
//! expanded four at a time with SSE shifts (the two-phase `σ₁`
//! dependency trick) and the 64 rounds themselves run scalar — the
//! schedule is about half the scalar work, so this still wins on
//! SSSE3-only hosts.

use std::arch::x86_64::*;

use crate::sha256::K;

// ---- ChaCha20 -------------------------------------------------------------

/// "expand 32-byte k", identical to [`crate::chacha20`]'s sigma row.
const SIGMA: [u32; 4] = [0x61707865, 0x3320646e, 0x79622d32, 0x6b206574];

/// One AVX2 quarter-round over four row registers (two blocks per
/// register). Register-only, so a *safe* target-feature fn: the engines
/// calling it already carry the `avx2` feature.
#[inline]
#[target_feature(enable = "avx2")]
fn qround256(
    a: __m256i,
    b: __m256i,
    c: __m256i,
    d: __m256i,
    rot16: __m256i,
    rot8: __m256i,
) -> (__m256i, __m256i, __m256i, __m256i) {
    let a = _mm256_add_epi32(a, b);
    let d = _mm256_shuffle_epi8(_mm256_xor_si256(d, a), rot16);
    let c = _mm256_add_epi32(c, d);
    let b = _mm256_xor_si256(b, c);
    let b = _mm256_or_si256(_mm256_slli_epi32(b, 12), _mm256_srli_epi32(b, 20));
    let a = _mm256_add_epi32(a, b);
    let d = _mm256_shuffle_epi8(_mm256_xor_si256(d, a), rot8);
    let c = _mm256_add_epi32(c, d);
    let b = _mm256_xor_si256(b, c);
    let b = _mm256_or_si256(_mm256_slli_epi32(b, 7), _mm256_srli_epi32(b, 25));
    (a, b, c, d)
}

/// Twenty ChaCha rounds on one two-block unit (rows in, rows out,
/// without the feed-forward addition). Register-only and safe, as
/// [`qround256`].
#[inline]
#[target_feature(enable = "avx2")]
fn rounds2x256(
    mut a: __m256i,
    mut b: __m256i,
    mut c: __m256i,
    mut d: __m256i,
    rot16: __m256i,
    rot8: __m256i,
) -> (__m256i, __m256i, __m256i, __m256i) {
    for _ in 0..10 {
        // Column round …
        (a, b, c, d) = qround256(a, b, c, d, rot16, rot8);
        // … then lane-rotate rows so the diagonals become columns.
        b = _mm256_shuffle_epi32(b, 0x39);
        c = _mm256_shuffle_epi32(c, 0x4E);
        d = _mm256_shuffle_epi32(d, 0x93);
        (a, b, c, d) = qround256(a, b, c, d, rot16, rot8);
        b = _mm256_shuffle_epi32(b, 0x93);
        c = _mm256_shuffle_epi32(c, 0x4E);
        d = _mm256_shuffle_epi32(d, 0x39);
    }
    (a, b, c, d)
}

/// AVX2 keystream-XOR engine: processes exactly `full` 64-byte blocks
/// starting at block `counter`, eight blocks per main-loop pass.
///
/// # Safety
///
/// `data` must be valid for `full * 64` bytes of read+write; the caller
/// must have verified AVX2 support and that `counter + full ≤ 2³²`
/// (no 32-bit block-counter wrap).
#[target_feature(enable = "avx2")]
unsafe fn chacha_avx2(
    key: &[u8; 32],
    nonce: &[u8; 12],
    mut counter: u32,
    data: *mut u8,
    full: usize,
) {
    // SAFETY: per the fn contract every `data` offset below is
    // `< full * 64` and all loads/stores are the unaligned variants;
    // `key`/`nonce` reads stay in their arrays.
    unsafe {
        let rot16 = _mm256_setr_epi8(
            2, 3, 0, 1, 6, 7, 4, 5, 10, 11, 8, 9, 14, 15, 12, 13, 2, 3, 0, 1, 6, 7, 4, 5, 10, 11,
            8, 9, 14, 15, 12, 13,
        );
        let rot8 = _mm256_setr_epi8(
            3, 0, 1, 2, 7, 4, 5, 6, 11, 8, 9, 10, 15, 12, 13, 14, 3, 0, 1, 2, 7, 4, 5, 6, 11, 8,
            9, 10, 15, 12, 13, 14,
        );
        let row_a = _mm256_broadcastsi128_si256(_mm_setr_epi32(
            SIGMA[0] as i32,
            SIGMA[1] as i32,
            SIGMA[2] as i32,
            SIGMA[3] as i32,
        ));
        let row_b =
            _mm256_broadcastsi128_si256(_mm_loadu_si128(key.as_ptr() as *const __m128i));
        let row_c =
            _mm256_broadcastsi128_si256(_mm_loadu_si128(key.as_ptr().add(16) as *const __m128i));
        let n = |i: usize| {
            u32::from_le_bytes([nonce[i * 4], nonce[i * 4 + 1], nonce[i * 4 + 2], nonce[i * 4 + 3]])
                as i32
        };
        let (n0, n1, n2) = (n(0), n(1), n(2));
        // Lane 1 of a unit's row d carries counter + 1.
        let lane_inc = _mm256_setr_epi32(0, 0, 0, 0, 1, 0, 0, 0);
        let row_d = |ctr: u32| {
            _mm256_add_epi32(
                _mm256_broadcastsi128_si256(_mm_setr_epi32(ctr as i32, n0, n1, n2)),
                lane_inc,
            )
        };
        // Feed-forward + de-interleave + XOR-store of one two-block unit.
        let store_unit = |p: *mut u8, a: __m256i, b: __m256i, c: __m256i, d: __m256i| {
            let xs = |off: usize, v: __m256i| {
                let cur = _mm256_loadu_si256(p.add(off) as *const __m256i);
                _mm256_storeu_si256(p.add(off) as *mut __m256i, _mm256_xor_si256(cur, v));
            };
            // Low lanes form block 0, high lanes block 1.
            xs(0, _mm256_permute2x128_si256(a, b, 0x20));
            xs(32, _mm256_permute2x128_si256(c, d, 0x20));
            xs(64, _mm256_permute2x128_si256(a, b, 0x31));
            xs(96, _mm256_permute2x128_si256(c, d, 0x31));
        };
        let mut done = 0usize;
        // Eight blocks per pass: four independent two-block units keep
        // enough quarter-rounds in flight to hide the rotate/shuffle
        // latency chain (the units share no registers until the store).
        while done + 8 <= full {
            let d0 = row_d(counter);
            let d1 = row_d(counter.wrapping_add(2));
            let d2 = row_d(counter.wrapping_add(4));
            let d3 = row_d(counter.wrapping_add(6));
            let mut u = [
                (row_a, row_b, row_c, d0),
                (row_a, row_b, row_c, d1),
                (row_a, row_b, row_c, d2),
                (row_a, row_b, row_c, d3),
            ];
            for _ in 0..10 {
                for s in &mut u {
                    *s = qround256(s.0, s.1, s.2, s.3, rot16, rot8);
                }
                for s in &mut u {
                    s.1 = _mm256_shuffle_epi32(s.1, 0x39);
                    s.2 = _mm256_shuffle_epi32(s.2, 0x4E);
                    s.3 = _mm256_shuffle_epi32(s.3, 0x93);
                }
                for s in &mut u {
                    *s = qround256(s.0, s.1, s.2, s.3, rot16, rot8);
                }
                for s in &mut u {
                    s.1 = _mm256_shuffle_epi32(s.1, 0x93);
                    s.2 = _mm256_shuffle_epi32(s.2, 0x4E);
                    s.3 = _mm256_shuffle_epi32(s.3, 0x39);
                }
            }
            let p = data.add(done * 64);
            for (k, (xa, xb, xc, xd)) in u.into_iter().enumerate() {
                store_unit(
                    p.add(k * 128),
                    _mm256_add_epi32(xa, row_a),
                    _mm256_add_epi32(xb, row_b),
                    _mm256_add_epi32(xc, row_c),
                    _mm256_add_epi32(xd, row_d(counter.wrapping_add(2 * k as u32))),
                );
            }
            counter = counter.wrapping_add(8);
            done += 8;
        }
        if done + 4 <= full {
            let d0 = row_d(counter);
            let d1 = row_d(counter.wrapping_add(2));
            let (xa0, xb0, xc0, xd0) = rounds2x256(row_a, row_b, row_c, d0, rot16, rot8);
            let (xa1, xb1, xc1, xd1) = rounds2x256(row_a, row_b, row_c, d1, rot16, rot8);
            let p = data.add(done * 64);
            store_unit(
                p,
                _mm256_add_epi32(xa0, row_a),
                _mm256_add_epi32(xb0, row_b),
                _mm256_add_epi32(xc0, row_c),
                _mm256_add_epi32(xd0, d0),
            );
            store_unit(
                p.add(128),
                _mm256_add_epi32(xa1, row_a),
                _mm256_add_epi32(xb1, row_b),
                _mm256_add_epi32(xc1, row_c),
                _mm256_add_epi32(xd1, d1),
            );
            counter = counter.wrapping_add(4);
            done += 4;
        }
        if done + 2 <= full {
            let d0 = row_d(counter);
            let (xa, xb, xc, xd) = rounds2x256(row_a, row_b, row_c, d0, rot16, rot8);
            store_unit(
                data.add(done * 64),
                _mm256_add_epi32(xa, row_a),
                _mm256_add_epi32(xb, row_b),
                _mm256_add_epi32(xc, row_c),
                _mm256_add_epi32(xd, d0),
            );
            counter = counter.wrapping_add(2);
            done += 2;
        }
        if done < full {
            // SAFETY: AVX2 implies SSSE3 (checked at dispatch anyway);
            // one block of `data` remains valid for read+write.
            chacha_ssse3(key, nonce, counter, data.add(done * 64), full - done);
        }
    }
}

/// One SSSE3 quarter-round over four single-block row registers.
/// Register-only and safe, as [`qround256`].
#[inline]
#[target_feature(enable = "ssse3")]
fn qround128(
    a: __m128i,
    b: __m128i,
    c: __m128i,
    d: __m128i,
    rot16: __m128i,
    rot8: __m128i,
) -> (__m128i, __m128i, __m128i, __m128i) {
    let a = _mm_add_epi32(a, b);
    let d = _mm_shuffle_epi8(_mm_xor_si128(d, a), rot16);
    let c = _mm_add_epi32(c, d);
    let b = _mm_xor_si128(b, c);
    let b = _mm_or_si128(_mm_slli_epi32(b, 12), _mm_srli_epi32(b, 20));
    let a = _mm_add_epi32(a, b);
    let d = _mm_shuffle_epi8(_mm_xor_si128(d, a), rot8);
    let c = _mm_add_epi32(c, d);
    let b = _mm_xor_si128(b, c);
    let b = _mm_or_si128(_mm_slli_epi32(b, 7), _mm_srli_epi32(b, 25));
    (a, b, c, d)
}

/// SSSE3 keystream-XOR engine: one 64-byte block per pass.
///
/// # Safety
///
/// Same contract as [`chacha_avx2`], with SSSE3 as the required
/// feature.
#[target_feature(enable = "ssse3")]
unsafe fn chacha_ssse3(
    key: &[u8; 32],
    nonce: &[u8; 12],
    counter: u32,
    data: *mut u8,
    full: usize,
) {
    // SAFETY: as in `chacha_avx2` — offsets stay `< full * 64`, all
    // loads/stores are unaligned variants.
    unsafe {
        let rot16 = _mm_setr_epi8(2, 3, 0, 1, 6, 7, 4, 5, 10, 11, 8, 9, 14, 15, 12, 13);
        let rot8 = _mm_setr_epi8(3, 0, 1, 2, 7, 4, 5, 6, 11, 8, 9, 10, 15, 12, 13, 14);
        let row_a = _mm_setr_epi32(
            SIGMA[0] as i32,
            SIGMA[1] as i32,
            SIGMA[2] as i32,
            SIGMA[3] as i32,
        );
        let row_b = _mm_loadu_si128(key.as_ptr() as *const __m128i);
        let row_c = _mm_loadu_si128(key.as_ptr().add(16) as *const __m128i);
        let n = |i: usize| {
            u32::from_le_bytes([nonce[i * 4], nonce[i * 4 + 1], nonce[i * 4 + 2], nonce[i * 4 + 3]])
                as i32
        };
        let mut row_d = _mm_setr_epi32(counter as i32, n(0), n(1), n(2));
        let one = _mm_setr_epi32(1, 0, 0, 0);
        for blk in 0..full {
            let (mut a, mut b, mut c, mut d) = (row_a, row_b, row_c, row_d);
            for _ in 0..10 {
                (a, b, c, d) = qround128(a, b, c, d, rot16, rot8);
                b = _mm_shuffle_epi32(b, 0x39);
                c = _mm_shuffle_epi32(c, 0x4E);
                d = _mm_shuffle_epi32(d, 0x93);
                (a, b, c, d) = qround128(a, b, c, d, rot16, rot8);
                b = _mm_shuffle_epi32(b, 0x93);
                c = _mm_shuffle_epi32(c, 0x4E);
                d = _mm_shuffle_epi32(d, 0x39);
            }
            let rows = [
                _mm_add_epi32(a, row_a),
                _mm_add_epi32(b, row_b),
                _mm_add_epi32(c, row_c),
                _mm_add_epi32(d, row_d),
            ];
            let p = data.add(blk * 64);
            for (i, r) in rows.into_iter().enumerate() {
                let cur = _mm_loadu_si128(p.add(i * 16) as *const __m128i);
                _mm_storeu_si128(p.add(i * 16) as *mut __m128i, _mm_xor_si128(cur, r));
            }
            row_d = _mm_add_epi32(row_d, one);
        }
    }
}

/// XOR ChaCha20 keystream into the full 64-byte blocks of `data` with
/// the widest available engine; returns the number of **blocks**
/// processed (the caller's scalar path finishes the tail).
///
/// The caller must already have ruled out 32-bit counter wrap
/// (`counter + data.len()/64 ≤ 2³²`) — [`crate::chacha20::ChaCha20`]
/// enforces this before dispatching here.
pub(crate) fn chacha_xor(
    key: &[u8; 32],
    nonce: &[u8; 12],
    counter: u32,
    data: &mut [u8],
) -> usize {
    let full = data.len() / 64;
    if full == 0 {
        return 0;
    }
    // SAFETY: dispatch guarantees SSSE3 (and AVX2 when `wide_chacha`);
    // `data` covers `full * 64` bytes; the wrap precondition is the
    // caller's documented contract.
    unsafe {
        if crate::simd::caps().wide_chacha {
            chacha_avx2(key, nonce, counter, data.as_mut_ptr(), full);
        } else {
            chacha_ssse3(key, nonce, counter, data.as_mut_ptr(), full);
        }
    }
    full
}

// ---- SHA-256 --------------------------------------------------------------

/// SHA-NI compression over whole 64-byte blocks. The `[a..h]` state is
/// re-packed to `ABEF`/`CDGH` once at entry and unpacked once at exit;
/// each block runs 16 × `sha256rnds2` pairs with the rolling
/// `msg1`/`msg2` schedule.
///
/// # Safety
///
/// `blocks.len()` must be a multiple of 64; the caller must have
/// verified SHA-NI + SSE4.1 + SSSE3 support.
#[target_feature(enable = "sha,sse4.1,ssse3")]
unsafe fn sha256_compress_shani(state: &mut [u32; 8], blocks: &[u8]) {
    // SAFETY: per the fn contract, all `p` offsets stay inside one
    // 64-byte block of `blocks`; `state` is 8 words so both halves are
    // valid unaligned load/store targets; `K` holds 64 round constants.
    unsafe {
        // Big-endian words → little-endian lanes.
        let bswap = _mm_setr_epi8(3, 2, 1, 0, 7, 6, 5, 4, 11, 10, 9, 8, 15, 14, 13, 12);
        let mut tmp = _mm_loadu_si128(state.as_ptr() as *const __m128i);
        let mut state1 = _mm_loadu_si128(state.as_ptr().add(4) as *const __m128i);
        tmp = _mm_shuffle_epi32(tmp, 0xB1); // [b a d c]
        state1 = _mm_shuffle_epi32(state1, 0x1B); // [h g f e]
        let mut state0 = _mm_alignr_epi8(tmp, state1, 8); // ABEF
        state1 = _mm_blend_epi16(state1, tmp, 0xF0); // CDGH
        let mut off = 0usize;
        while off < blocks.len() {
            let p = blocks.as_ptr().add(off);
            let abef_save = state0;
            let cdgh_save = state1;
            let mut m = [
                _mm_shuffle_epi8(_mm_loadu_si128(p as *const __m128i), bswap),
                _mm_shuffle_epi8(_mm_loadu_si128(p.add(16) as *const __m128i), bswap),
                _mm_shuffle_epi8(_mm_loadu_si128(p.add(32) as *const __m128i), bswap),
                _mm_shuffle_epi8(_mm_loadu_si128(p.add(48) as *const __m128i), bswap),
            ];
            for i in 0..16 {
                let mut msg =
                    _mm_add_epi32(m[i % 4], _mm_loadu_si128(K.as_ptr().add(i * 4) as *const __m128i));
                state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
                if (3..=14).contains(&i) {
                    // W[t] += W[t-7] (the alignr slice), then σ₁ feedback.
                    let t = _mm_alignr_epi8(m[i % 4], m[(i + 3) % 4], 4);
                    m[(i + 1) % 4] =
                        _mm_sha256msg2_epu32(_mm_add_epi32(m[(i + 1) % 4], t), m[i % 4]);
                }
                msg = _mm_shuffle_epi32(msg, 0x0E);
                state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
                if (1..=12).contains(&i) {
                    // σ₀ feed for the schedule group three ahead.
                    m[(i + 3) % 4] = _mm_sha256msg1_epu32(m[(i + 3) % 4], m[i % 4]);
                }
            }
            state0 = _mm_add_epi32(state0, abef_save);
            state1 = _mm_add_epi32(state1, cdgh_save);
            off += 64;
        }
        tmp = _mm_shuffle_epi32(state0, 0x1B); // FEBA
        state1 = _mm_shuffle_epi32(state1, 0xB1); // DCHG
        state0 = _mm_blend_epi16(tmp, state1, 0xF0); // [a b c d]
        state1 = _mm_alignr_epi8(state1, tmp, 8); // [e f g h]
        _mm_storeu_si128(state.as_mut_ptr() as *mut __m128i, state0);
        _mm_storeu_si128(state.as_mut_ptr().add(4) as *mut __m128i, state1);
    }
}

/// Vectorized `σ₀(x) = x⋙7 ⊕ x⋙18 ⊕ x≫3` across four lanes.
/// Register-only and safe, as [`qround256`].
#[inline]
#[target_feature(enable = "ssse3")]
fn ssig0(x: __m128i) -> __m128i {
    let r7 = _mm_or_si128(_mm_srli_epi32(x, 7), _mm_slli_epi32(x, 25));
    let r18 = _mm_or_si128(_mm_srli_epi32(x, 18), _mm_slli_epi32(x, 14));
    _mm_xor_si128(_mm_xor_si128(r7, r18), _mm_srli_epi32(x, 3))
}

/// Vectorized `σ₁(x) = x⋙17 ⊕ x⋙19 ⊕ x≫10` across four lanes.
/// Register-only and safe, as [`qround256`].
#[inline]
#[target_feature(enable = "ssse3")]
fn ssig1(x: __m128i) -> __m128i {
    let r17 = _mm_or_si128(_mm_srli_epi32(x, 17), _mm_slli_epi32(x, 15));
    let r19 = _mm_or_si128(_mm_srli_epi32(x, 19), _mm_slli_epi32(x, 13));
    _mm_xor_si128(_mm_xor_si128(r17, r19), _mm_srli_epi32(x, 10))
}

/// SSSE3 fallback compression: the 48 schedule words are expanded four
/// at a time with vector shifts (σ₁ of the two in-flight words is
/// resolved in a second phase), then the 64 rounds run scalar via
/// [`crate::sha256::rounds`].
///
/// # Safety
///
/// `blocks.len()` must be a multiple of 64; the caller must have
/// verified SSSE3 support.
#[target_feature(enable = "ssse3")]
unsafe fn sha256_compress_sched(state: &mut [u32; 8], blocks: &[u8]) {
    // SAFETY: per the fn contract, block loads stay inside `blocks`;
    // every `w` load/store below touches lanes `i-16 .. i+4` with
    // `16 ≤ i ≤ 60`, all inside the 64-word array.
    unsafe {
        let bswap = _mm_setr_epi8(3, 2, 1, 0, 7, 6, 5, 4, 11, 10, 9, 8, 15, 14, 13, 12);
        let lo2 = _mm_setr_epi32(-1, -1, 0, 0);
        let hi2 = _mm_setr_epi32(0, 0, -1, -1);
        let mut off = 0usize;
        while off < blocks.len() {
            let p = blocks.as_ptr().add(off);
            let mut w = [0u32; 64];
            for j in 0..4 {
                let v = _mm_shuffle_epi8(_mm_loadu_si128(p.add(j * 16) as *const __m128i), bswap);
                _mm_storeu_si128(w.as_mut_ptr().add(j * 4) as *mut __m128i, v);
            }
            let mut i = 16usize;
            while i < 64 {
                let m0 = _mm_loadu_si128(w.as_ptr().add(i - 16) as *const __m128i);
                let m1 = _mm_loadu_si128(w.as_ptr().add(i - 12) as *const __m128i);
                let m2 = _mm_loadu_si128(w.as_ptr().add(i - 8) as *const __m128i);
                let m3 = _mm_loadu_si128(w.as_ptr().add(i - 4) as *const __m128i);
                let w15 = _mm_alignr_epi8(m1, m0, 4); // W[i-15..i-11]
                let w7 = _mm_alignr_epi8(m3, m2, 4); // W[i-7..i-3]
                let t = _mm_add_epi32(_mm_add_epi32(m0, ssig0(w15)), w7);
                // Phase 1: σ₁ of the two already-known words W[i-2], W[i-1].
                let s1a = _mm_and_si128(ssig1(_mm_shuffle_epi32(m3, 0x0E)), lo2);
                let t01 = _mm_add_epi32(t, s1a); // lanes 0,1 final
                // Phase 2: σ₁ of the words just produced, into lanes 2,3.
                let s1b = _mm_and_si128(ssig1(_mm_shuffle_epi32(t01, 0x40)), hi2);
                let r = _mm_add_epi32(t01, s1b);
                _mm_storeu_si128(w.as_mut_ptr().add(i) as *mut __m128i, r);
                i += 4;
            }
            crate::sha256::rounds(state, &w);
            off += 64;
        }
    }
}

/// Compress whole 64-byte blocks into `state` with the best available
/// engine. Always handles the input on x86_64 (the `Simd` backend
/// implies at least SSSE3); the `bool` mirrors the cross-arch kernel
/// signature.
pub(crate) fn sha256_compress(state: &mut [u32; 8], blocks: &[u8]) -> bool {
    debug_assert_eq!(blocks.len() % 64, 0);
    if blocks.is_empty() {
        return true;
    }
    // SAFETY: dispatch guarantees SSSE3; `sha_rounds` is only set when
    // SHA-NI + SSE4.1 were detected.
    unsafe {
        if crate::simd::caps().sha_rounds {
            sha256_compress_shani(state, blocks);
        } else {
            sha256_compress_sched(state, blocks);
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chacha20;
    use crate::sha256;

    fn scalar_keystream_xor(key: &[u8; 32], nonce: &[u8; 12], counter: u32, data: &mut [u8]) {
        for (blk, chunk) in data.chunks_mut(64).enumerate() {
            let ks = chacha20::block(key, nonce, counter + blk as u32);
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
        }
    }

    fn test_data(len: usize, seed: u8) -> Vec<u8> {
        (0..len).map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed)).collect()
    }

    #[test]
    fn chacha_engines_match_scalar() {
        let key: [u8; 32] = std::array::from_fn(|i| i as u8);
        let nonce: [u8; 12] = std::array::from_fn(|i| 0xA0 + i as u8);
        // Lengths exercising the 4×, 2×, and 1× paths plus counters far
        // from zero.
        for &(blocks, counter) in
            &[(1usize, 0u32), (2, 1), (3, 7), (4, 0), (5, 100), (9, 0xFFFF), (16, 3)]
        {
            let len = blocks * 64;
            let reference = {
                let mut d = test_data(len, 5);
                scalar_keystream_xor(&key, &nonce, counter, &mut d);
                d
            };
            if std::arch::is_x86_feature_detected!("ssse3") {
                let mut d = test_data(len, 5);
                // SAFETY: ssse3 verified above; `d` covers `blocks * 64` bytes.
                unsafe { chacha_ssse3(&key, &nonce, counter, d.as_mut_ptr(), blocks) };
                assert_eq!(d, reference, "ssse3 {blocks} blocks @ ctr {counter}");
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                let mut d = test_data(len, 5);
                // SAFETY: avx2 verified above; `d` covers `blocks * 64` bytes.
                unsafe { chacha_avx2(&key, &nonce, counter, d.as_mut_ptr(), blocks) };
                assert_eq!(d, reference, "avx2 {blocks} blocks @ ctr {counter}");
            }
        }
    }

    #[test]
    fn sha_engines_match_scalar() {
        for nblocks in [1usize, 2, 3, 5, 8] {
            let data = test_data(nblocks * 64, 9);
            let mut reference = sha256::IV;
            for block in data.chunks_exact(64) {
                sha256::compress_scalar(&mut reference, block.try_into().unwrap());
            }
            if std::arch::is_x86_feature_detected!("ssse3") {
                let mut st = sha256::IV;
                // SAFETY: ssse3 verified above; `data` is whole blocks.
                unsafe { sha256_compress_sched(&mut st, &data) };
                assert_eq!(st, reference, "sched {nblocks} blocks");
            }
            if std::arch::is_x86_feature_detected!("sha")
                && std::arch::is_x86_feature_detected!("sse4.1")
                && std::arch::is_x86_feature_detected!("ssse3")
            {
                let mut st = sha256::IV;
                // SAFETY: sha+sse4.1+ssse3 verified above.
                unsafe { sha256_compress_shani(&mut st, &data) };
                assert_eq!(st, reference, "sha-ni {nblocks} blocks");
            }
        }
    }

    #[test]
    fn sha_engines_from_nontrivial_midstate() {
        // Engines must also agree when resuming from a non-IV state
        // (the HMAC midstate path).
        let seed = test_data(64, 3);
        let mut mid = sha256::IV;
        sha256::compress_scalar(&mut mid, seed.as_slice().try_into().unwrap());
        let data = test_data(128, 11);
        let mut reference = mid;
        for block in data.chunks_exact(64) {
            sha256::compress_scalar(&mut reference, block.try_into().unwrap());
        }
        if std::arch::is_x86_feature_detected!("ssse3") {
            let mut st = mid;
            // SAFETY: ssse3 verified above.
            unsafe { sha256_compress_sched(&mut st, &data) };
            assert_eq!(st, reference);
        }
        if std::arch::is_x86_feature_detected!("sha")
            && std::arch::is_x86_feature_detected!("sse4.1")
            && std::arch::is_x86_feature_detected!("ssse3")
        {
            let mut st = mid;
            // SAFETY: sha+sse4.1+ssse3 verified above.
            unsafe { sha256_compress_shani(&mut st, &data) };
            assert_eq!(st, reference);
        }
    }
}
