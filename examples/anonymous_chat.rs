//! Bidirectional anonymous chat over the tokio overlay: Alice reaches Bob
//! through the forwarding graph; Bob answers along the reverse path
//! (§4.3.7) without ever learning who Alice is.
//!
//! Run with: `cargo run --example anonymous_chat`

use std::time::{Duration, Instant};

use information_slicing::core::{GraphParams, OverlayAddr, RelayNode, SourceSession, Tick};
use information_slicing::overlay::daemon::{now_tick, spawn_relay};
use information_slicing::overlay::EmulatedNet;
use information_slicing::sim::NetProfile;
use information_slicing::wire::Packet;
use tokio::sync::mpsc;

#[tokio::main(flavor = "multi_thread", worker_threads = 4)]
async fn main() {
    let net = EmulatedNet::new(NetProfile::lan(), 99);
    let epoch = Instant::now();
    let (events_tx, _events_rx) = mpsc::unbounded_channel();

    // Overlay relays (daemon tasks).
    let mut candidates = Vec::new();
    let mut handles = Vec::new();
    for i in 0..24u64 {
        let port = net.attach(OverlayAddr(10_000 + i));
        candidates.push(port.addr);
        handles.push(spawn_relay(
            RelayNode::new(port.addr, 99),
            port,
            events_tx.clone(),
            epoch,
        ));
    }

    // Bob: driven manually in this example so he can talk back.
    let mut bob_port = net.attach(OverlayAddr(1));
    let bob_addr = bob_port.addr;
    let mut bob = RelayNode::new(bob_addr, 99);

    // Alice: two pseudo-sources, a 4-stage graph with d = 2.
    let mut port_a = net.attach(OverlayAddr(501));
    let mut port_b = net.attach(OverlayAddr(502));
    let pseudo: Vec<OverlayAddr> = vec![port_a.addr, port_b.addr];
    let (mut alice, setup) =
        SourceSession::establish(GraphParams::new(4, 2), &pseudo, &candidates, bob_addr, 99)
            .expect("establish");
    for instr in setup {
        let port = if instr.from == port_a.addr { &port_a } else { &port_b };
        port.tx.send(instr.to, instr.packet.encode()).await;
    }
    tokio::time::sleep(Duration::from_millis(300)).await;

    // Alice speaks first.
    let (_, sends) = alice.send_message(b"hi bob, it's... someone").expect("within chunk budget");
    for instr in sends {
        let port = if instr.from == port_a.addr { &port_a } else { &port_b };
        port.tx.send(instr.to, instr.packet.encode()).await;
    }

    // Bob's event loop: decode the message, reply on the reverse path.
    let mut bob_flow = None;
    let mut replied = false;
    let mut reply = None;
    let deadline = tokio::time::sleep(Duration::from_secs(30));
    tokio::pin!(deadline);
    let mut ticker = tokio::time::interval(Duration::from_millis(100));
    while reply.is_none() {
        tokio::select! {
            maybe = bob_port.rx.recv() => {
                let Some((from, bytes)) = maybe else { break };
                let Ok(packet) = Packet::decode(&bytes) else { continue };
                let out = bob.handle_packet(now_tick(epoch), from, &packet);
                if let Some(&(flow, true)) = out.established.first() {
                    bob_flow = Some(flow);
                }
                for send in out.sends {
                    bob_port.tx.send(send.to, send.packet.encode()).await;
                }
                if let Some(msg) = out.received.into_iter().next() {
                    println!("Bob received : {:?}", String::from_utf8_lossy(&msg.plaintext));
                    let flow = bob_flow.expect("established before data");
                    let replies = bob
                        .send_reverse(now_tick(epoch), flow, 0, b"hello, mysterious stranger")
                        .expect("bob is the receiver");
                    for send in replies {
                        bob_port.tx.send(send.to, send.packet.encode()).await;
                    }
                    replied = true;
                }
            }
            // Alice's pseudo-sources listen for the reverse reply.
            maybe = port_a.rx.recv(), if replied => {
                if let Some((from, bytes)) = maybe {
                    if let Ok(p) = Packet::decode(&bytes) {
                        let a = port_a.addr;
                        reply = alice.handle_packet(Tick(0), a, from, &p);
                    }
                }
            }
            maybe = port_b.rx.recv(), if replied => {
                if let Some((from, bytes)) = maybe {
                    if let Ok(p) = Packet::decode(&bytes) {
                        let a = port_b.addr;
                        reply = alice.handle_packet(Tick(0), a, from, &p);
                    }
                }
            }
            // Bob's timers (reverse first-hop relays flush on timeout).
            _ = ticker.tick() => {
                let out = bob.poll(now_tick(epoch));
                for send in out.sends {
                    bob_port.tx.send(send.to, send.packet.encode()).await;
                }
            }
            _ = &mut deadline => break,
        }
    }

    match reply {
        Some((_, text)) => {
            println!("Alice received: {:?}", String::from_utf8_lossy(&text));
            println!("two-way anonymous channel established — done.");
        }
        None => println!("no reply within deadline"),
    }
    for h in handles {
        h.abort();
    }
}
