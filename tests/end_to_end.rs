//! Cross-crate integration: the full protocol stack, from graph
//! construction through wire encoding to destination decryption, over
//! the deterministic test network and both tokio transports.

use std::time::Duration;

use information_slicing::core::testnet::TestNet;
use information_slicing::core::{
    DataMode, DestPlacement, GraphParams, OverlayAddr, SourceSession,
};
use information_slicing::overlay::experiment::{
    run_onion_transfer, run_slicing_transfer, Transport,
};
use information_slicing::overlay::TransferConfig;
use information_slicing::sim::NetProfile;

fn addrs(base: u64, n: usize) -> Vec<OverlayAddr> {
    (0..n as u64).map(|i| OverlayAddr(base + i)).collect()
}

#[test]
fn many_shapes_end_to_end() {
    for (l, d, dp, seed) in [
        (1usize, 2usize, 2usize, 1u64),
        (2, 2, 2, 2),
        (4, 2, 3, 3),
        (5, 3, 4, 4),
        (8, 2, 2, 5),
        (6, 4, 4, 6),
    ] {
        let pseudo = addrs(10_000, dp);
        let candidates = addrs(20_000, l * dp + 8);
        let dest = OverlayAddr(1);
        let mut nodes = candidates.clone();
        nodes.push(dest);
        let params = GraphParams::new(l, d).with_paths(dp);
        let (mut source, setup) =
            SourceSession::establish(params, &pseudo, &candidates, dest, seed).unwrap();
        source.graph().validate().unwrap();
        let mut net = TestNet::new(&nodes, seed);
        net.submit(setup);
        net.run_to_quiescence(Some(&mut source));
        let msg = format!("shape L={l} d={d} d'={dp}");
        let (_, sends) = source.send_message(msg.as_bytes()).expect("within chunk budget");
        net.submit(sends);
        net.run_to_quiescence(Some(&mut source));
        let got = net.messages_for(dest);
        assert_eq!(got.len(), 1, "L={l} d={d} d'={dp}");
        assert_eq!(got[0].1, msg.as_bytes());
    }
}

#[test]
fn multi_message_stream_in_order() {
    let (l, d) = (4usize, 2usize);
    let pseudo = addrs(10_000, d);
    let candidates = addrs(20_000, 20);
    let dest = OverlayAddr(1);
    let mut nodes = candidates.clone();
    nodes.push(dest);
    let (mut source, setup) =
        SourceSession::establish(GraphParams::new(l, d), &pseudo, &candidates, dest, 9).unwrap();
    let mut net = TestNet::new(&nodes, 9);
    net.submit(setup);
    net.run_to_quiescence(Some(&mut source));
    for i in 0..25u32 {
        let (seq, sends) = source.send_message(format!("m{i}").as_bytes()).expect("within chunk budget");
        assert_eq!(seq, i);
        net.submit(sends);
    }
    net.run_to_quiescence(Some(&mut source));
    let got = net.messages_for(dest);
    assert_eq!(got.len(), 25);
    for (i, (seq, body)) in got.iter().enumerate() {
        assert_eq!(*seq, i as u32);
        assert_eq!(body, format!("m{i}").as_bytes());
    }
}

#[test]
fn map_mode_survives_failure_via_regeneration() {
    // DataMode::Map exercises the paper's literal data-map forwarding;
    // a failed parent triggers §4.4.1 regeneration.
    let (l, d, dp) = (4usize, 2usize, 3usize);
    let pseudo = addrs(10_000, dp);
    let candidates = addrs(20_000, 20);
    let dest = OverlayAddr(1);
    let mut nodes = candidates.clone();
    nodes.push(dest);
    let params = GraphParams::new(l, d)
        .with_paths(dp)
        .with_data_mode(DataMode::Map)
        .with_dest_placement(DestPlacement::LastStage);
    let (mut source, setup) =
        SourceSession::establish(params, &pseudo, &candidates, dest, 11).unwrap();
    let mut net = TestNet::new(&nodes, 11);
    net.submit(setup);
    net.run_to_quiescence(Some(&mut source));
    net.fail(source.graph().stages[2][1]);
    let (_, sends) = source.send_message(b"map-mode survives").expect("within chunk budget");
    net.submit(sends);
    net.settle(Some(&mut source), 1_500, 6);
    let got = net.messages_for(dest);
    assert_eq!(got.len(), 1);
    assert_eq!(got[0].1, b"map-mode survives");
}

#[test]
fn too_many_failures_lose_the_message_but_nothing_panics() {
    let (l, d, dp) = (4usize, 2usize, 3usize);
    let pseudo = addrs(10_000, dp);
    let candidates = addrs(20_000, 20);
    let dest = OverlayAddr(1);
    let mut nodes = candidates.clone();
    nodes.push(dest);
    let params = GraphParams::new(l, d)
        .with_paths(dp)
        .with_dest_placement(DestPlacement::LastStage);
    let (mut source, setup) =
        SourceSession::establish(params, &pseudo, &candidates, dest, 13).unwrap();
    let mut net = TestNet::new(&nodes, 13);
    net.submit(setup);
    net.run_to_quiescence(Some(&mut source));
    // Kill an entire stage: no slice can cross it, the flow must die
    // quietly. (Killing all-but-one is survivable: every node carries all
    // d' data slices in Map mode, and regeneration covers the rest —
    // stronger than Eq. 7's conservative stage-threshold model.)
    for idx in 0..dp {
        let addr = source.graph().stages[2][idx];
        if addr != dest {
            net.fail(addr);
        }
    }
    let (_, sends) = source.send_message(b"doomed").expect("within chunk budget");
    net.submit(sends);
    net.settle(Some(&mut source), 1_500, 6);
    assert!(net.messages_for(dest).is_empty());
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn tokio_emulated_wan_full_transfer() {
    let cfg = TransferConfig {
        params: GraphParams::new(4, 2).with_dest_placement(DestPlacement::LastStage),
        transport: Transport::Emulated(NetProfile::planetlab()),
        messages: 8,
        payload_len: 1000,
        seed: 21,
        timeout: Duration::from_secs(60),
        relay_shards: 1,
        relay_config: Default::default(),
    };
    let report = run_slicing_transfer(&cfg).await;
    assert_eq!(report.messages_delivered, 8, "{report:?}");
    // WAN RTTs are tens of ms; setup must reflect that.
    assert!(report.setup_ms >= 40, "setup {} too fast for WAN", report.setup_ms);
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn tokio_tcp_loopback_slicing_beats_no_delivery() {
    let cfg = TransferConfig {
        params: GraphParams::new(3, 2).with_dest_placement(DestPlacement::LastStage),
        transport: Transport::Tcp,
        messages: 10,
        payload_len: 1200,
        seed: 23,
        timeout: Duration::from_secs(60),
        relay_shards: 1,
        relay_config: Default::default(),
    };
    let report = run_slicing_transfer(&cfg).await;
    assert_eq!(report.messages_delivered, 10, "{report:?}");
    assert!(report.throughput_mbps > 0.0);
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn slicing_beats_onion_on_lan_throughput() {
    // The Fig. 11 headline, as a guarded integration test. Use a
    // link-bound profile (slow single-connection links, negligible other
    // delays) so the d-parallel-paths effect dominates debug-build CPU
    // noise; the release-mode fig11 binary uses the realistic profile.
    let profile = NetProfile {
        min_delay_ms: 0.05,
        max_delay_ms: 0.2,
        load_delay_ms: 0.0,
        loss: 0.0,
        bandwidth_bytes_per_ms: 1e9,
        link_bytes_per_ms: 300.0,
    };
    let mk = |seed| TransferConfig {
        params: GraphParams::new(3, 2).with_dest_placement(DestPlacement::LastStage),
        transport: Transport::Emulated(profile),
        messages: 30,
        payload_len: 1400,
        seed,
        timeout: Duration::from_secs(90),
        relay_shards: 1,
        relay_config: Default::default(),
    };
    let s = run_slicing_transfer(&mk(31)).await;
    let o = run_onion_transfer(&mk(31)).await;
    assert_eq!(s.messages_delivered, 30, "slicing {s:?}");
    assert_eq!(o.messages_delivered, 30, "onion {o:?}");
    assert!(
        s.throughput_mbps > o.throughput_mbps,
        "slicing {} Mb/s must beat onion {} Mb/s",
        s.throughput_mbps,
        o.throughput_mbps
    );
}
