//! Quickstart: Alice sends Bob a confidential, anonymous message over an
//! in-memory overlay — no public keys anywhere (the paper's opening
//! scenario, §1 and Fig. 1).
//!
//! Run with: `cargo run --example quickstart`

use information_slicing::core::testnet::TestNet;
use information_slicing::core::{GraphParams, OverlayAddr, SourceSession};

fn main() {
    // The overlay: 40 peer-to-peer nodes Alice knows about (e.g. peers
    // from a file-sharing network whose software supports slicing).
    let candidates: Vec<OverlayAddr> = (0..40)
        .map(|i| OverlayAddr::from_ipv4([10, 0, (i / 250) as u8, (i % 250) as u8 + 1], 9000))
        .collect();

    // Alice's addresses: home and work (§3's pseudo-sources).
    let alice_home = OverlayAddr::from_ipv4([203, 0, 113, 5], 9000);
    let alice_work = OverlayAddr::from_ipv4([198, 51, 100, 7], 9000);
    let pseudo = vec![alice_home, alice_work];

    // Bob — he has no keys; he just runs the overlay software.
    let bob = OverlayAddr::from_ipv4([192, 0, 2, 33], 9000);

    // Establish a forwarding graph: L = 5 stages, split factor d = 2.
    // Each relay will learn only its own parents and children; Bob is
    // hidden at a random stage.
    let params = GraphParams::new(5, 2);
    let (mut alice, setup) =
        SourceSession::establish(params, &pseudo, &candidates, bob, 42).expect("establish");
    println!(
        "graph built: {} stages x {} nodes, Bob hidden at stage {}",
        alice.graph().params.length,
        alice.graph().params.paths,
        alice.graph().dest.stage
    );

    // Drive the overlay.
    let mut nodes = candidates.clone();
    nodes.push(bob);
    let mut net = TestNet::new(&nodes, 42);
    net.submit(setup);
    net.run_to_quiescence(Some(&mut alice));
    println!(
        "setup complete: {} packets / {} bytes on the wire",
        net.packets_transported, net.bytes_transported
    );

    // Send the message.
    let (_, packets) = alice.send_message(b"Let's meet at 5pm").expect("within chunk budget");
    net.submit(packets);
    net.run_to_quiescence(Some(&mut alice));

    let received = net.messages_for(bob);
    println!(
        "Bob decoded: {:?}",
        String::from_utf8_lossy(&received[0].1)
    );
    assert_eq!(received[0].1, b"Let's meet at 5pm");

    // Nobody else decoded anything.
    assert!(net.delivered.iter().all(|(addr, _)| *addr == bob));
    println!("no relay other than Bob could decrypt — done.");
}
