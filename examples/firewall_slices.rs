//! The §9.3 "powerful firewall" scenario: a censor sees *every* slice
//! crossing the border, but as long as at least one slice travels
//! encrypted (through a pseudo-source tunnel) — or the graph is cut
//! across stages — it cannot reconstruct the message.
//!
//! This example demonstrates the information-theoretic half of that
//! argument with the codec directly: given all-but-one slice, every
//! candidate plaintext is equally consistent (pi-security, Lemma 5.1).
//!
//! Run with: `cargo run --example firewall_slices`

use information_slicing::codec::{decode, encode};
use information_slicing::gf::{Field, Gf256, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2024);
    let message = b"meet at the border cafe at noon";
    let d = 3;

    // The sender splits the message into d = 3 slices; one slice is
    // tunneled to a pseudo-source outside the firewall (the censor sees
    // only ciphertext for it), the other two cross openly.
    let coded = encode(message, d, d, &mut rng);
    let crossing_openly = &coded.slices[..d - 1];
    println!(
        "firewall observes {} of {} slices ({} bytes each)",
        crossing_openly.len(),
        d,
        crossing_openly[0].payload.len()
    );

    // The censor tries to brute-force the first byte of the message
    // block: every candidate value is *consistent* with what it saw.
    let block_len = coded.block_len;
    let mut consistent = 0usize;
    for candidate in 0..=255u8 {
        // Fix message block 0, byte 0 to `candidate`; check that the
        // remaining unknowns can still satisfy the observed slices.
        let mut a = Matrix::<Gf256>::zero(d - 1, d - 1);
        let mut b = Vec::new();
        for (i, s) in crossing_openly.iter().enumerate() {
            for k in 1..d {
                a.set(i, k - 1, Gf256::new(s.coeffs[k]));
            }
            b.push(
                Gf256::new(s.payload[0])
                    .sub(Gf256::new(s.coeffs[0]).mul(Gf256::new(candidate))),
            );
        }
        if a.solve(&b).is_some() {
            consistent += 1;
        }
    }
    println!("candidate first bytes consistent with the observation: {consistent}/256");
    assert_eq!(consistent, 256, "pi-security: nothing is ruled out");
    let _ = block_len;

    // The intended recipient, holding all d slices, decodes trivially.
    let decoded = decode(&coded.slices, d).unwrap();
    assert_eq!(decoded, message);
    println!(
        "recipient with all {} slices decodes: {:?}",
        d,
        String::from_utf8_lossy(&decoded)
    );
    println!("the censor learned nothing; the message crossed anyway.");
}
