//! Information-theoretic mode (§5): additive `d`-of-`d` secret sharing.
//!
//! "Instead of chopping the data into d parts and then coding them, we can
//! combine each of the d parts with d − 1 random parts. This will increase
//! the space required d-fold, but provides extremely strong
//! information-theoretic security."
//!
//! Each block is expanded into `d` shares: `d − 1` uniformly random pads
//! plus the XOR of the block with all pads. Any `d − 1` shares are jointly
//! uniform (perfect secrecy); all `d` reconstruct exactly.

use rand::Rng;

use slicing_gf::bulk;

/// Shares of one block under `d`-of-`d` additive sharing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Shares {
    /// The `d` shares; all are required for reconstruction.
    pub shares: Vec<Vec<u8>>,
}

/// Split `block` into `d` shares with perfect secrecy.
///
/// # Panics
/// Panics if `d == 0`.
pub fn share<R: Rng + ?Sized>(block: &[u8], d: usize, rng: &mut R) -> Shares {
    assert!(d >= 1, "need at least one share");
    let mut shares: Vec<Vec<u8>> = Vec::with_capacity(d);
    let mut acc = block.to_vec();
    for _ in 0..d - 1 {
        let mut pad = vec![0u8; block.len()];
        rng.fill_bytes(&mut pad);
        bulk::xor_slice(&mut acc, &pad);
        shares.push(pad);
    }
    shares.push(acc);
    Shares { shares }
}

/// Reconstruct the block from all `d` shares.
///
/// # Panics
/// Panics if shares are ragged or empty.
pub fn reconstruct(shares: &Shares) -> Vec<u8> {
    let first = shares.shares.first().expect("no shares");
    let len = first.len();
    assert!(
        shares.shares.iter().all(|s| s.len() == len),
        "ragged shares"
    );
    let mut out = vec![0u8; len];
    for s in &shares.shares {
        bulk::xor_slice(&mut out, s);
    }
    out
}

/// Space expansion of this mode relative to plain slicing (the paper's
/// "d-fold" cost): `d` shares each as large as the original block.
pub fn expansion_factor(d: usize) -> usize {
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn round_trip() {
        let mut rng = StdRng::seed_from_u64(3);
        for d in 1..=6 {
            let block = b"information theoretic";
            let s = share(block, d, &mut rng);
            assert_eq!(s.shares.len(), d);
            assert_eq!(reconstruct(&s), block);
        }
    }

    #[test]
    fn missing_share_gives_garbage() {
        let mut rng = StdRng::seed_from_u64(4);
        let block = vec![7u8; 32];
        let mut s = share(&block, 3, &mut rng);
        s.shares.pop();
        let partial = reconstruct(&s);
        assert_ne!(partial, block);
    }

    /// Perfect secrecy shape: with one share withheld, the remaining
    /// shares are an XOR-pad away from *any* candidate block, so two
    /// different plaintexts are indistinguishable from d−1 shares.
    #[test]
    fn partial_shares_consistent_with_any_plaintext() {
        let mut rng = StdRng::seed_from_u64(5);
        let d = 3;
        let observed_shares = |block: &[u8], rng: &mut StdRng| {
            let s = share(block, d, rng);
            s.shares[..d - 1].to_vec()
        };
        let a = observed_shares(&[0x00; 16], &mut rng);
        // For any candidate plaintext there exists a final share making the
        // observation valid: final = candidate XOR (xor of observed).
        for candidate in [[0xFFu8; 16], [0x42; 16], [0x00; 16]] {
            let mut final_share = candidate.to_vec();
            for s in &a {
                for (f, b) in final_share.iter_mut().zip(s.iter()) {
                    *f ^= b;
                }
            }
            let mut full = a.clone();
            full.push(final_share);
            assert_eq!(reconstruct(&Shares { shares: full }), candidate.to_vec());
        }
    }

    #[test]
    fn expansion_matches_paper() {
        assert_eq!(expansion_factor(4), 4);
    }
}
