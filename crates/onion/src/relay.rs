//! The onion relay: strips one layer per packet and forwards.

use std::collections::HashMap;

use slicing_crypto::chacha20::ChaCha20;
use slicing_crypto::{aead, RsaKeyPair, SymmetricKey};
use slicing_graph::OverlayAddr;

use crate::circuit::{data_nonce, OnionSend};
use crate::wire::{OnionPacket, OnionPacketKind};

/// Per-circuit relay state.
#[derive(Clone)]
struct CircuitState {
    session_key: SymmetricKey,
    next: Option<(OverlayAddr, u64)>,
    is_exit: bool,
}

/// Output of feeding one packet to an onion relay.
#[derive(Clone, Debug, Default)]
pub struct OnionRelayOutput {
    /// Packets to forward.
    pub sends: Vec<OnionSend>,
    /// Set when a setup completed at this hop; true if this hop is the
    /// exit (destination).
    pub established: Option<bool>,
    /// Plaintext delivered at the exit.
    pub delivered: Vec<(u32, Vec<u8>)>,
}

/// An onion-routing relay node.
pub struct OnionRelay {
    addr: OverlayAddr,
    keypair: RsaKeyPair,
    circuits: HashMap<u64, CircuitState>,
    /// Count of RSA decryptions performed (the setup-phase cost knob the
    /// paper contrasts with slicing's key-free setup).
    pub rsa_ops: u64,
    /// Packets dropped (unknown circuit / malformed).
    pub drops: u64,
}

impl OnionRelay {
    /// Create a relay owning `keypair` (its directory-registered key).
    pub fn new(addr: OverlayAddr, keypair: RsaKeyPair) -> Self {
        OnionRelay {
            addr,
            keypair,
            circuits: HashMap::new(),
            rsa_ops: 0,
            drops: 0,
        }
    }

    /// This relay's address.
    pub fn addr(&self) -> OverlayAddr {
        self.addr
    }

    /// Live circuit count.
    pub fn circuit_count(&self) -> usize {
        self.circuits.len()
    }

    /// Process one packet.
    pub fn handle_packet(&mut self, packet: &OnionPacket) -> OnionRelayOutput {
        match packet.kind {
            OnionPacketKind::Setup => self.handle_setup(packet),
            OnionPacketKind::Data => self.handle_data(packet),
        }
    }

    fn handle_setup(&mut self, packet: &OnionPacket) -> OnionRelayOutput {
        let mut out = OnionRelayOutput::default();
        let payload = &packet.payload;
        if payload.len() < 2 {
            self.drops += 1;
            return out;
        }
        let rsa_len = u16::from_le_bytes([payload[0], payload[1]]) as usize;
        if payload.len() < 2 + rsa_len {
            self.drops += 1;
            return out;
        }
        let rsa_ct = &payload[2..2 + rsa_len];
        self.rsa_ops += 1;
        let Some(seed_bytes) = self.keypair.decrypt_bytes(rsa_ct) else {
            self.drops += 1;
            return out;
        };
        let Ok(layer_seed): Result<[u8; 16], _> = seed_bytes.try_into() else {
            self.drops += 1;
            return out;
        };
        let layer_key = crate::circuit::layer_key_from_seed(&layer_seed);
        let mut body = payload[2 + rsa_len..].to_vec();
        ChaCha20::xor(&layer_key, &[0u8; 12], 0, &mut body);
        // flags(1) next_addr(8) next_circuit(8) session_key(32) len(4) inner
        if body.len() < 53 {
            self.drops += 1;
            return out;
        }
        let is_exit = body[0] == 1;
        let next_addr = OverlayAddr::from_bytes(body[1..9].try_into().unwrap());
        let next_circuit = u64::from_le_bytes(body[9..17].try_into().unwrap());
        let mut key = [0u8; 32];
        key.copy_from_slice(&body[17..49]);
        let inner_len = u32::from_le_bytes(body[49..53].try_into().unwrap()) as usize;
        if body.len() < 53 + inner_len {
            self.drops += 1;
            return out;
        }
        let inner = body[53..53 + inner_len].to_vec();

        self.circuits.insert(
            packet.circuit,
            CircuitState {
                session_key: SymmetricKey(key),
                next: if is_exit {
                    None
                } else {
                    Some((next_addr, next_circuit))
                },
                is_exit,
            },
        );
        out.established = Some(is_exit);
        if !is_exit {
            out.sends.push(OnionSend {
                from: self.addr,
                to: next_addr,
                packet: OnionPacket {
                    circuit: next_circuit,
                    kind: OnionPacketKind::Setup,
                    seq: 0,
                    payload: inner.into(),
                },
            });
        }
        out
    }

    fn handle_data(&mut self, packet: &OnionPacket) -> OnionRelayOutput {
        let mut out = OnionRelayOutput::default();
        let Some(state) = self.circuits.get(&packet.circuit) else {
            self.drops += 1;
            return out;
        };
        let state = state.clone();
        if state.is_exit {
            // Innermost layer is an AEAD seal under the exit session key
            // (read in place — no copy at the exit).
            match aead::open(&state.session_key, &packet.payload) {
                Ok(plaintext) => out.delivered.push((packet.seq, plaintext)),
                Err(_) => self.drops += 1,
            }
            return out;
        }
        // Strip one stream layer and forward (the one unavoidable copy:
        // decryption rewrites the bytes).
        let mut payload = packet.payload.to_vec();
        ChaCha20::xor(&state.session_key.0, &data_nonce(packet.seq), 0, &mut payload);
        let (next_addr, next_circuit) = state.next.expect("non-exit has next hop");
        out.sends.push(OnionSend {
            from: self.addr,
            to: next_addr,
            packet: OnionPacket {
                circuit: next_circuit,
                kind: OnionPacketKind::Data,
                seq: packet.seq,
                payload: payload.into(),
            },
        });
        out
    }

    /// Raw access to a circuit's session key (used by the erasure exit
    /// helper and by tests).
    pub fn session_key(&self, circuit: u64) -> Option<SymmetricKey> {
        self.circuits.get(&circuit).map(|c| c.session_key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::OnionSource;
    use crate::Directory;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Drive a circuit through an in-memory chain of relays.
    fn run_chain(
        hops: usize,
        msg: &[u8],
        seed: u64,
    ) -> (Vec<(u32, Vec<u8>)>, Vec<OnionRelay>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut dir = Directory::new();
        let path: Vec<OverlayAddr> = (0..hops as u64).map(|i| OverlayAddr(100 + i)).collect();
        let mut relays: HashMap<OverlayAddr, OnionRelay> = path
            .iter()
            .map(|&a| {
                let kp = dir.register(a, 256, &mut rng);
                (a, OnionRelay::new(a, kp))
            })
            .collect();
        let (mut handle, setup) =
            OnionSource::build_circuit(OverlayAddr(1), &path, &dir, &mut rng).unwrap();
        // Deliver setup through the chain.
        let mut queue = vec![setup];
        let mut delivered = Vec::new();
        while let Some(send) = queue.pop() {
            let relay = relays.get_mut(&send.to).unwrap();
            let out = relay.handle_packet(&send.packet);
            queue.extend(out.sends);
            delivered.extend(out.delivered);
        }
        // Send data.
        let (_, data) = handle.send_data(msg, &mut rng);
        let mut queue = vec![data];
        while let Some(send) = queue.pop() {
            let relay = relays.get_mut(&send.to).unwrap();
            let out = relay.handle_packet(&send.packet);
            queue.extend(out.sends);
            delivered.extend(out.delivered);
        }
        let relays_vec = path.into_iter().map(|a| relays.remove(&a).unwrap()).collect();
        (delivered, relays_vec)
    }

    #[test]
    fn end_to_end_one_hop() {
        let (delivered, _) = run_chain(1, b"hi", 1);
        assert_eq!(delivered, vec![(0, b"hi".to_vec())]);
    }

    #[test]
    fn end_to_end_five_hops() {
        let (delivered, relays) = run_chain(5, b"onion message", 2);
        assert_eq!(delivered, vec![(0, b"onion message".to_vec())]);
        // Exactly one RSA decryption per relay during setup.
        assert!(relays.iter().all(|r| r.rsa_ops == 1));
        assert!(relays.iter().all(|r| r.circuit_count() == 1));
    }

    #[test]
    fn unknown_circuit_data_dropped() {
        let mut rng = StdRng::seed_from_u64(3);
        let kp = slicing_crypto::RsaKeyPair::generate(256, &mut rng);
        let mut relay = OnionRelay::new(OverlayAddr(5), kp);
        let out = relay.handle_packet(&OnionPacket {
            circuit: 42,
            kind: OnionPacketKind::Data,
            seq: 0,
            payload: vec![0u8; 64].into(),
        });
        assert!(out.sends.is_empty());
        assert_eq!(relay.drops, 1);
    }

    #[test]
    fn malformed_setup_dropped() {
        let mut rng = StdRng::seed_from_u64(4);
        let kp = slicing_crypto::RsaKeyPair::generate(256, &mut rng);
        let mut relay = OnionRelay::new(OverlayAddr(5), kp);
        let out = relay.handle_packet(&OnionPacket {
            circuit: 42,
            kind: OnionPacketKind::Setup,
            seq: 0,
            payload: vec![0xFF; 10].into(),
        });
        assert!(out.established.is_none());
        assert!(relay.drops >= 1);
    }

    #[test]
    fn tampered_data_rejected_at_exit() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut dir = Directory::new();
        let addr = OverlayAddr(100);
        let kp = dir.register(addr, 256, &mut rng);
        let mut relay = OnionRelay::new(addr, kp);
        let (mut handle, setup) =
            OnionSource::build_circuit(OverlayAddr(1), &[addr], &dir, &mut rng).unwrap();
        relay.handle_packet(&setup.packet);
        let (_, mut data) = handle.send_data(b"secret", &mut rng);
        let mid = data.packet.payload.len() / 2;
        let mut tampered = data.packet.payload.to_vec();
        tampered[mid] ^= 1;
        data.packet.payload = tampered.into();
        let out = relay.handle_packet(&data.packet);
        assert!(out.delivered.is_empty());
        assert_eq!(relay.drops, 1);
    }
}
