//! Dense matrices over a [`Field`], with the operations the slicing
//! protocol needs: multiplication, Gauss–Jordan inversion, rank, solving,
//! and random-invertible generation.

use rand::Rng;

use crate::field::{axpy, dot, scale, sub_scaled, Field};

/// A dense row-major matrix over field `F`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Matrix<F: Field> {
    rows: usize,
    cols: usize,
    data: Vec<F>,
}

impl<F: Field> std::fmt::Debug for Matrix<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            writeln!(f, "  {:?}", self.row(r))?;
        }
        write!(f, "]")
    }
}

impl<F: Field> Matrix<F> {
    /// All-zero matrix of the given shape.
    pub fn zero(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![F::zero(); rows * cols],
        }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zero(n, n);
        for i in 0..n {
            m.set(i, i, F::one());
        }
        m
    }

    /// Build from a flat row-major element vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<F>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Matrix { rows, cols, data }
    }

    /// Build from a slice of equal-length rows.
    ///
    /// # Panics
    /// Panics if rows are ragged or empty.
    pub fn from_rows(rows: &[Vec<F>]) -> Self {
        assert!(!rows.is_empty(), "no rows");
        let cols = rows[0].len();
        assert!(rows.iter().all(|r| r.len() == cols), "ragged rows");
        Matrix {
            rows: rows.len(),
            cols,
            data: rows.concat(),
        }
    }

    /// Uniformly random matrix.
    pub fn random<R: Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> Self {
        let data = (0..rows * cols).map(|_| F::random(rng)).collect();
        Matrix { rows, cols, data }
    }

    /// Random *invertible* `n × n` matrix, by rejection sampling.
    ///
    /// Over GF(2⁸) a uniform random square matrix is invertible with
    /// probability ≈ ∏(1 − 2⁻⁸ᵏ) ≈ 0.996, so the expected number of
    /// samples is ~1.004; the loop terminates almost immediately.
    pub fn random_invertible<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Self {
        loop {
            let m = Self::random(n, n, rng);
            if m.is_invertible() {
                return m;
            }
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> F {
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: F) {
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[F] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [F] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The flat row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[F] {
        &self.data
    }

    /// Matrix × matrix.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn mul_mat(&self, rhs: &Matrix<F>) -> Matrix<F> {
        assert_eq!(self.cols, rhs.rows, "inner dimension mismatch");
        let mut out = Matrix::zero(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a.is_zero() {
                    continue;
                }
                let (dst, src) = (i * rhs.cols, k * rhs.cols);
                let rhs_row = &rhs.data[src..src + rhs.cols];
                axpy(&mut out.data[dst..dst + rhs.cols], a, rhs_row);
            }
        }
        out
    }

    /// Matrix × column-vector.
    ///
    /// # Panics
    /// Panics if `v.len() != ncols()`.
    pub fn mul_vec(&self, v: &[F]) -> Vec<F> {
        assert_eq!(v.len(), self.cols, "vector length mismatch");
        (0..self.rows).map(|r| dot(self.row(r), v)).collect()
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix<F> {
        let mut out = Matrix::zero(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Row rank via Gaussian elimination (non-destructive).
    ///
    /// Elimination runs row-at-a-time through the [`Field`] bulk kernels
    /// ([`scale`], [`sub_scaled`]) — for GF(2⁸) that streams each row
    /// update through one 64 KiB-table row instead of per-element
    /// log/exp.
    pub fn rank(&self) -> usize {
        let mut m = self.clone();
        let mut rank = 0;
        for col in 0..m.cols {
            if rank == m.rows {
                break;
            }
            // Find pivot.
            let pivot = (rank..m.rows).find(|&r| !m.get(r, col).is_zero());
            let Some(p) = pivot else { continue };
            m.swap_rows(rank, p);
            let inv = m.get(rank, col).inv();
            scale(&mut m.row_mut(rank)[col..], inv);
            for r in 0..m.rows {
                if r != rank && !m.get(r, col).is_zero() {
                    let factor = m.get(r, col);
                    let (pivot_row, row) = m.two_rows_mut(rank, r);
                    sub_scaled(&mut row[col..], factor, &pivot_row[col..]);
                }
            }
            rank += 1;
        }
        rank
    }

    /// Whether this matrix is square and full rank.
    pub fn is_invertible(&self) -> bool {
        self.rows == self.cols && self.rank() == self.rows
    }

    /// Gauss–Jordan inverse; `None` if singular or non-square.
    ///
    /// Pivot normalization and row elimination go through the [`Field`]
    /// bulk kernels (see [`Matrix::rank`]).
    pub fn inverse(&self) -> Option<Matrix<F>> {
        if self.rows != self.cols {
            return None;
        }
        let n = self.rows;
        let mut a = self.clone();
        let mut inv: Matrix<F> = Matrix::identity(n);
        for col in 0..n {
            let pivot = (col..n).find(|&r| !a.get(r, col).is_zero())?;
            a.swap_rows(col, pivot);
            inv.swap_rows(col, pivot);
            let norm = a.get(col, col).inv();
            scale(a.row_mut(col), norm);
            scale(inv.row_mut(col), norm);
            for r in 0..n {
                if r != col && !a.get(r, col).is_zero() {
                    let factor = a.get(r, col);
                    let (pivot_row, row) = a.two_rows_mut(col, r);
                    sub_scaled(row, factor, pivot_row);
                    let (pivot_row, row) = inv.two_rows_mut(col, r);
                    sub_scaled(row, factor, pivot_row);
                }
            }
        }
        Some(inv)
    }

    /// Solve `self · x = b` for a square invertible system; `None` if the
    /// system is singular.
    ///
    /// # Panics
    /// Panics if `b.len() != nrows()`.
    pub fn solve(&self, b: &[F]) -> Option<Vec<F>> {
        assert_eq!(b.len(), self.rows, "rhs length mismatch");
        if self.rows != self.cols {
            return None;
        }
        let n = self.rows;
        let mut a = self.clone();
        let mut x: Vec<F> = b.to_vec();
        for col in 0..n {
            let pivot = (col..n).find(|&r| !a.get(r, col).is_zero())?;
            a.swap_rows(col, pivot);
            x.swap(col, pivot);
            let norm = a.get(col, col).inv();
            scale(a.row_mut(col), norm);
            x[col] = x[col].mul(norm);
            for r in 0..n {
                if r != col && !a.get(r, col).is_zero() {
                    let factor = a.get(r, col);
                    let (pivot_row, row) = a.two_rows_mut(col, r);
                    sub_scaled(row, factor, pivot_row);
                    x[r] = x[r].sub(factor.mul(x[col]));
                }
            }
        }
        Some(x)
    }

    /// New matrix formed from the given row indices (order preserved).
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix<F> {
        let mut out = Matrix::zero(indices.len(), self.cols);
        for (i, &r) in indices.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(r));
        }
        out
    }

    /// Mutably borrow two distinct rows at once (`(row_a, row_b)`), for
    /// row-wise elimination through the bulk kernels.
    ///
    /// # Panics
    /// Panics if `a == b` or either index is out of bounds.
    fn two_rows_mut(&mut self, a: usize, b: usize) -> (&mut [F], &mut [F]) {
        assert_ne!(a, b, "two_rows_mut needs distinct rows");
        let cols = self.cols;
        let (lo, hi) = (a.min(b), a.max(b));
        let (head, tail) = self.data.split_at_mut(hi * cols);
        let row_lo = &mut head[lo * cols..(lo + 1) * cols];
        let row_hi = &mut tail[..cols];
        if a < b {
            (row_lo, row_hi)
        } else {
            (row_hi, row_lo)
        }
    }

    /// Swap two rows in place.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        let (a, b) = (a.min(b), a.max(b));
        let (head, tail) = self.data.split_at_mut(b * self.cols);
        head[a * self.cols..(a + 1) * self.cols].swap_with_slice(&mut tail[..self.cols]);
    }

    /// Serialize to bytes: each element in canonical encoding, row-major.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = vec![0u8; self.rows * self.cols * F::BYTES];
        for (i, e) in self.data.iter().enumerate() {
            e.write_bytes(&mut out[i * F::BYTES..(i + 1) * F::BYTES]);
        }
        out
    }

    /// Deserialize from the encoding produced by [`Matrix::to_bytes`].
    ///
    /// # Panics
    /// Panics if `bytes.len() != rows * cols * F::BYTES`.
    pub fn from_bytes(rows: usize, cols: usize, bytes: &[u8]) -> Self {
        assert_eq!(bytes.len(), rows * cols * F::BYTES, "length mismatch");
        let data = bytes.chunks_exact(F::BYTES).map(F::read_bytes).collect();
        Matrix { rows, cols, data }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Gf256;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn identity_is_multiplicative_identity() {
        let mut rng = rng();
        let a = Matrix::<Gf256>::random(4, 4, &mut rng);
        let i = Matrix::<Gf256>::identity(4);
        assert_eq!(a.mul_mat(&i), a);
        assert_eq!(i.mul_mat(&a), a);
    }

    #[test]
    fn inverse_round_trip() {
        let mut rng = rng();
        for n in 1..=8 {
            let a = Matrix::<Gf256>::random_invertible(n, &mut rng);
            let inv = a.inverse().expect("invertible by construction");
            assert_eq!(a.mul_mat(&inv), Matrix::identity(n));
            assert_eq!(inv.mul_mat(&a), Matrix::identity(n));
        }
    }

    #[test]
    fn singular_matrix_has_no_inverse() {
        let mut m = Matrix::<Gf256>::zero(3, 3);
        m.set(0, 0, Gf256(1));
        m.set(1, 1, Gf256(1));
        // Row 2 duplicates row 0.
        m.set(2, 0, Gf256(1));
        assert!(m.inverse().is_none());
        assert_eq!(m.rank(), 2);
        assert!(!m.is_invertible());
    }

    #[test]
    fn solve_matches_inverse_multiplication() {
        let mut rng = rng();
        let a = Matrix::<Gf256>::random_invertible(5, &mut rng);
        let b: Vec<Gf256> = (0..5).map(|_| Gf256::random(&mut rng)).collect();
        let x = a.solve(&b).unwrap();
        assert_eq!(a.mul_vec(&x), b);
        let via_inverse = a.inverse().unwrap().mul_vec(&b);
        assert_eq!(x, via_inverse);
    }

    #[test]
    fn rank_of_random_tall_matrix() {
        let mut rng = rng();
        let m = Matrix::<Gf256>::random(8, 3, &mut rng);
        assert!(m.rank() <= 3);
    }

    #[test]
    fn transpose_involution() {
        let mut rng = rng();
        let m = Matrix::<Gf256>::random(3, 7, &mut rng);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn select_rows_preserves_content() {
        let mut rng = rng();
        let m = Matrix::<Gf256>::random(6, 4, &mut rng);
        let s = m.select_rows(&[4, 1]);
        assert_eq!(s.row(0), m.row(4));
        assert_eq!(s.row(1), m.row(1));
    }

    #[test]
    fn bytes_round_trip() {
        let mut rng = rng();
        let m = Matrix::<Gf256>::random(3, 5, &mut rng);
        let b = m.to_bytes();
        assert_eq!(Matrix::<Gf256>::from_bytes(3, 5, &b), m);
    }

    #[test]
    fn swap_rows_works() {
        let mut m =
            Matrix::<Gf256>::from_rows(&[vec![Gf256(1), Gf256(2)], vec![Gf256(3), Gf256(4)]]);
        m.swap_rows(0, 1);
        assert_eq!(m.row(0), &[Gf256(3), Gf256(4)]);
        assert_eq!(m.row(1), &[Gf256(1), Gf256(2)]);
    }
}
