//! The §9.1 defence: AS-diverse relay selection.
//!
//! "An attacker could control large address spaces... By analyzing the
//! publicly available routing tables, the sender can choose its relay
//! nodes to be under different ASes." We build a synthetic inter-domain
//! address space (skewed AS sizes, attacker concentrated in a few ASes)
//! and compare uniform selection against AS-diverse selection.

use rand::seq::SliceRandom;
use rand::Rng;

/// One overlay node in the synthetic address space.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AsNode {
    /// Node id.
    pub id: u32,
    /// Autonomous system number.
    pub asn: u32,
    /// Whether the attacker controls this node.
    pub malicious: bool,
}

/// A synthetic AS-level address space.
#[derive(Clone, Debug)]
pub struct AsSpace {
    /// All overlay nodes.
    pub nodes: Vec<AsNode>,
    /// Number of ASes.
    pub as_count: u32,
}

impl AsSpace {
    /// Generate `n` nodes across `as_count` ASes with Zipf-skewed AS
    /// sizes. The attacker owns `attacker_nodes` addresses concentrated
    /// in `attacker_ases` ASes (IP space is cheap to obtain in bulk
    /// within a prefix, expensive to spread across the world).
    pub fn generate<R: Rng + ?Sized>(
        n: usize,
        as_count: u32,
        attacker_nodes: usize,
        attacker_ases: u32,
        rng: &mut R,
    ) -> Self {
        assert!(attacker_ases >= 1 && attacker_ases <= as_count);
        assert!(attacker_nodes <= n);
        // Zipf-ish AS weights.
        let weights: Vec<f64> = (1..=as_count).map(|r| 1.0 / r as f64).collect();
        let total: f64 = weights.iter().sum();
        // Honest nodes spread by weight.
        let mut nodes = Vec::with_capacity(n);
        for id in 0..(n - attacker_nodes) as u32 {
            let mut pick: f64 = rng.gen::<f64>() * total;
            let mut asn = 0;
            for (i, w) in weights.iter().enumerate() {
                pick -= w;
                if pick <= 0.0 {
                    asn = i as u32;
                    break;
                }
            }
            nodes.push(AsNode {
                id,
                asn,
                malicious: false,
            });
        }
        // Attacker nodes concentrated in a few (randomly chosen) ASes.
        let mut as_ids: Vec<u32> = (0..as_count).collect();
        as_ids.shuffle(rng);
        let bad_ases = &as_ids[..attacker_ases as usize];
        for i in 0..attacker_nodes as u32 {
            let asn = bad_ases[(i as usize) % bad_ases.len()];
            nodes.push(AsNode {
                id: (n - attacker_nodes) as u32 + i,
                asn,
                malicious: true,
            });
        }
        AsSpace {
            nodes,
            as_count,
        }
    }

    /// Uniform selection of `k` relays (the naive strategy §9.1 warns
    /// about).
    pub fn select_uniform<R: Rng + ?Sized>(&self, k: usize, rng: &mut R) -> Vec<AsNode> {
        let mut pool = self.nodes.clone();
        pool.shuffle(rng);
        pool.truncate(k);
        pool
    }

    /// AS-diverse selection (the §9.1 defence): pick `k` *ASes* uniformly
    /// from the routing table, then one node inside each.
    ///
    /// Sampling ASes — not addresses — is the point of the defence: an
    /// attacker who owns many addresses inside few prefixes gets picked
    /// in proportion to its AS count, not its address count.
    pub fn select_as_diverse<R: Rng + ?Sized>(&self, k: usize, rng: &mut R) -> Vec<AsNode> {
        // Index nodes by AS.
        let mut by_as: std::collections::HashMap<u32, Vec<&AsNode>> =
            std::collections::HashMap::new();
        for node in &self.nodes {
            by_as.entry(node.asn).or_default().push(node);
        }
        let mut as_ids: Vec<u32> = by_as.keys().copied().collect();
        as_ids.sort_unstable(); // deterministic order before shuffling
        as_ids.shuffle(rng);
        let mut out = Vec::with_capacity(k);
        for asn in as_ids {
            if out.len() == k {
                break;
            }
            let members = &by_as[&asn];
            out.push(*members[rng.gen_range(0..members.len())]);
        }
        out
    }
}

/// Fraction of malicious relays among the selected, averaged over trials.
pub fn malicious_fraction<R: Rng + ?Sized>(
    space: &AsSpace,
    k: usize,
    diverse: bool,
    trials: usize,
    rng: &mut R,
) -> f64 {
    let mut total = 0usize;
    let mut picked = 0usize;
    for _ in 0..trials {
        let sel = if diverse {
            space.select_as_diverse(k, rng)
        } else {
            space.select_uniform(k, rng)
        };
        total += sel.iter().filter(|n| n.malicious).count();
        picked += sel.len();
    }
    total as f64 / picked.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space(rng: &mut StdRng) -> AsSpace {
        // 10k nodes, 400 ASes; attacker holds 20% of addresses packed
        // into 4 ASes.
        AsSpace::generate(10_000, 400, 2_000, 4, rng)
    }

    #[test]
    fn generation_counts() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = space(&mut rng);
        assert_eq!(s.nodes.len(), 10_000);
        assert_eq!(s.nodes.iter().filter(|n| n.malicious).count(), 2_000);
        let bad_ases: std::collections::HashSet<u32> = s
            .nodes
            .iter()
            .filter(|n| n.malicious)
            .map(|n| n.asn)
            .collect();
        assert_eq!(bad_ases.len(), 4);
    }

    #[test]
    fn as_diverse_selection_is_diverse() {
        let mut rng = StdRng::seed_from_u64(2);
        let s = space(&mut rng);
        let sel = s.select_as_diverse(24, &mut rng);
        assert_eq!(sel.len(), 24);
        let ases: std::collections::HashSet<u32> = sel.iter().map(|n| n.asn).collect();
        assert_eq!(ases.len(), 24, "one relay per AS");
    }

    /// The §9.1 claim: AS-diverse selection sharply reduces the malicious
    /// fraction when the attacker's addresses are concentrated.
    #[test]
    fn diversity_reduces_attacker_share() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = space(&mut rng);
        let uniform = malicious_fraction(&s, 24, false, 300, &mut rng);
        let diverse = malicious_fraction(&s, 24, true, 300, &mut rng);
        // Uniform tracks the address share (~20%); diverse tracks the AS
        // share (4/400 = 1%).
        assert!((uniform - 0.2).abs() < 0.05, "uniform {uniform}");
        assert!(diverse < 0.05, "diverse {diverse}");
        assert!(uniform > 4.0 * diverse);
    }
}
