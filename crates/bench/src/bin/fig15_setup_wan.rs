//! Fig. 15: average route-setup time vs path length and split factor on
//! the wide-area (PlanetLab substitute) network.
//!
//! A second table reruns the d = 2 setup sweep over the real UDP and
//! TCP transports on loopback sockets.

use std::time::Duration;

use slicing_bench::{banner, RunOpts, Table};
use slicing_core::{DestPlacement, GraphParams};
use slicing_overlay::experiment::{
    run_onion_transfer, run_slicing_transfer, Transport,
};
use slicing_overlay::{TransferConfig, UdpFaults};
use slicing_sim::NetProfile;

fn main() {
    let opts = RunOpts::from_args();
    let repeats = if opts.quick { 1 } else { 3 };
    banner(
        "Figure 15 — route-setup time vs path length, WAN (PlanetLab profile)",
        "onion vs slicing d in {2,3,4}; world RTTs + loaded hosts",
        "seconds-scale setup, growing with L and d; still a few seconds \
         at the largest graphs",
    );
    let rt = tokio::runtime::Builder::new_multi_thread()
        .worker_threads(4)
        .enable_all()
        .build()
        .expect("tokio runtime");
    let mut table = Table::new(&["L", "onion_s", "slicing_d2_s", "slicing_d3_s", "slicing_d4_s"]);
    for l in 1..=6usize {
        let mut row = vec![l as f64];
        let mut acc = 0.0;
        for r in 0..repeats {
            let cfg = TransferConfig {
                params: GraphParams::new(l, 2),
                transport: Transport::Emulated(NetProfile::planetlab()),
                messages: 0,
                payload_len: 0,
                seed: opts.seed + (l * 31 + r) as u64,
                timeout: Duration::from_secs(60),
                relay_shards: 1,
                relay_config: Default::default(),
            };
            acc += rt.block_on(run_onion_transfer(&cfg)).setup_ms as f64 / 1000.0;
        }
        row.push(acc / repeats as f64);
        for d in 2..=4usize {
            let mut acc = 0.0;
            for r in 0..repeats {
                let cfg = TransferConfig {
                    params: GraphParams::new(l, d)
                        .with_dest_placement(DestPlacement::LastStage),
                    transport: Transport::Emulated(NetProfile::planetlab()),
                    messages: 0,
                    payload_len: 0,
                    seed: opts.seed + (l * 131 + d * 17 + r) as u64,
                    timeout: Duration::from_secs(60),
                    relay_shards: 1,
                    relay_config: Default::default(),
                };
                acc += rt.block_on(run_slicing_transfer(&cfg)).setup_ms as f64 / 1000.0;
            }
            row.push(acc / repeats as f64);
        }
        table.row(&row);
    }
    table.print();

    // Rerun setup over real sockets: slicing d = 2, UDP (paced, setup
    // exempt from injected loss by design — establishment needs all d′
    // slices) vs TCP. Loopback, so these are protocol+stack costs
    // without WAN RTT; milliseconds, not seconds.
    println!();
    println!("rerun over real sockets (setup ms, slicing d=2):");
    let mut real = Table::new(&["L", "udp_setup_ms", "tcp_setup_ms"]);
    for l in 1..=6usize {
        let mk = |transport: Transport, salt: u64| TransferConfig {
            params: GraphParams::new(l, 2).with_dest_placement(DestPlacement::LastStage),
            transport,
            messages: 0,
            payload_len: 0,
            seed: opts.seed + (l * 977) as u64 + salt,
            timeout: Duration::from_secs(60),
            relay_shards: 1,
            relay_config: Default::default(),
        };
        let mut udp_acc = 0.0;
        let mut tcp_acc = 0.0;
        for r in 0..repeats {
            udp_acc += rt
                .block_on(run_slicing_transfer(&mk(
                    Transport::Udp(UdpFaults::default()),
                    4000 + r as u64,
                )))
                .setup_ms as f64;
            tcp_acc += rt
                .block_on(run_slicing_transfer(&mk(Transport::Tcp, 5000 + r as u64)))
                .setup_ms as f64;
        }
        real.row(&[
            l as f64,
            udp_acc / repeats as f64,
            tcp_acc / repeats as f64,
        ]);
    }
    real.print();
}
